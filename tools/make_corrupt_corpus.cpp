// Regenerates tests/data/corrupt_cache/ after a .spmvc format change.
//
// Writes a fresh format-current entry for the canonical stencil2d5:24
// matrix, then applies the six documented byte-level damages (see the
// corpus README). Run from anywhere:
//
//   make_corrupt_corpus <output-dir> [scratch-dir]
//
// The scratch dir (default: <output-dir>) receives the intermediate
// .mtx source file; the damaged .spmvc files land in <output-dir>.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "sparse/binary_cache.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"

namespace fs = std::filesystem;
using namespace spmvcache;

namespace {

// Header field offsets (format v2): magic 8, version u32@8, len u32@12,
// rows i64@16, cols i64@24, nnz i64@32, offset/index/value sizes u32@40/
// 44/48, width tag u32@52, stamp u64@56 + i64@64, then the section
// geometry six u64 from offset 72.
constexpr std::uint64_t kVersionOffset = 8;
constexpr std::uint64_t kRowptrOffsetField = 72;
constexpr std::uint64_t kColidxOffsetField = 88;
constexpr std::uint64_t kValuesOffsetField = 104;
constexpr std::uint64_t kValuesBytesField = 112;

void poke(const std::string& path, std::uint64_t offset, const void* bytes,
          std::size_t n) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char*>(bytes),
            static_cast<std::streamsize>(n));
}

std::uint64_t peek_u64(const std::string& path, std::uint64_t offset) {
    std::ifstream f(path, std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    std::uint64_t v = 0;
    // spmv-lint: allow(reinterpret-cast) — raw header field read
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
}

std::string copy_entry(const std::string& entry, const fs::path& out,
                       const std::string& name) {
    const std::string dst = (out / name).string();
    fs::copy_file(entry, dst, fs::copy_options::overwrite_existing);
    return dst;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr,
                     "usage: make_corrupt_corpus <output-dir> "
                     "[scratch-dir]\n");
        return 2;
    }
    const fs::path out(argv[1]);
    const fs::path scratch(argc == 3 ? argv[2] : argv[1]);
    fs::create_directories(out);
    fs::create_directories(scratch);

    const CsrMatrix m = gen::stencil_2d_5pt(24, 24);
    const std::string mtx = (scratch / "stencil24.mtx").string();
    write_matrix_market_file(mtx, m);
    const Result<SourceStamp> stamp = stat_source(mtx);
    if (!stamp.ok()) {
        std::fprintf(stderr, "stat: %s\n", stamp.error().render().c_str());
        return 1;
    }
    const std::string entry = (scratch / "pristine.spmvc").string();
    const CsrView view(m);
    const Status written =
        write_binary_cache(entry, view, fingerprint_matrix(view),
                           compute_stats(view), mtx, stamp.value());
    if (!written.ok()) {
        std::fprintf(stderr, "write: %s\n",
                     written.error().render().c_str());
        return 1;
    }

    // 1. bad_magic: first magic byte flipped (checksum left stale — the
    //    magic check fires before the checksum is even read).
    {
        const std::string p = copy_entry(entry, out, "bad_magic.spmvc");
        const char x = 'X';
        poke(p, 0, &x, 1);
    }
    // 2. version_bump: format version 99, header checksum re-fixed.
    {
        const std::string p = copy_entry(entry, out, "version_bump.spmvc");
        const std::uint32_t v = 99;
        poke(p, kVersionOffset, &v, 4);
        if (!spmvc_testing::fixup_header_checksum(p).ok()) return 1;
    }
    // 3. truncated_section: file cut mid-values-section.
    {
        const std::string p =
            copy_entry(entry, out, "truncated_section.spmvc");
        const std::uint64_t values_offset =
            peek_u64(p, kValuesOffsetField);
        const std::uint64_t values_bytes = peek_u64(p, kValuesBytesField);
        fs::resize_file(p, values_offset + values_bytes / 2);
    }
    // 4. flipped_nnz: header nnz incremented, checksum re-fixed — only
    //    the geometry-consistency layer can catch it.
    {
        const std::string p = copy_entry(entry, out, "flipped_nnz.spmvc");
        const std::int64_t nnz = m.nnz() + 1;
        poke(p, spmvc_testing::header_nnz_offset(), &nnz, 8);
        if (!spmvc_testing::fixup_header_checksum(p).ok()) return 1;
    }
    // 5. checksum_mismatch: one bit flipped inside the colidx section.
    {
        const std::string p =
            copy_entry(entry, out, "checksum_mismatch.spmvc");
        const std::uint64_t colidx_offset =
            peek_u64(p, kColidxOffsetField);
        std::uint8_t byte = 0;
        {
            std::ifstream f(p, std::ios::binary);
            f.seekg(static_cast<std::streamoff>(colidx_offset));
            // spmv-lint: allow(reinterpret-cast) — raw section byte read
            f.read(reinterpret_cast<char*>(&byte), 1);
        }
        byte ^= 0x01;
        poke(p, colidx_offset, &byte, 1);
    }
    // 6. misaligned_offset: rowptr offset nudged off the section
    //    alignment, checksum re-fixed.
    {
        const std::string p =
            copy_entry(entry, out, "misaligned_offset.spmvc");
        const std::uint64_t bad = 4100;
        poke(p, kRowptrOffsetField, &bad, 8);
        if (!spmvc_testing::fixup_header_checksum(p).ok()) return 1;
    }

    std::printf("wrote 6 corrupt entries to %s (format v%u)\n",
                out.string().c_str(), kSpmvcFormatVersion);
    return 0;
}
