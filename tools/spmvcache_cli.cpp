// spmvcache — command-line front end to the library.
//
//   spmvcache stats    <matrix.mtx>                  matrix statistics
//   spmvcache classify <matrix.mtx> [--ways N]       §3.1 size class
//   spmvcache predict  <matrix.mtx> [--threads T]    method A/B misses
//   spmvcache simulate <matrix.mtx> [--threads T] [--l2-ways N] [--l1-ways N]
//   spmvcache tune     <matrix.mtx> [--threads T]    best sector config
//   spmvcache convert  <in.mtx> <out.mtx> [--rcm]    reorder / normalise
//   spmvcache batch    <dir|list|matrix.mtx>         isolated sweep + report
//   spmvcache serve                                  JSONL prediction daemon
//   spmvcache cache    warm|inspect ...              .spmvc binary cache ops
//   spmvcache kernelbench <matrix.mtx> [--threads T] [--variant V]
//                                                    time the kernel engine
//
// Every subcommand also accepts --gen FAMILY:ARG (e.g. --gen stencil2d5:512)
// instead of a .mtx path, for experimentation without input files.
//
// With --cache-dir DIR, file loads go through the `.spmvc` binary cache
// (sparse/binary_cache.hpp): the first load parses and writes a cache
// entry, later loads mmap it zero-copy. --parse-jobs N parses .mtx text
// with N workers on a miss (0 = all cores; results are bit-identical).
//
// Exit codes are standardised: 0 = success, 1 = input/matrix errors (for
// `batch`: some matrices failed — including matrices still pending when a
// SIGINT/SIGTERM drain stopped the sweep), 2 = usage error or unexpected
// fatal condition. All input failures flow through the typed Status layer
// (util/status.hpp); the top-level catch only sees programmer errors.
// SIGINT/SIGTERM never kill `batch` or `serve` mid-run: both drain
// gracefully and still emit their reports.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/spmvcache.hpp"
#include "kernels/engine.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/signal.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace spmvcache;

[[noreturn]] void usage() {
    std::cerr
        << "usage: spmvcache <command> [<matrix.mtx> | --gen FAMILY:N] "
           "[options]\n"
           "commands:\n"
           "  stats     matrix statistics (mu_K, CV_K, working set)\n"
           "  classify  working-set class per Breiter et al. §3.1\n"
           "  predict   model the L2 misses of every sector config\n"
           "  simulate  run one config on the simulated A64FX\n"
           "  tune      recommend the best sector configuration\n"
           "  convert   rewrite a matrix (optionally RCM-reordered)\n"
           "  batch     model a directory/list of matrices with per-matrix\n"
           "            isolation and a machine-readable failure report\n"
           "  serve     long-running JSONL daemon on stdin/stdout: predict,\n"
           "            tune, stats, health, shutdown requests with a\n"
           "            fingerprint-keyed plan cache and graceful drain\n"
           "  cache     warm or inspect the .spmvc binary matrix cache:\n"
           "            cache warm <dir|list|matrix.mtx> --cache-dir DIR\n"
           "            cache inspect <entry.spmvc | matrix.mtx --cache-dir "
           "DIR>\n"
           "  kernelbench  run the SpMV kernel engine on the host and time\n"
           "            its variants against the spmv_csr_parallel baseline\n"
           "options: --threads T --l2-ways N --l1-ways N --method a|b "
           "--rcm --gen FAMILY:N --strict\n"
           "         --index-width auto|32|64  physical colidx/rowptr\n"
           "                   element width: auto (default) narrows to\n"
           "                   32-bit whenever rows/cols/nnz fit, 64\n"
           "                   forces the wide layout, 32 fails with a\n"
           "                   typed error on unrepresentable shapes\n"
           "         --cache-dir DIR  .spmvc binary cache for file loads\n"
           "                   (stats/predict/tune/batch/serve/cache; a\n"
           "                   valid entry is mmapped instead of parsed)\n"
           "         --parse-jobs N  chunked-parallel .mtx parse on a cache\n"
           "                   miss (default 1 = serial, 0 = all cores;\n"
           "                   the resulting matrix is bit-identical)\n"
           "         --jobs J  host workers for the sharded model (0 = all\n"
           "                   hardware threads, 1 = serial; predictions\n"
           "                   are identical for every value)\n"
           "         --trace-buffer BYTES  packed-trace replay budget\n"
           "                   (default: 1/8 of host RAM; 0 = always\n"
           "                   re-derive; predictions are identical)\n"
           "         --approx[=R]  SHARDS-sampled approximate model\n"
           "                   (predict/tune/batch): process only refs\n"
           "                   whose line hashes below R (default 0.01)\n"
           "                   and scale the totals by 1/R -- order-of-\n"
           "                   magnitude faster, typically within a few\n"
           "                   percent; outputs are marked as sampled\n"
           "predict: --json FILE  machine-readable predictions + per-shard\n"
           "                      timing/reference instrumentation\n"
           "predict/tune: --timeout SECONDS  wall-clock budget for the run\n"
           "                      (0 = none; same mechanism as batch/serve)\n"
           "batch:   --report FILE --format csv|json --timeout SECONDS\n"
           "         --no-model --no-retry\n"
           "         SIGINT/SIGTERM drain the sweep: finished matrices are\n"
           "         reported, pending ones are marked Cancelled (exit 1)\n"
           "serve:   --workers N --queue N --cache-bytes B --strikes N\n"
           "         --timeout SECONDS --retries N --max-request-bytes B\n"
           "         --source-cache N  loaded matrices kept resident (8)\n"
           "         --execute-delay SECONDS (test hook)\n"
           "         requests on stdin, one JSON object per line; responses\n"
           "         on stdout; lifecycle + final stats on stderr\n"
           "kernelbench: --variant csr|csr-prefetch|csr-simd|sell|\n"
           "             sell-simd|merge|auto (default: all + auto pick)\n"
           "             --iters N --prefetch-distance D (0 = calibrate)\n"
           "             --report FILE --format csv|json\n"
           "families: stencil2d5 stencil3d27 banded circuit random "
           "randomcv blockfem\n"
           "exit codes: 0 ok, 1 input/matrix failures, 2 usage or fatal\n";
    std::exit(kExitUsage);
}

void report_error(const Error& e) {
    std::cerr << "error: " << e.render() << "\n";
}

/// Resolves --approx[=R] into a ModelOptions::sample_rate: absent = 1
/// (exact), bare --approx = 0.01, --approx=R = R. Rates outside (0, 1]
/// are a usage error.
[[nodiscard]] Result<double> approx_rate(const CliParser& cli) {
    if (!cli.has("approx")) return 1.0;
    const double rate = cli.get_double("approx", 0.01);
    if (!(rate > 0.0 && rate <= 1.0))
        return Error(ErrorCode::ValidationError,
                     "--approx rate must be in (0, 1]");
    return rate;
}

/// Builds the MatrixSource the flags describe; loading goes through the
/// same core/matrix_source path the serve daemon uses.
[[nodiscard]] MatrixSource matrix_source(const CliParser& cli,
                                         std::size_t arg_index) {
    MatrixSource source;
    if (cli.has("gen")) {
        source.gen_spec = cli.get("gen", "");
        source.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    } else {
        if (cli.positionals().size() <= arg_index) usage();
        source.path = cli.positionals()[arg_index];
    }
    source.strict_parse = cli.has("strict");
    source.cache_dir = cli.get("cache-dir", "");
    source.parse_jobs = cli.get_int("parse-jobs", 1);
    if (cli.has("index-width")) {
        const Result<IndexWidthChoice> width =
            parse_index_width_choice(cli.get("index-width", "auto"));
        if (!width.ok()) {
            report_error(width.error());
            std::exit(kExitUsage);
        }
        source.index_width = width.value();
    }
    return source;
}

[[nodiscard]] Result<AnyCsrMatrix> load_matrix(const CliParser& cli,
                                               std::size_t arg_index) {
    return load_matrix_source(matrix_source(cli, arg_index));
}

/// Cache-aware load for the model-facing subcommands; honours --cache-dir
/// and --parse-jobs and reports how the matrix was obtained.
[[nodiscard]] Result<LoadedMatrix> load_handle(const CliParser& cli,
                                               std::size_t arg_index) {
    return load_matrix_handle(matrix_source(cli, arg_index));
}

void report_load_origin(const LoadedMatrix& loaded) {
    if (loaded.origin == LoadOrigin::CacheHit)
        std::cerr << "matrix: mmapped from .spmvc cache (zero-copy)\n";
    else if (loaded.cache_written)
        std::cerr << "matrix: parsed; .spmvc cache entry written\n";
}

int cmd_stats(const CliParser& cli) {
    const Result<LoadedMatrix> loaded = load_handle(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    report_load_origin(loaded.value());
    const MatrixStats& stats = loaded.value().stats;
    std::cout << to_string(stats) << "\n";
    TextTable t({"quantity", "value"});
    t.add_row({"rows", fmt_count(static_cast<unsigned long long>(stats.rows))});
    t.add_row({"cols", fmt_count(static_cast<unsigned long long>(stats.cols))});
    t.add_row({"nonzeros",
               fmt_count(static_cast<unsigned long long>(stats.nnz))});
    t.add_row({"mu_K (mean nnz/row)", fmt(stats.mean_nnz_per_row, 2)});
    t.add_row({"sigma_K", fmt(stats.stddev_nnz_per_row, 2)});
    t.add_row({"CV_K", fmt(stats.cv_nnz_per_row, 3)});
    t.add_row({"max nnz/row", fmt_count(static_cast<unsigned long long>(
                                  stats.max_nnz_per_row))});
    t.add_row({"empty rows", fmt_count(static_cast<unsigned long long>(
                                 stats.empty_rows))});
    t.add_row({"bandwidth", fmt_count(static_cast<unsigned long long>(
                                stats.bandwidth))});
    t.add_row({"matrix bytes", fmt_bytes(stats.matrix_bytes)});
    t.add_row({"working set", fmt_bytes(stats.working_set_bytes)});
    t.add_row({"index width",
               stats.index_width == IndexWidth::W64 ? "64-bit" : "32-bit"});
    t.add_row({"32-bit representable", stats.width32_ok ? "yes" : "no"});
    t.render(std::cout);
    if (stats.index_width == IndexWidth::W64 && stats.width32_ok)
        std::cout << "note: this matrix fits 32-bit indices; reload with "
                     "--index-width auto|32 to halve colidx/rowptr "
                     "traffic\n";
    return 0;
}

int cmd_classify(const CliParser& cli) {
    const Result<LoadedMatrix> loaded = load_handle(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    report_load_origin(loaded.value());
    const AnyCsrView m = loaded.value().view;
    const auto ways = static_cast<std::uint32_t>(cli.get_int("ways", 5));
    const A64fxConfig machine = a64fx_default();
    const std::uint64_t sector0 =
        ways_to_lines(machine.l2, machine.l2.ways - ways) *
        machine.l2.line_bytes;
    const auto cls = classify(m, machine.l2.size_bytes, sector0);
    std::cout << "class " << to_string(cls) << " with " << ways
              << " L2 ways isolated (sector 0 = " << fmt_bytes(sector0)
              << " of " << fmt_bytes(machine.l2.size_bytes)
              << " per segment)\n";
    switch (cls) {
        case MatrixClass::Class1:
            std::cout << "everything fits in cache: no capacity misses, "
                         "sector cache not expected to help\n";
            break;
        case MatrixClass::Class2:
            std::cout << "matrix data streams but x+y+rowptr fit in sector "
                         "0: the best case for the sector cache\n";
            break;
        case MatrixClass::Class3a:
            std::cout << "x alone fits in sector 0; isolating rowptr and y "
                         "too (IsolateMatrixRowptrY) may help further\n";
            break;
        case MatrixClass::Class3b:
            std::cout << "x exceeds sector 0: partitioning only lowers x's "
                         "reuse distances, diminishing benefit\n";
            break;
    }
    return 0;
}

/// Machine-readable `predict` output: configs plus per-shard timing and
/// reference counts, so sharded-execution speedup is observable.
void write_predict_json(std::ostream& out, const ModelResult& result,
                        const ModelOptions& options, bool use_b) {
    out << "{\n  \"method\": \"" << (use_b ? "b" : "a")
        << "\",\n  \"threads\": " << options.threads
        << ",\n  \"jobs\": " << result.jobs
        << ",\n  \"seconds\": " << result.seconds
        << ",\n  \"sampled\": " << (result.sampled ? "true" : "false")
        << ",\n  \"sample_rate\": " << result.sample_rate
        << ",\n  \"sampled_refs\": " << result.sampled_refs
        << ",\n  \"x_traffic_fraction\": " << result.x_traffic_fraction
        << ",\n  \"configs\": [\n";
    for (std::size_t i = 0; i < result.configs.size(); ++i) {
        const auto& c = result.configs[i];
        out << "    {\"l2_sector_ways\": " << c.l2_sector_ways
            << ", \"l2_misses\": " << c.l2_misses
            << ", \"l2_x_misses\": " << c.l2_x_misses << "}"
            << (i + 1 < result.configs.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"shards\": [\n";
    for (std::size_t s = 0; s < result.shards.size(); ++s) {
        const auto& shard = result.shards[s];
        out << "    {\"segment\": " << shard.segment
            << ", \"threads\": " << shard.threads
            << ", \"references\": " << shard.references
            << ", \"seconds\": " << shard.seconds
            << ", \"packed_replay\": "
            << (shard.packed_replay ? "true" : "false")
            << ", \"sampled_refs\": " << shard.sampled_refs << "}"
            << (s + 1 < result.shards.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

int cmd_predict(const CliParser& cli) {
    Result<LoadedMatrix> loaded = load_handle(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    const LoadedMatrix m = std::move(loaded).value();
    report_load_origin(m);
    ModelOptions options;
    options.machine = a64fx_default();
    options.threads = cli.get_int("threads", 48);
    options.jobs = cli.get_int("jobs", 0);
    if (const std::int64_t tb = cli.get_int("trace-buffer", -1); tb >= 0)
        options.trace_buffer_bytes = static_cast<std::uint64_t>(tb);
    options.l2_way_options = {2, 3, 4, 5, 6, 7};
    options.timeout_seconds = cli.get_double("timeout", 0.0);
    const Result<double> rate = approx_rate(cli);
    if (!rate.ok()) {
        report_error(rate.error());
        return kExitUsage;
    }
    options.sample_rate = rate.value();
    const bool use_b = to_lower(cli.get("method", "a")) == "b";
    const Result<ModelResult> modelled =
        run_model(m, options, use_b ? ModelMethod::B : ModelMethod::A);
    if (!modelled.ok()) {
        report_error(modelled.error());
        return 1;
    }
    const ModelResult& result = modelled.value();
    TextTable t({"L2 ways (sector 1)", "predicted L2 misses",
                 "x share [%]"});
    for (const auto& config : result.configs) {
        t.add_row({config.l2_sector_ways == 0
                       ? "off"
                       : std::to_string(config.l2_sector_ways),
                   fmt_count(static_cast<unsigned long long>(
                       config.l2_misses)),
                   fmt(config.l2_misses > 0
                           ? 100.0 * config.l2_x_misses / config.l2_misses
                           : 0.0,
                       1)});
    }
    t.render(std::cout, std::string("method (") + (use_b ? "B" : "A") +
                            "), " + std::to_string(options.threads) +
                            " threads:" +
                            (result.sampled
                                 ? " [SHARDS estimate, R=" +
                                       fmt(result.sample_rate, 4) + "]"
                                 : ""));
    std::cout << "model runtime: " << fmt(result.seconds, 2) << " s on "
              << result.jobs << " host job(s), "
              << result.shards.size() << " shard(s)\n";
    if (result.sampled)
        std::cout << "sampling: R=" << fmt(result.sample_rate, 4) << ", "
                  << fmt_count(static_cast<unsigned long long>(
                         result.sampled_refs))
                  << " of the demand refs reached the engines; predictions "
                     "are scaled estimates, not exact counts\n";
    for (const auto& shard : result.shards)
        std::cout << "  shard " << shard.segment << ": " << shard.threads
                  << " threads, "
                  << fmt_count(static_cast<unsigned long long>(
                         shard.references))
                  << " refs, " << fmt(shard.seconds, 3) << " s"
                  << (shard.packed_replay ? " (packed)" : " (streamed)")
                  << "\n";

    const std::string json_path = cli.get("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            report_error(Error(ErrorCode::ResourceError,
                               "cannot write '" + json_path + "'"));
            return 1;
        }
        write_predict_json(out, result, options, use_b);
        std::cout << "json written to " << json_path << "\n";
    }
    return 0;
}

int cmd_simulate(const CliParser& cli) {
    const Result<LoadedMatrix> loaded = load_handle(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    report_load_origin(loaded.value());
    const AnyCsrView m = loaded.value().view;
    ExperimentOptions options;
    options.machine = a64fx_default();
    options.threads = cli.get_int("threads", 48);
    const SectorWays ways{
        static_cast<std::uint32_t>(cli.get_int("l2-ways", 0)),
        static_cast<std::uint32_t>(cli.get_int("l1-ways", 0))};
    const auto results =
        run_sector_sweep(m, {SectorWays{0, 0}, ways}, options);
    const auto& base = results[0];
    const auto& cfg = results[1];
    TextTable t({"quantity", "no sector cache",
                 "L2=" + std::to_string(ways.l2) +
                     " L1=" + std::to_string(ways.l1)});
    t.add_row({"L2 misses (corrected)", fmt_count(base.l2.fills()),
               fmt_count(cfg.l2.fills())});
    t.add_row({"L2 demand misses", fmt_count(base.l2.demand_misses()),
               fmt_count(cfg.l2.demand_misses())});
    t.add_row({"L1 refills", fmt_count(base.l1.refills),
               fmt_count(cfg.l1.refills)});
    t.add_row({"Gflop/s", fmt(base.timing.gflops, 1),
               fmt(cfg.timing.gflops, 1)});
    t.add_row({"bandwidth [GB/s]", fmt(base.timing.bandwidth_gbs, 1),
               fmt(cfg.timing.bandwidth_gbs, 1)});
    t.add_row({"speedup", "1.000", fmt(cfg.speedup_over(base), 3)});
    t.render(std::cout);
    return 0;
}

int cmd_tune(const CliParser& cli) {
    Result<LoadedMatrix> loaded = load_handle(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    const LoadedMatrix m = std::move(loaded).value();
    report_load_origin(m);
    ModelOptions options;
    options.machine = a64fx_default();
    options.threads = cli.get_int("threads", 48);
    options.jobs = cli.get_int("jobs", 0);
    if (const std::int64_t tb = cli.get_int("trace-buffer", -1); tb >= 0)
        options.trace_buffer_bytes = static_cast<std::uint64_t>(tb);
    options.l2_way_options = {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14};
    options.predict_l1 = false;
    options.timeout_seconds = cli.get_double("timeout", 0.0);
    const Result<double> rate = approx_rate(cli);
    if (!rate.ok()) {
        report_error(rate.error());
        return kExitUsage;
    }
    options.sample_rate = rate.value();
    const Result<ModelResult> modelled =
        run_model(m, options, ModelMethod::A);
    if (!modelled.ok()) {
        report_error(modelled.error());
        return 1;
    }
    const ModelResult& result = modelled.value();
    if (result.sampled)
        std::cout << "note: recommendation derived from a SHARDS estimate "
                     "(R=" << fmt(result.sample_rate, 4)
                  << "); re-run without --approx to confirm\n";
    const ConfigPrediction* best = &result.configs.front();
    for (const auto& config : result.configs)
        if (config.l2_misses < best->l2_misses) best = &config;
    if (best->l2_sector_ways == 0) {
        std::cout << "recommendation: leave the sector cache off\n";
    } else {
        std::cout << "recommendation:\n"
                  << "  #pragma procedure scache_isolate_way L2="
                  << best->l2_sector_ways << "\n"
                  << "  #pragma procedure scache_isolate_assign a colidx\n"
                  << "predicted L2 miss reduction: "
                  << fmt(100.0 *
                             (result.configs.front().l2_misses -
                              best->l2_misses) /
                             result.configs.front().l2_misses,
                         1)
                  << " %\n";
    }
    return 0;
}

int cmd_convert(const CliParser& cli) {
    if (cli.positionals().size() < 3 && !cli.has("gen")) usage();
    const Result<AnyCsrMatrix> loaded = load_matrix(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    // RCM and the .mtx writer operate on the narrow layout; a wide load of
    // a 32-bit-representable matrix is narrowed here (the text output is
    // width-independent anyway). Shapes that genuinely need 64-bit indices
    // cannot be converted yet.
    const AnyCsrMatrix& any = loaded.value();
    if (any.index_width() == IndexWidth::W64 &&
        !width32_representable(any.rows(), any.cols(), any.nnz())) {
        report_error(Error(ErrorCode::UnsupportedError,
                           "convert requires a 32-bit-representable "
                           "matrix"));
        return 1;
    }
    const CsrMatrix m = any.index_width() == IndexWidth::W32
                            ? CsrMatrix(*any.as32())
                            : convert_csr_width<Idx32>(*any.as64());
    const std::string out = cli.positionals().back();
    const CsrMatrix result = cli.has("rcm") ? rcm_reorder(m) : m;
    try {
        write_matrix_market_file(out, result);
    } catch (const StatusError& e) {
        report_error(e.error());
        return 1;
    }
    std::cout << "wrote " << out << " ("
              << fmt_count(static_cast<unsigned long long>(result.nnz()))
              << " nonzeros" << (cli.has("rcm") ? ", RCM-reordered" : "")
              << ")\n";
    return 0;
}

int cmd_batch(const CliParser& cli) {
    if (cli.positionals().size() < 2) usage();
    const Result<std::vector<std::string>> paths =
        collect_matrix_paths(cli.positionals()[1]);
    if (!paths.ok()) {
        report_error(paths.error());
        return kExitUsage;
    }

    BatchOptions options;
    options.strict_parse = cli.has("strict");
    options.run_model = !cli.has("no-model");
    options.threads = cli.get_int("threads", 48);
    options.jobs = cli.get_int("jobs", 0);
    if (const std::int64_t tb = cli.get_int("trace-buffer", -1); tb >= 0)
        options.trace_buffer_bytes = static_cast<std::uint64_t>(tb);
    options.timeout_seconds = cli.get_double("timeout", 0.0);
    options.retry_transient = !cli.has("no-retry");
    options.cache_dir = cli.get("cache-dir", "");
    options.parse_jobs = cli.get_int("parse-jobs", 1);
    if (cli.has("index-width")) {
        const Result<IndexWidthChoice> width =
            parse_index_width_choice(cli.get("index-width", "auto"));
        if (!width.ok()) {
            report_error(width.error());
            return kExitUsage;
        }
        options.index_width = width.value();
    }
    const Result<double> rate = approx_rate(cli);
    if (!rate.ok()) {
        report_error(rate.error());
        return kExitUsage;
    }
    options.sample_rate = rate.value();

    // SIGINT/SIGTERM drain the sweep instead of killing it: the current
    // matrix finishes, pending ones are recorded as Cancelled, and the
    // report below is still written.
    if (!drain::install_drain_handlers()) {
        report_error(Error(ErrorCode::ResourceError,
                           "cannot install SIGINT/SIGTERM drain handlers"));
        return kExitUsage;
    }
    options.cancel_check = [] { return drain::requested(); };

    const BatchReport report = run_batch(paths.value(), options);
    if (drain::requested())
        std::cerr << "batch: drained after signal " << drain::signal_number()
                  << "; partial report follows\n";

    TextTable t({"matrix", "status", "stage", "load", "error", "rows",
                 "nnz", "best L2 ways"});
    for (const auto& item : report.items) {
        t.add_row({item.name, item.ok ? "ok" : "FAILED",
                   to_string(item.stage),
                   item.ok ? item.load_origin : "-",
                   item.ok ? "-" : to_string(item.code),
                   fmt_count(static_cast<unsigned long long>(item.rows)),
                   fmt_count(static_cast<unsigned long long>(item.nnz)),
                   item.ok && options.run_model
                       ? (item.best_l2_ways == 0
                              ? std::string("off")
                              : std::to_string(item.best_l2_ways))
                       : "-"});
    }
    t.render(std::cout);
    std::cout << report.succeeded() << "/" << report.items.size()
              << " matrices ok, " << report.failed() << " failed\n";
    for (const auto& item : report.items)
        if (!item.ok)
            std::cerr << "failed: " << item.name << " [" << to_string(item.stage)
                      << "/" << to_string(item.code) << "] " << item.message
                      << "\n";

    const std::string report_path = cli.get("report", "");
    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out) {
            report_error(Error(ErrorCode::ResourceError,
                               "cannot write report '" + report_path + "'"));
            return kExitUsage;
        }
        const std::string format = to_lower(cli.get(
            "format", report_path.size() > 5 &&
                              report_path.substr(report_path.size() - 5) ==
                                  ".json"
                          ? "json"
                          : "csv"));
        if (format == "json")
            write_batch_report_json(out, report);
        else
            write_batch_report_csv(out, report);
        std::cout << "report written to " << report_path << " (" << format
                  << ")\n";
    }
    return report.exit_code();
}

int cmd_serve(const CliParser& cli) {
    ServeOptions options;
    options.workers = cli.get_int("workers", 2);
    options.queue_capacity = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("queue", 64)));
    if (const std::int64_t cb = cli.get_int("cache-bytes", -1); cb >= 0)
        options.cache_capacity_bytes = static_cast<std::uint64_t>(cb);
    options.quarantine_strikes = static_cast<int>(
        std::max<std::int64_t>(1, cli.get_int("strikes", 3)));
    options.default_timeout_seconds = cli.get_double("timeout", 0.0);
    options.max_retries = static_cast<int>(
        std::max<std::int64_t>(0, cli.get_int("retries", 2)));
    if (const std::int64_t mb = cli.get_int("max-request-bytes", -1); mb > 0)
        options.max_request_bytes = static_cast<std::size_t>(mb);
    options.execute_delay_seconds = cli.get_double("execute-delay", 0.0);
    options.cache_dir = cli.get("cache-dir", "");
    options.parse_jobs = cli.get_int("parse-jobs", 1);
    options.source_cache_entries = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("source-cache", 8)));

    // No SA_RESTART: a blocked stdin read returns with EINTR so the loop
    // notices the drain request instead of dying mid-response.
    if (!drain::install_drain_handlers()) {
        report_error(Error(ErrorCode::ResourceError,
                           "cannot install SIGINT/SIGTERM drain handlers"));
        return kExitUsage;
    }
    Server server(options);
    return server.run(std::cin, std::cout, std::cerr);
}

/// `spmvcache cache warm <dir|list|matrix.mtx> --cache-dir DIR`: parse
/// every matrix once and write (or refresh) its .spmvc entry, so later
/// predict/batch/serve runs mmap instead of parsing.
int cmd_cache_warm(const CliParser& cli) {
    if (cli.positionals().size() < 3) usage();
    const std::string cache_dir = cli.get("cache-dir", "");
    if (cache_dir.empty()) {
        report_error(Error(ErrorCode::ValidationError,
                           "cache warm requires --cache-dir DIR"));
        return kExitUsage;
    }
    const Result<std::vector<std::string>> paths =
        collect_matrix_paths(cli.positionals()[2]);
    if (!paths.ok()) {
        report_error(paths.error());
        return kExitUsage;
    }
    std::size_t failures = 0;
    for (const std::string& path : paths.value()) {
        MatrixSource source;
        source.path = path;
        source.strict_parse = cli.has("strict");
        source.cache_dir = cache_dir;
        source.parse_jobs = cli.get_int("parse-jobs", 1);
        if (cli.has("index-width")) {
            const Result<IndexWidthChoice> width =
                parse_index_width_choice(cli.get("index-width", "auto"));
            if (!width.ok()) {
                report_error(width.error());
                return kExitUsage;
            }
            source.index_width = width.value();
        }
        const Timer timer;
        const Result<LoadedMatrix> loaded = load_matrix_handle(source);
        if (!loaded.ok()) {
            ++failures;
            std::cout << path << ": FAILED ("
                      << to_string(loaded.error().code) << ")\n";
            std::cerr << "failed: " << path << ": "
                      << loaded.error().render() << "\n";
            continue;
        }
        const LoadedMatrix& m = loaded.value();
        std::cout << path << ": " << to_string(m.origin);
        if (m.cache_written) std::cout << ", cache written";
        std::cout << " ("
                  << fmt_count(
                         static_cast<unsigned long long>(m.view.nnz()))
                  << " nnz, "
                  << (m.view.index_width() == IndexWidth::W64 ? "64" : "32")
                  << "-bit indices, " << fmt(timer.seconds(), 3)
                  << " s) -> "
                  << spmvc_cache_path(cache_dir, path, source.strict_parse)
                  << "\n";
    }
    std::cout << paths.value().size() - failures << "/"
              << paths.value().size() << " cache entries warm\n";
    return failures == 0 ? kExitOk : kExitSomeFailed;
}

/// `spmvcache cache inspect <entry.spmvc | matrix.mtx --cache-dir DIR>`:
/// decode and print a cache header without touching the array sections.
int cmd_cache_inspect(const CliParser& cli) {
    if (cli.positionals().size() < 3) usage();
    const std::string target = cli.positionals()[2];
    std::string entry = target;
    // A .mtx argument names its entry indirectly through --cache-dir.
    if (target.size() < 6 ||
        target.substr(target.size() - 6) != ".spmvc") {
        const std::string cache_dir = cli.get("cache-dir", "");
        if (cache_dir.empty()) {
            report_error(Error(ErrorCode::ValidationError,
                               "cache inspect needs a .spmvc path, or a "
                               "matrix path plus --cache-dir DIR"));
            return kExitUsage;
        }
        entry = spmvc_cache_path(cache_dir, target, cli.has("strict"));
    }
    const Result<SpmvcInfo> info = inspect_binary_cache(entry);
    if (!info.ok()) {
        report_error(info.error());
        return 1;
    }
    const SpmvcInfo& i = info.value();
    TextTable t({"field", "value"});
    t.add_row({"entry", entry});
    t.add_row({"format version", std::to_string(i.format_version)});
    t.add_row({"rows", fmt_count(static_cast<unsigned long long>(i.rows))});
    t.add_row({"cols", fmt_count(static_cast<unsigned long long>(i.cols))});
    t.add_row(
        {"nonzeros", fmt_count(static_cast<unsigned long long>(i.nnz))});
    t.add_row({"source path", i.source_path});
    t.add_row({"source size", fmt_bytes(i.source.size)});
    t.add_row({"source mtime [ns]", std::to_string(i.source.mtime_ns)});
    t.add_row({"fingerprint", to_string(i.fingerprint)});
    t.add_row({"index width",
               i.index_width == IndexWidth::W64 ? "64-bit" : "32-bit"});
    t.add_row({"mu_K (mean nnz/row)", fmt(i.stats.mean_nnz_per_row, 2)});
    t.add_row({"CV_K", fmt(i.stats.cv_nnz_per_row, 3)});
    t.add_row({"working set", fmt_bytes(i.stats.working_set_bytes)});
    t.add_row({"entry size", fmt_bytes(i.file_bytes)});
    t.render(std::cout);
    if (i.index_width == IndexWidth::W64 &&
        width32_representable(i.rows, i.cols, i.nnz))
        std::cout << "note: entry stores 64-bit indices but the matrix is "
                     "32-bit representable; re-warm with --index-width "
                     "auto|32 to shrink it by about a third\n";

    // Freshness against the live source, when it is still reachable.
    const Result<SourceStamp> live = stat_source(i.source_path);
    if (!live.ok()) {
        std::cout << "source: unreachable (" << to_string(live.error().code)
                  << ")\n";
    } else if (live.value().size == i.source.size &&
               live.value().mtime_ns == i.source.mtime_ns) {
        std::cout << "source: unchanged (entry is fresh)\n";
    } else {
        std::cout << "source: modified since the entry was written "
                     "(entry is stale; next load re-parses)\n";
    }
    return 0;
}

int cmd_cache(const CliParser& cli) {
    if (cli.positionals().size() < 2) usage();
    const std::string verb = cli.positionals()[1];
    if (verb == "warm") return cmd_cache_warm(cli);
    if (verb == "inspect") return cmd_cache_inspect(cli);
    report_error(Error(ErrorCode::ValidationError,
                       "unknown cache verb '" + verb +
                           "' (expected warm or inspect)"));
    return kExitUsage;
}

/// One timed kernelbench leg.
struct KernelRow {
    std::string variant;
    double gflops = 0.0;
    double speedup = 0.0;
    EngineInfo info;
};

int cmd_kernelbench(const CliParser& cli) {
    const Result<AnyCsrMatrix> loaded = load_matrix(cli, 1);
    if (!loaded.ok()) {
        report_error(loaded.error());
        return 1;
    }
    const AnyCsrMatrix& m = loaded.value();
    const AnyCsrView view = m.view();
    const std::int64_t threads = cli.get_int("threads", 1);
    const std::int64_t iters = cli.get_int(
        "iters",
        std::max<std::int64_t>(
            3, (std::int64_t{1} << 26) / std::max<std::int64_t>(m.nnz(), 1)));

    std::vector<KernelVariant> variants;
    const std::string requested = cli.get("variant", "");
    if (!requested.empty() && requested != "all") {
        const Result<KernelVariant> parsed = parse_kernel_variant(requested);
        if (!parsed.ok()) {
            report_error(parsed.error());
            return kExitUsage;
        }
        variants.push_back(parsed.value());
    } else {
        variants = {KernelVariant::CsrScalar,   KernelVariant::CsrPrefetch,
                    KernelVariant::CsrSimd,     KernelVariant::SellScalar,
                    KernelVariant::SellSimd,    KernelVariant::CsrMerge,
                    KernelVariant::Auto};
    }

    std::vector<double> x(static_cast<std::size_t>(m.cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(m.rows()), 0.0);
    const double flops = 2.0 * static_cast<double>(m.nnz()) *
                         static_cast<double>(iters);

    // Baseline: the per-call spmv_csr_parallel entry point, at the loaded
    // matrix's physical width.
    const RowPartition partition(view, threads,
                                 PartitionPolicy::BalancedNonzeros);
    const auto run_baseline = [&] {
        view.visit([&](const auto& v) {
            spmv_csr_parallel(v, std::span<const double>(x),
                              std::span<double>(y), partition);
        });
    };
    run_baseline();  // warm-up
    Timer base_timer;
    for (std::int64_t i = 0; i < iters; ++i) run_baseline();
    const double base_seconds = base_timer.seconds();
    const double base_gflops =
        base_seconds > 0 ? flops / base_seconds / 1e9 : 0.0;

    std::vector<KernelRow> rows;
    for (const KernelVariant v : variants) {
        EngineOptions options;
        options.threads = threads;
        options.variant = v;
        options.prefetch_distance = cli.get_int("prefetch-distance", 0);
        AnyKernelEngine engine(view, options);
        engine.run_iterations(x, y, 1);  // warm-up
        Timer timer;
        engine.run_iterations(x, y, iters);
        const double seconds = timer.seconds();
        KernelRow row;
        row.variant = to_string(v);
        row.info = engine.info();
        row.gflops = seconds > 0 ? flops / seconds / 1e9 : 0.0;
        row.speedup = base_gflops > 0 ? row.gflops / base_gflops : 0.0;
        rows.push_back(std::move(row));
    }

    TextTable t({"variant", "resolved", "GFLOP/s", "vs baseline", "isa",
                 "prefetch d"});
    t.add_row({"spmv_csr_parallel", "-", fmt(base_gflops, 2), "1.00", "-",
               "-"});
    for (const auto& row : rows)
        t.add_row({row.variant, to_string(row.info.variant),
                   fmt(row.gflops, 2), fmt(row.speedup, 2),
                   simd::to_string(row.info.isa),
                   row.info.variant == KernelVariant::CsrPrefetch
                       ? std::to_string(row.info.prefetch_distance)
                       : "-"});
    t.render(std::cout, std::to_string(threads) + " thread(s), " +
                            std::to_string(iters) + " iterations, host " +
                            simd::to_string(simd::best().isa) + ":");

    const std::string report_path = cli.get("report", "");
    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out) {
            report_error(Error(ErrorCode::ResourceError,
                               "cannot write report '" + report_path + "'"));
            return kExitUsage;
        }
        const std::string format = to_lower(cli.get(
            "format", report_path.size() > 5 &&
                              report_path.substr(report_path.size() - 5) ==
                                  ".json"
                          ? "json"
                          : "csv"));
        if (format == "json") {
            out << "{\"threads\": " << threads << ", \"iters\": " << iters
                << ", \"baseline_gflops\": " << base_gflops
                << ", \"host_simd\": \"" << simd::to_string(simd::best().isa)
                << "\",\n \"variants\": [\n";
            for (std::size_t i = 0; i < rows.size(); ++i)
                out << "  {\"variant\": \"" << rows[i].variant
                    << "\", \"resolved\": \""
                    << to_string(rows[i].info.variant)
                    << "\", \"gflops\": " << rows[i].gflops
                    << ", \"speedup\": " << rows[i].speedup
                    << ", \"isa\": \"" << simd::to_string(rows[i].info.isa)
                    << "\", \"prefetch_distance\": "
                    << rows[i].info.prefetch_distance << "}"
                    << (i + 1 < rows.size() ? "," : "") << "\n";
            out << " ]}\n";
        } else {
            out << "variant,resolved,gflops,speedup,isa,prefetch_distance\n";
            for (const auto& row : rows)
                out << row.variant << ',' << to_string(row.info.variant)
                    << ',' << row.gflops << ',' << row.speedup << ','
                    << simd::to_string(row.info.isa) << ','
                    << row.info.prefetch_distance << "\n";
        }
        std::cout << "report written to " << report_path << " (" << format
                  << ")\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const CliParser cli(argc, argv);
    if (cli.positionals().empty()) usage();
    const std::string command = cli.positionals().front();
    try {
        if (command == "stats") return cmd_stats(cli);
        if (command == "classify") return cmd_classify(cli);
        if (command == "predict") return cmd_predict(cli);
        if (command == "simulate") return cmd_simulate(cli);
        if (command == "tune") return cmd_tune(cli);
        if (command == "convert") return cmd_convert(cli);
        if (command == "batch") return cmd_batch(cli);
        if (command == "serve") return cmd_serve(cli);
        if (command == "cache") return cmd_cache(cli);
        if (command == "kernelbench") return cmd_kernelbench(cli);
    } catch (const std::exception& e) {
        // Input errors are handled through the Status layer above; anything
        // landing here is a programmer error or resource exhaustion.
        std::cerr << "fatal: " << e.what() << "\n";
        return kExitUsage;
    }
    usage();
}
