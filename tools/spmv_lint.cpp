// spmv-lint — repo-specific static analysis for the spmvcache tree.
//
// Generic tooling cannot know this project's invariants; this pass can.
// It walks the given files/directories (.cpp/.hpp/.h) and enforces:
//
//   nodiscard-status        every function returning Status or Result<T>
//                           is declared [[nodiscard]] — a dropped Status
//                           is a swallowed input error
//   unchecked-result-value  no .value() on a Result/optional without an
//                           ok()/has_value() guard (or an
//                           SPMV_ASSIGN_OR_RETURN) still in scope: brace
//                           depth is tracked, so a guard buried in an
//                           already-closed block does not count —
//                           .value() on an error is a contract abort at
//                           best, UB in optional's case
//   int-loop-index          no raw int/short/int32_t loop variable whose
//                           bound is container-sized (size()/nnz/rows()/
//                           cols()) — nnz exceeds int32 on SuiteSparse-
//                           scale matrices and the wrap is silent
//   banned-call             no atoi/strtol-family/sprintf/gets/rand —
//                           unchecked parses and C randomness bypass the
//                           typed-error layer and the seeded PRNG
//   raw-new-delete          no raw new/delete — containers or RAII only
//   reinterpret-cast        no reinterpret_cast — use std::bit_cast or
//                           justify with a suppression
//   naked-mutex             no std::mutex/std::lock_guard/
//                           std::condition_variable outside util/ — use
//                           Mutex/MutexLock/CondVar from
//                           util/annotated_mutex.hpp so Clang's
//                           thread-safety analysis can see the lock
//   unknown-fault-point     every fault-point string literal handed to
//                           fault::maybe_throw/maybe_fail/arm/ScopedFault
//                           must appear in the central registry
//                           (util/fault_points.hpp) or carry the "t."
//                           test prefix — a typo'd point is armed but
//                           never fires. Active only with
//                           --fault-registry FILE.
//
// A finding on line N is suppressed by `// spmv-lint: allow(rule-id)` on
// line N or N-1. Diagnostics are file:line: [rule] message; --json FILE
// additionally writes a machine-readable report. Exit codes: 0 clean,
// 1 findings (or self-test failures), 2 usage/IO error.
//
// --self-test DIR lints every file under DIR as a known-answer corpus: a
// leading `// lint-expect: rule-id [rule-id...]` comment lists the rules
// the file MUST trigger; files without the marker MUST lint clean.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
    std::string file;
    std::size_t line = 0;  // 1-based
    std::string rule;
    std::string message;
};

struct FileText {
    std::vector<std::string> raw;       // as read (suppressions live here)
    std::vector<std::string> stripped;  // comments and string literals blanked
};

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comments, string literals, and char literals so the rule matchers
/// never fire on documentation or message text. Replacement preserves
/// column positions (each stripped char becomes a space).
std::vector<std::string> strip_non_code(const std::vector<std::string>& raw) {
    std::vector<std::string> out;
    out.reserve(raw.size());
    bool in_block_comment = false;
    for (const std::string& line : raw) {
        std::string s(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
            if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
                in_block_comment = true;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        ++i;
                    } else if (line[i] == quote) {
                        break;
                    }
                    ++i;
                }
                continue;
            }
            s[i] = c;
        }
        out.push_back(std::move(s));
    }
    return out;
}

/// True when `needle` occurs in `hay` delimited by non-identifier chars.
bool contains_word(std::string_view hay, std::string_view needle) {
    std::size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(hay[pos - 1]);
        const std::size_t after = pos + needle.size();
        const bool right_ok = after >= hay.size() || !is_ident_char(hay[after]);
        if (left_ok && right_ok) return true;
        pos += needle.size();
    }
    return false;
}

/// Word occurrence whose next non-space character is '(' — i.e. a call.
bool contains_call(std::string_view hay, std::string_view name) {
    std::size_t pos = 0;
    while ((pos = hay.find(name, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(hay[pos - 1]);
        std::size_t after = pos + name.size();
        while (after < hay.size() && hay[after] == ' ') ++after;
        if (left_ok && after < hay.size() && hay[after] == '(') return true;
        pos += name.size();
    }
    return false;
}

bool suppressed(const FileText& text, std::size_t line_index,
                std::string_view rule) {
    const std::string marker = "spmv-lint: allow(" + std::string(rule) + ")";
    if (text.raw[line_index].find(marker) != std::string::npos) return true;
    return line_index > 0 &&
           text.raw[line_index - 1].find(marker) != std::string::npos;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

bool starts_with_word(std::string_view s, std::string_view word) {
    return s.size() > word.size() && s.substr(0, word.size()) == word &&
           !is_ident_char(s[word.size()]);
}

// ---------------------------------------------------------------------------
// Rule: nodiscard-status
// ---------------------------------------------------------------------------

/// Consumes `Status` or `Result<...>` at the front of `s` (the `<...>`
/// must close on the same line); returns the remainder or nullopt.
std::string_view consume_status_type(std::string_view s, bool& matched) {
    matched = false;
    if (starts_with_word(s, "Status")) {
        matched = true;
        return trim(s.substr(6));
    }
    if (starts_with_word(s, "Result")) {
        std::string_view rest = trim(s.substr(6));
        if (rest.empty() || rest.front() != '<') return s;
        int depth = 0;
        for (std::size_t i = 0; i < rest.size(); ++i) {
            if (rest[i] == '<') ++depth;
            if (rest[i] == '>' && --depth == 0) {
                matched = true;
                return trim(rest.substr(i + 1));
            }
        }
    }
    return s;
}

void check_nodiscard_status(const std::string& file, const FileText& text,
                            std::vector<Finding>& findings) {
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        std::string_view s = trim(text.stripped[i]);
        bool saw_nodiscard = s.find("[[nodiscard]]") != std::string_view::npos;
        bool saw_friend = false;
        // Strip leading attributes and declaration qualifiers.
        for (bool progressed = true; progressed;) {
            progressed = false;
            if (s.rfind("[[", 0) == 0) {
                const auto close = s.find("]]");
                if (close == std::string_view::npos) break;
                s = trim(s.substr(close + 2));
                progressed = true;
            }
            for (std::string_view q :
                 {"static", "inline", "constexpr", "virtual", "explicit",
                  "friend"}) {
                if (starts_with_word(s, q)) {
                    if (q == "friend") saw_friend = true;
                    s = trim(s.substr(q.size()));
                    progressed = true;
                }
            }
        }
        // Attributes appertaining to a non-definition friend declaration
        // are ignored by the language, so requiring one there would only
        // produce an unfixable finding; the primary declaration is the
        // one that matters and is checked on its own line.
        if (saw_friend) continue;
        bool matched = false;
        std::string_view rest = consume_status_type(s, matched);
        if (!matched) continue;
        // Function name: identifier (possibly qualified) directly followed
        // by '('. `Status s = ...`, constructors (`Status(...)`) and
        // `return Status(...)` all fail this shape on purpose.
        std::size_t n = 0;
        while (n < rest.size() &&
               (is_ident_char(rest[n]) ||
                (rest[n] == ':' && n + 1 < rest.size() && rest[n + 1] == ':' &&
                 (++n, true))))
            ++n;
        if (n == 0 || n >= rest.size() || rest[n] != '(') continue;
        const std::string_view name = rest.substr(0, n);
        if (name == "operator") continue;
        if (saw_nodiscard) continue;
        if (i > 0 && text.stripped[i - 1].find("[[nodiscard]]") !=
                         std::string::npos)
            continue;
        if (suppressed(text, i, "nodiscard-status")) continue;
        findings.push_back(
            {file, i + 1, "nodiscard-status",
             "'" + std::string(name) +
                 "' returns Status/Result but is not [[nodiscard]]; a "
                 "dropped error is a swallowed input failure"});
    }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-result-value
// ---------------------------------------------------------------------------

/// Scope-aware: brace depth is tracked across the whole file, a guard
/// (`.ok()`, `has_value(`, `SPMV_ASSIGN_OR_RETURN`) is recorded with the
/// depth where it appears, and closing a block discards every guard that
/// lived inside it. So `if (!r.ok()) return;` covers the rest of its
/// enclosing block, but a guard buried in an already-closed block does
/// NOT excuse a later `.value()` — the pattern a line-window check
/// cannot tell apart.
void check_unchecked_value(const std::string& file, const FileText& text,
                           std::vector<Finding>& findings) {
    long depth = 0;
    std::vector<long> guard_depths;  // live guards, innermost last
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        // `SPMV_ASSIGN_OR_RETURN` lines are guarded by construction (the
        // macro both checks and unwraps).
        const bool assign_macro_line =
            s.find("SPMV_ASSIGN_OR_RETURN") != std::string::npos;
        for (std::size_t c = 0; c < s.size(); ++c) {
            const char ch = s[c];
            if (ch == '{') {
                ++depth;
                continue;
            }
            if (ch == '}') {
                --depth;
                while (!guard_depths.empty() && guard_depths.back() > depth)
                    guard_depths.pop_back();
                continue;
            }
            const std::string_view rest = std::string_view(s).substr(c);
            const bool boundary = c == 0 || !is_ident_char(s[c - 1]);
            if (rest.rfind(".ok()", 0) == 0 ||
                (boundary && (rest.rfind("has_value(", 0) == 0 ||
                              rest.rfind("SPMV_ASSIGN_OR_RETURN", 0) == 0))) {
                guard_depths.push_back(depth);
                continue;
            }
            if (rest.rfind(".value()", 0) != 0) continue;
            if (assign_macro_line || !guard_depths.empty()) continue;
            if (suppressed(text, i, "unchecked-result-value")) continue;
            findings.push_back(
                {file, i + 1, "unchecked-result-value",
                 ".value() without an ok()/has_value() guard still in "
                 "scope; use SPMV_ASSIGN_OR_RETURN or branch on ok() "
                 "first"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: int-loop-index
// ---------------------------------------------------------------------------

void check_int_loop_index(const std::string& file, const FileText& text,
                          std::vector<Finding>& findings) {
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        // Anchor on a word-boundary `for` whose next token is '('.
        std::size_t pos = 0, open = std::string::npos;
        while ((pos = s.find("for", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
            std::size_t k = pos + 3;
            while (k < s.size() && s[k] == ' ') ++k;
            if (left_ok && k < s.size() && s[k] == '(') {
                open = k;
                break;
            }
            pos += 3;
        }
        if (open == std::string::npos) continue;
        const std::size_t semi1 = s.find(';', open);
        if (semi1 == std::string::npos) continue;
        const std::size_t semi2 = s.find(';', semi1 + 1);
        const std::string_view init =
            trim(std::string_view(s).substr(open + 1, semi1 - open - 1));
        // Condition may wrap to the next line; take what is visible.
        const std::string_view cond =
            semi2 == std::string::npos
                ? trim(std::string_view(s).substr(semi1 + 1))
                : trim(std::string_view(s).substr(semi1 + 1,
                                                  semi2 - semi1 - 1));
        const bool narrow_type =
            starts_with_word(init, "int") ||
            starts_with_word(init, "unsigned") ||
            starts_with_word(init, "short") ||
            contains_word(init, "int32_t") || contains_word(init, "int16_t");
        if (!narrow_type) continue;
        const bool sized_bound =
            cond.find("size()") != std::string_view::npos ||
            cond.find("rows()") != std::string_view::npos ||
            cond.find("cols()") != std::string_view::npos ||
            contains_word(cond, "nnz") ||
            cond.find("nnz()") != std::string_view::npos;
        if (!sized_bound) continue;
        if (suppressed(text, i, "int-loop-index")) continue;
        findings.push_back(
            {file, i + 1, "int-loop-index",
             "raw int-width loop variable over a container-sized bound; "
             "use std::int64_t or std::size_t (nnz exceeds int32 at "
             "SuiteSparse scale)"});
    }
}

// ---------------------------------------------------------------------------
// Rule: banned-call
// ---------------------------------------------------------------------------

void check_banned_calls(const std::string& file, const FileText& text,
                        std::vector<Finding>& findings) {
    struct Banned {
        std::string_view name;
        std::string_view why;
    };
    static constexpr Banned kBanned[] = {
        {"atoi", "no error reporting; use parse_int/std::from_chars"},
        {"atol", "no error reporting; use parse_int/std::from_chars"},
        {"atoll", "no error reporting; use parse_int/std::from_chars"},
        {"strtol", "unchecked parse; use parse_int/std::from_chars"},
        {"strtoll", "unchecked parse; use parse_int/std::from_chars"},
        {"strtoul", "unchecked parse; use parse_int/std::from_chars"},
        {"strtoull", "unchecked parse; use parse_int/std::from_chars"},
        {"strtod", "unchecked parse; use parse_double/std::from_chars"},
        {"strtof", "unchecked parse; use parse_double/std::from_chars"},
        {"sprintf", "unbounded write; use snprintf or std::format"},
        {"vsprintf", "unbounded write; use vsnprintf"},
        {"gets", "unbounded read; use bounded getline"},
        {"rand", "unseeded global state; use util/prng.hpp"},
        {"srand", "unseeded global state; use util/prng.hpp"},
    };
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        for (const Banned& b : kBanned) {
            if (!contains_call(s, b.name)) continue;
            if (suppressed(text, i, "banned-call")) continue;
            findings.push_back({file, i + 1, "banned-call",
                                "call to '" + std::string(b.name) + "': " +
                                    std::string(b.why)});
        }
    }
}

// ---------------------------------------------------------------------------
// Rules: raw-new-delete, reinterpret-cast
// ---------------------------------------------------------------------------

void check_raw_new_delete(const std::string& file, const FileText& text,
                          std::vector<Finding>& findings) {
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        bool hit = false;
        std::size_t pos = 0;
        while (!hit && (pos = s.find("new", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
            std::size_t after = pos + 3;
            // `new X`, `new (place) X`, `new X[n]` — all raw.
            if (left_ok && after < s.size() &&
                (s[after] == ' ' || s[after] == '(')) {
                std::size_t k = after;
                while (k < s.size() && s[k] == ' ') ++k;
                if (k < s.size() &&
                    (is_ident_char(s[k]) || s[k] == '(' || s[k] == ':'))
                    hit = true;
            }
            pos += 3;
        }
        pos = 0;
        while (!hit && (pos = s.find("delete", pos)) != std::string::npos) {
            const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
            const std::size_t after = pos + 6;
            const bool right_ok = after >= s.size() || !is_ident_char(s[after]);
            if (left_ok && right_ok) {
                // `= delete` (deleted member) is declaration syntax, fine.
                std::string_view before = trim(std::string_view(s).substr(0, pos));
                const bool deleted_member =
                    !before.empty() && before.back() == '=';
                std::string_view rest = trim(std::string_view(s).substr(after));
                if (!deleted_member && !rest.empty() && rest.front() != ';')
                    hit = true;
            }
            pos += 6;
        }
        if (!hit) continue;
        if (suppressed(text, i, "raw-new-delete")) continue;
        findings.push_back({file, i + 1, "raw-new-delete",
                            "raw new/delete; use std::vector, "
                            "std::make_unique, or an RAII wrapper"});
    }
}

void check_reinterpret_cast(const std::string& file, const FileText& text,
                            std::vector<Finding>& findings) {
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        if (!contains_word(text.stripped[i], "reinterpret_cast")) continue;
        if (suppressed(text, i, "reinterpret-cast")) continue;
        findings.push_back({file, i + 1, "reinterpret-cast",
                            "reinterpret_cast defeats the type system; use "
                            "std::bit_cast or suppress with a justification"});
    }
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

/// std primitives are invisible to Clang's thread-safety analysis; the
/// annotated wrappers in util/annotated_mutex.hpp are not. Only util/
/// (where the wrappers themselves live) may touch the raw types.
void check_naked_mutex(const std::string& file, const FileText& text,
                       std::vector<Finding>& findings) {
    if (file.find("util/") != std::string::npos) return;
    struct Naked {
        std::string_view token;
        std::string_view instead;
    };
    static constexpr Naked kNaked[] = {
        {"std::mutex", "Mutex"},
        {"std::recursive_mutex", "Mutex (and remove the reentrancy)"},
        {"std::timed_mutex", "Mutex"},
        {"std::shared_mutex", "Mutex"},
        {"std::lock_guard", "MutexLock"},
        {"std::unique_lock", "MutexLock"},
        {"std::scoped_lock", "MutexLock"},
        {"std::condition_variable", "CondVar"},
        {"std::condition_variable_any", "CondVar"},
    };
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        for (const Naked& n : kNaked) {
            std::size_t pos = 0;
            bool hit = false;
            while (!hit &&
                   (pos = s.find(n.token, pos)) != std::string::npos) {
                const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
                const std::size_t after = pos + n.token.size();
                const bool right_ok =
                    after >= s.size() || !is_ident_char(s[after]);
                if (left_ok && right_ok) hit = true;
                pos += n.token.size();
            }
            if (!hit) continue;
            if (suppressed(text, i, "naked-mutex")) continue;
            findings.push_back(
                {file, i + 1, "naked-mutex",
                 "naked " + std::string(n.token) + " outside util/; use " +
                     std::string(n.instead) +
                     " from util/annotated_mutex.hpp so the thread-safety "
                     "analysis can see the lock"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unknown-fault-point
// ---------------------------------------------------------------------------

/// Extracts the first double-quoted literal after column `from` of the RAW
/// line (the stripped copy blanks literals); nullopt when the next
/// non-space run is not a literal (e.g. a variable argument).
std::optional<std::string> first_string_literal(const std::string& raw,
                                                std::size_t from) {
    std::size_t i = from;
    while (i < raw.size() && raw[i] != '"') {
        if (raw[i] == ')' || raw[i] == ';') return std::nullopt;
        ++i;
    }
    if (i >= raw.size()) return std::nullopt;
    std::string out;
    for (++i; i < raw.size() && raw[i] != '"'; ++i) {
        if (raw[i] == '\\' && i + 1 < raw.size()) ++i;
        out += raw[i];
    }
    return out;
}

/// Every fault-point literal handed to the fault harness must be in the
/// central registry (util/fault_points.hpp) or carry the "t." test
/// prefix; a typo'd point silently never fires. Only runs when the
/// caller loaded a registry via --fault-registry.
void check_fault_points(const std::string& file, const FileText& text,
                        const std::vector<std::string>& registry,
                        std::vector<Finding>& findings) {
    if (registry.empty()) return;
    static constexpr std::string_view kSinks[] = {"maybe_throw",
                                                  "maybe_fail", "arm",
                                                  "ScopedFault"};
    for (std::size_t i = 0; i < text.stripped.size(); ++i) {
        const std::string& s = text.stripped[i];
        for (const std::string_view name : kSinks) {
            std::size_t pos = 0;
            while ((pos = s.find(name, pos)) != std::string::npos) {
                const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
                std::size_t k = pos + name.size();
                pos += name.size();
                if (!left_ok) continue;
                // Accept `name(` and `ScopedFault guard(` — an optional
                // variable name between the type and the open paren.
                while (k < s.size() && s[k] == ' ') ++k;
                if (k < s.size() && is_ident_char(s[k])) {
                    while (k < s.size() && is_ident_char(s[k])) ++k;
                    while (k < s.size() && s[k] == ' ') ++k;
                }
                if (k >= s.size() || s[k] != '(') continue;
                const std::optional<std::string> point =
                    first_string_literal(text.raw[i], k);
                if (!point || point->rfind("t.", 0) == 0) continue;
                if (std::find(registry.begin(), registry.end(), *point) !=
                    registry.end())
                    continue;
                if (suppressed(text, i, "unknown-fault-point")) continue;
                findings.push_back(
                    {file, i + 1, "unknown-fault-point",
                     "fault point '" + *point +
                         "' is not in util/fault_points.hpp; register it "
                         "there or use a 't.'-prefixed test point"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool lint_file(const fs::path& path,
               const std::vector<std::string>& fault_registry,
               std::vector<Finding>& findings) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "spmv-lint: cannot read " << path << "\n";
        return false;
    }
    FileText text;
    for (std::string line; std::getline(in, line);)
        text.raw.push_back(std::move(line));
    text.stripped = strip_non_code(text.raw);
    const std::string name = path.generic_string();
    check_nodiscard_status(name, text, findings);
    check_unchecked_value(name, text, findings);
    check_int_loop_index(name, text, findings);
    check_banned_calls(name, text, findings);
    check_raw_new_delete(name, text, findings);
    check_reinterpret_cast(name, text, findings);
    check_naked_mutex(name, text, findings);
    check_fault_points(name, text, fault_registry, findings);
    return true;
}

/// Loads the fault-point registry: every double-quoted literal in the
/// code of `path` (comments excluded) is a registered point name.
std::optional<std::vector<std::string>> load_fault_registry(
    const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "spmv-lint: cannot read fault registry " << path
                  << "\n";
        return std::nullopt;
    }
    std::vector<std::string> points;
    for (std::string line; std::getline(in, line);) {
        const std::size_t comment = line.find("//");
        if (comment != std::string::npos) line.resize(comment);
        std::size_t pos = 0;
        while ((pos = line.find('"', pos)) != std::string::npos) {
            const std::optional<std::string> lit =
                first_string_literal(line, pos);
            if (!lit) break;
            points.push_back(*lit);
            pos = line.find('"', pos + 1);  // skip to the closing quote
            if (pos == std::string::npos) break;
            ++pos;
        }
    }
    if (points.empty()) {
        std::cerr << "spmv-lint: fault registry " << path
                  << " contains no point names\n";
        return std::nullopt;
    }
    return points;
}

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool collect_inputs(const std::vector<std::string>& args,
                    std::vector<fs::path>& files) {
    for (const std::string& a : args) {
        std::error_code ec;
        if (fs::is_directory(a, ec)) {
            for (auto it = fs::recursive_directory_iterator(a, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_regular_file(ec) && lintable(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(a, ec)) {
            files.push_back(a);
        } else {
            std::cerr << "spmv-lint: no such file or directory: " << a << "\n";
            return false;
        }
    }
    std::sort(files.begin(), files.end());
    return true;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

bool write_json_report(const std::string& path,
                       const std::vector<Finding>& findings,
                       std::size_t files_scanned) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "spmv-lint: cannot write " << path << "\n";
        return false;
    }
    out << "{\n  \"files_scanned\": " << files_scanned
        << ",\n  \"finding_count\": " << findings.size()
        << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        out << (i ? ",\n" : "\n") << "    {\"file\": \"" << json_escape(f.file)
            << "\", \"line\": " << f.line << ", \"rule\": \""
            << json_escape(f.rule) << "\", \"message\": \""
            << json_escape(f.message) << "\"}";
    }
    out << "\n  ]\n}\n";
    return static_cast<bool>(out);
}

/// Known-answer corpus mode: see file header.
int run_self_test(const std::string& dir,
                  const std::vector<std::string>& fault_registry) {
    std::vector<fs::path> files;
    if (!collect_inputs({dir}, files)) return 2;
    if (files.empty()) {
        std::cerr << "spmv-lint: self-test corpus " << dir << " is empty\n";
        return 2;
    }
    int failures = 0;
    for (const fs::path& p : files) {
        std::vector<Finding> findings;
        if (!lint_file(p, fault_registry, findings)) return 2;
        std::ifstream in(p);
        std::string first_line;
        std::getline(in, first_line);
        const std::string marker = "// lint-expect:";
        std::vector<std::string> expected;
        if (first_line.rfind(marker, 0) == 0) {
            std::istringstream is(first_line.substr(marker.size()));
            for (std::string rule; is >> rule;) expected.push_back(rule);
        }
        bool ok = true;
        for (const std::string& rule : expected) {
            const bool present = std::any_of(
                findings.begin(), findings.end(),
                [&rule](const Finding& f) { return f.rule == rule; });
            if (!present) {
                std::cout << p.generic_string() << ": FAIL: expected rule '"
                          << rule << "' did not fire\n";
                ok = false;
            }
        }
        if (expected.empty() && !findings.empty()) {
            ok = false;
            for (const Finding& f : findings)
                std::cout << p.generic_string() << ": FAIL: clean file "
                          << "raised [" << f.rule << "] at line " << f.line
                          << "\n";
        }
        if (ok)
            std::cout << p.generic_string() << ": ok ("
                      << (expected.empty()
                              ? "clean"
                              : std::to_string(findings.size()) + " findings")
                      << ")\n";
        else
            ++failures;
    }
    std::cout << "spmv-lint self-test: " << (files.size() - static_cast<std::size_t>(failures))
              << "/" << files.size() << " corpus files behaved\n";
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> paths;
    std::string json_path;
    std::string self_test_dir;
    std::string fault_registry_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--self-test" && i + 1 < argc) {
            self_test_dir = argv[++i];
        } else if (arg == "--fault-registry" && i + 1 < argc) {
            fault_registry_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: spmv_lint [--json REPORT] "
                         "[--fault-registry FILE] [--self-test DIR] "
                         "<file|dir>...\n";
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "spmv-lint: unknown option " << arg << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    std::vector<std::string> fault_registry;
    if (!fault_registry_path.empty()) {
        std::optional<std::vector<std::string>> loaded =
            load_fault_registry(fault_registry_path);
        if (!loaded) return 2;
        fault_registry = std::move(*loaded);
    }
    if (!self_test_dir.empty())
        return run_self_test(self_test_dir, fault_registry);
    if (paths.empty()) {
        std::cerr << "usage: spmv_lint [--json REPORT] "
                     "[--fault-registry FILE] [--self-test DIR] "
                     "<file|dir>...\n";
        return 2;
    }
    std::vector<fs::path> files;
    if (!collect_inputs(paths, files)) return 2;
    std::vector<Finding> findings;
    for (const fs::path& p : files)
        if (!lint_file(p, fault_registry, findings)) return 2;
    for (const Finding& f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (!json_path.empty() &&
        !write_json_report(json_path, findings, files.size()))
        return 2;
    std::cout << "spmv-lint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0 : 1;
}
