// Unit tests for src/trace: the Fig. 1 layout, trace generation from the
// sparsity pattern, round-robin interleaving and the MCS-lock recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "sparse/coo.hpp"
#include "sparse/gen/banded.hpp"
#include "trace/layout.hpp"
#include "trace/spmv_trace.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

CsrMatrix figure1_matrix() {
    // Fig. 1a: 4x4 with 7 nonzeros.
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0);
    coo.add(0, 2, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(2, 2, 1.0);
    coo.add(2, 3, 1.0);
    coo.add(3, 1, 1.0);
    coo.add(3, 3, 1.0);
    return std::move(coo).to_csr();
}

TEST(Layout, MatchesFigure1cWith16ByteLines) {
    // Fig. 1c: 16-byte lines; x[0-1]=line0, x[2-3]=line1, y lines 2-3,
    // a lines 4-7, colidx lines 8-9, rowptr lines 10-12.
    const SpmvLayout layout(4, 4, 7, 16);
    EXPECT_EQ(layout.x_line(0), 0u);
    EXPECT_EQ(layout.x_line(1), 0u);
    EXPECT_EQ(layout.x_line(2), 1u);
    EXPECT_EQ(layout.y_line(0), 2u);
    EXPECT_EQ(layout.y_line(3), 3u);
    EXPECT_EQ(layout.values_line(0), 4u);
    EXPECT_EQ(layout.values_line(1), 4u);
    EXPECT_EQ(layout.values_line(2), 5u);
    EXPECT_EQ(layout.values_line(6), 7u);
    EXPECT_EQ(layout.colidx_line(0), 8u);
    EXPECT_EQ(layout.colidx_line(3), 8u);
    EXPECT_EQ(layout.colidx_line(4), 9u);
    EXPECT_EQ(layout.rowptr_line(0), 10u);
    EXPECT_EQ(layout.rowptr_line(2), 11u);
    EXPECT_EQ(layout.rowptr_line(4), 12u);
    EXPECT_EQ(layout.total_lines(), 13u);
}

TEST(Layout, ObjectOfInvertsLineMapping) {
    const SpmvLayout layout(4, 4, 7, 16);
    EXPECT_EQ(layout.object_of(0), DataObject::X);
    EXPECT_EQ(layout.object_of(2), DataObject::Y);
    EXPECT_EQ(layout.object_of(4), DataObject::Values);
    EXPECT_EQ(layout.object_of(8), DataObject::ColIdx);
    EXPECT_EQ(layout.object_of(12), DataObject::RowPtr);
}

TEST(Layout, A64fxLineSize) {
    const SpmvLayout layout(1000, 1000, 10000, 256);
    // 32 8-byte elements per line, 64 4-byte elements per line.
    EXPECT_EQ(layout.lines_of(DataObject::X), (1000u * 8 + 255) / 256);
    EXPECT_EQ(layout.lines_of(DataObject::ColIdx), (10000u * 4 + 255) / 256);
    EXPECT_EQ(layout.x_line(31), layout.x_line(0));
    EXPECT_NE(layout.x_line(32), layout.x_line(0));
}

TEST(Trace, LengthFormulaHolds) {
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    const auto trace = collect_spmv_trace(m, layout, TraceConfig{1});
    EXPECT_EQ(trace.size(), spmv_trace_length(m.rows(), m.nnz()));
    EXPECT_EQ(trace.size(), 4u * 4 + 3u * 7);
}

TEST(Trace, SequentialOrderMatchesListing1) {
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    const auto trace = collect_spmv_trace(m, layout, TraceConfig{1});

    // Row 0 references: rowptr[0], rowptr[1], then per nonzero a, colidx,
    // x[colidx], then the y[0] read-modify-write.
    ASSERT_GE(trace.size(), 10u);
    EXPECT_EQ(trace[0].object, DataObject::RowPtr);
    EXPECT_EQ(trace[0].line, layout.rowptr_line(0));
    EXPECT_EQ(trace[1].object, DataObject::RowPtr);
    EXPECT_EQ(trace[2].object, DataObject::Values);
    EXPECT_EQ(trace[3].object, DataObject::ColIdx);
    EXPECT_EQ(trace[4].object, DataObject::X);
    EXPECT_EQ(trace[4].line, layout.x_line(1));  // colidx[0] == 1
    EXPECT_EQ(trace[5].object, DataObject::Values);
    EXPECT_EQ(trace[7].object, DataObject::X);
    EXPECT_EQ(trace[7].line, layout.x_line(2));  // colidx[1] == 2
    EXPECT_EQ(trace[8].object, DataObject::Y);
    EXPECT_FALSE(trace[8].is_write);
    EXPECT_EQ(trace[9].object, DataObject::Y);
    EXPECT_TRUE(trace[9].is_write);
}

TEST(Trace, OnlyYReferencesAreWrites) {
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    for (const auto& ref : collect_spmv_trace(m, layout, TraceConfig{1})) {
        if (ref.is_write) {
            EXPECT_EQ(ref.object, DataObject::Y);
        }
    }
}

TEST(Trace, ParallelPreservesPerThreadSubsequences) {
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    const auto sequential = collect_spmv_trace(m, layout, TraceConfig{1});
    const auto parallel = collect_spmv_trace(m, layout, TraceConfig{2});
    ASSERT_EQ(parallel.size(), sequential.size());

    // Thread t's subsequence equals its rows' segment of the sequential
    // trace (thread 0 owns rows [0,2), thread 1 rows [2,4), and the
    // sequential trace visits rows in order).
    std::vector<std::vector<std::uint64_t>> sub(2);
    for (const auto& ref : parallel) sub[ref.thread].push_back(ref.line);
    const std::size_t split = sub[0].size();
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        const auto& expected =
            i < split ? sub[0][i] : sub[1][i - split];
        EXPECT_EQ(sequential[i].line, expected) << "position " << i;
    }

    // Same total multiset of lines as sequential.
    auto lines_of = [](const std::vector<MemRef>& t) {
        std::vector<std::uint64_t> l;
        l.reserve(t.size());
        for (const auto& r : t) l.push_back(r.line);
        std::sort(l.begin(), l.end());
        return l;
    };
    EXPECT_EQ(lines_of(parallel), lines_of(sequential));
}

TEST(Trace, RoundRobinInterleavesAtQuantumGranularity) {
    // With 2 threads and quantum 1, thread turns alternate while both are
    // active: the first reference of thread 1 appears before thread 0 has
    // finished all of its rows.
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    const auto trace = collect_spmv_trace(m, layout, TraceConfig{2});
    std::size_t first_t1 = trace.size(), last_t0 = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].thread == 1 && first_t1 == trace.size()) first_t1 = i;
        if (trace[i].thread == 0) last_t0 = i;
    }
    EXPECT_LT(first_t1, last_t0);
}

TEST(Trace, EmptyRowsEmitHeaderAndFooter) {
    CsrBuilder b(3, 3);
    b.push(1, 1, 1.0);
    const CsrMatrix m = std::move(b).finish();
    const SpmvLayout layout(m, 16);
    const auto trace = collect_spmv_trace(m, layout, TraceConfig{1});
    EXPECT_EQ(trace.size(), spmv_trace_length(3, 1));
    // Rows 0 and 2 contribute rowptr+y refs only.
    std::map<DataObject, int> count;
    for (const auto& ref : trace) ++count[ref.object];
    EXPECT_EQ(count[DataObject::RowPtr], 6);
    EXPECT_EQ(count[DataObject::Y], 6);
    EXPECT_EQ(count[DataObject::X], 1);
}

TEST(Trace, McsRecorderProducesValidInterleaving) {
    const CsrMatrix m = figure1_matrix();
    const SpmvLayout layout(m, 16);
    const auto trace = record_spmv_trace_mcs(m, layout, 3, 4);
    EXPECT_EQ(trace.size(), spmv_trace_length(m.rows(), m.nnz()));

    // Each thread's subsequence must be in program order: recompute the
    // expected per-thread reference streams and compare.
    const TraceConfig cfg{3};
    std::map<std::uint32_t, std::vector<std::uint64_t>> expected;
    generate_spmv_trace(m, layout, cfg, [&](const MemRef& ref) {
        expected[ref.thread].push_back(ref.line);
    });
    std::map<std::uint32_t, std::vector<std::uint64_t>> actual;
    for (const auto& ref : trace) actual[ref.thread].push_back(ref.line);
    EXPECT_EQ(actual, expected);
}

// ---- Segment-filtered generation (host-parallel model sharding) --------

/// Sortable projection of a reference for multiset comparison.
using RefKey = std::tuple<std::uint64_t, std::uint32_t, int, bool, bool>;

RefKey key_of(const MemRef& r) {
    return {r.line, r.thread, static_cast<int>(r.object), r.is_write,
            r.is_prefetch};
}

TEST(TraceSegment, EqualsFilteredFullTrace) {
    // The strongest form of the sharding property: each segment's stream
    // is *elementwise equal* to the full trace filtered to that segment's
    // threads — same references, same order. Permutation and per-thread
    // subsequence preservation both follow.
    const CsrMatrix m = gen::banded(97, 5, 11, 3);
    const SpmvLayout layout(m, 64);
    for (const std::int64_t threads : {1, 2, 3, 5, 8}) {
        for (const std::int64_t quantum : {1, 2, 7}) {
            for (const std::int64_t cpn : {1, 2, 3}) {
                const TraceConfig cfg{threads, PartitionPolicy::BalancedRows,
                                      quantum};
                const auto full = collect_spmv_trace(m, layout, cfg);
                const std::int64_t segments =
                    trace_segment_count(threads, cpn);
                std::size_t total = 0;
                for (std::int64_t s = 0; s < segments; ++s) {
                    std::vector<MemRef> expected;
                    for (const auto& ref : full)
                        if (static_cast<std::int64_t>(ref.thread) / cpn == s)
                            expected.push_back(ref);
                    const auto actual = collect_spmv_trace_segment(
                        m, layout, cfg, cpn, s);
                    ASSERT_EQ(actual.size(), expected.size())
                        << "threads=" << threads << " quantum=" << quantum
                        << " cpn=" << cpn << " segment=" << s;
                    for (std::size_t i = 0; i < actual.size(); ++i)
                        ASSERT_TRUE(actual[i] == expected[i])
                            << "threads=" << threads << " quantum=" << quantum
                            << " cpn=" << cpn << " segment=" << s
                            << " position=" << i;
                    total += actual.size();
                }
                EXPECT_EQ(total, full.size());
            }
        }
    }
}

TEST(TraceSegment, ConcatenationIsPermutationForRandomConfigs) {
    // Property test over random quantum/thread/cpn configurations: the
    // concatenation over all segments is a permutation of the full trace,
    // per-thread subsequences are preserved, and per-shard reference
    // counts sum to spmv_trace_length(rows, nnz).
    const CsrMatrix m = gen::banded(211, 7, 19, 5);
    const SpmvLayout layout(m, 128);
    Xoshiro256 rng(2026);
    for (int trial = 0; trial < 24; ++trial) {
        const auto threads =
            static_cast<std::int64_t>(1 + rng.bounded(12));
        const auto quantum =
            static_cast<std::int64_t>(1 + rng.bounded(9));
        const auto cpn = static_cast<std::int64_t>(1 + rng.bounded(5));
        const auto policy = rng.bounded(2) == 0
                                ? PartitionPolicy::BalancedRows
                                : PartitionPolicy::BalancedNonzeros;
        const TraceConfig cfg{threads, policy, quantum};
        const auto full = collect_spmv_trace(m, layout, cfg);
        const std::int64_t segments = trace_segment_count(threads, cpn);

        const auto lengths = spmv_segment_lengths(m, cfg, cpn);
        ASSERT_EQ(lengths.size(), static_cast<std::size_t>(segments));
        std::uint64_t length_sum = 0;

        std::vector<RefKey> concat_keys;
        std::map<std::uint32_t, std::vector<std::uint64_t>> sub_segment;
        for (std::int64_t s = 0; s < segments; ++s) {
            const auto part =
                collect_spmv_trace_segment(m, layout, cfg, cpn, s);
            EXPECT_EQ(part.size(), lengths[static_cast<std::size_t>(s)])
                << "trial " << trial << " segment " << s;
            length_sum += lengths[static_cast<std::size_t>(s)];
            for (const auto& ref : part) {
                concat_keys.push_back(key_of(ref));
                sub_segment[ref.thread].push_back(ref.line);
            }
        }
        EXPECT_EQ(length_sum, spmv_trace_length(m.rows(), m.nnz()))
            << "trial " << trial;

        // Permutation of the full trace.
        std::vector<RefKey> full_keys;
        full_keys.reserve(full.size());
        for (const auto& ref : full) full_keys.push_back(key_of(ref));
        std::sort(concat_keys.begin(), concat_keys.end());
        std::sort(full_keys.begin(), full_keys.end());
        EXPECT_EQ(concat_keys, full_keys) << "trial " << trial;

        // Per-thread subsequences preserved.
        std::map<std::uint32_t, std::vector<std::uint64_t>> sub_full;
        for (const auto& ref : full) sub_full[ref.thread].push_back(ref.line);
        EXPECT_EQ(sub_segment, sub_full) << "trial " << trial;
    }
}

TEST(Trace, SectorPolicyAssignment) {
    EXPECT_EQ(sector_of(DataObject::Values, SectorPolicy::IsolateMatrix), 1);
    EXPECT_EQ(sector_of(DataObject::ColIdx, SectorPolicy::IsolateMatrix), 1);
    EXPECT_EQ(sector_of(DataObject::X, SectorPolicy::IsolateMatrix), 0);
    EXPECT_EQ(sector_of(DataObject::Y, SectorPolicy::IsolateMatrix), 0);
    EXPECT_EQ(sector_of(DataObject::RowPtr, SectorPolicy::IsolateMatrix), 0);
    for (int o = 0; o < kDataObjectCount; ++o)
        EXPECT_EQ(sector_of(static_cast<DataObject>(o),
                            SectorPolicy::NoPartition),
                  0);
    EXPECT_EQ(sector_of(DataObject::Y, SectorPolicy::IsolateMatrixRowptrY),
              1);
    EXPECT_EQ(sector_of(DataObject::X, SectorPolicy::IsolateX), 0);
    EXPECT_EQ(sector_of(DataObject::Y, SectorPolicy::IsolateX), 1);
}

}  // namespace
}  // namespace spmvcache
