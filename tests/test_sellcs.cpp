// Tests for the SELL-C-sigma format, kernel and trace model (the paper's
// future-work extension).
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/hierarchy.hpp"
#include "kernels/spmv.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/sellcs.hpp"
#include "trace/sell_trace.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> v(n);
    for (auto& e : v) e = rng.uniform(-1.0, 1.0);
    return v;
}

class SellConversion
    : public testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(SellConversion, SpmvMatchesCsrReference) {
    const auto [c, sigma] = GetParam();
    const CsrMatrix csr = gen::random_variable_rows(301, 301, 7.0, 1.5, 3);
    const SellCSigmaMatrix sell(csr, c, sigma);
    EXPECT_EQ(sell.nnz(), csr.nnz());

    const auto x = random_vector(301, 1);
    auto y_csr = random_vector(301, 2);
    auto y_sell = y_csr;
    spmv_csr(csr, x, y_csr);
    spmv_sell(sell, x, y_sell);
    for (std::size_t i = 0; i < y_csr.size(); ++i)
        EXPECT_NEAR(y_sell[i], y_csr[i], 1e-12) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SellConversion,
    testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 1),
                    std::make_tuple(8, 8), std::make_tuple(8, 64),
                    std::make_tuple(16, 128), std::make_tuple(32, 32)));

TEST(Sell, PermutationIsValid) {
    const CsrMatrix csr = gen::random_variable_rows(100, 100, 5.0, 1.0, 7);
    const SellCSigmaMatrix sell(csr, 8, 32);
    std::vector<bool> seen(100, false);
    for (const auto p : sell.perm()) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, 100);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
        seen[static_cast<std::size_t>(p)] = true;
    }
}

TEST(Sell, SigmaSortingReducesPadding) {
    // Skewed row lengths: without sorting (sigma = 1) chunks pad to their
    // longest member; sigma sorting groups similar lengths together.
    const CsrMatrix csr =
        gen::random_variable_rows(4096, 4096, 8.0, 2.0, 11);
    const SellCSigmaMatrix unsorted(csr, 32, 1);
    const SellCSigmaMatrix sorted(csr, 32, 512);
    EXPECT_GT(unsorted.padding_factor(), 1.05);
    EXPECT_LT(sorted.padding_factor(), unsorted.padding_factor());
}

TEST(Sell, UniformRowsNeedNoPadding) {
    const CsrMatrix csr = gen::random_uniform(256, 256, 12, 5);
    const SellCSigmaMatrix sell(csr, 8, 1);
    EXPECT_DOUBLE_EQ(sell.padding_factor(), 1.0);
    EXPECT_EQ(sell.padded_nnz(), csr.nnz());
}

TEST(Sell, ChunkGeometryConsistent) {
    const CsrMatrix csr = gen::random_variable_rows(100, 100, 6.0, 1.0, 9);
    const SellCSigmaMatrix sell(csr, 8, 8);
    EXPECT_EQ(sell.chunks(), (100 + 7) / 8);
    std::int64_t total = 0;
    for (std::int64_t k = 0; k < sell.chunks(); ++k) {
        EXPECT_EQ(sell.chunk_offset(k), total);
        total += sell.chunk_width(k) * 8;
    }
    EXPECT_EQ(total, sell.padded_nnz());
}

TEST(Sell, RowsNotMultipleOfChunkHeight) {
    const CsrMatrix csr = gen::stencil_2d_5pt(5, 5);  // 25 rows, C = 8
    const SellCSigmaMatrix sell(csr, 8, 1);
    const auto x = random_vector(25, 3);
    std::vector<double> y_csr(25, 0.0), y_sell(25, 0.0);
    spmv_csr(csr, x, y_csr);
    spmv_sell(sell, x, y_sell);
    for (std::size_t i = 0; i < 25; ++i)
        EXPECT_NEAR(y_sell[i], y_csr[i], 1e-12);
}

/// Ragged worst case: interleaved empty and long rows, so chunks mix
/// length-0 lanes with full lanes and every chunk carries padding.
CsrMatrix ragged_matrix(std::int64_t rows, std::int64_t cols) {
    CsrBuilder b(rows, cols);
    Xoshiro256 rng(29);
    for (std::int64_t r = 0; r < rows; ++r) {
        if (r % 3 == 0) continue;  // every third row has no nonzeros
        const std::int64_t len = r % 7 == 1 ? 19 : 1 + r % 4;
        std::int64_t col = static_cast<std::int64_t>(rng.uniform() *
                                                     static_cast<double>(
                                                         cols / 2));
        for (std::int64_t j = 0; j < len && col < cols; ++j) {
            b.push(r, static_cast<std::int32_t>(col),
                   rng.uniform(-1.0, 1.0));
            col += 1 + static_cast<std::int64_t>(rng.uniform() * 3.0);
        }
    }
    return std::move(b).finish();
}

class SellRagged : public testing::TestWithParam<
                       std::tuple<std::int64_t, std::int64_t, std::int64_t>> {
};

TEST_P(SellRagged, MatchesCsrWithEmptyRowsAndPartialChunks) {
    const auto [rows, c, sigma] = GetParam();
    const CsrMatrix csr = ragged_matrix(rows, rows);
    const SellCSigmaMatrix sell(csr, c, sigma);
    ASSERT_EQ(sell.nnz(), csr.nnz());
    // Zero-length rows pad their whole lane; the padding columns must be
    // harmless (they index an existing x entry with value 0).
    EXPECT_GE(sell.padding_factor(), 1.0);

    const auto x = random_vector(static_cast<std::size_t>(rows), 5);
    auto y_csr = random_vector(static_cast<std::size_t>(rows), 6);
    auto y_sell = y_csr;
    spmv_csr(csr, x, y_csr);
    spmv_sell(sell, x, y_sell);
    for (std::size_t i = 0; i < y_csr.size(); ++i)
        EXPECT_NEAR(y_sell[i], y_csr[i], 1e-12) << "row " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SellRagged,
    testing::Values(
        // sigma not dividing rows, rows not a multiple of C
        std::make_tuple(std::int64_t{101}, std::int64_t{8}, std::int64_t{24}),
        // last chunk has a single row
        std::make_tuple(std::int64_t{65}, std::int64_t{8}, std::int64_t{8}),
        // C > rows: one partial chunk only
        std::make_tuple(std::int64_t{5}, std::int64_t{16}, std::int64_t{16}),
        // unsorted (sigma = 1) keeps original lane order
        std::make_tuple(std::int64_t{77}, std::int64_t{4}, std::int64_t{1})));

TEST(Sell, AllRowsEmpty) {
    CsrBuilder b(13, 13);
    const CsrMatrix csr = std::move(b).finish();
    const SellCSigmaMatrix sell(csr, 8, 8);
    EXPECT_EQ(sell.nnz(), 0);
    const auto x = random_vector(13, 8);
    std::vector<double> y(13, 1.5);
    spmv_sell(sell, x, y);
    for (const double v : y) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(Sell, PaddingLanesDoNotPerturbResults) {
    // A chunk whose rows differ wildly in length: the padded lanes of the
    // short rows must contribute exactly 0, even with a poisoned x.
    CsrBuilder b(8, 8);
    for (std::int32_t col = 0; col < 8; ++col)
        b.push(0, col, 1.0);                 // row 0: full
    b.push(3, 2, 4.0);                       // row 3: single entry
    const CsrMatrix csr = std::move(b).finish();
    const SellCSigmaMatrix sell(csr, 8, 1);
    EXPECT_GT(sell.padded_nnz(), csr.nnz());

    std::vector<double> x(8, 1e300);         // poison: padding that gathers
    std::vector<double> y(8, 0.0);           // a nonzero x would explode
    spmv_sell(sell, x, y);
    EXPECT_DOUBLE_EQ(y[0], 8.0 * 1e300);
    EXPECT_DOUBLE_EQ(y[3], 4.0 * 1e300);
    for (const std::size_t r : {1u, 2u, 4u, 5u, 6u, 7u})
        EXPECT_DOUBLE_EQ(y[r], 0.0) << "row " << r;
}

TEST(SellTrace, LengthFormulaHolds) {
    const CsrMatrix csr = gen::random_variable_rows(200, 200, 6.0, 1.0, 13);
    const SellCSigmaMatrix sell(csr, 8, 16);
    const SpmvLayout layout = sell_layout(sell, 256);
    std::uint64_t count = 0;
    generate_sell_trace(sell, layout, [&](const MemRef&) { ++count; });
    EXPECT_EQ(count,
              sell_trace_length(sell.rows(), sell.chunks(),
                                sell.padded_nnz()));
}

TEST(SellTrace, OnlyExpectedObjectsAppear) {
    const CsrMatrix csr = gen::stencil_2d_5pt(10, 10);
    const SellCSigmaMatrix sell(csr, 4, 1);
    const SpmvLayout layout = sell_layout(sell, 16);
    generate_sell_trace(sell, layout, [&](const MemRef& ref) {
        EXPECT_LT(ref.line, layout.total_lines());
        if (ref.is_write) {
            EXPECT_EQ(ref.object, DataObject::Y);
        }
    });
}

TEST(SellTrace, RunsThroughSimulator) {
    // End to end: SELL trace into the hierarchy; sector isolation of the
    // (padded) matrix data behaves exactly like the CSR case.
    const CsrMatrix csr = gen::random_uniform(2048, 2048, 64, 17);
    const SellCSigmaMatrix sell(csr, 8, 64);
    const SpmvLayout layout = sell_layout(sell, 256);

    A64fxConfig cfg;
    cfg.cores = 1;
    cfg.cores_per_numa = 1;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};
    // Prefetch off: this test isolates the sector semantics (the default
    // prefetch distance overshoots the scaled-down 128-set sectors).
    cfg.l1_prefetch.enabled = false;
    cfg.l2_prefetch.enabled = false;
    MemoryHierarchy baseline(cfg);
    MemoryHierarchy isolated(cfg);
    isolated.set_sector_ways(SectorWays{4, 0});

    for (int iteration = 0; iteration < 2; ++iteration) {
        if (iteration == 1) {
            baseline.reset_counters();
            isolated.reset_counters();
        }
        generate_sell_trace(sell, layout, [&](const MemRef& ref) {
            baseline.access(ref, SectorPolicy::IsolateMatrix);
            isolated.access(ref, SectorPolicy::IsolateMatrix);
        });
    }
    // Matrix data (2 MiB padded) streams either way; the vectors are
    // protected by the sector, so isolation cannot be worse.
    EXPECT_GT(baseline.l2_total().fills(), 0u);
    EXPECT_LE(isolated.l2_total().fills(), baseline.l2_total().fills());
}

}  // namespace
}  // namespace spmvcache
