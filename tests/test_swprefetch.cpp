// Tests for software prefetching (the paper's future-work direction):
// trace emission of prfm hints and their effect in the simulator.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "core/experiment.hpp"
#include "sparse/gen/random.hpp"
#include "trace/spmv_trace.hpp"

namespace spmvcache {
namespace {

TEST(SwPrefetchTrace, DisabledByDefault) {
    const CsrMatrix m = gen::random_uniform(32, 32, 4, 1);
    const SpmvLayout layout(m, 16);
    generate_spmv_trace(m, layout, TraceConfig{1}, [](const MemRef& ref) {
        EXPECT_FALSE(ref.is_prefetch);
    });
}

TEST(SwPrefetchTrace, HintsPrecedeTheirDemandAccess) {
    const CsrMatrix m = gen::random_uniform(64, 64, 8, 2);
    const SpmvLayout layout(m, 16);
    TraceConfig cfg{1};
    cfg.x_prefetch_distance = 3;
    std::vector<MemRef> trace;
    generate_spmv_trace(m, layout, cfg,
                        [&](const MemRef& ref) { trace.push_back(ref); });

    // Every prefetch hint targets x, and its line is demanded later.
    std::size_t hints = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!trace[i].is_prefetch) continue;
        ++hints;
        EXPECT_EQ(trace[i].object, DataObject::X);
        bool demanded_later = false;
        for (std::size_t j = i + 1; j < trace.size() && !demanded_later; ++j)
            if (!trace[j].is_prefetch && trace[j].object == DataObject::X &&
                trace[j].line == trace[i].line)
                demanded_later = true;
        EXPECT_TRUE(demanded_later) << "hint at position " << i;
    }
    // Every nonzero gets a hint (distance < row length = 8).
    EXPECT_EQ(hints, static_cast<std::size_t>(m.nnz()));
}

TEST(SwPrefetchTrace, DemandReferenceCountUnchanged) {
    const CsrMatrix m = gen::random_uniform(64, 64, 8, 2);
    const SpmvLayout layout(m, 16);
    TraceConfig cfg{1};
    cfg.x_prefetch_distance = 4;
    std::uint64_t demand = 0;
    generate_spmv_trace(m, layout, cfg, [&](const MemRef& ref) {
        if (!ref.is_prefetch) ++demand;
    });
    EXPECT_EQ(demand, spmv_trace_length(m.rows(), m.nnz()));
}

TEST(SwPrefetchSim, TurnsDemandMissesIntoSwaps) {
    A64fxConfig cfg;
    cfg.cores = 1;
    cfg.cores_per_numa = 1;
    cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 0};
    cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 0};
    cfg.l1_prefetch.enabled = false;
    cfg.l2_prefetch.enabled = false;
    MemoryHierarchy sim(cfg);

    // Prefetch a line, then demand it: one prefetch fill, one swap, no
    // demand fill.
    sim.software_prefetch(0, 100, 0);
    sim.demand_access(0, 100, 0, false);
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l2.prefetch_fills, 1u);
    EXPECT_EQ(l2.demand_fills, 0u);
    // The line was prefetched into L1 as well: the demand hits L1.
    EXPECT_EQ(sim.l1_total().hits, 1u);
}

TEST(SwPrefetchSim, NoOpWhenAlreadyResident) {
    A64fxConfig cfg;
    cfg.cores = 1;
    cfg.cores_per_numa = 1;
    cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 0};
    cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 0};
    MemoryHierarchy sim(cfg);
    sim.demand_access(0, 7, 0, false);
    sim.software_prefetch(0, 7, 0);
    EXPECT_EQ(sim.l2_total().prefetch_fills, 0u);
    EXPECT_EQ(sim.l1_total().prefetch_fills, 0u);
}

TEST(SwPrefetchExperiment, ReducesDemandMissesOnIrregularMatrix) {
    // Scaled machine; a random matrix whose x misses dominate.
    ExperimentOptions options;
    options.machine.cores = 2;
    options.machine.cores_per_numa = 2;
    options.machine.l1 = CacheConfig{16 * 1024, 256, 4, 0};
    options.machine.l2 = CacheConfig{512 * 1024, 256, 16, 0};
    options.threads = 2;
    const CsrMatrix m = gen::random_uniform(65536, 65536, 8, 5);

    const auto baseline =
        run_sector_sweep(m, {SectorWays{5, 0}}, options).front();
    options.x_prefetch_distance = 16;
    const auto prefetched =
        run_sector_sweep(m, {SectorWays{5, 0}}, options).front();

    EXPECT_LT(prefetched.l2.demand_misses(), baseline.l2.demand_misses());
    // Total lines fetched stay in the same regime (prefetching moves
    // misses between categories rather than creating traffic).
    EXPECT_LT(prefetched.l2.fills(),
              baseline.l2.fills() + baseline.l2.fills() / 2);
    EXPECT_GE(prefetched.timing.gflops, baseline.timing.gflops);
}

}  // namespace
}  // namespace spmvcache
