// Binary `.spmvc` cache tests: the committed corrupt-cache corpus maps
// each damage class to its typed error, freshly regenerated damage
// proves corpus and writer cannot drift apart, round trips are
// byte-identical (arrays) and bit-identical (model predictions), and the
// cache-aware loader (core/matrix_source) degrades every cache failure
// — stale, truncated mid-write, injected faults — to a clean re-parse.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/matrix_source.hpp"
#include "model/method_a.hpp"
#include "sparse/binary_cache.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

namespace fs = std::filesystem;

class BinaryCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(testing::TempDir()) /
               ("spmv_cache_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override {
        fault::disarm_all();
        fs::remove_all(dir_);
    }

    /// Writes `m` as both a .mtx source file and a .spmvc entry; returns
    /// the entry path.
    std::string write_entry(const CsrMatrix& m, const std::string& name) {
        const std::string mtx = (dir_ / (name + ".mtx")).string();
        write_matrix_market_file(mtx, m);
        const Result<SourceStamp> stamp = stat_source(mtx);
        EXPECT_TRUE(stamp.ok());
        const std::string entry = (dir_ / (name + ".spmvc")).string();
        const CsrView view(m);
        const Status written =
            write_binary_cache(entry, view, fingerprint_matrix(view),
                               compute_stats(view), mtx, stamp.value());
        EXPECT_TRUE(written.ok()) << written.error().render();
        return entry;
    }

    /// .mtx file for `m` only (no cache entry).
    std::string write_mtx(const CsrMatrix& m, const std::string& name) {
        const std::string mtx = (dir_ / (name + ".mtx")).string();
        write_matrix_market_file(mtx, m);
        return mtx;
    }

    fs::path dir_;
};

std::string corpus(const std::string& name) {
    return std::string(SPMVCACHE_TEST_DATA_DIR) + "/corrupt_cache/" + name;
}

// ---- Corrupt-cache corpus: one typed error per validation layer --------

TEST_F(BinaryCacheTest, CorpusBadMagicIsParseError) {
    const Result<MappedCsr> r = load_binary_cache(corpus("bad_magic.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().render().find("bad magic"), std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusVersionBumpIsUnsupportedError) {
    const Result<MappedCsr> r =
        load_binary_cache(corpus("version_bump.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::UnsupportedError);
    EXPECT_NE(r.error().render().find("version 99"), std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusTruncatedSectionIsParseError) {
    const Result<MappedCsr> r =
        load_binary_cache(corpus("truncated_section.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().render().find("past end of file"),
              std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusFlippedNnzIsValidationError) {
    // The header checksum was re-fixed after the flip: only the geometry
    // consistency layer can catch this one.
    const Result<MappedCsr> r =
        load_binary_cache(corpus("flipped_nnz.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ValidationError);
    EXPECT_NE(r.error().render().find("disagrees with nnz"),
              std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusSectionChecksumMismatchIsValidationError) {
    const Result<MappedCsr> r =
        load_binary_cache(corpus("checksum_mismatch.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ValidationError);
    EXPECT_NE(r.error().render().find("checksum mismatch"),
              std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusMisalignedOffsetIsValidationError) {
    const Result<MappedCsr> r =
        load_binary_cache(corpus("misaligned_offset.spmvc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ValidationError);
    EXPECT_NE(r.error().render().find("misaligned"), std::string::npos);
}

TEST_F(BinaryCacheTest, CorpusEntriesAlsoFailHeaderInspection) {
    // inspect reads only page 0, so damage visible in the header fails
    // the same way; section-level damage is invisible to it by design.
    EXPECT_EQ(inspect_binary_cache(corpus("bad_magic.spmvc")).error().code,
              ErrorCode::ParseError);
    EXPECT_EQ(
        inspect_binary_cache(corpus("version_bump.spmvc")).error().code,
        ErrorCode::UnsupportedError);
    EXPECT_TRUE(inspect_binary_cache(corpus("checksum_mismatch.spmvc")).ok());
}

// ---- Freshly regenerated damage: the corpus cannot drift ---------------

TEST_F(BinaryCacheTest, FreshDamageMatchesCorpusErrorCodes) {
    const CsrMatrix m = gen::stencil_2d_5pt(24, 24);
    const std::string entry = write_entry(m, "fresh");

    const auto damaged = [&](const std::string& name,
                             auto mutate) -> Result<MappedCsr> {
        const std::string copy = (dir_ / name).string();
        fs::copy_file(entry, copy, fs::copy_options::overwrite_existing);
        mutate(copy);
        return load_binary_cache(copy);
    };
    const auto poke = [](const std::string& path, std::uint64_t offset,
                         const void* bytes, std::size_t n) {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(static_cast<std::streamoff>(offset));
        f.write(static_cast<const char*>(bytes),
                static_cast<std::streamsize>(n));
    };

    // Bad magic.
    EXPECT_EQ(damaged("bad_magic.spmvc",
                      [&](const std::string& p) {
                          const char x = 'X';
                          poke(p, 0, &x, 1);
                      })
                  .error()
                  .code,
              ErrorCode::ParseError);

    // Version bump with a re-fixed checksum.
    EXPECT_EQ(damaged("version.spmvc",
                      [&](const std::string& p) {
                          const std::uint32_t v = 99;
                          poke(p, 8, &v, 4);
                          ASSERT_TRUE(
                              spmvc_testing::fixup_header_checksum(p).ok());
                      })
                  .error()
                  .code,
              ErrorCode::UnsupportedError);

    // Flipped nnz with a re-fixed checksum: geometry layer fires.
    EXPECT_EQ(damaged("nnz.spmvc",
                      [&](const std::string& p) {
                          std::int64_t nnz = m.nnz() + 1;
                          poke(p, spmvc_testing::header_nnz_offset(), &nnz,
                               8);
                          ASSERT_TRUE(
                              spmvc_testing::fixup_header_checksum(p).ok());
                      })
                  .error()
                  .code,
              ErrorCode::ValidationError);

    // Header checksum NOT fixed after damage: checksum layer fires first.
    EXPECT_EQ(damaged("stale_checksum.spmvc",
                      [&](const std::string& p) {
                          std::int64_t nnz = m.nnz() + 1;
                          poke(p, spmvc_testing::header_nnz_offset(), &nnz,
                               8);
                      })
                  .error()
                  .code,
              ErrorCode::ValidationError);

    // Mid-write crash: resize to half — rejected as truncated.
    EXPECT_EQ(damaged("half.spmvc",
                      [&](const std::string& p) {
                          fs::resize_file(p, fs::file_size(p) / 2);
                      })
                  .error()
                  .code,
              ErrorCode::ParseError);
}

// ---- Round trips -------------------------------------------------------

TEST_F(BinaryCacheTest, RoundTripIsByteIdenticalAcrossGenerators) {
    const std::vector<CsrMatrix> suite = {
        gen::stencil_2d_5pt(20, 20),
        gen::banded(300, 9, 2, 7),
        gen::random_uniform(200, 200, 12, 11),
        gen::random_variable_rows(150, 150, 6.0, 2.0, 5),
    };
    int index = 0;
    for (const CsrMatrix& m : suite) {
        const std::string entry =
            write_entry(m, "rt" + std::to_string(index++));
        Result<MappedCsr> loaded = load_binary_cache(entry);
        ASSERT_TRUE(loaded.ok()) << loaded.error().render();
        ASSERT_EQ(loaded.value().view().index_width(), IndexWidth::W32);
        const CsrView v = *loaded.value().view().as32();
        const CsrView orig(m);
        ASSERT_EQ(v.rows(), orig.rows());
        ASSERT_EQ(v.cols(), orig.cols());
        ASSERT_EQ(v.nnz(), orig.nnz());
        EXPECT_EQ(std::memcmp(v.rowptr().data(), orig.rowptr().data(),
                              orig.rowptr_bytes()),
                  0);
        EXPECT_EQ(std::memcmp(v.colidx().data(), orig.colidx().data(),
                              orig.colidx_bytes()),
                  0);
        EXPECT_EQ(std::memcmp(v.values().data(), orig.values().data(),
                              orig.values_bytes()),
                  0);
        EXPECT_EQ(loaded.value().info().fingerprint,
                  fingerprint_matrix(orig));
    }
}

TEST_F(BinaryCacheTest, MappedPredictionsAreBitIdenticalToOwned) {
    const CsrMatrix m = gen::banded(400, 11, 2, 3);
    const std::string entry = write_entry(m, "model");
    Result<MappedCsr> loaded = load_binary_cache(entry);
    ASSERT_TRUE(loaded.ok());

    ModelOptions options;
    options.threads = 4;
    options.l2_way_options = {2, 5};
    options.predict_l1 = false;
    const ModelResult owned = run_method_a(CsrView(m), options);
    const ModelResult mapped = run_method_a(loaded.value().view(), options);
    ASSERT_EQ(owned.configs.size(), mapped.configs.size());
    for (std::size_t i = 0; i < owned.configs.size(); ++i) {
        EXPECT_EQ(owned.configs[i].l2_sector_ways,
                  mapped.configs[i].l2_sector_ways);
        // Bit-identical, not approximately equal: the arrays are the
        // same bytes, so the model must walk the same path.
        EXPECT_EQ(owned.configs[i].l2_misses, mapped.configs[i].l2_misses);
        EXPECT_EQ(owned.configs[i].l2_x_misses,
                  mapped.configs[i].l2_x_misses);
    }
}

TEST_F(BinaryCacheTest, StampMismatchIsCacheStale) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    const std::string entry = write_entry(m, "stale");
    SourceStamp changed;
    changed.size = 1;
    changed.mtime_ns = 2;
    const Result<MappedCsr> r = load_binary_cache(entry, &changed);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::CacheStale);
    // Without an expected stamp the same entry loads fine.
    EXPECT_TRUE(load_binary_cache(entry).ok());
}

TEST_F(BinaryCacheTest, InspectReportsHeaderWithoutTouchingSections) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    const std::string entry = write_entry(m, "inspect");
    const Result<SpmvcInfo> info = inspect_binary_cache(entry);
    ASSERT_TRUE(info.ok()) << info.error().render();
    EXPECT_EQ(info.value().format_version, kSpmvcFormatVersion);
    EXPECT_EQ(info.value().rows, m.rows());
    EXPECT_EQ(info.value().nnz, m.nnz());
    EXPECT_EQ(info.value().fingerprint, fingerprint_matrix(CsrView(m)));
    EXPECT_NE(info.value().source_path.find("inspect.mtx"),
              std::string::npos);
    EXPECT_EQ(info.value().file_bytes, fs::file_size(entry));
}

// ---- The cache-aware loader: every cache failure degrades to a parse ---

TEST_F(BinaryCacheTest, HandleParsesThenHitsThenDetectsStaleness) {
    const CsrMatrix m = gen::stencil_2d_5pt(18, 18);
    MatrixSource source;
    source.path = write_mtx(m, "flow");
    source.cache_dir = (dir_ / "cache").string();

    Result<LoadedMatrix> first = load_matrix_handle(source);
    ASSERT_TRUE(first.ok()) << first.error().render();
    EXPECT_EQ(first.value().origin, LoadOrigin::Parsed);
    EXPECT_TRUE(first.value().cache_written);

    Result<LoadedMatrix> second = load_matrix_handle(source);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().origin, LoadOrigin::CacheHit);
    ASSERT_EQ(second.value().view.index_width(),
              first.value().view.index_width());
    ASSERT_EQ(second.value().view.index_width(), IndexWidth::W32);
    EXPECT_EQ(std::memcmp(second.value().view.as32()->colidx().data(),
                          first.value().view.as32()->colidx().data(),
                          first.value().view.colidx_bytes()),
              0);
    EXPECT_EQ(second.value().fingerprint, first.value().fingerprint);

    // Rewrite the source (different size): the entry must go stale.
    {
        std::ofstream out(source.path, std::ios::app);
        out << "% trailing comment changes size and mtime\n";
    }
    Result<LoadedMatrix> third = load_matrix_handle(source);
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(third.value().origin, LoadOrigin::Parsed);
    EXPECT_TRUE(third.value().cache_written);  // refreshed
    Result<LoadedMatrix> fourth = load_matrix_handle(source);
    ASSERT_TRUE(fourth.ok());
    EXPECT_EQ(fourth.value().origin, LoadOrigin::CacheHit);
}

TEST_F(BinaryCacheTest, TruncatedEntryIsRejectedAndReparsed) {
    const CsrMatrix m = gen::stencil_2d_5pt(18, 18);
    MatrixSource source;
    source.path = write_mtx(m, "crash");
    source.cache_dir = (dir_ / "cache").string();
    ASSERT_TRUE(load_matrix_handle(source).ok());

    // Simulate a crash mid-write that somehow landed on the final name:
    // chop the entry mid-section. The loader must reject it and the
    // handle must fall back to a parse that rewrites the entry.
    const std::string entry =
        spmvc_cache_path(source.cache_dir, source.path, false);
    fs::resize_file(entry, fs::file_size(entry) / 2);
    EXPECT_EQ(load_binary_cache(entry).error().code, ErrorCode::ParseError);

    Result<LoadedMatrix> reparsed = load_matrix_handle(source);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value().origin, LoadOrigin::Parsed);
    EXPECT_TRUE(reparsed.value().cache_written);
    EXPECT_EQ(load_matrix_handle(source).value().origin,
              LoadOrigin::CacheHit);
}

TEST_F(BinaryCacheTest, StrayTmpFileIsIgnoredByLoads) {
    const CsrMatrix m = gen::stencil_2d_5pt(14, 14);
    MatrixSource source;
    source.path = write_mtx(m, "tmp");
    source.cache_dir = (dir_ / "cache").string();
    ASSERT_TRUE(load_matrix_handle(source).ok());
    const std::string entry =
        spmvc_cache_path(source.cache_dir, source.path, false);
    {
        // An aborted atomic write leaves <entry>.tmp; the loader only
        // ever opens the final name.
        std::ofstream junk(entry + ".tmp", std::ios::binary);
        junk << "garbage";
    }
    EXPECT_EQ(load_matrix_handle(source).value().origin,
              LoadOrigin::CacheHit);
}

TEST_F(BinaryCacheTest, WriteFaultDegradesToUncachedParse) {
    const CsrMatrix m = gen::stencil_2d_5pt(14, 14);
    MatrixSource source;
    source.path = write_mtx(m, "wfault");
    source.cache_dir = (dir_ / "cache").string();
    {
        fault::ScopedFault f("cache.write");
        Result<LoadedMatrix> loaded = load_matrix_handle(source);
        ASSERT_TRUE(loaded.ok()) << loaded.error().render();
        EXPECT_EQ(loaded.value().origin, LoadOrigin::Parsed);
        EXPECT_FALSE(loaded.value().cache_written);
        const std::string entry =
            spmvc_cache_path(source.cache_dir, source.path, false);
        EXPECT_FALSE(fs::exists(entry));
    }
    // Fault gone: the next load writes the entry it could not before.
    EXPECT_TRUE(load_matrix_handle(source).value().cache_written);
}

TEST_F(BinaryCacheTest, MapFaultDegradesToReparse) {
    const CsrMatrix m = gen::stencil_2d_5pt(14, 14);
    MatrixSource source;
    source.path = write_mtx(m, "mfault");
    source.cache_dir = (dir_ / "cache").string();
    ASSERT_TRUE(load_matrix_handle(source).ok());
    fault::ScopedFault f("cache.map", {.once = false});
    Result<LoadedMatrix> loaded = load_matrix_handle(source);
    ASSERT_TRUE(loaded.ok()) << loaded.error().render();
    EXPECT_EQ(loaded.value().origin, LoadOrigin::Parsed);
    // Direct loads report the injected fault as a typed error.
    const std::string entry =
        spmvc_cache_path(source.cache_dir, source.path, false);
    EXPECT_EQ(load_binary_cache(entry).error().code,
              ErrorCode::FaultInjected);
}

TEST_F(BinaryCacheTest, StrictAndLenientGetDistinctEntries) {
    const std::string lenient = spmvc_cache_path("/tmp/c", "a/b.mtx", false);
    const std::string strict = spmvc_cache_path("/tmp/c", "a/b.mtx", true);
    EXPECT_NE(lenient, strict);
    EXPECT_EQ(lenient, spmvc_cache_path("/tmp/c", "a/b.mtx", false));
    EXPECT_NE(spmvc_cache_path("/tmp/c", "a/b.mtx", false),
              spmvc_cache_path("/tmp/c", "a/c.mtx", false));
}

// ---- SourceCache: the serve daemon's in-memory dedupe ------------------

TEST_F(BinaryCacheTest, SourceCacheDedupesRepeatLoads) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    MatrixSource source;
    source.path = write_mtx(m, "memo");

    SourceCache memo(4);
    ASSERT_TRUE(memo.get(source).ok());
    ASSERT_TRUE(memo.get(source).ok());
    ASSERT_TRUE(memo.get(source).ok());
    EXPECT_EQ(memo.loads(), 1u);
    EXPECT_EQ(memo.hits(), 2u);
    EXPECT_EQ(memo.size(), 1u);

    // A deleted source makes the hit path report the real error on the
    // reload instead of serving stale bytes.
    fs::remove(source.path);
    EXPECT_FALSE(memo.get(source).ok());
}

TEST_F(BinaryCacheTest, SourceCacheRevalidatesOnSourceChange) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    MatrixSource source;
    source.path = write_mtx(m, "reval");
    SourceCache memo(4);
    const Result<LoadedMatrix> first = memo.get(source);
    ASSERT_TRUE(first.ok());
    {
        std::ofstream out(source.path, std::ios::app);
        out << "% appended\n";
    }
    const Result<LoadedMatrix> second = memo.get(source);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(memo.loads(), 2u);  // change forced a reload
    EXPECT_EQ(second.value().fingerprint, first.value().fingerprint);
}

TEST_F(BinaryCacheTest, SourceCacheCachesGeneratedSources) {
    MatrixSource source;
    source.gen_spec = "stencil2d5:16";
    SourceCache memo(4);
    ASSERT_TRUE(memo.get(source).ok());
    ASSERT_TRUE(memo.get(source).ok());
    EXPECT_EQ(memo.loads(), 1u);
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(memo.get(source).value().origin, LoadOrigin::Generated);
}

}  // namespace
}  // namespace spmvcache
