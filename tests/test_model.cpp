// Tests for the cache-miss model: classification (§3.1), analytic terms,
// and methods (A)/(B) against hand-computable streaming predictions.
//
// A scaled-down machine (512 KiB L2 segments) keeps matrices small while
// preserving every size relation the paper's classes rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "model/analytic.hpp"
#include "model/classify.hpp"
#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "trace/spmv_trace.hpp"

namespace spmvcache {
namespace {

A64fxConfig scaled_machine() {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};    // 16 sets x 4 ways
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};  // 128 sets x 16 ways
    return cfg;
}

TEST(Analytic, StreamingMissesMatchPaperFormulas) {
    // M = 1000, K = 50000, L = 256:
    const auto s = streaming_misses(1000, 50000, 256);
    EXPECT_EQ(s.values, (8u * 50000 + 255) / 256);
    EXPECT_EQ(s.colidx, (4u * 50000 + 255) / 256);
    EXPECT_EQ(s.rowptr, (8u * 1001 + 255) / 256);
    EXPECT_EQ(s.y, (8u * 1000 + 255) / 256);
    EXPECT_EQ(s.matrix_data(), s.values + s.colidx);
    EXPECT_EQ(s.total(), s.values + s.colidx + s.rowptr + s.y);
}

TEST(Analytic, ScalingFactorsMatchPaperFormulas) {
    // s1 = (16*M/K + 8)/8, s2 = (16*M/K + 20)/8.
    EXPECT_DOUBLE_EQ(scaling_factor_partitioned(1000, 4000), (4.0 + 8.0) / 8.0);
    EXPECT_DOUBLE_EQ(scaling_factor_unpartitioned(1000, 4000),
                     (4.0 + 20.0) / 8.0);
    // Dense rows (K >> M): factors approach 1 and 2.5.
    EXPECT_NEAR(scaling_factor_partitioned(10, 1000000), 1.0, 0.01);
    EXPECT_NEAR(scaling_factor_unpartitioned(10, 1000000), 2.5, 0.01);
}

TEST(Classify, AllFourClassesReachable) {
    MatrixStats stats;
    stats.rows = 1000;
    stats.cols = 1000;

    // Class 1: everything fits.
    stats.working_set_bytes = 100 * 1024;
    EXPECT_EQ(classify(stats, 512 * 1024, 448 * 1024), MatrixClass::Class1);

    // Class 2: working set too big, x+y+rowptr (24 KiB) fit in sector 0.
    stats.working_set_bytes = 4 * 1024 * 1024;
    EXPECT_EQ(classify(stats, 512 * 1024, 448 * 1024), MatrixClass::Class2);

    // Class 3a: x+y+rowptr exceed sector 0, x alone fits.
    stats.rows = stats.cols = 30000;  // x 240 KiB, +y+rowptr ~480 KiB
    stats.working_set_bytes = 16 * 1024 * 1024;
    EXPECT_EQ(classify(stats, 512 * 1024, 448 * 1024), MatrixClass::Class3a);

    // Class 3b: x alone exceeds sector 0.
    stats.rows = stats.cols = 100000;  // x 800 KiB
    EXPECT_EQ(classify(stats, 512 * 1024, 448 * 1024), MatrixClass::Class3b);
}

TEST(Classify, LabelsRenderAsInPaper) {
    EXPECT_EQ(to_string(MatrixClass::Class1), "(1)");
    EXPECT_EQ(to_string(MatrixClass::Class3b), "(3b)");
}

// The workhorse fixture: a uniform random matrix whose streaming terms
// dominate, with x, y and rowptr small enough to fit any sector-0 split.
// rows=2048, 128 nnz/row -> a 2 MiB, colidx 1 MiB, x/y 16 KiB.
class MethodATest : public testing::Test {
protected:
    static const CsrMatrix& matrix() {
        static const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 77);
        return m;
    }

    static ModelOptions options() {
        ModelOptions o;
        o.machine = scaled_machine();
        o.threads = 1;
        o.l2_way_options = {2, 4, 6};
        o.predict_l1 = true;
        return o;
    }
};

TEST_F(MethodATest, UnpartitionedMatchesStreamingPlusVectors) {
    const auto result = run_method_a(matrix(), options());
    // Working set (~3 MiB) >> 512 KiB: a, colidx, y, rowptr all stream;
    // x (64 lines, reused every row) always hits.
    const auto stream = streaming_misses(2048, matrix().nnz(), 256);
    const double expected = static_cast<double>(stream.total());
    EXPECT_NEAR(result.at(0).l2_misses, expected, 0.02 * expected);
    EXPECT_LT(result.at(0).l2_x_misses, 0.01 * expected);
    EXPECT_LT(result.x_traffic_fraction, 0.01);
}

TEST_F(MethodATest, PartitionedSavesRowptrAndYMisses) {
    const auto result = run_method_a(matrix(), options());
    const auto stream = streaming_misses(2048, matrix().nnz(), 256);
    // Class 2: only the matrix data misses under partitioning.
    const double expected = static_cast<double>(stream.matrix_data());
    for (const std::uint32_t w : {2u, 4u, 6u}) {
        EXPECT_NEAR(result.at(w).l2_misses, expected, 0.02 * expected)
            << "ways " << w;
    }
    // The partitioned prediction is below the unpartitioned one by about
    // the y + rowptr streaming terms.
    EXPECT_LT(result.at(4).l2_misses, result.at(0).l2_misses);
}

TEST_F(MethodATest, L1PredictionAtLeastStreamingTraffic) {
    const auto result = run_method_a(matrix(), options());
    const auto stream = streaming_misses(2048, matrix().nnz(), 256);
    EXPECT_GE(result.l1_misses, static_cast<double>(stream.matrix_data()));
}

TEST_F(MethodATest, KimEngineAgreesWithOlkenWithinGroupError) {
    const auto exact = run_method_a(matrix(), options());
    // Kim distances are accurate to +- the group capacity, so the group
    // must be small relative to the evaluated partition capacities (256+
    // lines on the scaled machine).
    ModelOptions kim_options = options();
    kim_options.kim_group_capacity = 32;
    const auto approx =
        run_method_a(matrix(), kim_options, EngineKind::Kim);
    for (std::size_t i = 0; i < exact.configs.size(); ++i) {
        const double e = exact.configs[i].l2_misses;
        const double a = approx.configs[i].l2_misses;
        EXPECT_NEAR(a, e, 0.05 * e + 100) << "config " << i;
    }
}

TEST(MethodA, Class1MatrixMissesOnlyFromTooSmallSector) {
    // 64x64 stencil: working set (~280 KiB) fits the 512 KiB cache, so
    // without partitioning there are no capacity misses. *With* a 2-way
    // sector the isolated matrix data (~240 KiB) exceeds its 64 KiB
    // partition and streams — the paper's class-(1) "sector cache can
    // hurt" case (Fig. 4 shows class 1 up to -20%).
    const CsrMatrix m = gen::stencil_2d_5pt(64, 64);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {2};
    o.predict_l1 = false;
    const auto result = run_method_a(m, o);
    EXPECT_DOUBLE_EQ(result.at(0).l2_misses, 0.0);
    const auto stream = streaming_misses(m.rows(), m.nnz(), 256);
    EXPECT_NEAR(result.at(2).l2_misses,
                static_cast<double>(stream.matrix_data()),
                0.05 * static_cast<double>(stream.matrix_data()));
}

TEST(MethodA, ParallelSumsOverSegments) {
    // 4 threads on 2 segments: streaming misses split across segments but
    // total unchanged (same lines fetched, x possibly replicated).
    const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 78);
    ModelOptions o;
    o.machine = scaled_machine();
    o.l2_way_options = {4};
    o.predict_l1 = false;
    o.threads = 1;
    const auto seq = run_method_a(m, o);
    o.threads = 4;
    const auto par = run_method_a(m, o);
    const auto stream = streaming_misses(2048, m.nnz(), 256);
    // Matrix-data streaming is identical; only vector replication differs.
    EXPECT_NEAR(par.at(4).l2_misses, seq.at(4).l2_misses,
                0.05 * static_cast<double>(stream.total()) + 256);
}

TEST(MethodA, XMissesAppearWhenXExceedsSector0) {
    // x of 512 KiB (65536 columns) with random access: x cannot fit in
    // sector 0 (448 KiB at 2 ways) -> substantial x misses.
    const CsrMatrix m = gen::random_uniform(65536, 65536, 8, 79);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {2};
    o.predict_l1 = false;
    const auto result = run_method_a(m, o);
    EXPECT_GT(result.at(2).l2_x_misses, 0.1 * result.at(2).l2_misses);
    EXPECT_GT(result.x_traffic_fraction, 0.05);
}

TEST(MethodB, TracksMethodAOnUniformMatrix) {
    // mu_K = 128, CV = 0: the regime where the paper reports method (B)
    // within a percent or two of method (A).
    const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 77);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {2, 4, 6};
    o.predict_l1 = false;
    const auto a = run_method_a(m, o);
    const auto b = run_method_b(m, o);
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (std::size_t i = 0; i < a.configs.size(); ++i) {
        EXPECT_NEAR(b.configs[i].l2_misses, a.configs[i].l2_misses,
                    0.10 * a.configs[i].l2_misses + 50)
            << "config " << i;
    }
}

TEST(MethodB, FasterThanMethodA) {
    const CsrMatrix m = gen::random_uniform(4096, 4096, 64, 80);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.predict_l1 = false;
    const auto a = run_method_a(m, o);
    const auto b = run_method_b(m, o);
    // §4.5.1 reports 3-4x; allow anything clearly faster.
    EXPECT_LT(b.seconds, a.seconds);
}

TEST(MethodB, Class1MatrixPredictsLikeMethodA) {
    const CsrMatrix m = gen::stencil_2d_5pt(64, 64);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {2};
    o.predict_l1 = false;
    const auto result = run_method_b(m, o);
    // Unpartitioned: everything fits, no misses. With a 2-way sector the
    // analytic side detects that the matrix data exceeds its partition.
    EXPECT_DOUBLE_EQ(result.at(0).l2_misses, 0.0);
    const auto stream = streaming_misses(m.rows(), m.nnz(), 256);
    EXPECT_NEAR(result.at(2).l2_misses,
                static_cast<double>(stream.matrix_data()),
                0.05 * static_cast<double>(stream.matrix_data()));
}

TEST(ModelResult, FindReturnsTypedErrorForUnknownConfig) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    ModelOptions o;
    o.machine = scaled_machine();
    o.l2_way_options = {2};
    o.predict_l1 = false;
    const auto result = run_method_a(m, o);
    // The priced configurations are found...
    ASSERT_TRUE(result.find(0).ok());
    ASSERT_TRUE(result.find(2).ok());
    EXPECT_DOUBLE_EQ(result.find(2).value().l2_misses,
                     result.at(2).l2_misses);
    // ...and an unknown one is a classifiable input error, not a crash:
    // the batch isolation layer maps StatusError to its ErrorCode.
    const auto missing = result.find(9);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.code(), ErrorCode::ValidationError);
    try {
        (void)result.at(9);
        FAIL() << "at(9) must throw";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ValidationError);
    }
}

TEST(ModelResult, ShardStatsCoverTheWholeTrace) {
    const CsrMatrix m = gen::random_uniform(2048, 2048, 32, 81);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 4;  // 2 segments on the scaled machine
    o.l2_way_options = {4};
    o.predict_l1 = false;
    const auto result = run_method_a(m, o);
    ASSERT_EQ(result.shards.size(), 2u);
    std::uint64_t refs = 0;
    std::int64_t threads = 0;
    for (const auto& shard : result.shards) {
        EXPECT_GT(shard.references, 0u);
        refs += shard.references;
        threads += shard.threads;
    }
    EXPECT_EQ(refs, spmv_trace_length(m.rows(), m.nnz()));
    EXPECT_EQ(threads, o.threads);
    EXPECT_GE(result.jobs, 1);
}

}  // namespace
}  // namespace spmvcache
