// FlatMap64: find_or_insert semantics, growth under colliding keys,
// backward-shift erase, and differential checks against std::unordered_map
// on random insert/erase/find streams.
#include "reuse/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace spmvcache {
namespace {

TEST(FlatMap64, FindOrInsertReportsInsertionAndZeroInitialises) {
    FlatMap64 map;
    bool inserted = false;
    std::uint64_t* slot = map.find_or_insert(7, inserted);
    ASSERT_NE(slot, nullptr);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, 0u);  // fresh entries start at zero
    EXPECT_EQ(map.size(), 1u);

    *slot = 41;
    std::uint64_t* again = map.find_or_insert(7, inserted);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*again, 41u);
    EXPECT_EQ(map.size(), 1u);

    *again = 42;
    const std::uint64_t* found = map.find(7);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, 42u);
}

TEST(FlatMap64, FindOrInsertMatchesPut) {
    FlatMap64 via_put;
    FlatMap64 via_slot;
    for (std::uint64_t k = 0; k < 500; ++k) {
        via_put.put(k * 3, k + 1);
        bool inserted = false;
        *via_slot.find_or_insert(k * 3, inserted) = k + 1;
        EXPECT_TRUE(inserted);
    }
    EXPECT_EQ(via_put.size(), via_slot.size());
    via_put.for_each([&](std::uint64_t k, std::uint64_t v) {
        const std::uint64_t* other = via_slot.find(k);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(*other, v);
    });
}

TEST(FlatMap64, SurvivesRehashUnderHeavyCollisions) {
    // Keys a multiple of a large power of two apart collide heavily under
    // the Fibonacci multiply-shift for small table sizes; inserting far
    // more than the initial capacity forces several rehashes mid-stream.
    FlatMap64 map(4);
    constexpr std::uint64_t kStride = std::uint64_t{1} << 40;
    constexpr std::uint64_t kCount = 4096;
    for (std::uint64_t k = 0; k < kCount; ++k) map.put(k * kStride, k);
    EXPECT_EQ(map.size(), kCount);
    for (std::uint64_t k = 0; k < kCount; ++k) {
        const std::uint64_t* v = map.find(k * kStride);
        ASSERT_NE(v, nullptr) << "key " << k * kStride << " lost in rehash";
        EXPECT_EQ(*v, k);
    }
    EXPECT_EQ(map.find(kStride / 2), nullptr);
}

TEST(FlatMap64, ClearEmptiesButKeysRemainInsertable) {
    FlatMap64 map;
    for (std::uint64_t k = 1; k <= 100; ++k) map.put(k, k);
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(50), nullptr);
    bool inserted = false;
    *map.find_or_insert(50, inserted) = 5;
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, EraseRemovesAndReportsPresence) {
    FlatMap64 map;
    map.put(7, 70);
    map.put(0, 1);  // zero key is valid and erasable
    EXPECT_TRUE(map.erase(7));
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.erase(7));  // already gone
    EXPECT_FALSE(map.erase(99));  // never present
    EXPECT_TRUE(map.erase(0));
    EXPECT_EQ(map.size(), 0u);

    // Erased keys are re-insertable and zero-initialised again.
    bool inserted = false;
    std::uint64_t* slot = map.find_or_insert(7, inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, 0u);
}

TEST(FlatMap64, EraseBackwardShiftKeepsProbeChainsIntact) {
    // Colliding keys form one long linear-probe run; erasing from the
    // middle must backward-shift the displaced tail, not break lookups
    // with a hole (there are no tombstones to hide behind).
    FlatMap64 map(8);
    constexpr std::uint64_t kStride = std::uint64_t{1} << 40;
    constexpr std::uint64_t kCount = 64;
    for (std::uint64_t k = 0; k < kCount; ++k) map.put(k * kStride, k + 1);
    // Erase every third key, front-to-back, checking the survivors after
    // each removal.
    for (std::uint64_t k = 0; k < kCount; k += 3)
        ASSERT_TRUE(map.erase(k * kStride)) << "key " << k;
    for (std::uint64_t k = 0; k < kCount; ++k) {
        const std::uint64_t* v = map.find(k * kStride);
        if (k % 3 == 0) {
            EXPECT_EQ(v, nullptr) << "erased key " << k << " still found";
        } else {
            ASSERT_NE(v, nullptr) << "survivor " << k << " lost";
            EXPECT_EQ(*v, k + 1);
        }
    }
}

TEST(FlatMap64, RandomInsertEraseFindMatchesUnorderedMap) {
    // Randomized property test: a long stream of mixed put / erase /
    // find_or_insert / find against the std::unordered_map reference, with
    // a key range narrow enough that probe chains constantly overlap and
    // erases hit mid-chain.
    std::uint64_t state = 0x13198a2e03707344ULL;
    const auto next = [&state] {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };

    FlatMap64 map(8);
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t key = next() % 1024;
        switch (next() % 4) {
            case 0: {
                const std::uint64_t value = next();
                map.put(key, value);
                reference[key] = value;
                break;
            }
            case 1: {
                EXPECT_EQ(map.erase(key), reference.erase(key) > 0)
                    << "step " << i;
                break;
            }
            case 2: {
                bool inserted = false;
                std::uint64_t* slot = map.find_or_insert(key, inserted);
                const auto [it, ref_inserted] =
                    reference.try_emplace(key, 0);
                ASSERT_EQ(inserted, ref_inserted) << "step " << i;
                ASSERT_EQ(*slot, it->second) << "step " << i;
                break;
            }
            default: {
                const std::uint64_t* found = map.find(key);
                const auto it = reference.find(key);
                if (it == reference.end()) {
                    EXPECT_EQ(found, nullptr) << "step " << i;
                } else {
                    ASSERT_NE(found, nullptr) << "step " << i;
                    EXPECT_EQ(*found, it->second) << "step " << i;
                }
                break;
            }
        }
        ASSERT_EQ(map.size(), reference.size()) << "step " << i;
    }
    // Full sweep at the end: every surviving entry agrees.
    std::size_t seen = 0;
    map.for_each([&](std::uint64_t k, std::uint64_t v) {
        ++seen;
        const auto it = reference.find(k);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(seen, reference.size());
}

TEST(FlatMap64, EraseEverythingLeavesCleanTable) {
    FlatMap64 map(8);
    for (std::uint64_t k = 0; k < 2000; ++k) map.put(k * 7, k);
    for (std::uint64_t k = 0; k < 2000; ++k)
        ASSERT_TRUE(map.erase(k * 7)) << "key " << k * 7;
    EXPECT_EQ(map.size(), 0u);
    std::size_t seen = 0;
    map.for_each([&](std::uint64_t, std::uint64_t) { ++seen; });
    EXPECT_EQ(seen, 0u);
    // The emptied table still inserts correctly.
    for (std::uint64_t k = 0; k < 100; ++k) map.put(k, k + 1);
    for (std::uint64_t k = 0; k < 100; ++k) {
        ASSERT_NE(map.find(k), nullptr);
        EXPECT_EQ(*map.find(k), k + 1);
    }
}

TEST(FlatMap64, DifferentialAgainstUnorderedMap) {
    // splitmix64 stream of mixed inserts and overwrites; the reference
    // semantics are exactly std::unordered_map's.
    std::uint64_t state = 0x243f6a8885a308d3ULL;
    const auto next = [&state] {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };

    FlatMap64 map;
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    for (int i = 0; i < 20000; ++i) {
        // Narrow key range so overwrites and repeat-lookups are common.
        const std::uint64_t key = next() % 4096;
        const std::uint64_t value = next();
        if (i % 3 == 0) {
            map.put(key, value);
            reference[key] = value;
        } else {
            bool inserted = false;
            std::uint64_t* slot = map.find_or_insert(key, inserted);
            const auto [it, ref_inserted] = reference.try_emplace(key, 0);
            EXPECT_EQ(inserted, ref_inserted);
            EXPECT_EQ(*slot, it->second);
            *slot = value;
            it->second = value;
        }
    }
    EXPECT_EQ(map.size(), reference.size());
    std::size_t seen = 0;
    map.for_each([&](std::uint64_t k, std::uint64_t v) {
        ++seen;
        const auto it = reference.find(k);
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(seen, reference.size());
}

}  // namespace
}  // namespace spmvcache
