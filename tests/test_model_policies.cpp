// Tests for the alternative sector policies of §3.1/§3.2.2 and for model
// option handling (interleave quantum, partitioning policy, thread
// scaling) — the knobs a user of the model actually turns.
#include <gtest/gtest.h>

#include "model/analytic.hpp"
#include "model/method_a.hpp"
#include "sparse/gen/random.hpp"

namespace spmvcache {
namespace {

A64fxConfig scaled_machine() {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};
    return cfg;
}

// Class-3 regime on the scaled machine: x = 512 KiB does not fit any
// partition, y + rowptr another 1 MiB.
const CsrMatrix& class3_matrix() {
    static const CsrMatrix m = gen::random_uniform(65536, 65536, 16, 7);
    return m;
}

TEST(SectorPolicies, IsolatingRowptrAndYFreesRoomForX) {
    // §3.1: for class 3 "it may be better to additionally assign rowptr
    // and y to the small partition, leaving more space for x in the
    // other". With the same way split, the x misses under
    // IsolateMatrixRowptrY must not exceed those under IsolateMatrix.
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {4};
    o.predict_l1 = false;

    o.policy = SectorPolicy::IsolateMatrix;
    const auto isolate_matrix = run_method_a(class3_matrix(), o);
    o.policy = SectorPolicy::IsolateMatrixRowptrY;
    const auto isolate_all = run_method_a(class3_matrix(), o);

    EXPECT_LE(isolate_all.at(4).l2_x_misses,
              isolate_matrix.at(4).l2_x_misses * 1.01);
    // The streaming y/rowptr misses move into partition 1 but stay misses,
    // so total misses change only through x.
    EXPECT_LT(isolate_all.at(4).l2_misses,
              isolate_matrix.at(4).l2_misses * 1.10);
}

TEST(SectorPolicies, UnpartitionedEntryIgnoresPolicy) {
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {4};
    o.predict_l1 = false;
    o.policy = SectorPolicy::IsolateMatrix;
    const auto a = run_method_a(class3_matrix(), o);
    o.policy = SectorPolicy::IsolateMatrixRowptrY;
    const auto b = run_method_a(class3_matrix(), o);
    EXPECT_DOUBLE_EQ(a.at(0).l2_misses, b.at(0).l2_misses);
}

TEST(ModelOptions, QuantumChangesInterleavingNotTotals) {
    // Coarser interleaving quanta shuffle the concurrent reuse distances,
    // but the per-thread reference streams (and thus streaming totals)
    // are identical; predictions should move only slightly.
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 4;
    o.l2_way_options = {4};
    o.predict_l1 = false;
    const auto fine = run_method_a(class3_matrix(), o);
    o.quantum = 64;
    const auto coarse = run_method_a(class3_matrix(), o);
    EXPECT_NEAR(coarse.at(4).l2_misses / fine.at(4).l2_misses, 1.0, 0.15);
}

TEST(ModelOptions, PartitionPolicyAffectsSegmentShares) {
    // A heavily skewed matrix: balanced-nonzeros moves rows between the
    // two segments, changing per-segment streaming shares but not the
    // total matrix-data misses.
    const CsrMatrix m = gen::random_variable_rows(32768, 32768, 24, 2.0, 3);
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 4;
    o.l2_way_options = {4};
    o.predict_l1 = false;
    o.partition = PartitionPolicy::BalancedRows;
    const auto rows = run_method_a(m, o);
    o.partition = PartitionPolicy::BalancedNonzeros;
    const auto nnz = run_method_a(m, o);
    const auto stream = streaming_misses(m.rows(), m.nnz(), 256);
    EXPECT_NEAR(nnz.at(4).l2_misses, rows.at(4).l2_misses,
                0.10 * static_cast<double>(stream.total()));
}

TEST(ModelOptions, RejectsInvalidWayCounts) {
    ModelOptions o;
    o.machine = scaled_machine();
    o.l2_way_options = {16};  // sector 0 must keep at least one way
    EXPECT_THROW(run_method_a(class3_matrix(), o), ContractViolation);
    o.l2_way_options = {0};
    EXPECT_THROW(run_method_a(class3_matrix(), o), ContractViolation);
}

TEST(ModelOptions, RejectsMoreThreadsThanCores) {
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 5;  // machine has 4 cores
    EXPECT_THROW(run_method_a(class3_matrix(), o), ContractViolation);
}

TEST(ModelSeconds, ReportedPositive) {
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    o.l2_way_options = {4};
    o.predict_l1 = false;
    const auto result = run_method_a(class3_matrix(), o);
    EXPECT_GT(result.seconds, 0.0);
}

}  // namespace
}  // namespace spmvcache
