// Integration tests for the multi-core memory hierarchy: counter
// semantics, NUMA segment routing, write-back paths, prefetch accounting,
// and the PMU correction formulas of §4.3/§4.4.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"

namespace spmvcache {
namespace {

// Two cores per segment, two segments, small caches, prefetch off unless
// stated: keeps behaviour exactly predictable.
A64fxConfig small_machine(bool prefetch = false) {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 0};   // 4 sets x 2 ways
    cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 0};   // 8 sets x 4 ways
    cfg.l1_prefetch = PrefetchConfig{prefetch, 4, 4, 8};
    cfg.l2_prefetch = PrefetchConfig{prefetch, 8, 4, 8};
    return cfg;
}

TEST(Hierarchy, ColdMissFillsBothLevels) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 100, 0, false);
    const auto l1 = sim.l1_total();
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l1.accesses, 1u);
    EXPECT_EQ(l1.hits, 0u);
    EXPECT_EQ(l1.refills, 1u);
    EXPECT_EQ(l2.demand_accesses, 1u);
    EXPECT_EQ(l2.demand_fills, 1u);
    EXPECT_EQ(l2.fills(), 1u);
}

TEST(Hierarchy, RepeatHitsInL1Only) {
    MemoryHierarchy sim(small_machine());
    for (int i = 0; i < 5; ++i) sim.demand_access(0, 100, 0, false);
    const auto l1 = sim.l1_total();
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l1.accesses, 5u);
    EXPECT_EQ(l1.hits, 4u);
    EXPECT_EQ(l2.demand_accesses, 1u);
}

TEST(Hierarchy, L1EvictionStillHitsL2) {
    MemoryHierarchy sim(small_machine());
    // L1 has 2 ways x 4 sets: lines 0, 4, 8 share L1 set 0 (line % 4) and
    // L2 set (line % 8) 0, 4, 0 -> L2 set 0 has 4 ways, all fit.
    sim.demand_access(0, 0, 0, false);
    sim.demand_access(0, 4, 0, false);
    sim.demand_access(0, 8, 0, false);  // evicts line 0 from L1
    sim.demand_access(0, 0, 0, false);  // L1 miss, L2 hit
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l2.demand_accesses, 4u);
    EXPECT_EQ(l2.demand_hits, 1u);
    EXPECT_EQ(l2.demand_fills, 3u);
}

TEST(Hierarchy, CoresRouteToTheirNumaSegment) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 7, 0, false);   // cores 0,1 -> segment 0
    sim.demand_access(3, 7, 0, false);   // cores 2,3 -> segment 1
    EXPECT_EQ(sim.l2_segment(0).demand_fills, 1u);
    EXPECT_EQ(sim.l2_segment(1).demand_fills, 1u);
    // Shared data is replicated per segment (§3.1's observation).
    EXPECT_TRUE(sim.l2_cache(0).contains(7));
    EXPECT_TRUE(sim.l2_cache(1).contains(7));
}

TEST(Hierarchy, PrivateL1PerCore) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 7, 0, false);
    sim.demand_access(1, 7, 0, false);  // same segment, own L1 -> L2 hit
    const auto l2 = sim.l2_segment(0);
    EXPECT_EQ(l2.demand_fills, 1u);
    EXPECT_EQ(l2.demand_hits, 1u);
    EXPECT_EQ(sim.l1_total().refills, 2u);
}

TEST(Hierarchy, DirtyL1EvictionWritesBackToL2) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 0, 0, /*write=*/true);
    sim.demand_access(0, 4, 0, false);
    sim.demand_access(0, 8, 0, false);  // evicts dirty line 0 from L1
    EXPECT_EQ(sim.l1_total().writebacks, 1u);
    // L2 still has line 0; evict it from L2 and expect a memory writeback.
    // L2 set 0 currently: 0, 8 (4 ways) - fill more set-0 lines.
    for (std::uint64_t line : {16, 24, 32, 40})
        sim.demand_access(0, line, 0, false);
    EXPECT_GE(sim.l2_total().writebacks, 1u);
}

TEST(Hierarchy, CounterResetKeepsCacheContents) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 100, 0, false);
    sim.reset_counters();
    sim.demand_access(0, 100, 0, false);
    const auto l1 = sim.l1_total();
    EXPECT_EQ(l1.accesses, 1u);
    EXPECT_EQ(l1.hits, 1u);
    EXPECT_EQ(sim.l2_total().demand_accesses, 0u);
}

TEST(Hierarchy, PrefetchFillsCountedSeparately) {
    MemoryHierarchy sim(small_machine(/*prefetch=*/true));
    // A sequential stream: the L2 prefetcher should run ahead.
    for (std::uint64_t line = 0; line < 16; ++line)
        sim.demand_access(0, line, 0, false);
    const auto l2 = sim.l2_total();
    EXPECT_GT(l2.prefetch_fills, 0u);
    // Demand accesses that land on prefetched lines count as swaps and do
    // not refetch from memory.
    EXPECT_GT(l2.swap_dm, 0u);
    // The corrected miss count never exceeds the total touched lines plus
    // the combined prefetch frontier (the L2 prefetcher trains on L1
    // prefetch requests and runs its distance ahead of them).
    EXPECT_LE(l2.fills(), 16u + sim.config().l1_prefetch.distance +
                              sim.config().l2_prefetch.distance);
    // Raw REFILL minus SWAP minus PRF equals fills (the paper's formula).
    EXPECT_EQ(l2.refill_raw() - l2.swap_dm - l2.prefetch_fills, l2.fills());
}

TEST(Hierarchy, PrefetchReducesDemandMisses) {
    MemoryHierarchy no_pf(small_machine(false));
    MemoryHierarchy pf(small_machine(true));
    for (std::uint64_t line = 0; line < 64; ++line) {
        no_pf.demand_access(0, line, 0, false);
        pf.demand_access(0, line, 0, false);
    }
    EXPECT_LT(pf.l2_total().demand_misses(),
              no_pf.l2_total().demand_misses());
}

TEST(Hierarchy, SmallSectorCausesPrematurePrefetchEvictions) {
    // The §4.3 effect in miniature: two interleaved sector-1 streams, a
    // 1-way sector and a prefetch distance deeper than the sector can
    // hold -> prefetched lines die before first use.
    A64fxConfig cfg = small_machine(true);
    cfg.l2_prefetch.distance = 16;
    MemoryHierarchy sim(cfg);
    sim.set_sector_ways(SectorWays{1, 0});
    for (std::uint64_t i = 0; i < 64; ++i) {
        sim.demand_access(0, 1000 + i, 1, false);
        sim.demand_access(0, 5000 + i, 1, false);
    }
    EXPECT_GT(sim.l2_total().prefetch_unused_evictions, 0u);
}

TEST(Hierarchy, SectorReconfigurationAppliesToAllCaches) {
    MemoryHierarchy sim(small_machine());
    sim.set_sector_ways(SectorWays{2, 1});
    EXPECT_EQ(sim.l1_cache(0).config().sector1_ways, 1u);
    EXPECT_EQ(sim.l1_cache(3).config().sector1_ways, 1u);
    EXPECT_EQ(sim.l2_cache(1).config().sector1_ways, 2u);
}

TEST(Hierarchy, MemoryBytesFormulaCountsFillsAndWritebacks) {
    MemoryHierarchy sim(small_machine());
    sim.demand_access(0, 0, 0, false);
    sim.demand_access(0, 8, 0, false);
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l2.memory_bytes(16), 2u * 16);
}

TEST(Hierarchy, RejectsOutOfRangeCore) {
    MemoryHierarchy sim(small_machine());
    EXPECT_THROW(sim.demand_access(99, 0, 0, false), ContractViolation);
}

}  // namespace
}  // namespace spmvcache
