// Tests for the kernel engine: every variant against the sequential
// spmv_csr reference across team sizes and first-touch modes, the
// bit-exactness contract of the scalar/prefetch variants, multi-iteration
// semantics, variant parsing, and the kernel.exec fault point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/engine.hpp"
#include "kernels/spmv.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> v(n);
    for (auto& e : v) e = rng.uniform(-1.0, 1.0);
    return v;
}

/// All concrete variants (Auto resolves to one of these).
const KernelVariant kAllVariants[] = {
    KernelVariant::CsrScalar, KernelVariant::CsrPrefetch,
    KernelVariant::CsrSimd,   KernelVariant::SellScalar,
    KernelVariant::SellSimd,  KernelVariant::CsrMerge,
};

/// Variants bound to Listing 1's exact accumulation order.
bool is_bitwise(KernelVariant v) {
    return v == KernelVariant::CsrScalar || v == KernelVariant::CsrPrefetch;
}

class EngineDifferential
    : public testing::TestWithParam<
          std::tuple<KernelVariant, std::int64_t, bool>> {};

std::string differential_name(
    const testing::TestParamInfo<EngineDifferential::ParamType>& info) {
    std::string name = to_string(std::get<0>(info.param));
    for (auto& ch : name)
        if (ch == '-') ch = '_';
    return name + "_t" + std::to_string(std::get<1>(info.param)) +
           (std::get<2>(info.param) ? "_touch" : "_borrow");
}

TEST_P(EngineDifferential, MatchesSequentialKernel) {
    const auto [variant, threads, first_touch] = GetParam();
    const CsrMatrix a = gen::random_variable_rows(353, 353, 9.0, 1.5, 21);
    const auto x = random_vector(353, 1);
    auto y_ref = random_vector(353, 2);
    auto y_eng = y_ref;
    spmv_csr(a, x, y_ref);

    EngineOptions options;
    options.threads = threads;
    options.variant = variant;
    options.first_touch = first_touch;
    KernelEngine engine(a, options);
    EXPECT_EQ(engine.info().variant, variant);
    EXPECT_EQ(engine.info().threads, threads);
    engine.run(x, y_eng);

    for (std::size_t r = 0; r < y_ref.size(); ++r) {
        if (is_bitwise(variant)) {
            // Same accumulation order as spmv_csr: bit-for-bit equal.
            EXPECT_EQ(std::memcmp(&y_ref[r], &y_eng[r], sizeof(double)), 0)
                << to_string(variant) << " row " << r;
        } else {
            // SIMD/SELL/merge reorder the per-row sums (fma-tolerant).
            EXPECT_NEAR(y_eng[r], y_ref[r],
                        1e-12 * std::max(std::abs(y_ref[r]), 1.0))
                << to_string(variant) << " row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsThreadsTouch, EngineDifferential,
    testing::Combine(testing::ValuesIn(kAllVariants),
                     testing::Values(std::int64_t{1}, std::int64_t{2},
                                     std::int64_t{5}),
                     testing::Bool()),
    differential_name);

TEST(KernelEngine, RunIterationsEqualsRepeatedRuns) {
    const CsrMatrix a = gen::random_uniform(200, 200, 8, 3);
    const auto x = random_vector(200, 4);
    for (const KernelVariant v : kAllVariants) {
        EngineOptions options;
        options.threads = 3;
        options.variant = v;
        KernelEngine engine(a, options);

        auto y_many = random_vector(200, 5);
        auto y_single = y_many;
        engine.run_iterations(x, y_many, 4);
        for (int i = 0; i < 4; ++i) engine.run(x, y_single);
        for (std::size_t r = 0; r < 200; ++r)
            EXPECT_EQ(std::memcmp(&y_many[r], &y_single[r], sizeof(double)),
                      0)
                << to_string(v) << " row " << r;
    }
}

TEST(KernelEngine, ZeroIterationsIsANoOp) {
    const CsrMatrix a = gen::random_uniform(50, 50, 4, 6);
    const auto x = random_vector(50, 7);
    auto y = random_vector(50, 8);
    const auto y_before = y;
    KernelEngine engine(a, EngineOptions{});
    engine.run_iterations(x, y, 0);
    EXPECT_EQ(y, y_before);
}

TEST(KernelEngine, AutoResolvesToConcreteVariant) {
    const CsrMatrix a = gen::random_uniform(300, 300, 12, 9);
    EngineOptions options;
    options.threads = 2;
    options.variant = KernelVariant::Auto;
    KernelEngine engine(a, options);
    EXPECT_NE(engine.info().variant, KernelVariant::Auto);
    // Auto must still produce correct results, whatever it picked.
    const auto x = random_vector(300, 10);
    auto y_ref = random_vector(300, 11);
    auto y_eng = y_ref;
    spmv_csr(a, x, y_ref);
    engine.run(x, y_eng);
    for (std::size_t r = 0; r < 300; ++r)
        EXPECT_NEAR(y_eng[r], y_ref[r],
                    1e-12 * std::max(std::abs(y_ref[r]), 1.0));
}

TEST(KernelEngine, PrefetchDistanceIsSurfacedAndPinnable) {
    const CsrMatrix a = gen::random_uniform(400, 400, 10, 13);
    EngineOptions options;
    options.variant = KernelVariant::CsrPrefetch;
    options.prefetch_distance = 24;
    KernelEngine pinned(a, options);
    EXPECT_EQ(pinned.info().prefetch_distance, 24);

    options.prefetch_distance = 0;  // auto-calibrate
    KernelEngine calibrated(a, options);
    EXPECT_GE(calibrated.info().prefetch_distance, 0);
    // Calibration must not change results (prefetch is semantically inert).
    const auto x = random_vector(400, 14);
    auto y_ref = random_vector(400, 15);
    auto y_eng = y_ref;
    spmv_csr(a, x, y_ref);
    calibrated.run(x, y_eng);
    for (std::size_t r = 0; r < 400; ++r)
        EXPECT_EQ(std::memcmp(&y_ref[r], &y_eng[r], sizeof(double)), 0);
}

TEST(KernelEngine, ExternalPartitionThreadCountWins) {
    const CsrMatrix a = gen::random_uniform(120, 120, 6, 17);
    const RowPartition partition(a, 4, PartitionPolicy::BalancedRows);
    EngineOptions options;
    options.threads = 1;  // overridden by the partition
    options.variant = KernelVariant::CsrScalar;
    KernelEngine engine(a, partition, options);
    EXPECT_EQ(engine.info().threads, 4);
}

TEST(KernelEngine, MakeVectorFillsEverySlot) {
    const CsrMatrix a = gen::random_uniform(97, 97, 5, 19);
    EngineOptions options;
    options.threads = 3;
    KernelEngine engine(a, options);
    const FirstTouchVector v = engine.make_vector(97, 2.5);
    ASSERT_EQ(v.size(), 97u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v.data()[i], 2.5) << "slot " << i;
}

TEST(KernelEngine, EmptyMatrix) {
    CsrBuilder b(10, 10);
    const CsrMatrix a = std::move(b).finish();
    for (const KernelVariant v : kAllVariants) {
        EngineOptions options;
        options.threads = 2;
        options.variant = v;
        KernelEngine engine(a, options);
        const auto x = random_vector(10, 23);
        std::vector<double> y(10, 3.5);
        engine.run(x, y);
        for (const double e : y)
            EXPECT_DOUBLE_EQ(e, 3.5) << to_string(v);
    }
}

TEST(KernelEngine, SpmvCsrParallelStaysBitwiseOnEngine) {
    // The public entry point now routes through the engine; its contract
    // of matching the sequential kernel exactly must survive the move.
    const CsrMatrix a = gen::random_variable_rows(500, 500, 7.0, 2.0, 29);
    const auto x = random_vector(500, 30);
    auto y_seq = random_vector(500, 31);
    auto y_par = y_seq;
    spmv_csr(a, x, y_seq);
    for (const std::int64_t threads : {1, 2, 7}) {
        auto y = y_par;
        const RowPartition partition(a, threads,
                                     PartitionPolicy::BalancedNonzeros);
        spmv_csr_parallel(a, x, y, partition);
        for (std::size_t r = 0; r < 500; ++r)
            EXPECT_EQ(std::memcmp(&y_seq[r], &y[r], sizeof(double)), 0)
                << threads << " threads, row " << r;
    }
}

TEST(KernelEngine, ParsesEveryVariantName) {
    for (const KernelVariant v : kAllVariants) {
        const Result<KernelVariant> parsed = parse_kernel_variant(
            to_string(v));
        ASSERT_TRUE(parsed.ok()) << to_string(v);
        EXPECT_EQ(parsed.value(), v);
    }
    const Result<KernelVariant> auto_parsed = parse_kernel_variant("auto");
    ASSERT_TRUE(auto_parsed.ok());
    EXPECT_EQ(auto_parsed.value(), KernelVariant::Auto);
    const Result<KernelVariant> bad = parse_kernel_variant("csc");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::ValidationError);
}

TEST(KernelEngine, KernelExecFaultPointFires) {
    const CsrMatrix a = gen::random_uniform(60, 60, 4, 37);
    KernelEngine engine(a, EngineOptions{});
    const auto x = random_vector(60, 38);
    auto y = random_vector(60, 39);
    const auto y_before = y;
    {
        fault::ScopedFault f("kernel.exec");
        EXPECT_THROW(engine.run(x, y), fault::FaultInjectedError);
        EXPECT_EQ(y, y_before);  // fault fires before any work
    }
    engine.run(x, y);  // disarmed: runs normally
    EXPECT_NE(y, y_before);
}

}  // namespace
}  // namespace spmvcache
