// Fault-injection harness tests: arming semantics, deterministic triggers,
// and the named injection points threaded through the parser, the trace
// generator, and the reuse engine.
#include <gtest/gtest.h>

#include <sstream>

#include "reuse/olken.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "trace/layout.hpp"
#include "trace/spmv_trace.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

class FaultTest : public ::testing::Test {
protected:
    void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultTest, DisarmedPointsNeverFire) {
    EXPECT_FALSE(fault::any_armed());
    EXPECT_FALSE(fault::should_fail("nonexistent.point"));
    EXPECT_TRUE(fault::maybe_fail("nonexistent.point").ok());
    EXPECT_NO_THROW(fault::maybe_throw("nonexistent.point"));
}

TEST_F(FaultTest, FailAfterCounterFiresOnNthHit) {
    fault::arm("t.counter", {.fail_after = 2});
    EXPECT_TRUE(fault::any_armed());
    EXPECT_FALSE(fault::should_fail("t.counter"));  // hit 0
    EXPECT_FALSE(fault::should_fail("t.counter"));  // hit 1
    EXPECT_TRUE(fault::should_fail("t.counter"));   // hit 2 fires
    // Armed with once=true (default): no further firing.
    EXPECT_FALSE(fault::should_fail("t.counter"));
    EXPECT_EQ(fault::hits("t.counter"), 3);
}

TEST_F(FaultTest, RepeatingFaultKeepsFiring) {
    fault::arm("t.repeat", {.fail_after = 0, .once = false});
    EXPECT_TRUE(fault::should_fail("t.repeat"));
    EXPECT_TRUE(fault::should_fail("t.repeat"));
    EXPECT_TRUE(fault::should_fail("t.repeat"));
}

TEST_F(FaultTest, SeededProbabilityIsDeterministic) {
    const auto run = [](std::uint64_t seed) {
        fault::arm("t.prob",
                   {.probability = 0.5, .seed = seed, .once = false});
        std::string pattern;
        for (int i = 0; i < 64; ++i)
            pattern += fault::should_fail("t.prob") ? '1' : '0';
        fault::disarm("t.prob");
        return pattern;
    };
    const std::string a = run(7);
    const std::string b = run(7);
    const std::string c = run(8);
    EXPECT_EQ(a, b);          // same seed, same firing pattern
    EXPECT_NE(a, c);          // different seed diverges
    EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 fires sometimes
    EXPECT_NE(a.find('0'), std::string::npos);  // ... but not always
}

TEST_F(FaultTest, MaybeFailReportsConfiguredCode) {
    fault::arm("t.code", {.code = ErrorCode::ResourceError});
    const Status s = fault::maybe_fail("t.code");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ResourceError);
    EXPECT_NE(s.render().find("t.code"), std::string::npos);
}

TEST_F(FaultTest, MaybeThrowCarriesTypedError) {
    fault::arm("t.throw");
    try {
        fault::maybe_throw("t.throw");
        FAIL() << "armed point must throw";
    } catch (const fault::FaultInjectedError& e) {
        EXPECT_EQ(e.code(), ErrorCode::FaultInjected);
    }
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit) {
    {
        fault::ScopedFault f("t.scoped");
        EXPECT_TRUE(fault::any_armed());
    }
    EXPECT_FALSE(fault::any_armed());
    EXPECT_FALSE(fault::should_fail("t.scoped"));
}

TEST_F(FaultTest, ParserEntryPointProducesTypedError) {
    fault::ScopedFault f("mm.read_entry", {.fail_after = 1});
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "3 3 3.0\n");
    const Result<CsrMatrix> r = try_read_matrix_market(ss);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::FaultInjected);
    // The error context names the entry that was being read.
    EXPECT_NE(r.error().render().find("entry 2"), std::string::npos);
}

TEST_F(FaultTest, ParserHeaderAndSizeLinePointsFire) {
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n";
    for (const char* point : {"mm.header", "mm.size_line"}) {
        fault::ScopedFault f(point);
        std::stringstream ss(text);
        const Result<CsrMatrix> r = try_read_matrix_market(ss);
        ASSERT_FALSE(r.ok()) << point;
        EXPECT_EQ(r.code(), ErrorCode::FaultInjected) << point;
        EXPECT_NE(r.error().render().find(point), std::string::npos);
    }
}

TEST_F(FaultTest, ParserOpenPointFailsFileReads) {
    fault::ScopedFault f("mm.open");
    const Result<CsrMatrix> r =
        try_read_matrix_market_file("/definitely/missing.mtx");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::FaultInjected);
}

TEST_F(FaultTest, TraceGeneratePointAborts) {
    const CsrMatrix m = gen::stencil_2d_5pt(8, 8);
    const SpmvLayout layout(m, 256);
    fault::ScopedFault f("trace.generate");
    EXPECT_THROW((void)collect_spmv_trace(m, layout, TraceConfig{}),
                 fault::FaultInjectedError);
}

TEST_F(FaultTest, TraceWorkerFaultPropagatesAcrossThreads) {
    const CsrMatrix m = gen::stencil_2d_5pt(16, 16);
    const SpmvLayout layout(m, 256);
    fault::ScopedFault f("trace.worker", {.fail_after = 2});
    EXPECT_THROW((void)record_spmv_trace_mcs(m, layout, /*threads=*/4,
                                             /*chunk_refs=*/64,
                                             PartitionPolicy::BalancedRows),
                 fault::FaultInjectedError);
}

TEST_F(FaultTest, ReuseEngineAccessPointFires) {
    OlkenEngine engine;
    EXPECT_EQ(engine.access(1), kInfiniteDistance);  // disarmed: normal
    fault::ScopedFault f("reuse.access");
    EXPECT_THROW((void)engine.access(2), fault::FaultInjectedError);
}

TEST_F(FaultTest, RearmingResetsCounters) {
    fault::arm("t.rearm", {.fail_after = 5});
    (void)fault::should_fail("t.rearm");
    (void)fault::should_fail("t.rearm");
    EXPECT_EQ(fault::hits("t.rearm"), 2);
    fault::arm("t.rearm", {.fail_after = 5});
    EXPECT_EQ(fault::hits("t.rearm"), 0);
}

}  // namespace
}  // namespace spmvcache
