// Unit tests for src/sparse: COO assembly, CSR invariants, Matrix Market
// I/O, matrix statistics, row partitioning.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"
#include "sparse/gen/suite.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/partition.hpp"
#include "util/error.hpp"

namespace spmvcache {
namespace {

CsrMatrix small_matrix() {
    // The 4x4, 7-nonzero example of Fig. 1a:
    // row 0: cols 1,2;  row 1: col 0;  row 2: cols 2,3;  row 3: cols 1,3.
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0);
    coo.add(0, 2, 2.0);
    coo.add(1, 0, 3.0);
    coo.add(2, 2, 4.0);
    coo.add(2, 3, 5.0);
    coo.add(3, 1, 6.0);
    coo.add(3, 3, 7.0);
    return std::move(coo).to_csr();
}

TEST(Coo, ConvertsToCsrSorted) {
    CooMatrix coo(3, 3);
    coo.add(2, 1, 1.0);
    coo.add(0, 2, 2.0);
    coo.add(0, 0, 3.0);
    const CsrMatrix m = std::move(coo).to_csr();
    m.validate();
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.rowptr()[0], 0);
    EXPECT_EQ(m.rowptr()[1], 2);
    EXPECT_EQ(m.colidx()[0], 0);
    EXPECT_EQ(m.colidx()[1], 2);
    EXPECT_DOUBLE_EQ(m.values()[0], 3.0);
}

TEST(Coo, CombinesDuplicates) {
    CooMatrix coo(2, 2);
    coo.add(1, 1, 1.5);
    coo.add(1, 1, 2.5);
    const CsrMatrix m = std::move(coo).to_csr();
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_DOUBLE_EQ(m.values()[0], 4.0);
}

TEST(Coo, RejectsOutOfRange) {
    CooMatrix coo(2, 2);
    EXPECT_THROW(coo.add(2, 0, 1.0), ContractViolation);
    EXPECT_THROW(coo.add(0, -1, 1.0), ContractViolation);
}

TEST(CsrBuilder, HandlesEmptyRows) {
    CsrBuilder b(5, 5);
    b.push(1, 2, 1.0);
    b.push(3, 0, 2.0);
    b.push(3, 4, 3.0);
    const CsrMatrix m = std::move(b).finish();
    m.validate();
    EXPECT_EQ(m.row_nnz(0), 0);
    EXPECT_EQ(m.row_nnz(1), 1);
    EXPECT_EQ(m.row_nnz(2), 0);
    EXPECT_EQ(m.row_nnz(3), 2);
    EXPECT_EQ(m.row_nnz(4), 0);
}

TEST(CsrBuilder, RejectsUnsortedColumns) {
    CsrBuilder b(2, 4);
    b.push(0, 2, 1.0);
    EXPECT_THROW(b.push(0, 1, 1.0), ContractViolation);
}

TEST(CsrBuilder, RejectsBackwardRows) {
    CsrBuilder b(3, 3);
    b.push(2, 0, 1.0);
    EXPECT_THROW(b.push(1, 0, 1.0), ContractViolation);
}

TEST(Csr, ByteSizesFollowPhysicalWidth) {
    const CsrMatrix m = small_matrix();
    // Narrow storage: 8-byte values, 4-byte colidx, 4-byte rowptr (M+1
    // entries). The paper's (4, 8) accounting is SpmvLayout's default,
    // independent of these physical sizes.
    EXPECT_EQ(m.values_bytes(), 7u * 8);
    EXPECT_EQ(m.colidx_bytes(), 7u * 4);
    EXPECT_EQ(m.rowptr_bytes(), 5u * 4);
    EXPECT_EQ(m.x_bytes(), 4u * 8);
    EXPECT_EQ(m.y_bytes(), 4u * 8);
    EXPECT_EQ(m.working_set_bytes(),
              m.values_bytes() + m.colidx_bytes() + m.rowptr_bytes() +
                  m.x_bytes() + m.y_bytes());

    const CsrMatrix64 w = convert_csr_width<Idx64>(CsrView(m));
    EXPECT_EQ(w.values_bytes(), 7u * 8);
    EXPECT_EQ(w.colidx_bytes(), 7u * 8);
    EXPECT_EQ(w.rowptr_bytes(), 5u * 8);
}

TEST(Csr, PermutedSymmetricPreservesEntries) {
    const CsrMatrix m = small_matrix();
    const std::vector<std::int32_t> perm = {2, 0, 3, 1};  // new -> old
    const CsrMatrix p = m.permuted_symmetric(perm);
    p.validate();
    EXPECT_EQ(p.nnz(), m.nnz());
    // Entry (0,1)=1.0 in m maps to (new_of(0), new_of(1)) = (1, 3).
    const auto dense_m = to_dense(m);
    const auto dense_p = to_dense(p);
    std::vector<std::int32_t> new_of(4);
    for (int n = 0; n < 4; ++n) new_of[static_cast<std::size_t>(perm[n])] = n;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(
                dense_p[static_cast<std::size_t>(new_of[r]) * 4 +
                        static_cast<std::size_t>(new_of[c])],
                dense_m[static_cast<std::size_t>(r) * 4 +
                        static_cast<std::size_t>(c)]);
}

TEST(MatrixMarket, RoundTripsGeneral) {
    const CsrMatrix m = small_matrix();
    std::stringstream ss;
    write_matrix_market(ss, m);
    const CsrMatrix back = read_matrix_market(ss);
    back.validate();
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(to_dense(back), to_dense(m));
}

TEST(MatrixMarket, ExpandsSymmetric) {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "% comment\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 -1.0\n"
        "3 2 -1.0\n");
    const CsrMatrix m = read_matrix_market(ss);
    m.validate();
    EXPECT_EQ(m.nnz(), 5);  // diagonal once, off-diagonals mirrored
    const auto dense = to_dense(m);
    EXPECT_DOUBLE_EQ(dense[0 * 3 + 1], -1.0);
    EXPECT_DOUBLE_EQ(dense[1 * 3 + 0], -1.0);
}

TEST(MatrixMarket, ReadsPatternAsOnes) {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const CsrMatrix m = read_matrix_market(ss);
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.values()[0], 1.0);
}

TEST(MatrixMarket, RejectsComplexField) {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n"
        "1 1 1.0 0.0\n");
    EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedStream) {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(MatrixStats, ComputesPaperQuantities) {
    const CsrMatrix m = small_matrix();
    const MatrixStats s = compute_stats(m);
    EXPECT_EQ(s.rows, 4);
    EXPECT_EQ(s.nnz, 7);
    EXPECT_DOUBLE_EQ(s.mean_nnz_per_row, 7.0 / 4.0);  // mu_K
    EXPECT_GT(s.cv_nnz_per_row, 0.0);
    EXPECT_EQ(s.max_nnz_per_row, 2);
    EXPECT_EQ(s.empty_rows, 0);
    EXPECT_EQ(s.bandwidth, 2);  // entry (3,1)
}

TEST(MatrixStats, CvZeroForUniformRows) {
    CsrBuilder b(3, 3);
    for (int r = 0; r < 3; ++r) b.push(r, static_cast<std::int32_t>(r), 1.0);
    const auto s = compute_stats(std::move(b).finish());
    EXPECT_DOUBLE_EQ(s.cv_nnz_per_row, 0.0);
}

TEST(Partition, BalancedRowsMatchesOpenMpStatic) {
    const CsrMatrix m = small_matrix();
    const RowPartition p(m, 3, PartitionPolicy::BalancedRows);
    // ceil(4/3) = 2 rows per thread: [0,2), [2,4), [4,4).
    EXPECT_EQ(p.range(0), (RowRange{0, 2}));
    EXPECT_EQ(p.range(1), (RowRange{2, 4}));
    EXPECT_EQ(p.range(2), (RowRange{4, 4}));
}

TEST(Partition, RangesCoverAllRowsExactlyOnce) {
    const CsrMatrix m = small_matrix();
    for (const auto policy :
         {PartitionPolicy::BalancedRows, PartitionPolicy::BalancedNonzeros}) {
        for (std::int64_t threads : {1, 2, 3, 4, 7}) {
            const RowPartition p(m, threads, policy);
            std::int64_t covered = 0;
            std::int64_t expected_begin = 0;
            for (const auto& range : p.ranges()) {
                EXPECT_EQ(range.begin, expected_begin);
                EXPECT_LE(range.begin, range.end);
                covered += range.size();
                expected_begin = range.end;
            }
            EXPECT_EQ(covered, m.rows());
        }
    }
}

TEST(Partition, BalancedNonzerosEvensOutSkewedRows) {
    // One dense row of 90 nonzeros plus 30 single-entry rows.
    CsrBuilder b(31, 128);
    for (int c = 0; c < 90; ++c) b.push(0, c, 1.0);
    for (int r = 1; r <= 30; ++r) b.push(r, 0, 1.0);
    const CsrMatrix m = std::move(b).finish();

    const RowPartition rows(m, 2, PartitionPolicy::BalancedRows);
    const RowPartition nnz(m, 2, PartitionPolicy::BalancedNonzeros);
    EXPECT_GT(rows.imbalance(m), 1.4);
    EXPECT_LT(nnz.imbalance(m), rows.imbalance(m));
}

TEST(MatrixMarket, SuiteReadsDirectory) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(testing::TempDir()) / "spmv_mm_suite";
    fs::create_directories(dir);
    write_matrix_market_file((dir / "b_second.mtx").string(),
                             small_matrix());
    write_matrix_market_file((dir / "a_first.mtx").string(), small_matrix());
    {
        std::ofstream ignored(dir / "notes.txt");
        ignored << "not a matrix\n";
    }
    const auto suite = gen::matrix_market_suite(dir.string());
    ASSERT_EQ(suite.size(), 2u);  // .txt ignored
    EXPECT_EQ(suite[0].name, "a_first");
    EXPECT_EQ(suite[1].name, "b_second");
    const CsrMatrix loaded = suite[0].factory();
    EXPECT_EQ(loaded.nnz(), small_matrix().nnz());
    fs::remove_all(dir);
}

TEST(Csr, PermutedSymmetricRejectsNonSquare) {
    CsrBuilder b(2, 3);
    b.push(0, 1, 1.0);
    const CsrMatrix m = std::move(b).finish();
    const std::vector<std::int32_t> perm = {0, 1};
    EXPECT_THROW((void)m.permuted_symmetric(perm), ContractViolation);
}

TEST(Partition, MoreThreadsThanRows) {
    const CsrMatrix m = small_matrix();  // 4 rows
    const RowPartition p(m, 9, PartitionPolicy::BalancedRows);
    std::int64_t covered = 0;
    for (const auto& range : p.ranges()) covered += range.size();
    EXPECT_EQ(covered, 4);
    // Later threads get empty ranges, never negative ones.
    for (const auto& range : p.ranges()) EXPECT_GE(range.size(), 0);
}

TEST(Partition, ImbalanceIsOneForUniformMatrix) {
    CsrBuilder b(8, 8);
    for (int r = 0; r < 8; ++r) b.push(r, static_cast<std::int32_t>(r), 1.0);
    const CsrMatrix m = std::move(b).finish();
    const RowPartition p(m, 4, PartitionPolicy::BalancedRows);
    EXPECT_DOUBLE_EQ(p.imbalance(m), 1.0);
}

// ---------------------------------------------------------------------------
// Typed-result parser: hardened paths and the malformed-input corpus.

Result<CsrMatrix> parse(const std::string& text, bool strict = false) {
    std::stringstream ss(text);
    MmReadOptions options;
    options.strict = strict;
    return try_read_matrix_market(ss, options);
}

TEST(MatrixMarketHardened, TypedReadSucceedsOnValidInput) {
    std::stringstream ss;
    write_matrix_market(ss, small_matrix());
    const Result<CsrMatrix> r = try_read_matrix_market(ss);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().nnz(), 7);
}

TEST(MatrixMarketHardened, SizeLineTrailingGarbageRejectedInBothModes) {
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2 surprise\n"
        "1 1 1.0\n"
        "2 2 2.0\n";
    for (const bool strict : {false, true}) {
        const Result<CsrMatrix> r = parse(text, strict);
        ASSERT_FALSE(r.ok()) << "strict=" << strict;
        EXPECT_EQ(r.code(), ErrorCode::ParseError);
        EXPECT_EQ(r.error().line, 2);
    }
}

TEST(MatrixMarketHardened, NnzExceedingCellCountRejected) {
    const Result<CsrMatrix> r = parse(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 7\n"
        "1 1 1.0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ValidationError);
    EXPECT_EQ(r.error().line, 2);
    EXPECT_NE(r.error().message.find("exceeds"), std::string::npos);
}

TEST(MatrixMarketHardened, DimensionOverflowIsTypedNotUb) {
    // rows*cols overflows int64 but each factor parses fine.
    const Result<CsrMatrix> r = parse(
        "%%MatrixMarket matrix coordinate real general\n"
        "9223372036854775 2000000000 10\n"
        "1 1 1.0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::OverflowError);
    EXPECT_EQ(r.error().line, 2);
}

TEST(MatrixMarketHardened, DuplicatesCombinedLenientlyRejectedStrictly) {
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.5\n"
        "2 2 2.0\n"
        "1 1 0.5\n";
    const Result<CsrMatrix> lenient = parse(text, /*strict=*/false);
    ASSERT_TRUE(lenient.ok());
    EXPECT_EQ(lenient.value().nnz(), 2);  // duplicates summed
    EXPECT_DOUBLE_EQ(to_dense(lenient.value())[0], 2.0);

    const Result<CsrMatrix> strict = parse(text, /*strict=*/true);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.code(), ErrorCode::ValidationError);
    EXPECT_EQ(strict.error().line, 5);  // the duplicate, not the original
}

TEST(MatrixMarketHardened, StrictRejectsEntryTrailingGarbage) {
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0 extra\n";
    EXPECT_TRUE(parse(text, /*strict=*/false).ok());
    const Result<CsrMatrix> strict = parse(text, /*strict=*/true);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.code(), ErrorCode::ParseError);
    EXPECT_EQ(strict.error().line, 3);
}

TEST(MatrixMarketHardened, StrictRejectsDataAfterFinalEntry) {
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n"
        "2 2 9.0\n";
    EXPECT_TRUE(parse(text, /*strict=*/false).ok());
    const Result<CsrMatrix> strict = parse(text, /*strict=*/true);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.code(), ErrorCode::ParseError);
    EXPECT_EQ(strict.error().line, 4);
}

TEST(MatrixMarketHardened, OverlongLineRejectedNotBuffered) {
    MmReadOptions options;
    options.max_line_bytes = 64;
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n" +
                         std::string(1000, 'x') + "\n");
    const Result<CsrMatrix> r = try_read_matrix_market(ss, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ParseError);
    EXPECT_NE(r.error().message.find("exceeds maximum length"),
              std::string::npos);
}

TEST(MatrixMarketHardened, SymmetricNonSquareRejected) {
    const Result<CsrMatrix> r = parse(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 3 1\n"
        "1 1 1.0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ValidationError);
    EXPECT_EQ(r.error().line, 2);
}

TEST(MatrixMarketHardened, MissingFileIsResourceErrorWithPathContext) {
    const Result<CsrMatrix> r =
        try_read_matrix_market_file("/definitely/not/here.mtx");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ResourceError);
    EXPECT_NE(r.error().render().find("/definitely/not/here.mtx"),
              std::string::npos);
}

TEST(MatrixMarketHardened, LegacyWrapperStillThrowsRuntimeError) {
    std::stringstream ss("%%MatrixMarket matrix coordinate real general\n"
                         "2 2 7\n");
    EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
    try {
        std::stringstream again("garbage\n");
        (void)read_matrix_market(again);
        FAIL() << "must throw";
    } catch (const StatusError& e) {  // typed error rides along
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        EXPECT_EQ(e.error().line, 1);
    }
}

TEST(MatrixMarketHardened, CorruptCorpusAlwaysYieldsTypedLineNumberedError) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(SPMVCACHE_TEST_DATA_DIR) / "corrupt";
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".mtx") continue;
        ++files;
        const Result<CsrMatrix> r = try_read_matrix_market_file(
            entry.path().string(), MmReadOptions{.strict = true});
        ASSERT_FALSE(r.ok()) << entry.path();
        EXPECT_NE(r.code(), ErrorCode::Ok) << entry.path();
        EXPECT_NE(r.code(), ErrorCode::InternalError) << entry.path();
        EXPECT_GT(r.error().line, 0)
            << entry.path() << ": " << r.error().render();
    }
    EXPECT_GE(files, 9u);  // the corpus must actually be exercised
}

TEST(Coo, TryToCsrReportsDuplicateCount) {
    CooMatrix coo(3, 3);
    coo.add(0, 0, 1.0);
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 3.0);
    std::size_t duplicates = 0;
    Result<CsrMatrix> r = std::move(coo).try_to_csr(&duplicates);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(duplicates, 1u);
    EXPECT_EQ(r.value().nnz(), 2);
}

TEST(Csr, CheckReportsFirstViolatedInvariant) {
    const CsrMatrix good = small_matrix();
    EXPECT_TRUE(good.check().ok());
}

}  // namespace
}  // namespace spmvcache
