// Integration tests: the full experiment pipeline — trace -> simulator
// bank -> counters/timing, and model-vs-measured agreement. These are the
// end-to-end checks that the reproduction machinery behaves like the
// paper's setup.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "model/classify.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "util/stats.hpp"

namespace spmvcache {
namespace {

A64fxConfig scaled_machine() {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};    // 16 KiB per core
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};  // 512 KiB per segment
    cfg.l1_prefetch = PrefetchConfig{true, 4, 8, 8};
    cfg.l2_prefetch = PrefetchConfig{true, 32, 16, 8};
    return cfg;
}

ExperimentOptions sequential_options() {
    ExperimentOptions o;
    o.machine = scaled_machine();
    o.threads = 1;
    return o;
}

// Class-2 matrix on the scaled machine: matrix data (3 MiB) streams, the
// vectors (48 KiB) fit comfortably in sector 0.
const CsrMatrix& class2_matrix() {
    static const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 42);
    return m;
}

TEST(SectorSweep, BaselineSeesStreamingTraffic) {
    const auto results = run_sector_sweep(
        class2_matrix(), {SectorWays{0, 0}}, sequential_options());
    ASSERT_EQ(results.size(), 1u);
    const auto& base = results.front();
    // One iteration streams ~3 MiB of matrix data = ~12.5k lines.
    EXPECT_GT(base.l2.fills(), 10000u);
    EXPECT_LT(base.l2.fills(), 16000u);
    EXPECT_GT(base.timing.seconds, 0.0);
    EXPECT_GT(base.timing.gflops, 0.0);
}

TEST(SectorSweep, PartitioningReducesMissesForClass2) {
    const auto results = run_sector_sweep(
        class2_matrix(),
        {SectorWays{0, 0}, SectorWays{4, 0}, SectorWays{5, 0}},
        sequential_options());
    ASSERT_EQ(results.size(), 3u);
    const auto& base = results[0];
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_LT(results[i].l2.fills(), base.l2.fills())
            << "config " << i;
        EXPECT_LE(results[i].l2_miss_difference_percent(base), 0.0);
    }
}

TEST(SectorSweep, DeterministicAcrossRuns) {
    const auto a = run_sector_sweep(class2_matrix(), {SectorWays{4, 0}},
                                    sequential_options());
    const auto b = run_sector_sweep(class2_matrix(), {SectorWays{4, 0}},
                                    sequential_options());
    EXPECT_EQ(a.front().l2.fills(), b.front().l2.fills());
    EXPECT_EQ(a.front().l1.refills, b.front().l1.refills);
    EXPECT_DOUBLE_EQ(a.front().timing.seconds, b.front().timing.seconds);
}

TEST(SectorSweep, ParallelRunUsesAllSegments) {
    ExperimentOptions o = sequential_options();
    o.threads = 4;
    const auto results =
        run_sector_sweep(class2_matrix(), {SectorWays{0, 0}}, o);
    // With 4 threads on 2 segments, both segments see traffic.
    EXPECT_GT(results.front().l2.fills(), 0u);
}

TEST(SectorSweep, SpeedupDefinitionConsistent) {
    const auto results = run_sector_sweep(
        class2_matrix(), {SectorWays{0, 0}, SectorWays{5, 0}},
        sequential_options());
    const double s = results[1].speedup_over(results[0]);
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 3.0);
    EXPECT_DOUBLE_EQ(results[0].speedup_over(results[0]), 1.0);
}

TEST(ModelVsMeasured, MethodAWithinTolerance) {
    // The headline reproduction property: the reuse-distance model tracks
    // the simulator's corrected L2 miss counts. The paper reports 2-3 %
    // on hardware; we allow more slack since associativity and prefetch
    // details differ, but the model must clearly be in the right regime.
    const auto comparison = model_vs_measured(class2_matrix(), {2, 4, 6},
                                              sequential_options());
    ASSERT_EQ(comparison.measured_l2.size(), 4u);
    ASSERT_EQ(comparison.method_a.configs.size(), 4u);
    for (std::size_t i = 0; i < comparison.measured_l2.size(); ++i) {
        const double measured = comparison.measured_l2[i];
        const double predicted = comparison.method_a.configs[i].l2_misses;
        ASSERT_GT(measured, 0.0);
        EXPECT_NEAR(predicted / measured, 1.0, 0.20) << "config " << i;
    }
}

TEST(ModelVsMeasured, MethodBWithinToleranceOnUniformMatrix) {
    const auto comparison = model_vs_measured(class2_matrix(), {4},
                                              sequential_options());
    for (std::size_t i = 0; i < comparison.measured_l2.size(); ++i) {
        const double measured = comparison.measured_l2[i];
        const double predicted = comparison.method_b.configs[i].l2_misses;
        EXPECT_NEAR(predicted / measured, 1.0, 0.25) << "config " << i;
    }
}

TEST(ModelVsMeasured, ParallelCaseStaysCoherent) {
    ExperimentOptions o = sequential_options();
    o.threads = 4;
    const auto comparison = model_vs_measured(class2_matrix(), {4, 6}, o);
    for (std::size_t i = 0; i < comparison.measured_l2.size(); ++i) {
        const double measured = comparison.measured_l2[i];
        const double predicted = comparison.method_a.configs[i].l2_misses;
        ASSERT_GT(measured, 0.0);
        EXPECT_NEAR(predicted / measured, 1.0, 0.30) << "config " << i;
    }
}

TEST(ModelVsMeasured, StatsPopulated) {
    const auto comparison =
        model_vs_measured(class2_matrix(), {4}, sequential_options());
    EXPECT_EQ(comparison.stats.rows, 2048);
    EXPECT_DOUBLE_EQ(comparison.stats.mean_nnz_per_row, 128.0);
    EXPECT_GT(comparison.measured_l1_unpartitioned, 0.0);
    EXPECT_GT(comparison.method_a.l1_misses, 0.0);
}

TEST(Experiment, Class1MatrixSeesNoCapacityTraffic) {
    // Fits entirely in the 512 KiB L2: after warm-up the measured fills
    // are (near) zero and the model agrees.
    const CsrMatrix m = gen::stencil_2d_5pt(48, 48);
    const auto results =
        run_sector_sweep(m, {SectorWays{0, 0}}, sequential_options());
    EXPECT_LT(results.front().l2.fills(), 100u);
    EXPECT_EQ(classify(m, 512 * 1024, 512 * 1024), MatrixClass::Class1);
}

}  // namespace
}  // namespace spmvcache
