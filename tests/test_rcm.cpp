// Unit tests for Reverse Cuthill-McKee reordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/rcm.hpp"

namespace spmvcache {
namespace {

bool is_permutation_of_identity(const std::vector<std::int32_t>& perm) {
    std::vector<std::int32_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        if (sorted[i] != static_cast<std::int32_t>(i)) return false;
    return true;
}

TEST(Rcm, ProducesValidPermutation) {
    const CsrMatrix m = gen::random_uniform(200, 200, 5, 13);
    const auto perm = rcm_ordering(m);
    ASSERT_EQ(perm.size(), 200u);
    EXPECT_TRUE(is_permutation_of_identity(perm));
}

TEST(Rcm, ReducesBandwidthOfShuffledStencil) {
    // A stencil has small natural bandwidth; shuffle it, then check RCM
    // recovers a bandwidth close to the original.
    const CsrMatrix original = gen::stencil_2d_5pt(20, 20);
    const auto base_bw = compute_stats(original).bandwidth;

    // Deterministic shuffle permutation.
    std::vector<std::int32_t> shuffle(400);
    std::iota(shuffle.begin(), shuffle.end(), 0);
    for (std::size_t i = shuffle.size() - 1; i > 0; --i)
        std::swap(shuffle[i], shuffle[(i * 7919 + 13) % (i + 1)]);
    const CsrMatrix shuffled = original.permuted_symmetric(shuffle);
    const auto shuffled_bw = compute_stats(shuffled).bandwidth;
    ASSERT_GT(shuffled_bw, 4 * base_bw);  // shuffle destroyed locality

    const CsrMatrix restored = rcm_reorder(shuffled);
    restored.validate();
    const auto restored_bw = compute_stats(restored).bandwidth;
    EXPECT_LT(restored_bw, shuffled_bw / 4);
    EXPECT_LE(restored_bw, 3 * base_bw);
}

TEST(Rcm, PreservesSpectrumProxyRowSums) {
    // Symmetric permutation preserves the multiset of row sums.
    const CsrMatrix m = gen::stencil_2d_9pt(8, 8);
    const CsrMatrix r = rcm_reorder(m);
    auto row_sums = [](const CsrMatrix& mat) {
        std::vector<double> sums;
        const auto rowptr = mat.rowptr();
        const auto values = mat.values();
        for (std::int64_t row = 0; row < mat.rows(); ++row) {
            double s = 0.0;
            for (auto i = rowptr[static_cast<std::size_t>(row)];
                 i < rowptr[static_cast<std::size_t>(row) + 1]; ++i)
                s += values[static_cast<std::size_t>(i)];
            sums.push_back(s);
        }
        std::sort(sums.begin(), sums.end());
        return sums;
    };
    EXPECT_EQ(row_sums(m), row_sums(r));
}

TEST(Rcm, HandlesDisconnectedComponentsAndIsolatedRows) {
    // Two 2-cliques and two isolated vertices.
    CsrBuilder b(6, 6);
    b.push(0, 1, 1.0);
    b.push(1, 0, 1.0);
    b.push(3, 4, 1.0);
    b.push(4, 3, 1.0);
    const CsrMatrix m = std::move(b).finish();
    const auto perm = rcm_ordering(m);
    EXPECT_TRUE(is_permutation_of_identity(perm));
}

TEST(Rcm, SingleRowMatrix) {
    CsrBuilder b(1, 1);
    b.push(0, 0, 2.0);
    const CsrMatrix m = std::move(b).finish();
    const auto perm = rcm_ordering(m);
    ASSERT_EQ(perm.size(), 1u);
    EXPECT_EQ(perm[0], 0);
}

}  // namespace
}  // namespace spmvcache
