// Unit tests for the sector cache and the stream prefetcher.
#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/prefetch.hpp"

namespace spmvcache {
namespace {

// A tiny cache for exact behavioural checks: 4 sets x 4 ways, 16 B lines.
CacheConfig tiny(std::uint32_t sector1_ways = 0) {
    return CacheConfig{4 * 4 * 16, 16, 4, sector1_ways};
}

TEST(SectorCache, GeometryDerived) {
    const SectorCache cache(tiny());
    EXPECT_EQ(cache.config().sets(), 4u);
    EXPECT_EQ(cache.config().lines(), 16u);
}

TEST(SectorCache, MissThenHit) {
    SectorCache cache(tiny());
    EXPECT_FALSE(cache.lookup(5, 0, false).hit);
    cache.fill(5, 0, false, false);
    EXPECT_TRUE(cache.lookup(5, 0, false).hit);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_FALSE(cache.contains(9));  // same set (9 % 4 == 1? no: 5%4=1, 9%4=1) different tag
}

TEST(SectorCache, LruEvictionWithinSet) {
    SectorCache cache(tiny());
    // Lines 0,4,8,12 all map to set 0; fill 4 ways then one more.
    for (std::uint64_t line : {0, 4, 8, 12}) cache.fill(line, 0, false, false);
    // Touch 0 so 4 becomes LRU.
    EXPECT_TRUE(cache.lookup(0, 0, false).hit);
    const auto outcome = cache.fill(16, 0, false, false);
    EXPECT_TRUE(outcome.evicted);
    EXPECT_EQ(outcome.evicted_line, 4u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4));
}

TEST(SectorCache, DirtyEvictionReported) {
    SectorCache cache(tiny());
    cache.fill(0, 0, /*write=*/true, false);
    for (std::uint64_t line : {4, 8, 12}) cache.fill(line, 0, false, false);
    const auto outcome = cache.fill(16, 0, false, false);
    EXPECT_TRUE(outcome.evicted);
    EXPECT_EQ(outcome.evicted_line, 0u);
    EXPECT_TRUE(outcome.evicted_dirty);
}

TEST(SectorCache, WriteHitMarksDirty) {
    SectorCache cache(tiny());
    cache.fill(0, 0, false, false);
    (void)cache.lookup(0, 0, /*write=*/true);
    for (std::uint64_t line : {4, 8, 12}) cache.fill(line, 0, false, false);
    const auto outcome = cache.fill(16, 0, false, false);
    EXPECT_TRUE(outcome.evicted_dirty);
}

TEST(SectorCache, SectorQuotaLimitsOccupancy) {
    // 1 way for sector 1, 3 for sector 0.
    SectorCache cache(tiny(1));
    // Fill set 0 with three sector-1 lines: each evicts the previous.
    cache.fill(0, 1, false, false);
    cache.fill(4, 1, false, false);
    const auto outcome = cache.fill(8, 1, false, false);
    EXPECT_TRUE(outcome.evicted);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4));
    EXPECT_TRUE(cache.contains(8));
    EXPECT_EQ(cache.occupancy(1), 1u);
}

TEST(SectorCache, SectorZeroProtectedFromSectorOneStreaming) {
    SectorCache cache(tiny(1));
    // Reusable data in sector 0 (3 lines of set 0).
    for (std::uint64_t line : {0, 4, 8}) cache.fill(line, 0, false, false);
    // A long sector-1 stream through the same set.
    for (std::uint64_t line = 12; line < 12 + 40 * 4; line += 4)
        cache.fill(line, 1, false, false);
    // All sector-0 lines survived.
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4));
    EXPECT_TRUE(cache.contains(8));
}

TEST(SectorCache, UnpartitionedStreamingEvictsEverything) {
    SectorCache cache(tiny(0));
    for (std::uint64_t line : {0, 4, 8}) cache.fill(line, 0, false, false);
    for (std::uint64_t line = 12; line < 12 + 40 * 4; line += 4)
        cache.fill(line, 1, false, false);  // sector tag ignored
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(4));
}

TEST(SectorCache, OverQuotaLinesReclaimedByOtherSector) {
    SectorCache cache(tiny(1));
    // Overfill the set with sector-1 lines while sector 0 is absent is
    // impossible (quota enforced); instead: fill 4 sector-0 lines, then
    // reconfigure to give sector 1 two ways and fill sector-1 lines; they
    // must evict (over-quota) sector-0 lines.
    for (std::uint64_t line : {0, 4, 8, 12}) cache.fill(line, 0, false, false);
    cache.set_sector1_ways(2);
    cache.fill(16, 1, false, false);
    cache.fill(20, 1, false, false);
    EXPECT_EQ(cache.occupancy(1), 2u);
    EXPECT_EQ(cache.occupancy(0), 2u);
    EXPECT_TRUE(cache.contains(16));
    EXPECT_TRUE(cache.contains(20));
}

TEST(SectorCache, ReconfigureDoesNotFlush) {
    SectorCache cache(tiny(1));
    cache.fill(0, 0, false, false);
    cache.fill(4, 1, false, false);
    cache.set_sector1_ways(2);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_TRUE(cache.contains(4));
}

TEST(SectorCache, HitRetagsSector) {
    SectorCache cache(tiny(1));
    cache.fill(0, 1, false, false);
    EXPECT_EQ(cache.occupancy(1), 1u);
    (void)cache.lookup(0, 0, false);
    EXPECT_EQ(cache.occupancy(1), 0u);
    EXPECT_EQ(cache.occupancy(0), 1u);
}

TEST(SectorCache, PrefetchedFlagClearsOnDemandHit) {
    SectorCache cache(tiny());
    cache.fill(0, 0, false, /*prefetched=*/true);
    const auto first = cache.lookup(0, 0, false);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.hit_prefetched_unused);
    const auto second = cache.lookup(0, 0, false);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.hit_prefetched_unused);
}

TEST(SectorCache, PrematureEvictionOfPrefetchedLineReported) {
    SectorCache cache(tiny(1));
    cache.fill(0, 1, false, /*prefetched=*/true);
    const auto outcome = cache.fill(4, 1, false, false);
    EXPECT_TRUE(outcome.evicted);
    EXPECT_TRUE(outcome.evicted_prefetched_unused);
}

TEST(SectorCache, FlushEmptiesEverything) {
    SectorCache cache(tiny());
    cache.fill(3, 0, true, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(3));
    EXPECT_EQ(cache.occupancy(0), 0u);
}

TEST(Prefetcher, IssuesOnThirdConsecutiveLine) {
    StreamPrefetcher pf(PrefetchConfig{true, 4, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(100, targets);
    EXPECT_TRUE(targets.empty());  // first touch: allocation-filter ring
    pf.observe(101, targets);
    EXPECT_TRUE(targets.empty());  // stream allocated, quiet
    pf.observe(102, targets);
    // Confirmed ascending stream: prefetch up to 102+4.
    EXPECT_EQ(targets, (std::vector<std::uint64_t>{103, 104, 105, 106}));
}

TEST(Prefetcher, DescendingStreams) {
    StreamPrefetcher pf(PrefetchConfig{true, 3, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(50, targets);
    pf.observe(49, targets);
    EXPECT_TRUE(targets.empty());
    pf.observe(48, targets);
    EXPECT_EQ(targets, (std::vector<std::uint64_t>{47, 46, 45}));
}

TEST(Prefetcher, SteadyStateIssuesOnePerLine) {
    StreamPrefetcher pf(PrefetchConfig{true, 8, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(0, targets);
    pf.observe(1, targets);
    pf.observe(2, targets);  // ramp: 3..10
    targets.clear();
    pf.observe(3, targets);
    EXPECT_EQ(targets, (std::vector<std::uint64_t>{11}));
}

TEST(Prefetcher, RandomAccessesDoNotTrigger) {
    StreamPrefetcher pf(PrefetchConfig{true, 8, 4, 8});
    std::vector<std::uint64_t> targets;
    for (const std::uint64_t line : {7, 193, 55, 1024, 3, 888, 12, 400})
        pf.observe(line, targets);
    EXPECT_TRUE(targets.empty());
}

TEST(Prefetcher, TracksMultipleConcurrentStreams) {
    StreamPrefetcher pf(PrefetchConfig{true, 2, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(1000, targets);
    pf.observe(2000, targets);
    pf.observe(1001, targets);
    pf.observe(2001, targets);
    EXPECT_TRUE(targets.empty());  // both streams allocated, quiet
    pf.observe(1002, targets);
    pf.observe(2002, targets);
    std::sort(targets.begin(), targets.end());
    EXPECT_EQ(targets, (std::vector<std::uint64_t>{1003, 1004, 2003, 2004}));
}

TEST(Prefetcher, RepeatedLineDoesNotAdvance) {
    StreamPrefetcher pf(PrefetchConfig{true, 4, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(10, targets);
    pf.observe(11, targets);
    pf.observe(12, targets);
    targets.clear();
    pf.observe(12, targets);
    EXPECT_TRUE(targets.empty());
}

TEST(Prefetcher, DisabledIssuesNothing) {
    StreamPrefetcher pf(PrefetchConfig{false, 8, 8, 8});
    std::vector<std::uint64_t> targets;
    pf.observe(1, targets);
    pf.observe(2, targets);
    pf.observe(3, targets);
    EXPECT_TRUE(targets.empty());
}

TEST(SectorCacheNru, VictimIsUnreferencedLine) {
    CacheConfig config = tiny();
    config.replacement = ReplacementPolicy::Nru;
    SectorCache cache(config);
    for (std::uint64_t line : {0, 4, 8, 12}) cache.fill(line, 0, false, false);
    // All reference bits are set, so the first over-capacity fill sweeps
    // (sparing the MRU line, 12) and evicts the first way: line 0. The
    // sweep leaves 4 and 8 unreferenced.
    const auto first = cache.fill(16, 0, false, false);
    EXPECT_TRUE(first.evicted);
    EXPECT_EQ(first.evicted_line, 0u);
    // Next victim: the first unreferenced non-MRU candidate, line 4 —
    // 16 was just filled (referenced) and 12 keeps its bit.
    const auto second = cache.fill(20, 0, false, false);
    EXPECT_TRUE(second.evicted);
    EXPECT_EQ(second.evicted_line, 4u);
    EXPECT_TRUE(cache.contains(16));
}

TEST(SectorCacheNru, RespectsSectorQuota) {
    CacheConfig config = tiny(1);
    config.replacement = ReplacementPolicy::Nru;
    SectorCache cache(config);
    cache.fill(0, 0, false, false);
    // Stream sector-1 lines through the 1-way quota.
    for (std::uint64_t line = 4; line < 4 + 20 * 4; line += 4)
        cache.fill(line, 1, false, false);
    EXPECT_TRUE(cache.contains(0));  // sector 0 protected
    EXPECT_EQ(cache.occupancy(1), 1u);
}

TEST(SectorCacheNru, ApproximatesLruOnSkewedTraffic) {
    // Hot lines touched between fills survive under both policies.
    for (const auto policy :
         {ReplacementPolicy::Lru, ReplacementPolicy::Nru}) {
        CacheConfig config = tiny();
        config.replacement = policy;
        SectorCache cache(config);
        cache.fill(0, 0, false, false);
        for (std::uint64_t i = 1; i < 50; ++i) {
            (void)cache.lookup(0, 0, false);  // keep line 0 hot
            cache.fill(i * 4, 0, false, false);
        }
        EXPECT_TRUE(cache.contains(0));
    }
}

TEST(Prefetcher, DistanceAdjustableAtRuntime) {
    StreamPrefetcher pf(PrefetchConfig{true, 16, 8, 32});
    std::vector<std::uint64_t> targets;
    pf.observe(0, targets);
    pf.observe(1, targets);
    pf.observe(2, targets);
    EXPECT_EQ(targets.size(), 16u);  // 3..18
    targets.clear();
    pf.set_distance(2);
    pf.observe(3, targets);
    // Frontier already ahead of the reduced distance: nothing to issue.
    EXPECT_TRUE(targets.empty());
}

}  // namespace
}  // namespace spmvcache
