// Tests for the collection driver: ordering, error isolation, parallel
// execution across host threads.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/collection.hpp"
#include "sparse/gen/stencil.hpp"

namespace spmvcache {
namespace {

std::vector<gen::MatrixSpec> tiny_suite(int n) {
    std::vector<gen::MatrixSpec> suite;
    for (int i = 0; i < n; ++i) {
        suite.push_back(gen::MatrixSpec{
            "m" + std::to_string(i), "stencil",
            [i] { return gen::stencil_2d_5pt(4 + i, 4); }});
    }
    return suite;
}

TEST(Collection, PreservesSuiteOrder) {
    const auto suite = tiny_suite(6);
    const std::function<std::int64_t(const std::string&, const CsrMatrix&)>
        fn = [](const std::string&, const CsrMatrix& m) { return m.rows(); };
    const auto outcomes = run_collection<std::int64_t>(suite, fn);
    ASSERT_EQ(outcomes.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].name,
                  "m" + std::to_string(i));
        EXPECT_TRUE(outcomes[static_cast<std::size_t>(i)].ok);
        EXPECT_EQ(outcomes[static_cast<std::size_t>(i)].result,
                  (4 + i) * 4);
    }
}

TEST(Collection, IsolatesThrowingExperiments) {
    const auto suite = tiny_suite(4);
    const std::function<int(const std::string&, const CsrMatrix&)> fn =
        [](const std::string& name, const CsrMatrix&) -> int {
        if (name == "m2") throw std::runtime_error("boom");
        return 1;
    };
    const auto outcomes = run_collection<int>(suite, fn);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_FALSE(outcomes[2].ok);
    EXPECT_EQ(outcomes[2].error, "boom");
    EXPECT_TRUE(outcomes[3].ok);
}

TEST(Collection, IsolatesThrowingFactories) {
    std::vector<gen::MatrixSpec> suite = tiny_suite(2);
    suite.push_back(gen::MatrixSpec{
        "bad", "none",
        []() -> CsrMatrix { throw std::runtime_error("factory failed"); }});
    const std::function<int(const std::string&, const CsrMatrix&)> fn =
        [](const std::string&, const CsrMatrix&) { return 0; };
    const auto outcomes = run_collection<int>(suite, fn);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_FALSE(outcomes[2].ok);
    EXPECT_EQ(outcomes[2].error, "factory failed");
}

TEST(Collection, ParallelHostThreadsProduceSameResults) {
    const auto suite = tiny_suite(9);
    const std::function<std::int64_t(const std::string&, const CsrMatrix&)>
        fn = [](const std::string&, const CsrMatrix& m) { return m.nnz(); };
    const auto sequential = run_collection<std::int64_t>(suite, fn);
    CollectionOptions parallel_opts;
    parallel_opts.host_threads = 4;
    const auto parallel =
        run_collection<std::int64_t>(suite, fn, parallel_opts);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i].name, parallel[i].name);
        EXPECT_EQ(sequential[i].result, parallel[i].result);
    }
}

TEST(Collection, EmptySuite) {
    const std::function<int(const std::string&, const CsrMatrix&)> fn =
        [](const std::string&, const CsrMatrix&) { return 0; };
    const auto outcomes = run_collection<int>({}, fn);
    EXPECT_TRUE(outcomes.empty());
}

}  // namespace
}  // namespace spmvcache
