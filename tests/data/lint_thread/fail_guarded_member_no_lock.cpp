// MUST fail -Wthread-safety: writing a GUARDED_BY member without
// holding its mutex.
#include "util/annotated_mutex.hpp"

namespace {

class Counter {
public:
    void bump_unlocked() {
        ++count_;  // error: writing count_ requires holding mutex_
    }

private:
    spmvcache::Mutex mutex_;
    long count_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Counter& c);
void drive() {
    Counter c;
    c.bump_unlocked();
    touch(c);
}
