// MUST fail -Wthread-safety: a raw lock() with no matching unlock() on
// a path out of the function (the leak McsGuard/MutexLock exist to
// prevent).
#include "util/annotated_mutex.hpp"

namespace {

class Leaky {
public:
    void leak(bool early) {
        mutex_.lock();
        if (early) return;  // error: mutex_ still held at return
        ++count_;
        mutex_.unlock();
    }

private:
    spmvcache::Mutex mutex_;
    long count_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Leaky& l);
void drive() {
    Leaky l;
    l.leak(true);
    touch(l);
}
