// MUST fail -Wthread-safety: acquiring a non-reentrant mutex that is
// already held (a guaranteed deadlock at runtime).
#include "util/annotated_mutex.hpp"

namespace {

class Deadlock {
public:
    void twice() {
        const spmvcache::MutexLock outer(mutex_);
        const spmvcache::MutexLock inner(mutex_);  // error: already held
        ++count_;
    }

private:
    spmvcache::Mutex mutex_;
    long count_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Deadlock& d);
void drive() {
    Deadlock d;
    d.twice();
    touch(d);
}
