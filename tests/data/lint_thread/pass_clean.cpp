// MUST compile clean under -Wthread-safety: the full approved idiom —
// scoped locking, a REQUIRES helper called with the lock held, a
// guarded member only touched under its mutex, and a CondVar wait.
#include "util/annotated_mutex.hpp"

namespace {

class Queue {
public:
    void push() SPMV_EXCLUDES(mutex_) {
        {
            const spmvcache::MutexLock lock(mutex_);
            ++depth_;
            trim_locked();
        }
        ready_.notify_one();
    }

    void wait_nonempty() SPMV_EXCLUDES(mutex_) {
        const spmvcache::MutexLock lock(mutex_);
        while (depth_ == 0) ready_.wait(mutex_);
    }

private:
    void trim_locked() SPMV_REQUIRES(mutex_) {
        if (depth_ > 8) depth_ = 8;
    }

    spmvcache::Mutex mutex_;
    spmvcache::CondVar ready_;
    long depth_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Queue& q);
void drive() {
    Queue q;
    q.push();
    q.wait_nonempty();
    touch(q);
}
