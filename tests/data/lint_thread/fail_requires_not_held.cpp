// MUST fail -Wthread-safety: calling a REQUIRES(mutex) helper without
// the mutex held.
#include "util/annotated_mutex.hpp"

namespace {

class Table {
public:
    void rebalance() {
        evict_locked();  // error: requires mutex_, not held here
    }

private:
    void evict_locked() SPMV_REQUIRES(mutex_) { ++evictions_; }

    spmvcache::Mutex mutex_;
    long evictions_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Table& t);
void drive() {
    Table t;
    t.rebalance();
    touch(t);
}
