// MUST fail -Wthread-safety: releasing a mutex the caller does not
// hold.
#include "util/annotated_mutex.hpp"

namespace {

class Unbalanced {
public:
    void release_only() {
        mutex_.unlock();  // error: releasing mutex_ that is not held
    }

private:
    spmvcache::Mutex mutex_;
};

}  // namespace

void touch(Unbalanced& u);
void drive() {
    Unbalanced u;
    u.release_only();
    touch(u);
}
