// MUST fail -Wthread-safety: calling an EXCLUDES(mutex) method while
// holding that mutex (self-deadlock through a public re-entry).
#include "util/annotated_mutex.hpp"

namespace {

class Stats {
public:
    void bump() SPMV_EXCLUDES(mutex_) {
        const spmvcache::MutexLock lock(mutex_);
        ++count_;
        bump();  // error: bump() excludes mutex_, but it is held here
    }

private:
    spmvcache::Mutex mutex_;
    long count_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace

void touch(Stats& s);
void drive() {
    Stats s;
    s.bump();
    touch(s);
}
