// Unit tests for src/sync: MCS lock mutual exclusion and fairness, spin
// barrier, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sync/barrier.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/thread_pool.hpp"

namespace spmvcache {
namespace {

TEST(McsLock, SingleThreadAcquireRelease) {
    McsLock lock;
    EXPECT_FALSE(lock.appears_held());
    {
        McsGuard guard(lock);
        EXPECT_TRUE(lock.appears_held());
    }
    EXPECT_FALSE(lock.appears_held());
}

TEST(McsLock, MutualExclusionUnderContention) {
    McsLock lock;
    std::int64_t counter = 0;  // deliberately unprotected by atomics
    constexpr int kThreads = 8;
    constexpr int kIncrements = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                McsGuard guard(lock);
                ++counter;
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(McsLock, CriticalSectionsDoNotOverlap) {
    McsLock lock;
    std::atomic<int> inside{0};
    std::atomic<bool> overlap{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 2000; ++i) {
                McsGuard guard(lock);
                if (inside.fetch_add(1) != 0) overlap = true;
                inside.fetch_sub(1);
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(overlap.load());
}

TEST(McsLock, HandsOffInFifoOrderWhenQueued) {
    // Queue three threads in a known order (each confirms it is enqueued
    // before the next starts), then check they acquire in that order.
    McsLock lock;
    std::vector<int> order;
    McsLock::QNode holder;
    lock.acquire(holder);  // hold so the others must queue

    std::atomic<int> queued{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&, t] {
            while (queued.load() != t) std::this_thread::yield();
            McsLock::QNode node;
            // After exchange inside acquire() the thread is visibly queued;
            // signal the next thread via a short delay heuristic: the
            // enqueue itself is the first step of acquire().
            std::thread signal([&] {
                std::this_thread::sleep_for(std::chrono::milliseconds(20));
                queued.fetch_add(1);
            });
            lock.acquire(node);
            order.push_back(t);
            lock.release(node);
            signal.join();
        });
    }
    while (queued.load() != 3) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    lock.release(holder);
    for (auto& th : threads) th.join();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(SpinBarrier, SynchronisesPhases) {
    constexpr int kThreads = 4;
    constexpr int kPhases = 50;
    SpinBarrier barrier(kThreads);
    std::atomic<int> phase_counter{0};
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int p = 0; p < kPhases; ++p) {
                phase_counter.fetch_add(1);
                barrier.arrive_and_wait();
                // After the barrier, all kThreads arrivals of this phase
                // must be visible.
                if (phase_counter.load() < (p + 1) * kThreads)
                    mismatch = true;
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(mismatch.load());
    EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { done.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndexSpace) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleReturnsWithNoTasks) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

}  // namespace
}  // namespace spmvcache
