// Serve-daemon tests: the differential guarantee (served predictions are
// bit-identical to the one-shot CLI path), plan-cache hit/miss/eviction,
// quarantine fast-fail, per-request deadlines, admission backpressure, the
// corrupt-input corpus as live requests, and a >=1000-request fault soak.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cachesim/a64fx.hpp"
#include "core/batch.hpp"
#include "core/matrix_source.hpp"
#include "model/method_a.hpp"
#include "serve/fingerprint.hpp"
#include "serve/plan_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sparse/gen/stencil.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

namespace fs = std::filesystem;

/// The serialized payload object of a rendered response line ("" if none).
std::string payload_of(const std::string& line) {
    const auto at = line.find("\"payload\":");
    if (at == std::string::npos) return "";
    // payload is the last member; strip the response's closing brace.
    return line.substr(at + 10, line.size() - (at + 10) - 1);
}

bool response_ok(const std::string& line) {
    return line.find("\"ok\":true") != std::string::npos;
}

std::string predict_line(const std::string& id, const std::string& spec,
                         std::int64_t threads = 2) {
    return "{\"id\":\"" + id + "\",\"op\":\"predict\",\"gen\":\"" + spec +
           "\",\"threads\":" + std::to_string(threads) + "}";
}

// ---------------------------------------------------------------- protocol

TEST(ServeProtocol, RejectsMalformedJsonWithTypedErrors) {
    EXPECT_EQ(parse_json("").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_json("{\"a\":}").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_json("{} trailing").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_json("\"unterminated").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_json("[1,2,]").code(), ErrorCode::ParseError);
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    EXPECT_EQ(parse_json(deep).code(), ErrorCode::ParseError);
}

TEST(ServeProtocol, ParsesARequestAndValidatesFields) {
    const auto ok = parse_request(
        "{\"id\":\"r1\",\"op\":\"predict\",\"gen\":\"banded:64\","
        "\"threads\":4,\"l2_ways\":[2,5],\"timeout\":1.5}");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().id, "r1");
    EXPECT_EQ(ok.value().op, RequestOp::Predict);
    EXPECT_EQ(ok.value().threads, 4);
    EXPECT_EQ(ok.value().l2_ways, (std::vector<std::uint32_t>{2, 5}));
    EXPECT_DOUBLE_EQ(ok.value().timeout_seconds, 1.5);

    EXPECT_FALSE(parse_request("{\"op\":\"predict\"}").ok());  // no source
    EXPECT_FALSE(parse_request("{\"op\":\"nope\",\"gen\":\"x:1\"}").ok());
    EXPECT_FALSE(
        parse_request(
            "{\"op\":\"predict\",\"gen\":\"x:1\",\"threads\":0}")
            .ok());
    EXPECT_FALSE(
        parse_request(
            "{\"op\":\"predict\",\"gen\":\"x:1\",\"l2_ways\":[99]}")
            .ok());
}

TEST(ServeProtocol, BoundedReadRejectsOversizedLinesAndStaysSynced) {
    std::istringstream in(std::string(64, 'x') + "\nshort\n");
    std::string line;
    const auto oversized = read_line_bounded(in, line, 16);
    ASSERT_FALSE(oversized.ok());
    EXPECT_EQ(oversized.code(), ErrorCode::ValidationError);
    const auto next = read_line_bounded(in, line, 16);
    ASSERT_TRUE(next.ok());
    EXPECT_TRUE(next.value());
    EXPECT_EQ(line, "short");
    const auto eof = read_line_bounded(in, line, 16);
    ASSERT_TRUE(eof.ok());
    EXPECT_FALSE(eof.value());
}

TEST(ServeProtocol, DoublesRoundTripBitIdentically) {
    for (const double v : {0.1, 1.0 / 3.0, 12345.6789e-7, -0.0, 2e300}) {
        const auto parsed = parse_json(json_double(v));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value().number, v);
    }
}

// -------------------------------------------------------------- fingerprint

TEST(ServeFingerprint, IdentifiesMatricesAndSeparatesSiblings) {
    const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
    const CsrMatrix b = gen::stencil_2d_5pt(24, 24);
    const CsrMatrix c = gen::stencil_2d_5pt(25, 24);
    const MatrixFingerprint fa = fingerprint_matrix(a);
    EXPECT_EQ(fa, fingerprint_matrix(b));
    EXPECT_FALSE(fa == fingerprint_matrix(c));
    EXPECT_EQ(to_string(fa).size(), 32u);
    EXPECT_EQ(fa.rows, 576);
    EXPECT_EQ(fa.nnz, a.nnz());
}

// --------------------------------------------------------------- plan cache

TEST(ServePlanCache, LruEvictsColdestUnderByteCap) {
    PlanCache cache(100);
    const PlanKey a{1, 1}, b{2, 2}, c{3, 3};
    cache.put(a, std::string(40, 'a'));
    cache.put(b, std::string(40, 'b'));
    ASSERT_TRUE(cache.get(a).has_value());  // refresh a; b is now coldest
    cache.put(c, std::string(40, 'c'));     // 120 bytes > 100: evict b
    EXPECT_TRUE(cache.get(a).has_value());
    EXPECT_FALSE(cache.get(b).has_value());
    EXPECT_TRUE(cache.get(c).has_value());
    const PlanCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, 100u);
}

TEST(ServePlanCache, OversizedPayloadAndZeroCapacityAreNeverCached) {
    PlanCache tiny(10);
    tiny.put(PlanKey{1, 1}, std::string(11, 'x'));
    EXPECT_FALSE(tiny.get(PlanKey{1, 1}).has_value());
    PlanCache disabled(0);
    disabled.put(PlanKey{1, 1}, "x");
    EXPECT_FALSE(disabled.get(PlanKey{1, 1}).has_value());
}

TEST(ServeQuarantine, FastFailsAfterStrikesAndClearsOnSuccess) {
    Quarantine q(2);
    const Error boom(ErrorCode::ParseError, "boom");
    EXPECT_FALSE(q.check(7).has_value());
    EXPECT_EQ(q.record_failure(7, boom), 1);
    EXPECT_FALSE(q.check(7).has_value());
    EXPECT_EQ(q.record_failure(7, boom), 2);
    const auto banned = q.check(7);
    ASSERT_TRUE(banned.has_value());
    EXPECT_EQ(banned->code, ErrorCode::ParseError);
    EXPECT_NE(banned->render().find("quarantined"), std::string::npos);
    q.record_success(7);
    EXPECT_FALSE(q.check(7).has_value());
    EXPECT_EQ(q.stats().fast_failed, 1u);
}

// ------------------------------------------------------------------- server

TEST(ServeServer, ServedPredictionBitIdenticalToOneShot) {
    Server server;
    const std::string line =
        server.handle_line(predict_line("d1", "randomcv:8192", 4));
    ASSERT_TRUE(response_ok(line)) << line;
    const auto parsed = parse_json(line);
    ASSERT_TRUE(parsed.ok());
    const Json* payload = parsed.value().find("payload");
    ASSERT_NE(payload, nullptr);

    // The exact one-shot path: same generator, same CLI-default options.
    const auto matrix = generated_matrix("randomcv:8192", 42);
    ASSERT_TRUE(matrix.ok());
    ModelOptions options;
    options.machine = a64fx_default();
    options.threads = 4;
    options.jobs = 1;
    options.l2_way_options = {2, 3, 4, 5, 6, 7};
    const ModelResult expected = run_method_a(matrix.value(), options);

    const Json* configs = payload->find("configs");
    ASSERT_NE(configs, nullptr);
    ASSERT_EQ(configs->items.size(), expected.configs.size());
    bool saw_nonzero = false;
    for (std::size_t i = 0; i < expected.configs.size(); ++i) {
        const Json* misses = configs->items[i].find("l2_misses");
        const Json* x_misses = configs->items[i].find("l2_x_misses");
        ASSERT_NE(misses, nullptr);
        ASSERT_NE(x_misses, nullptr);
        // Bit-identical: to_chars round-trip, compared with ==, not near.
        EXPECT_EQ(misses->number, expected.configs[i].l2_misses);
        EXPECT_EQ(x_misses->number, expected.configs[i].l2_x_misses);
        saw_nonzero = saw_nonzero || expected.configs[i].l2_misses > 0.0;
    }
    EXPECT_TRUE(saw_nonzero);  // the comparison must not be vacuous
    const Json* x_fraction = payload->find("x_traffic_fraction");
    ASSERT_NE(x_fraction, nullptr);
    EXPECT_EQ(x_fraction->number, expected.x_traffic_fraction);
}

TEST(ServeServer, CacheHitReplaysByteIdenticalPayload) {
    Server server;
    const std::string miss =
        server.handle_line(predict_line("m1", "stencil2d5:24"));
    const std::string hit =
        server.handle_line(predict_line("m2", "stencil2d5:24"));
    ASSERT_TRUE(response_ok(miss)) << miss;
    ASSERT_TRUE(response_ok(hit)) << hit;
    EXPECT_NE(miss.find("\"cache_hit\":false"), std::string::npos);
    EXPECT_NE(hit.find("\"cache_hit\":true"), std::string::npos);
    EXPECT_EQ(payload_of(miss), payload_of(hit));
    EXPECT_FALSE(payload_of(hit).empty());
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache.insertions, 1u);
}

TEST(ServeServer, DifferentOptionsDoNotShareAPlan) {
    Server server;
    const std::string t2 =
        server.handle_line(predict_line("a", "stencil2d5:24", 2));
    const std::string t4 =
        server.handle_line(predict_line("b", "stencil2d5:24", 4));
    ASSERT_TRUE(response_ok(t2));
    ASSERT_TRUE(response_ok(t4));
    EXPECT_NE(t4.find("\"cache_hit\":false"), std::string::npos);
    EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(ServeServer, QuarantineFastFailsARepeatedlyFailingSource) {
    ServeOptions options;
    options.quarantine_strikes = 2;
    options.max_retries = 0;
    Server server(options);
    const std::string request =
        "{\"id\":\"q\",\"op\":\"predict\",\"matrix\":\"/nonexistent/q.mtx\"}";
    EXPECT_FALSE(response_ok(server.handle_line(request)));
    EXPECT_FALSE(response_ok(server.handle_line(request)));
    const std::string banned = server.handle_line(request);
    EXPECT_FALSE(response_ok(banned));
    EXPECT_NE(banned.find("quarantined"), std::string::npos) << banned;
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.quarantine.fast_failed, 1u);
    EXPECT_GE(stats.quarantine.quarantined, 1u);
}

TEST(ServeServer, DeadlineExpiryAnswersTimeoutError) {
    ServeOptions options;
    options.execute_delay_seconds = 0.25;
    options.max_retries = 0;
    Server server(options);
    const std::string line = server.handle_line(
        "{\"id\":\"t\",\"op\":\"predict\",\"gen\":\"stencil2d5:16\","
        "\"timeout\":0.05}");
    EXPECT_FALSE(response_ok(line));
    EXPECT_NE(line.find("\"code\":\"TimeoutError\""), std::string::npos)
        << line;
    EXPECT_EQ(server.stats().timeouts, 1u);
    // Let the abandoned attempt finish before the process exits.
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
}

TEST(ServeServer, BackpressureRejectsBeyondQueueCapacity) {
    ServeOptions options;
    options.workers = 1;
    options.queue_capacity = 1;
    options.execute_delay_seconds = 0.15;
    options.max_retries = 0;
    Server server(options);
    std::ostringstream in_text;
    for (int i = 0; i < 4; ++i)
        in_text << predict_line("p" + std::to_string(i), "stencil2d5:16")
                << "\n";
    in_text << "{\"id\":\"h\",\"op\":\"health\"}\n";
    in_text << "{\"id\":\"end\",\"op\":\"shutdown\"}\n";
    std::istringstream in(in_text.str());
    std::ostringstream out, log;
    EXPECT_EQ(server.run(in, out, log), kExitOk);

    int ok_predicts = 0, overloaded = 0;
    bool health_ok = false, shutdown_ok = false;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("\"id\":\"h\"") != std::string::npos)
            health_ok = response_ok(line);
        else if (line.find("\"id\":\"end\"") != std::string::npos)
            shutdown_ok = response_ok(line);
        else if (line.find("\"code\":\"OverloadedError\"") !=
                 std::string::npos)
            ++overloaded;
        else if (response_ok(line))
            ++ok_predicts;
    }
    // One slot: the first request executes, the other three bounce, and
    // health still answers from the loop thread while the pool is full.
    EXPECT_EQ(ok_predicts, 1);
    EXPECT_EQ(overloaded, 3);
    EXPECT_TRUE(health_ok);
    EXPECT_TRUE(shutdown_ok);
    EXPECT_EQ(server.stats().rejected_overload, 3u);
}

TEST(ServeServer, CorruptCorpusRequestsNeverKillTheDaemon) {
    ServeOptions options;
    options.max_retries = 0;
    Server server(options);
    const fs::path corpus = fs::path(SPMVCACHE_TEST_DATA_DIR) / "corrupt";
    ASSERT_TRUE(fs::exists(corpus));
    int corrupt_files = 0;
    for (const auto& entry : fs::directory_iterator(corpus)) {
        ++corrupt_files;
        const std::string line = server.handle_line(
            "{\"id\":\"c\",\"op\":\"predict\",\"matrix\":\"" +
            entry.path().string() + "\",\"strict\":true}");
        EXPECT_FALSE(response_ok(line)) << entry.path();
        EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
        // The daemon answers health after every poisoned input.
        EXPECT_TRUE(response_ok(
            server.handle_line("{\"id\":\"h\",\"op\":\"health\"}")));
    }
    EXPECT_GE(corrupt_files, 5);
    EXPECT_EQ(server.stats().ok,
              static_cast<std::uint64_t>(corrupt_files));  // the healths
    EXPECT_EQ(server.stats().failed,
              static_cast<std::uint64_t>(corrupt_files));
}

TEST(ServeServer, EofDrainsCleanlyWithoutShutdownRequest) {
    Server server;
    std::istringstream in(predict_line("p", "stencil2d5:16") + "\n");
    std::ostringstream out, log;
    EXPECT_EQ(server.run(in, out, log), kExitOk);
    EXPECT_TRUE(response_ok(out.str()));
    EXPECT_NE(log.str().find("draining (eof)"), std::string::npos);
    EXPECT_NE(log.str().find("final stats:"), std::string::npos);
}

TEST(ServeServer, StatsSnapshotsStayConsistentWhileServing) {
    // stats() promises a mutually consistent snapshot: the daemon
    // counters come from one stats_mutex_ acquisition and each subsystem
    // (plan cache, source cache, quarantine) contributes a single-lock
    // snapshot of its own. Hammer stats() from reader threads while
    // writer threads serve requests, and check the cross-counter
    // invariants on every observed snapshot — under TSan this also
    // proves the lock discipline the annotations claim.
    ServeOptions options;
    options.workers = 2;
    Server server(options);

    constexpr int kWriters = 4;
    constexpr int kRequestsPerWriter = 30;
    std::atomic<bool> done{false};
    std::atomic<int> violations{0};
    std::atomic<int> snapshots{0};

    auto reader = [&] {
        std::uint64_t last_requests = 0;
        std::uint64_t last_source_hits = 0;
        std::uint64_t last_source_loads = 0;
        while (!done.load(std::memory_order_acquire)) {
            const ServeStats s = server.stats();
            snapshots.fetch_add(1, std::memory_order_relaxed);
            // Dispatch counters are updated under one lock per response.
            if (s.requests != s.ok + s.failed) violations.fetch_add(1);
            // The plan cache snapshots entries and counters together.
            if (s.cache.insertions < s.cache.evictions ||
                s.cache.entries !=
                    s.cache.insertions - s.cache.evictions)
                violations.fetch_add(1);
            if (s.cache.bytes > s.cache.capacity_bytes)
                violations.fetch_add(1);
            // Monotonicity across snapshots (counters never run back).
            if (s.requests < last_requests) violations.fetch_add(1);
            if (s.source_hits < last_source_hits) violations.fetch_add(1);
            if (s.source_loads < last_source_loads)
                violations.fetch_add(1);
            last_requests = s.requests;
            last_source_hits = s.source_hits;
            last_source_loads = s.source_loads;
        }
    };

    auto writer = [&](int w) {
        for (int i = 0; i < kRequestsPerWriter; ++i) {
            const std::string spec =
                (i % 2 == 0) ? "stencil2d5:16" : "banded:128";
            const std::string line = server.handle_line(predict_line(
                "w" + std::to_string(w) + "n" + std::to_string(i), spec));
            EXPECT_TRUE(response_ok(line)) << line;
        }
    };

    std::vector<std::thread> threads;
    threads.emplace_back(reader);
    threads.emplace_back(reader);
    for (int w = 0; w < kWriters; ++w) threads.emplace_back(writer, w);
    for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();
    done.store(true, std::memory_order_release);
    threads[0].join();
    threads[1].join();

    EXPECT_EQ(violations.load(), 0);
    EXPECT_GT(snapshots.load(), 0);
    const ServeStats final_stats = server.stats();
    EXPECT_EQ(final_stats.requests,
              static_cast<std::uint64_t>(kWriters * kRequestsPerWriter));
    EXPECT_EQ(final_stats.ok + final_stats.failed, final_stats.requests);
    // Two distinct generated sources: exactly two loads, the rest hits.
    EXPECT_EQ(final_stats.source_loads, 2u);
    EXPECT_EQ(final_stats.source_hits,
              final_stats.requests - final_stats.source_loads);
}

// --------------------------------------------------------------------- soak

TEST(ServeSoak, ThousandMixedRequestsUnderInjectedFaults) {
    const std::vector<std::string> specs = {"stencil2d5:24", "banded:512",
                                            "randomcv:256"};
    // Reference payloads from a clean, fault-free daemon; the differential
    // test above ties these to the one-shot path.
    Server reference;
    std::vector<std::string> ref_payload;
    for (const auto& spec : specs) {
        const std::string line =
            reference.handle_line(predict_line("ref", spec));
        ASSERT_TRUE(response_ok(line)) << line;
        ref_payload.push_back(payload_of(line));
        ASSERT_FALSE(ref_payload.back().empty());
    }

    const fs::path corpus = fs::path(SPMVCACHE_TEST_DATA_DIR) / "corrupt";
    std::vector<std::string> corrupt;
    for (const auto& entry : fs::directory_iterator(corpus))
        corrupt.push_back(entry.path().string());
    ASSERT_FALSE(corrupt.empty());

    std::ostringstream in_text;
    int total = 0;
    for (int i = 0; i < 1080; ++i, ++total) {
        const std::string n = std::to_string(i);
        switch (i % 12) {
            case 3:
                in_text << "{\"id\":\"h" << n << "\",\"op\":\"health\"}\n";
                break;
            case 5:
                in_text << "{\"id\":\"c" << n
                        << "\",\"op\":\"predict\",\"matrix\":\""
                        << corrupt[static_cast<std::size_t>(i) %
                                   corrupt.size()]
                        << "\",\"strict\":true}\n";
                break;
            case 7: in_text << "this is not json " << n << "\n"; break;
            case 9:
                // Induced timeout: the budget expires long before the
                // model can finish; the attempt is abandoned.
                in_text << "{\"id\":\"t" << n
                        << "\",\"op\":\"predict\",\"gen\":\"stencil2d5:48\","
                           "\"threads\":2,\"timeout\":1e-6}\n";
                break;
            case 11:
                in_text << "{\"id\":\"s" << n
                        << "\",\"op\":\"stats\",\"gen\":\"" << specs[0]
                        << "\"}\n";
                break;
            default: {
                const std::size_t which =
                    static_cast<std::size_t>(i) % specs.size();
                in_text << predict_line(
                               "p" + std::to_string(which) + "x" + n,
                               specs[which])
                        << "\n";
                break;
            }
        }
    }
    in_text << "{\"id\":\"end\",\"op\":\"shutdown\"}\n";

    // Probabilistic, non-once faults across all three serve points; the
    // strike limit is pushed out of reach so injected failures cannot
    // quarantine the healthy generators mid-soak.
    fault::arm("serve.execute",
               {.probability = 0.05, .seed = 7, .once = false});
    fault::arm("serve.accept",
               {.probability = 0.02, .seed = 11, .once = false});
    fault::arm("serve.cache",
               {.probability = 0.10, .seed = 13, .once = false});
    ServeOptions options;
    options.workers = 4;
    // The whole stream is fed in one burst, far faster than any real
    // client; a large queue lets the soak exercise execution rather than
    // admission (the backpressure test covers rejection).
    options.queue_capacity = 4096;
    options.quarantine_strikes = 1000000;
    options.backoff_initial_seconds = 0.0005;
    Server server(options);
    std::istringstream in(in_text.str());
    std::ostringstream out, log;
    const int exit_code = server.run(in, out, log);
    fault::disarm_all();
    EXPECT_EQ(exit_code, kExitOk);

    int responses = 0, ok_predicts = 0, payload_mismatches = 0;
    int health_failures = 0;
    bool shutdown_ok = false;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
        ++responses;
        const auto id_at = line.find("\"id\":\"");
        ASSERT_NE(id_at, std::string::npos) << line;
        const char tag = line[id_at + 6];
        if (tag == 'h') {
            if (!response_ok(line)) ++health_failures;
        } else if (tag == 'p' && response_ok(line)) {
            ++ok_predicts;
            const std::size_t which =
                static_cast<std::size_t>(line[id_at + 7] - '0');
            ASSERT_LT(which, ref_payload.size()) << line;
            if (payload_of(line) != ref_payload[which])
                ++payload_mismatches;
        } else if (line.find("\"id\":\"end\"") != std::string::npos) {
            shutdown_ok = response_ok(line);
        }
    }
    // Every line got an answer, plus the shutdown acknowledgement.
    EXPECT_EQ(responses, total + 1);
    // Every served prediction is bit-identical to the fault-free payload.
    EXPECT_EQ(payload_mismatches, 0);
    EXPECT_GT(ok_predicts, 300);
    EXPECT_EQ(health_failures, 0);
    EXPECT_TRUE(shutdown_ok);

    const ServeStats stats = server.stats();
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_GT(stats.parse_errors, 0u);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_NE(log.str().find("draining (shutdown)"), std::string::npos);
    // Abandoned deadline attempts may still be finishing on detached
    // threads; give them a beat before the process tears down.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
}

}  // namespace
}  // namespace spmvcache
