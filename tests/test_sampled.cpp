// SHARDS sampling tests: the SampleFilter's hash/scaling identities, the
// SampledEngine adapter (R = 1 bit-identity, skip/scale semantics, rate
// lowering with eviction), fault-point degradation to exact computation,
// and the model-level accuracy contract — sampled predictions at R = 0.01
// within 5% MAPE of exact across the generator suite, with error shrinking
// as R approaches 1 and R = 1 bit-identical.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <iterator>
#include <vector>

#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "reuse/kim.hpp"
#include "reuse/olken.hpp"
#include "reuse/sampled.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "trace/sample.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

TEST(SampleFilter, DefaultAndRateOneAreExact) {
    const SampleFilter def;
    EXPECT_TRUE(def.exact());
    EXPECT_EQ(def.rate(), 1.0);
    EXPECT_EQ(def.inverse_rate(), 1.0);
    const SampleFilter one(1.0);
    EXPECT_TRUE(one.exact());
    for (std::uint64_t line = 0; line < 10000; ++line) {
        EXPECT_TRUE(def.keep(line));
        EXPECT_TRUE(one.keep(line));
        EXPECT_EQ(def.scale_distance(line), line);
    }
    EXPECT_EQ(def.scale_count(7.0), 7.0);
}

TEST(SampleFilter, RejectsRatesOutsideUnitInterval) {
    EXPECT_THROW(SampleFilter{0.0}, ContractViolation);
    EXPECT_THROW(SampleFilter{-0.5}, ContractViolation);
    EXPECT_THROW(SampleFilter{1.5}, ContractViolation);
}

TEST(SampleFilter, KeepFractionTracksRate) {
    // Sequential line numbers are the worst case for a weak hash; the
    // splitmix64 finalizer must still keep ~R of them.
    for (const double rate : {0.01, 0.1, 0.5}) {
        const SampleFilter filter(rate);
        std::uint64_t kept = 0;
        constexpr std::uint64_t kLines = 200000;
        for (std::uint64_t line = 0; line < kLines; ++line)
            if (filter.keep(line)) ++kept;
        const double fraction = static_cast<double>(kept) / kLines;
        EXPECT_NEAR(fraction, rate, 0.15 * rate + 0.001) << "R = " << rate;
    }
}

TEST(SampleFilter, ScalingIdentities) {
    const SampleFilter filter(0.25);
    EXPECT_EQ(filter.scale_distance(100), 400u);
    EXPECT_EQ(filter.scale_distance(0), 0u);
    // Cold misses pass through unscaled.
    EXPECT_EQ(filter.scale_distance(kInfiniteDistance), kInfiniteDistance);
    EXPECT_DOUBLE_EQ(filter.scale_count(8.0), 32.0);
    EXPECT_DOUBLE_EQ(filter.inverse_rate(), 4.0);
}

TEST(SampleFilter, SpatialConsistency) {
    // Spatial filtering: the verdict for a line never changes, and a
    // tighter filter keeps a subset of a looser filter's lines.
    const SampleFilter loose(0.2);
    const SampleFilter tight(0.02);
    Xoshiro256 rng(4);
    for (int i = 0; i < 100000; ++i) {
        const std::uint64_t line = rng.bounded(1u << 30);
        EXPECT_EQ(loose.keep(line), loose.keep(line));
        if (tight.keep(line)) {
            EXPECT_TRUE(loose.keep(line));
        }
    }
}

template <class Engine, class... Args>
void expect_rate_one_bit_identical(Args&&... args) {
    Engine bare(args...);
    SampledEngine<Engine> sampled(SampleFilter(1.0), args...);
    Xoshiro256 rng(31);
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < 60000; ++i)
        lines.push_back(rng.uniform() < 0.6 ? rng.bounded(128)
                                            : rng.bounded(30000) + 128);
    // Serial half.
    for (std::size_t i = 0; i < lines.size() / 2; ++i)
        ASSERT_EQ(sampled.access_one(lines[i]), bare.access_one(lines[i]))
            << "ref " << i;
    // Batched half.
    const std::size_t half = lines.size() / 2;
    std::vector<std::uint64_t> expected(lines.size() - half);
    std::vector<std::uint64_t> actual(lines.size() - half);
    bare.access_batch(lines.data() + half, expected.data(), expected.size());
    sampled.access_batch(lines.data() + half, actual.data(), actual.size());
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(sampled.distinct_lines(), bare.distinct_lines());
    EXPECT_EQ(sampled.sampled_refs(), lines.size());
    EXPECT_EQ(sampled.skipped_refs(), 0u);
}

TEST(SampledEngine, RateOneBitIdenticalOlken) {
    expect_rate_one_bit_identical<OlkenEngine>();
}

TEST(SampledEngine, RateOneBitIdenticalKim) {
    expect_rate_one_bit_identical<KimEngine>(std::uint64_t{64});
}

TEST(SampledEngine, SkipAndScaleSemantics) {
    // Reference: a bare engine fed only the kept subtrace. Every kept
    // reference must come back as scale_distance(reference distance);
    // every filtered one as kSkippedDistance.
    constexpr double kRate = 0.1;
    const SampleFilter filter(kRate);
    OlkenEngine reference;
    SampledEngine<OlkenEngine> sampled{SampleFilter(kRate)};
    Xoshiro256 rng(17);
    std::vector<std::uint64_t> lines;
    for (int i = 0; i < 50000; ++i) lines.push_back(rng.bounded(4000));

    // Serial first half, batched second half (chunks of 257 so batch
    // boundaries land mid-pattern).
    std::uint64_t kept = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::uint64_t got = 0;
        if (i < lines.size() / 2) {
            got = sampled.access_one(lines[i]);
        } else {
            if (i == lines.size() / 2 || (i - lines.size() / 2) % 257 == 0) {
                const std::size_t n =
                    std::min<std::size_t>(257, lines.size() - i);
                static std::vector<std::uint64_t> dists;
                dists.resize(n);
                sampled.access_batch(lines.data() + i, dists.data(), n);
                for (std::size_t k = 0; k < n; ++k) {
                    const std::uint64_t expected =
                        filter.keep(lines[i + k])
                            ? filter.scale_distance(
                                  reference.access_one(lines[i + k]))
                            : kSkippedDistance;
                    ASSERT_EQ(dists[k], expected) << "ref " << i + k;
                    if (filter.keep(lines[i + k])) ++kept;
                }
            }
            continue;
        }
        const std::uint64_t expected =
            filter.keep(lines[i])
                ? filter.scale_distance(reference.access_one(lines[i]))
                : kSkippedDistance;
        ASSERT_EQ(got, expected) << "ref " << i;
        if (filter.keep(lines[i])) ++kept;
    }
    EXPECT_EQ(sampled.sampled_refs(), kept);
    EXPECT_EQ(sampled.sampled_refs() + sampled.skipped_refs(), lines.size());
    // The scaled distinct-line estimate lands near the true footprint.
    const double estimate = static_cast<double>(sampled.distinct_lines());
    const double truth = static_cast<double>(reference.distinct_lines()) /
                         kRate;  // reference saw only kept lines
    EXPECT_DOUBLE_EQ(estimate, std::llround(truth));
}

template <class Engine, class... Args>
void expect_lower_rate_evicts(Args&&... args) {
    SampledEngine<Engine> sampled(SampleFilter(0.5), args...);
    Xoshiro256 rng(23);
    for (int i = 0; i < 30000; ++i) (void)sampled.access_one(rng.bounded(8000));
    const std::uint64_t tracked_before = sampled.engine().distinct_lines();
    ASSERT_GT(tracked_before, 0u);

    sampled.lower_rate(0.05);
    EXPECT_DOUBLE_EQ(sampled.filter().rate(), 0.05);
    // Every surviving line satisfies the tighter filter...
    std::uint64_t survivors = 0;
    sampled.engine().for_each_line([&](std::uint64_t line) {
        EXPECT_TRUE(sampled.filter().keep(line)) << "line " << line;
        ++survivors;
    });
    EXPECT_EQ(survivors, sampled.engine().distinct_lines());
    // ...and roughly 0.05/0.5 of the old set survives.
    EXPECT_LT(survivors, tracked_before / 5);
    EXPECT_GT(survivors, 0u);

    // A line the tighter filter rejects now skips; a kept line is cold
    // only if it was evicted or never sampled.
    const SampleFilter tight(0.05);
    std::uint64_t rejected_line = 0;
    for (std::uint64_t line = 0;; ++line) {
        if (SampleFilter(0.5).keep(line) && !tight.keep(line)) {
            rejected_line = line;
            break;
        }
    }
    EXPECT_EQ(sampled.access_one(rejected_line), kSkippedDistance);
}

TEST(SampledEngine, LowerRateEvictsOlken) {
    expect_lower_rate_evicts<OlkenEngine>();
}

TEST(SampledEngine, LowerRateEvictsKim) {
    expect_lower_rate_evicts<KimEngine>(std::uint64_t{32});
}

TEST(SampledEngine, LowerRateRejectsRaisingTheRate) {
    SampledEngine<OlkenEngine> sampled{SampleFilter(0.1)};
    EXPECT_THROW(sampled.lower_rate(0.5), ContractViolation);
    EXPECT_THROW(sampled.lower_rate(0.0), ContractViolation);
}

// ---------------------------------------------------------------------------
// Model-level contract: exact bit-identity, fault degradation, and the
// MAPE accuracy gate across the generator suite.

A64fxConfig scaled_machine() {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};    // 16 sets x 4 ways
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};  // 128 sets x 16 ways
    return cfg;
}

ModelOptions model_options(SectorPolicy policy, double sample_rate) {
    ModelOptions o;
    o.machine = scaled_machine();
    o.threads = 4;
    o.policy = policy;
    o.l2_way_options = {2, 4, 6};
    o.predict_l1 = true;
    o.sample_rate = sample_rate;
    return o;
}

void expect_results_bit_identical(const ModelResult& a, const ModelResult& b) {
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (std::size_t i = 0; i < a.configs.size(); ++i) {
        EXPECT_EQ(a.configs[i].l2_sector_ways, b.configs[i].l2_sector_ways);
        EXPECT_EQ(a.configs[i].l2_misses, b.configs[i].l2_misses);
        EXPECT_EQ(a.configs[i].l2_x_misses, b.configs[i].l2_x_misses);
    }
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l1_x_misses, b.l1_x_misses);
    EXPECT_EQ(a.x_traffic_fraction, b.x_traffic_fraction);
}

TEST(SampledModel, RateOneIsBitIdenticalAndReportedExact) {
    const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 77);
    for (const bool method_b : {false, true}) {
        const ModelOptions exact =
            model_options(SectorPolicy::IsolateMatrix, 1.0);
        const ModelResult base =
            method_b ? run_method_b(m, exact) : run_method_a(m, exact);
        const ModelResult again =
            method_b ? run_method_b(m, exact) : run_method_a(m, exact);
        expect_results_bit_identical(base, again);
        EXPECT_FALSE(base.sampled);
        EXPECT_EQ(base.sample_rate, 1.0);
        std::uint64_t total_refs = 0;
        for (const ShardStats& s : base.shards) {
            EXPECT_EQ(s.sampled_refs, s.references);
            total_refs += s.references;
        }
        EXPECT_EQ(base.sampled_refs, total_refs);
    }
}

TEST(SampledModel, SampleFaultDegradesToExact) {
    // An armed reuse.sample fault must turn a sampled run into an exact
    // one — identical numbers, and the result says so.
    const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 77);
    const ModelResult exact = run_method_a(
        m, model_options(SectorPolicy::IsolateMatrix, 1.0));

    fault::ScopedFault degrade("reuse.sample",
                               {.probability = 1.0, .once = false});
    const ModelResult degraded = run_method_a(
        m, model_options(SectorPolicy::IsolateMatrix, 0.01));
    expect_results_bit_identical(exact, degraded);
    EXPECT_FALSE(degraded.sampled);
    EXPECT_EQ(degraded.sample_rate, 1.0);
    EXPECT_EQ(degraded.sampled_refs, exact.sampled_refs);
}

TEST(SampledModel, SampledRunReportsItself) {
    const CsrMatrix m = gen::random_uniform(2048, 2048, 128, 77);
    const ModelResult r = run_method_a(
        m, model_options(SectorPolicy::IsolateMatrix, 0.01));
    EXPECT_TRUE(r.sampled);
    EXPECT_EQ(r.sample_rate, 0.01);
    std::uint64_t refs = 0;
    std::uint64_t kept = 0;
    for (const ShardStats& s : r.shards) {
        refs += s.references;
        kept += s.sampled_refs;
    }
    EXPECT_EQ(r.sampled_refs, kept);
    ASSERT_GT(refs, 0u);
    // The filter keeps roughly R of the demand references.
    const double fraction = static_cast<double>(kept) / static_cast<double>(refs);
    EXPECT_LT(fraction, 0.05);
    EXPECT_GT(fraction, 0.001);
}

/// The accuracy gate. Matrices are streaming-dominated (large matrix-data
/// footprints, local x reuse) — the regime the paper's models target and
/// where SHARDS' binomial error on the kept-line count is the dominant
/// term: with ~150-200k distinct matrix lines, R = 0.01 keeps ~2k lines
/// and the relative error on miss totals is a few percent. Everything is
/// deterministic (fixed generator seeds, fixed sampling hash), so these
/// bounds are exact regression checks, not flaky statistics.
class SampledModelAccuracy : public testing::Test {
protected:
    static const std::vector<CsrMatrix>& matrices() {
        static const std::vector<CsrMatrix> ms = [] {
            std::vector<CsrMatrix> v;
            // ~4.2M nnz banded: x window of 32 lines reused across rows.
            v.push_back(gen::banded(65536, 64, 512, 11));
            // ~2.9M nnz 5-point stencil on a 768x768 grid.
            v.push_back(gen::stencil_2d_5pt(768, 768));
            return v;
        }();
        return ms;
    }

    struct Mape {
        double sum = 0.0;
        std::uint64_t terms = 0;
        void add(double exact, double approx) {
            if (exact <= 0.0) return;
            sum += std::abs(approx - exact) / exact;
            ++terms;
        }
        [[nodiscard]] double value() const {
            return terms > 0 ? sum / static_cast<double>(terms) : 0.0;
        }
    };

    struct Cell {
        std::size_t matrix;
        bool method_b;
        SectorPolicy policy;
    };

    /// Each matrix, both methods and both sector policies appear (the
    /// full 2x2x2 cross would double the exact-baseline cost per ctest
    /// process for no new coverage on any single dimension).
    static constexpr Cell kCells[] = {
        {0, false, SectorPolicy::IsolateMatrix},
        {0, true, SectorPolicy::IsolateMatrixRowptrY},
        {1, true, SectorPolicy::IsolateMatrix},
        {1, false, SectorPolicy::IsolateMatrixRowptrY},
    };

    /// Runs `cells` of the grid at `rate` and accumulates the per-config
    /// L2 absolute percentage errors against exact results (computed once
    /// per process, cached across a test's mape_at calls).
    static Mape mape_at(double rate, std::size_t cells = std::size(kCells)) {
        Mape mape;
        for (std::size_t c = 0; c < cells; ++c) {
            const Cell& cell = kCells[c];
            const CsrMatrix& m = matrices()[cell.matrix];
            const ModelResult& exact = exact_cell(c);
            const ModelOptions opts = model_options(cell.policy, rate);
            const ModelResult approx = cell.method_b ? run_method_b(m, opts)
                                                     : run_method_a(m, opts);
            EXPECT_EQ(approx.sampled, rate < 1.0);
            EXPECT_EQ(approx.configs.size(), exact.configs.size());
            const std::size_t n =
                std::min(approx.configs.size(), exact.configs.size());
            for (std::size_t i = 0; i < n; ++i)
                mape.add(exact.configs[i].l2_misses,
                         approx.configs[i].l2_misses);
        }
        return mape;
    }

private:
    static const ModelResult& exact_cell(std::size_t c) {
        static std::vector<ModelResult> cache;
        if (c >= cache.size()) {
            const Cell& cell = kCells[c];
            const ModelOptions opts = model_options(cell.policy, 1.0);
            cache.push_back(cell.method_b
                                ? run_method_b(matrices()[cell.matrix], opts)
                                : run_method_a(matrices()[cell.matrix], opts));
        }
        return cache[c];
    }
};

TEST_F(SampledModelAccuracy, WithinFivePercentAtOnePercentRate) {
    const Mape mape = mape_at(0.01);
    ASSERT_GT(mape.terms, 0u);
    RecordProperty("mape_r001", testing::PrintToString(mape.value()));
    std::cout << "MAPE(R=0.01) = " << mape.value() << " over " << mape.terms
              << " configs\n";
    EXPECT_LE(mape.value(), 0.05)
        << "MAPE " << mape.value() << " over " << mape.terms << " configs";
}

TEST_F(SampledModelAccuracy, ErrorShrinksAsRateApproachesOne) {
    const double at_1pct = mape_at(0.01).value();
    const double at_25pct = mape_at(0.25).value();
    std::cout << "MAPE(R=0.01) = " << at_1pct << ", MAPE(R=0.25) = "
              << at_25pct << "\n";
    EXPECT_LE(at_25pct, at_1pct + 0.01)
        << "R=0.25 MAPE " << at_25pct << " vs R=0.01 MAPE " << at_1pct;
}

TEST_F(SampledModelAccuracy, RateOneIsExactOnLargeMatrices) {
    // Bitwise R=1 identity at full scale on one grid cell; the small-
    // matrix SampledModel tests already cover both methods exhaustively.
    const Mape mape = mape_at(1.0, 1);
    ASSERT_GT(mape.terms, 0u);
    EXPECT_EQ(mape.value(), 0.0);  // bitwise: |approx - exact| == 0
}

}  // namespace
}  // namespace spmvcache
