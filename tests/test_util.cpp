// Unit tests for src/util: statistics, formatting, CSV, CLI, PRNG,
// aligned allocation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/align.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace spmvcache {
namespace {

TEST(Stats, QuantileInterpolates) {
    const std::vector<double> data = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(data, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(data, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(data, 0.25), 1.75);
}

TEST(Stats, QuantileSingleElement) {
    const std::vector<double> data = {7.0};
    EXPECT_DOUBLE_EQ(quantile(data, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(quantile(data, 0.0), 7.0);
}

TEST(Stats, QuantileRejectsEmptyAndOutOfRange) {
    EXPECT_THROW((void)quantile({}, 0.5), ContractViolation);
    const std::vector<double> one = {1.0};
    EXPECT_THROW((void)quantile(one, 1.5), ContractViolation);
}

TEST(Stats, BoxplotFiveNumberSummary) {
    std::vector<double> data;
    for (int i = 1; i <= 100; ++i) data.push_back(i);
    const auto box = boxplot(data);
    EXPECT_EQ(box.count, 100u);
    EXPECT_DOUBLE_EQ(box.min, 1.0);
    EXPECT_DOUBLE_EQ(box.max, 100.0);
    EXPECT_DOUBLE_EQ(box.median, 50.5);
    EXPECT_NEAR(box.q1, 25.75, 1e-12);
    EXPECT_NEAR(box.q3, 75.25, 1e-12);
    EXPECT_TRUE(box.outliers.empty());
}

TEST(Stats, BoxplotFlagsOutliers) {
    std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 1000};
    const auto box = boxplot(data);
    ASSERT_EQ(box.outliers.size(), 1u);
    EXPECT_DOUBLE_EQ(box.outliers.front(), 1000.0);
    EXPECT_LE(box.whisker_hi, 8.0);
}

TEST(Stats, MapeMatchesPaperDefinition) {
    // Eq. 3: mean of |measured - predicted| / measured * 100.
    const std::vector<double> measured = {100, 200};
    const std::vector<double> predicted = {90, 220};
    EXPECT_DOUBLE_EQ(mape(measured, predicted), (10.0 + 10.0) / 2.0);
}

TEST(Stats, MapeSkipsZeroMeasured) {
    const std::vector<double> measured = {0, 100};
    const std::vector<double> predicted = {50, 110};
    EXPECT_DOUBLE_EQ(mape(measured, predicted), 10.0);
}

TEST(Stats, ApeStddevZeroForConstantError) {
    const std::vector<double> measured = {100, 200, 400};
    const std::vector<double> predicted = {110, 220, 440};
    EXPECT_NEAR(ape_stddev(measured, predicted), 0.0, 1e-9);
}

TEST(Stats, RunningMomentsMatchBatch) {
    RunningMoments rm;
    const std::vector<double> data = {3, 1, 4, 1, 5, 9, 2, 6};
    for (double x : data) rm.add(x);
    EXPECT_NEAR(rm.mean(), mean(data), 1e-12);
    EXPECT_NEAR(rm.stddev(), stddev(data), 1e-12);
    EXPECT_NEAR(rm.cv(), stddev(data) / mean(data), 1e-12);
}

TEST(Prng, DeterministicForSeed) {
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, BoundedStaysInRange) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.bounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Prng, BoundedCoversAllResidues) {
    Xoshiro256 rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 4000; ++i) ++seen[rng.bounded(8)];
    for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected
}

TEST(Prng, UniformInUnitInterval) {
    Xoshiro256 rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, NormalHasUnitVariance) {
    Xoshiro256 rng(17);
    RunningMoments rm;
    for (int i = 0; i < 20000; ++i) rm.add(rng.normal());
    EXPECT_NEAR(rm.mean(), 0.0, 0.03);
    EXPECT_NEAR(rm.stddev(), 1.0, 0.03);
}

TEST(Prng, JumpDecorrelatesStreams) {
    Xoshiro256 a(123);
    Xoshiro256 b(123);
    b.jump();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next()) ++equal;
    EXPECT_LT(equal, 5);
}

TEST(Align, VectorDataIsLineAligned) {
    // Pointer-to-integer is what this test measures (the numeric address
    // modulo the line size); there is no std::bit_cast equivalent for
    // pointers, so the cast is justified here and nowhere else.
    aligned_vector<double> v(1000);
    // spmv-lint: allow(reinterpret-cast)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kA64fxLineBytes,
              0u);
    aligned_vector<std::int32_t> w(3);
    // spmv-lint: allow(reinterpret-cast)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kA64fxLineBytes,
              0u);
}

TEST(Table, RendersAlignedColumns) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::ostringstream os;
    t.render(os, "Title");
    const std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
    TextTable t({"a"});
    EXPECT_THROW(t.add_row({"1", "2"}), ContractViolation);
}

TEST(Table, FormatHelpers) {
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmt_count(1234567), "1,234,567");
    EXPECT_EQ(fmt_count(999), "999");
    EXPECT_EQ(fmt_bytes(11ull * 1024 * 1024), "11.0 MiB");
}

TEST(Csv, RoundTripsRows) {
    const std::string path = testing::TempDir() + "/spmvcache_test.csv";
    {
        CsvWriter w(path, {"a", "b"});
        w.write_row({"1", "x,y"});
        w.write_row({"2", "quote\"inside"});
        EXPECT_EQ(w.rows_written(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,\"x,y\"");
    std::getline(in, line);
    EXPECT_EQ(line, "2,\"quote\"\"inside\"");
    std::remove(path.c_str());
}

TEST(Cli, ParsesAllForms) {
    // Note: a bare --flag greedily consumes a following non-flag token as
    // its value, so positionals must precede flags (or use --flag=value).
    const char* argv[] = {"prog",      "pos1",   "--count", "7",
                          "--scale=0.5", "--name", "x",       "--verbose"};
    CliParser cli(8, argv);
    EXPECT_EQ(cli.get_int("count", 0), 7);
    EXPECT_DOUBLE_EQ(cli.get_double("scale", 0.0), 0.5);
    EXPECT_TRUE(cli.get_bool("verbose", false));
    EXPECT_FALSE(cli.get_bool("absent", false));
    EXPECT_EQ(cli.get("name", ""), "x");
    ASSERT_EQ(cli.positionals().size(), 1u);
    EXPECT_EQ(cli.positionals().front(), "pos1");
    EXPECT_EQ(cli.get_int("missing", -3), -3);
}

TEST(Format, SplitTrimLower) {
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_TRUE(starts_with("%%MatrixMarket", "%%"));
    EXPECT_EQ(to_lower("ReAL"), "real");
}

}  // namespace
}  // namespace spmvcache
