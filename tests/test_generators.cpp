// Unit tests for src/sparse/gen: structural properties of every generator
// family and of the synthetic suite / Table 1 analogues.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/rmat.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/gen/suite.hpp"
#include "sparse/gen/table1.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmvcache {
namespace {

TEST(Stencil, FivePointInteriorRowHasFiveEntries) {
    const CsrMatrix m = gen::stencil_2d_5pt(5, 5);
    m.validate();
    EXPECT_EQ(m.rows(), 25);
    // Interior node (2,2) -> row 12.
    EXPECT_EQ(m.row_nnz(12), 5);
    // Corner node -> 3 entries.
    EXPECT_EQ(m.row_nnz(0), 3);
    // Laplacian row sums: diagonal 4, neighbors -1 each.
    const auto dense = to_dense(m);
    EXPECT_DOUBLE_EQ(dense[12 * 25 + 12], 4.0);
    EXPECT_DOUBLE_EQ(dense[12 * 25 + 11], -1.0);
    EXPECT_DOUBLE_EQ(dense[12 * 25 + 7], -1.0);
}

TEST(Stencil, NinePointInteriorRowHasNineEntries) {
    const CsrMatrix m = gen::stencil_2d_9pt(4, 4);
    m.validate();
    EXPECT_EQ(m.row_nnz(5), 9);   // interior
    EXPECT_EQ(m.row_nnz(0), 4);   // corner of full 3x3 neighborhood
}

TEST(Stencil, SevenPoint3dInterior) {
    const CsrMatrix m = gen::stencil_3d_7pt(3, 3, 3);
    m.validate();
    EXPECT_EQ(m.rows(), 27);
    EXPECT_EQ(m.row_nnz(13), 7);  // center node
}

TEST(Stencil, TwentySevenPoint3dInterior) {
    const CsrMatrix m = gen::stencil_3d_27pt(3, 3, 3);
    m.validate();
    EXPECT_EQ(m.row_nnz(13), 27);
    EXPECT_EQ(m.row_nnz(0), 8);
}

TEST(Stencil, SymmetricPattern) {
    const CsrMatrix m = gen::stencil_2d_5pt(6, 4);
    const auto dense = to_dense(m);
    for (std::int64_t r = 0; r < m.rows(); ++r)
        for (std::int64_t c = 0; c < m.cols(); ++c) {
            const bool rc = dense[static_cast<std::size_t>(r * m.cols() + c)] != 0.0;
            const bool cr = dense[static_cast<std::size_t>(c * m.cols() + r)] != 0.0;
            EXPECT_EQ(rc, cr);
        }
}

TEST(Banded, RespectsBandwidthAndRowCount) {
    const CsrMatrix m = gen::banded(500, 9, 20, 42);
    m.validate();
    const auto s = compute_stats(m);
    EXPECT_LE(s.bandwidth, 20);
    EXPECT_NEAR(s.mean_nnz_per_row, 9.0, 0.5);
    // Diagonal always present.
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        bool has_diag = false;
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i)
            if (colidx[static_cast<std::size_t>(i)] == r) has_diag = true;
        EXPECT_TRUE(has_diag) << "row " << r;
    }
}

TEST(Banded, DeterministicForSeed) {
    const CsrMatrix a = gen::banded(200, 5, 10, 7);
    const CsrMatrix b = gen::banded(200, 5, 10, 7);
    EXPECT_EQ(a.nnz(), b.nnz());
    EXPECT_TRUE(std::equal(a.colidx().begin(), a.colidx().end(),
                           b.colidx().begin()));
}

TEST(Circuit, MeanDegreeNearTarget) {
    const CsrMatrix m = gen::circuit(2000, 3.0, 50, 0.1, 11);
    m.validate();
    const auto s = compute_stats(m);
    // diagonal + ~3 extras, minus duplicate collisions.
    EXPECT_GT(s.mean_nnz_per_row, 3.0);
    EXPECT_LT(s.mean_nnz_per_row, 4.2);
}

TEST(RandomUniform, ExactRowDegrees) {
    const CsrMatrix m = gen::random_uniform(300, 400, 24, 3);
    m.validate();
    EXPECT_EQ(m.cols(), 400);
    for (std::int64_t r = 0; r < m.rows(); ++r) EXPECT_EQ(m.row_nnz(r), 24);
}

TEST(RandomVariableRows, HitsTargetCv) {
    const CsrMatrix m = gen::random_variable_rows(4000, 4000, 8.0, 1.5, 5);
    m.validate();
    const auto s = compute_stats(m);
    // Clamping at 1 nonzero/row truncates the left tail, which raises the
    // realised mean and shrinks the realised CV somewhat.
    EXPECT_NEAR(s.mean_nnz_per_row, 8.0, 3.0);
    EXPECT_GT(s.cv_nnz_per_row, 0.7);
}

TEST(Rmat, PowerLawSkew) {
    const CsrMatrix m = gen::rmat(12, 40000, 9);
    m.validate();
    EXPECT_EQ(m.rows(), 4096);
    const auto s = compute_stats(m);
    // RMAT with a=0.57 concentrates nonzeros: CV well above a uniform
    // matrix's, max row far above the mean.
    EXPECT_GT(s.cv_nnz_per_row, 1.0);
    EXPECT_GT(static_cast<double>(s.max_nnz_per_row),
              5.0 * s.mean_nnz_per_row);
}

TEST(BlockFem, DenseBlocksShareColumns) {
    const CsrMatrix m = gen::block_fem(32, 4, 3, 8, 21);
    m.validate();
    EXPECT_EQ(m.rows(), 128);
    // All rows of a block row have identical nonzero counts.
    for (std::int64_t br = 0; br < 32; ++br) {
        const auto k0 = m.row_nnz(br * 4);
        for (std::int64_t lr = 1; lr < 4; ++lr)
            EXPECT_EQ(m.row_nnz(br * 4 + lr), k0);
    }
}

TEST(Suite, CoversAllFamiliesDeterministically) {
    gen::SuiteOptions options;
    options.count = 16;
    options.scale = 0.01;  // tiny for test speed
    const auto suite = gen::synthetic_suite(options);
    EXPECT_GE(suite.size(), 16u);
    std::set<std::string> families;
    for (const auto& spec : suite) families.insert(spec.family);
    EXPECT_GE(families.size(), 8u);
    // Deterministic names and factories.
    const auto suite2 = gen::synthetic_suite(options);
    ASSERT_EQ(suite.size(), suite2.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, suite2[i].name);
        const CsrMatrix a = suite[i].factory();
        const CsrMatrix b = suite2[i].factory();
        EXPECT_EQ(a.nnz(), b.nnz()) << suite[i].name;
    }
}

TEST(Table1, HasAllEighteenRows) {
    const auto& ref = gen::table1_reference();
    ASSERT_EQ(ref.size(), 18u);
    EXPECT_STREQ(ref.front().name, "pdb1HYS");
    EXPECT_STREQ(ref.back().name, "ML_Geer");
    const auto suite = gen::table1_suite(0.002);
    ASSERT_EQ(suite.size(), 18u);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, ref[i].name);
}

TEST(Table1, AnaloguesMatchNnzPerRowShape) {
    const double scale = 0.01;
    const auto suite = gen::table1_suite(scale);
    const auto& ref = gen::table1_reference();
    for (std::size_t i = 0; i < 6; ++i) {  // the smaller matrices
        const CsrMatrix m = suite[i].factory();
        m.validate();
        const double target_nnz_per_row =
            ref[i].nnz_millions / ref[i].rows_millions;
        const auto s = compute_stats(m);
        EXPECT_NEAR(s.mean_nnz_per_row / target_nnz_per_row, 1.0, 0.45)
            << suite[i].name;
    }
}

}  // namespace
}  // namespace spmvcache
