// Tests for the ECM-style timing model.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "perf/timing.hpp"

namespace spmvcache {
namespace {

A64fxConfig tiny_machine() {
    A64fxConfig cfg;
    cfg.cores = 2;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 0};
    cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 0};
    cfg.l1_prefetch.enabled = false;
    cfg.l2_prefetch.enabled = false;
    return cfg;
}

TEST(Timing, ZeroWorkZeroTime) {
    MemoryHierarchy sim(tiny_machine());
    const auto t = estimate_timing(sim, {0, 0});
    EXPECT_DOUBLE_EQ(t.seconds, 0.0);
    EXPECT_DOUBLE_EQ(t.gflops, 0.0);
}

TEST(Timing, PureComputeBoundByCoreTerm) {
    MemoryHierarchy sim(tiny_machine());
    TimingParameters params;
    params.cycles_per_nnz = 2.0;
    const auto t = estimate_timing(sim, {1000, 1000}, params);
    // No memory traffic: time = 1000 nnz * 2 cycles on the slowest core.
    EXPECT_DOUBLE_EQ(t.total_cycles, 2000.0);
    EXPECT_DOUBLE_EQ(t.core_cycles, 2000.0);
    EXPECT_DOUBLE_EQ(t.bandwidth_cycles, 0.0);
    EXPECT_NEAR(t.gflops,
                2.0 * 2000 / (2000.0 / (params.clock_ghz * 1e9)) / 1e9,
                1e-9);
}

TEST(Timing, LoadImbalanceGovernedBySlowestCore) {
    MemoryHierarchy sim(tiny_machine());
    TimingParameters params;
    params.cycles_per_nnz = 1.0;
    const auto balanced = estimate_timing(sim, {500, 500}, params);
    const auto skewed = estimate_timing(sim, {900, 100}, params);
    EXPECT_GT(skewed.total_cycles, balanced.total_cycles);
    EXPECT_DOUBLE_EQ(skewed.total_cycles, 900.0);
}

TEST(Timing, DemandMissesAddLatencyCost) {
    MemoryHierarchy sim(tiny_machine());
    // 64 distinct lines -> 64 demand fills on core 0.
    for (std::uint64_t line = 0; line < 64; ++line)
        sim.demand_access(0, line * 8, 0, false);
    TimingParameters params;
    params.cycles_per_nnz = 0.0;
    params.cycles_per_l1_refill = 0.0;
    params.memory_latency_cycles = 100.0;
    params.mlp = 10.0;
    params.segment_bandwidth_bytes_per_cycle = 1e9;  // disable BW bound
    const auto t = estimate_timing(sim, {0, 0}, params);
    EXPECT_DOUBLE_EQ(t.total_cycles, 64.0 * 100.0 / 10.0);
}

TEST(Timing, BandwidthBoundKicksInForStreaming) {
    MemoryHierarchy sim(tiny_machine());
    for (std::uint64_t line = 0; line < 1000; ++line)
        sim.demand_access(0, line * 8, 0, false);
    TimingParameters params;
    params.cycles_per_nnz = 0.0;
    params.cycles_per_l1_refill = 0.0;
    params.memory_latency_cycles = 0.0;
    params.segment_bandwidth_bytes_per_cycle = 4.0;
    const auto t = estimate_timing(sim, {0, 0}, params);
    // 1000 fills x 16 B / 4 B per cycle.
    EXPECT_DOUBLE_EQ(t.total_cycles, 1000.0 * 16 / 4.0);
    EXPECT_GT(t.bandwidth_gbs, 0.0);
}

TEST(Timing, FewerMissesNeverSlower) {
    // Two runs differing only in L2 miss count: the one with fewer demand
    // misses can not be estimated slower (all else equal).
    MemoryHierarchy many(tiny_machine());
    MemoryHierarchy few(tiny_machine());
    for (std::uint64_t i = 0; i < 200; ++i) {
        many.demand_access(0, (i * 8) % 4096, 0, false);
        few.demand_access(0, (i * 8) % 64, 0, false);
    }
    const auto t_many = estimate_timing(many, {100, 100});
    const auto t_few = estimate_timing(few, {100, 100});
    EXPECT_LE(t_few.total_cycles, t_many.total_cycles);
}

}  // namespace
}  // namespace spmvcache
