// Pins SPMV_CONTRACT_MODE to trap before the first include of
// util/checked.hpp, overriding whatever -DSPMV_CONTRACT_MODE the build
// selected, so this binary always exercises the abort path.
#undef SPMV_CONTRACT_MODE
#define SPMV_CONTRACT_MODE 2

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/checked.hpp"

namespace spmvcache {
namespace {

TEST(ContractsTrapDeathTest, ExpectAborts) {
    EXPECT_DEATH(SPMV_EXPECT(1 + 1 == 3), "expectation violated");
}

TEST(ContractsTrapDeathTest, EnsureAborts) {
    EXPECT_DEATH(SPMV_ENSURE(false), "guarantee violated");
}

TEST(ContractsTrapDeathTest, OverflowingCheckedMulAborts) {
    std::int64_t out = 0;
    EXPECT_DEATH(
        SPMV_EXPECT(checked_mul<std::int64_t>(
            std::numeric_limits<std::int64_t>::max(), 2, out)),
        "expectation violated");
}

TEST(ContractsTrap, PassingConditionsAreSilent) {
    std::int64_t out = 0;
    SPMV_EXPECT(checked_add<std::int64_t>(2, 2, out));
    SPMV_ENSURE(out == 4);
}

}  // namespace
}  // namespace spmvcache
