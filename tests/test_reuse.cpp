// Unit and property tests for the reuse-distance engines and miss
// counters: the naive stack is the executable definition; Olken must agree
// with it exactly, Kim approximately at group granularity.
#include <gtest/gtest.h>

#include <vector>

#include "reuse/flat_map.hpp"
#include "reuse/histogram.hpp"
#include "reuse/kim.hpp"
#include "reuse/naive.hpp"
#include "reuse/olken.hpp"
#include "util/fault.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

TEST(FlatMap, PutFindOverwrite) {
    FlatMap64 map;
    EXPECT_EQ(map.find(42), nullptr);
    map.put(42, 1);
    map.put(0, 2);  // zero key is valid
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 1u);
    map.put(42, 9);
    EXPECT_EQ(*map.find(42), 9u);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, GrowsPastInitialCapacity) {
    FlatMap64 map(4);
    for (std::uint64_t k = 0; k < 10000; ++k) map.put(k * 3, k);
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        ASSERT_NE(map.find(k * 3), nullptr);
        EXPECT_EQ(*map.find(k * 3), k);
    }
    EXPECT_EQ(map.find(1), nullptr);
}

TEST(NaiveStack, TextbookSequence) {
    NaiveStackEngine e;
    // a b c a -> RD(a)=2; b -> 2; b -> 0; a -> 2.
    EXPECT_EQ(e.access(10), kInfiniteDistance);
    EXPECT_EQ(e.access(20), kInfiniteDistance);
    EXPECT_EQ(e.access(30), kInfiniteDistance);
    EXPECT_EQ(e.access(10), 2u);
    EXPECT_EQ(e.access(20), 2u);
    EXPECT_EQ(e.access(20), 0u);
    EXPECT_EQ(e.access(10), 1u);
    EXPECT_EQ(e.distinct_lines(), 3u);
}

TEST(Olken, MatchesNaiveOnRandomTrace) {
    NaiveStackEngine naive;
    OlkenEngine olken;
    Xoshiro256 rng(99);
    for (int i = 0; i < 20000; ++i) {
        // Mixture of hot lines and a long tail.
        const std::uint64_t line = rng.uniform() < 0.7
                                       ? rng.bounded(64)
                                       : rng.bounded(5000) + 64;
        EXPECT_EQ(olken.access(line), naive.access(line)) << "step " << i;
    }
    EXPECT_EQ(olken.distinct_lines(), naive.distinct_lines());
}

TEST(Olken, MatchesNaiveOnSequentialStreams) {
    NaiveStackEngine naive;
    OlkenEngine olken;
    // Two interleaved streams plus a small reused set: SpMV-shaped.
    for (int iter = 0; iter < 3; ++iter) {
        for (std::uint64_t i = 0; i < 3000; ++i) {
            for (const std::uint64_t line :
                 {100000 + i, 200000 + i, i % 37}) {
                EXPECT_EQ(olken.access(line), naive.access(line));
            }
        }
    }
}

TEST(Olken, CompactionPreservesDistances) {
    // Force many timestamp slots with a small distinct set so compaction
    // triggers repeatedly (initial slot space is 2^16).
    NaiveStackEngine naive;
    OlkenEngine olken(16);
    Xoshiro256 rng(3);
    for (int i = 0; i < 300000; ++i) {
        const std::uint64_t line = rng.bounded(128);
        ASSERT_EQ(olken.access(line), naive.access(line)) << "step " << i;
    }
}

/// access_batch must equal n in-order access() calls for any chunking —
/// including chunks straddling rehashes and (for Olken) compactions.
template <class Engine, class... Args>
void expect_batch_matches_serial(Args&&... args) {
    Xoshiro256 rng(2024);
    std::vector<std::uint64_t> lines;
    // Long enough to outrun Olken's 2^16 initial timestamp slots, so
    // compaction fires mid-batch.
    for (int i = 0; i < 150000; ++i)
        lines.push_back(rng.uniform() < 0.6 ? rng.bounded(96)
                                            : rng.bounded(20000) + 96);

    Engine serial(args...);
    std::vector<std::uint64_t> expected;
    expected.reserve(lines.size());
    for (const std::uint64_t line : lines)
        expected.push_back(serial.access(line));

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{1024}, lines.size()}) {
        Engine batched(args...);
        std::vector<std::uint64_t> dists(lines.size());
        for (std::size_t i = 0; i < lines.size(); i += chunk) {
            const std::size_t n = std::min(chunk, lines.size() - i);
            batched.access_batch(lines.data() + i, dists.data() + i, n);
        }
        ASSERT_EQ(dists, expected) << "chunk " << chunk;
        EXPECT_EQ(batched.distinct_lines(), serial.distinct_lines());
    }
}

TEST(Olken, BatchMatchesSerialForEveryChunking) {
    expect_batch_matches_serial<OlkenEngine>();
}

TEST(Olken, BatchMatchesSerialAcrossCompaction) {
    // Tiny slot space: compaction fires inside batches.
    expect_batch_matches_serial<OlkenEngine>(std::size_t{16});
}

TEST(Kim, BatchMatchesSerialForEveryChunking) {
    expect_batch_matches_serial<KimEngine>(std::uint64_t{64});
}

TEST(Kim, BatchMatchesSerialWithWideGroups) {
    expect_batch_matches_serial<KimEngine>(std::uint64_t{1} << 16);
}

TEST(Olken, BatchWithInterleaveFaultArmedMatchesSerial) {
    // An armed reuse.interleave fault degrades access_batch to the simple
    // lookahead loop; results must stay bit-identical to serial access().
    fault::ScopedFault fallback("reuse.interleave",
                                {.probability = 1.0, .once = false});
    expect_batch_matches_serial<OlkenEngine>();
}

TEST(Kim, BatchWithInterleaveFaultArmedMatchesSerial) {
    fault::ScopedFault fallback("reuse.interleave",
                                {.probability = 1.0, .once = false});
    expect_batch_matches_serial<KimEngine>(std::uint64_t{64});
}

TEST(Olken, EvictedLineBehavesAsNeverAccessed) {
    // Differential: engine A accesses a probe line and immediately evicts
    // it; engine B never sees the probe. With no accesses between the
    // probe's insert and evict, the two engines' trees are isomorphic, so
    // every later distance must match — eviction fully unwinds the insert.
    OlkenEngine with_evict;
    OlkenEngine without;
    Xoshiro256 rng(77);
    for (int round = 0; round < 20000; ++round) {
        if (rng.uniform() < 0.25) {
            const std::uint64_t probe = 1u << 20;  // outside the common set
            (void)with_evict.access(probe);
            ASSERT_TRUE(with_evict.evict(probe));
        }
        const std::uint64_t line = rng.uniform() < 0.6
                                       ? rng.bounded(96)
                                       : rng.bounded(20000) + 96;
        ASSERT_EQ(with_evict.access(line), without.access(line))
            << "round " << round;
    }
    EXPECT_EQ(with_evict.distinct_lines(), without.distinct_lines());
}

TEST(Olken, EvictBasics) {
    OlkenEngine e;
    EXPECT_FALSE(e.evict(5));  // unknown line
    e.access(5);
    e.access(6);
    EXPECT_EQ(e.distinct_lines(), 2u);
    EXPECT_TRUE(e.evict(5));
    EXPECT_EQ(e.distinct_lines(), 1u);
    EXPECT_FALSE(e.evict(5));                      // already gone
    EXPECT_EQ(e.access(5), kInfiniteDistance);     // cold again
    EXPECT_EQ(e.access(6), 1u);                    // 5 re-inserted above it
}

TEST(Kim, EvictBasics) {
    KimEngine e(4);
    for (std::uint64_t line = 0; line < 40; ++line) e.access(line);
    EXPECT_EQ(e.distinct_lines(), 40u);
    EXPECT_FALSE(e.evict(999));
    EXPECT_TRUE(e.evict(17));
    EXPECT_EQ(e.distinct_lines(), 39u);
    EXPECT_FALSE(e.evict(17));
    // An evicted line is cold on re-access.
    EXPECT_EQ(e.access(17), kInfiniteDistance);
    EXPECT_EQ(e.distinct_lines(), 40u);
}

template <class Engine, class... Args>
void expect_for_each_line_tracks_membership(Args&&... args) {
    Engine e(args...);
    for (std::uint64_t line = 0; line < 100; ++line) e.access(line);
    ASSERT_TRUE(e.evict(10));
    ASSERT_TRUE(e.evict(90));
    std::vector<bool> seen(100, false);
    std::size_t count = 0;
    e.for_each_line([&](std::uint64_t line) {
        ASSERT_LT(line, 100u);
        EXPECT_FALSE(seen[line]) << "line " << line << " visited twice";
        seen[line] = true;
        ++count;
    });
    EXPECT_EQ(count, 98u);
    EXPECT_FALSE(seen[10]);
    EXPECT_FALSE(seen[90]);
    EXPECT_TRUE(seen[0]);
    EXPECT_TRUE(seen[99]);
}

TEST(Olken, ForEachLineTracksMembership) {
    expect_for_each_line_tracks_membership<OlkenEngine>();
}

TEST(Kim, ForEachLineTracksMembership) {
    expect_for_each_line_tracks_membership<KimEngine>(std::uint64_t{8});
}

TEST(Olken, ClearForgetsHistory) {
    OlkenEngine e;
    e.access(1);
    e.access(2);
    EXPECT_EQ(e.access(1), 1u);
    e.clear();
    EXPECT_EQ(e.access(1), kInfiniteDistance);
    EXPECT_EQ(e.distinct_lines(), 1u);
}

TEST(Kim, ExactForSmallStacksWithLargeGroups) {
    // With one group larger than the distinct set, distances collapse to
    // group-midpoint estimates; with group capacity 1 they are exact.
    KimEngine kim(1);
    NaiveStackEngine naive;
    Xoshiro256 rng(5);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t line = rng.bounded(50);
        EXPECT_EQ(kim.access(line), naive.access(line)) << "step " << i;
    }
}

TEST(Kim, ApproximatesWithinGroupCapacity) {
    constexpr std::uint64_t kGroup = 64;
    KimEngine kim(kGroup);
    NaiveStackEngine naive;
    Xoshiro256 rng(8);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t line = rng.bounded(2000);
        const auto approx = kim.access(line);
        const auto exact = naive.access(line);
        if (exact == kInfiniteDistance) {
            EXPECT_EQ(approx, kInfiniteDistance);
        } else {
            // Kim et al.: error bounded by the group capacity.
            const auto lo = exact >= kGroup ? exact - kGroup : 0;
            EXPECT_GE(approx, lo) << "step " << i;
            EXPECT_LE(approx, exact + kGroup) << "step " << i;
        }
    }
}

TEST(Kim, GroupChainStaysBounded) {
    KimEngine kim(128);
    for (std::uint64_t line = 0; line < 10000; ++line) kim.access(line);
    // 10000 distinct lines / capacity 128 -> ~79 groups.
    EXPECT_GE(kim.group_count(), 70u);
    EXPECT_LE(kim.group_count(), 90u);
    EXPECT_EQ(kim.distinct_lines(), 10000u);
}

TEST(CapacityMissCounter, ExactThresholds) {
    CapacityMissCounter counter({4, 16});
    // Distances: 3 (hit@4), 4 (miss@4 hit... miss at 4, hit at 16), 100
    // (miss at both), infinite (cold).
    counter.record(3);
    counter.record(4);
    counter.record(100);
    counter.record(kInfiniteDistance);
    EXPECT_EQ(counter.capacity_misses(4), 2u);
    EXPECT_EQ(counter.capacity_misses(16), 1u);
    EXPECT_EQ(counter.cold_misses(), 1u);
    EXPECT_EQ(counter.total_misses(4), 3u);
    EXPECT_EQ(counter.accesses(), 4u);
}

TEST(CapacityMissCounter, MatchesDirectCountOnRandomDistances) {
    const std::vector<std::uint64_t> caps = {8, 64, 512, 4096};
    CapacityMissCounter counter(caps);
    Xoshiro256 rng(21);
    std::vector<std::uint64_t> distances;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t d = rng.bounded(8192);
        distances.push_back(d);
        counter.record(d);
    }
    for (const auto cap : caps) {
        std::uint64_t expected = 0;
        for (const auto d : distances)
            if (d >= cap) ++expected;
        EXPECT_EQ(counter.capacity_misses(cap), expected) << "cap " << cap;
    }
}

TEST(CapacityMissCounter, RejectsUnknownCapacity) {
    CapacityMissCounter counter({8});
    EXPECT_THROW((void)counter.capacity_misses(9), ContractViolation);
}

TEST(ReuseHistogram, BucketsAndMergar) {
    ReuseHistogram h;
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    h.record(kInfiniteDistance);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.cold(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);  // distance 0
    EXPECT_EQ(h.bucket(1), 1u);  // distance 1
    EXPECT_EQ(h.bucket(2), 2u);  // distances 2..3

    ReuseHistogram h2;
    h2.record(0);
    h.merge(h2);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(ReuseHistogram, MissesAtLeastMonotone) {
    ReuseHistogram h;
    Xoshiro256 rng(2);
    for (int i = 0; i < 5000; ++i) h.record(rng.bounded(1 << 20));
    double prev = h.misses_at_least(1);
    for (std::uint64_t cap = 2; cap <= (1u << 20); cap *= 2) {
        const double cur = h.misses_at_least(cap);
        EXPECT_LE(cur, prev + 1e-9);
        prev = cur;
    }
    EXPECT_NEAR(h.misses_at_least(1u << 21), 0.0, 1e-9);
}

// Property sweep: all three engines agree (Kim within tolerance) across
// trace shapes.
class EngineAgreement : public testing::TestWithParam<int> {};

TEST_P(EngineAgreement, AllEnginesConsistent) {
    const int shape = GetParam();
    NaiveStackEngine naive;
    OlkenEngine olken;
    KimEngine kim(32);
    Xoshiro256 rng(1000 + static_cast<std::uint64_t>(shape));
    for (int i = 0; i < 8000; ++i) {
        std::uint64_t line = 0;
        switch (shape) {
            case 0:  // uniform random
                line = rng.bounded(700);
                break;
            case 1:  // sequential stream
                line = static_cast<std::uint64_t>(i) % 900;
                break;
            case 2:  // strided
                line = (static_cast<std::uint64_t>(i) * 17) % 1024;
                break;
            case 3:  // skewed hot set
                line = rng.uniform() < 0.9 ? rng.bounded(16)
                                           : rng.bounded(4000);
                break;
            default:  // bursts
                line = (static_cast<std::uint64_t>(i) / 64) % 300;
                break;
        }
        const auto exact = naive.access(line);
        EXPECT_EQ(olken.access(line), exact);
        const auto approx = kim.access(line);
        if (exact == kInfiniteDistance) {
            EXPECT_EQ(approx, kInfiniteDistance);
        } else {
            EXPECT_LE(approx, exact + 32);
            EXPECT_GE(approx + 32, exact);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(TraceShapes, EngineAgreement,
                         testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace spmvcache
