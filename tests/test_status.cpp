// Unit tests for util/status: Status/Result semantics, context chaining,
// propagation macros, and the exception bridge.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/status.hpp"

namespace spmvcache {
namespace {

TEST(Status, DefaultIsOk) {
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.render(), "ok");
    EXPECT_TRUE(OkStatus().ok());
}

TEST(Status, CarriesCodeMessageAndLine) {
    const Status s(ErrorCode::ParseError, "malformed size line", 3);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ParseError);
    EXPECT_EQ(s.error().message, "malformed size line");
    EXPECT_EQ(s.error().line, 3);
}

TEST(Status, RenderIncludesLineAndCode) {
    const Status s(ErrorCode::ValidationError, "index out of range", 12);
    const std::string text = s.render();
    EXPECT_NE(text.find("index out of range"), std::string::npos);
    EXPECT_NE(text.find("line 12"), std::string::npos);
    EXPECT_NE(text.find("ValidationError"), std::string::npos);
}

TEST(Status, WrapChainsContextOutermostFirst) {
    const Status s = Status(ErrorCode::ParseError, "bad token", 7)
                         .wrap("parsing entry 3")
                         .wrap("reading 'm.mtx'");
    const std::string text = s.render();
    // Outermost context renders first, so the message reads top-down.
    const auto outer = text.find("reading 'm.mtx'");
    const auto inner = text.find("parsing entry 3");
    const auto msg = text.find("bad token");
    ASSERT_NE(outer, std::string::npos);
    ASSERT_NE(inner, std::string::npos);
    ASSERT_NE(msg, std::string::npos);
    EXPECT_LT(outer, inner);
    EXPECT_LT(inner, msg);
}

TEST(Status, WrapOnOkIsNoOp) {
    const Status s = OkStatus().wrap("context");
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.render(), "ok");
}

TEST(ErrorCodeNames, AreStable) {
    EXPECT_STREQ(to_string(ErrorCode::Ok), "Ok");
    EXPECT_STREQ(to_string(ErrorCode::ParseError), "ParseError");
    EXPECT_STREQ(to_string(ErrorCode::ValidationError), "ValidationError");
    EXPECT_STREQ(to_string(ErrorCode::UnsupportedError), "UnsupportedError");
    EXPECT_STREQ(to_string(ErrorCode::OverflowError), "OverflowError");
    EXPECT_STREQ(to_string(ErrorCode::ResourceError), "ResourceError");
    EXPECT_STREQ(to_string(ErrorCode::TimeoutError), "TimeoutError");
    EXPECT_STREQ(to_string(ErrorCode::Cancelled), "Cancelled");
    EXPECT_STREQ(to_string(ErrorCode::FaultInjected), "FaultInjected");
    EXPECT_STREQ(to_string(ErrorCode::InternalError), "InternalError");
}

TEST(Result, HoldsValue) {
    const Result<int> r = 42;
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.code(), ErrorCode::Ok);
    EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
    const Result<int> r = Error(ErrorCode::ResourceError, "cannot open");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ResourceError);
    EXPECT_EQ(r.error().message, "cannot open");
    EXPECT_EQ(r.value_or(-1), -1);
    EXPECT_FALSE(r.status().ok());
}

TEST(Result, ConstructsFromFailedStatus) {
    Status s(ErrorCode::ParseError, "bad", 2);
    const Result<std::string> r = std::move(s);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::ParseError);
    EXPECT_EQ(r.error().line, 2);
}

TEST(Result, SupportsMoveOnlyTypes) {
    Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
    ASSERT_TRUE(r.ok());
    const std::unique_ptr<int> p = std::move(r).value();
    EXPECT_EQ(*p, 7);
}

TEST(Result, WrapAddsContextOnErrorPath) {
    const Result<int> r =
        Result<int>(Error(ErrorCode::ParseError, "bad entry", 4))
            .wrap("reading stream");
    const std::string text = r.error().render();
    EXPECT_NE(text.find("reading stream: bad entry"), std::string::npos);
}

namespace macros {

Status fail_if(bool fail) {
    if (fail) return Status(ErrorCode::ValidationError, "told to fail", 9);
    return OkStatus();
}

Status passthrough(bool fail) {
    SPMV_RETURN_IF_ERROR(fail_if(fail));
    return OkStatus();
}

Result<int> half(int v) {
    if (v % 2 != 0) return Error(ErrorCode::ValidationError, "odd input");
    return v / 2;
}

Result<int> quarter(int v) {
    SPMV_ASSIGN_OR_RETURN(const int h, half(v));
    SPMV_ASSIGN_OR_RETURN(const int q, half(h));
    return q;
}

Result<int> wrapped_fail() {
    SPMV_RETURN_IF_ERROR(
        Status(ErrorCode::ParseError, "inner", 1).wrap("outer context"));
    return 0;
}

}  // namespace macros

TEST(StatusMacros, ReturnIfErrorPropagates) {
    EXPECT_TRUE(macros::passthrough(false).ok());
    const Status s = macros::passthrough(true);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ValidationError);
    EXPECT_EQ(s.error().line, 9);
}

TEST(StatusMacros, AssignOrReturnUnwrapsAndPropagates) {
    const Result<int> ok = macros::quarter(8);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 2);

    const Result<int> err = macros::quarter(6);  // half ok, quarter odd
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::ValidationError);
}

TEST(StatusMacros, ReturnIfErrorSurvivesWrapTemporaries) {
    const Result<int> r = macros::wrapped_fail();
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().render().find("outer context: inner"),
              std::string::npos);
}

TEST(StatusError, BridgesToRuntimeError) {
    try {
        throw_status(Error(ErrorCode::ParseError, "bad banner", 1));
        FAIL() << "throw_status must throw";
    } catch (const std::runtime_error& e) {  // catchable as runtime_error
        EXPECT_NE(std::string(e.what()).find("bad banner"),
                  std::string::npos);
    }
    try {
        throw_status(Error(ErrorCode::OverflowError, "rows*cols", 2));
        FAIL() << "throw_status must throw";
    } catch (const StatusError& e) {  // and as the typed bridge
        EXPECT_EQ(e.code(), ErrorCode::OverflowError);
        EXPECT_EQ(e.error().line, 2);
    }
}

TEST(ErrorFromException, MapsKnownExceptionTypes) {
    const Error from_status =
        error_from_exception(StatusError(Error(ErrorCode::ParseError, "x")));
    EXPECT_EQ(from_status.code, ErrorCode::ParseError);

    const Error from_contract =
        error_from_exception(ContractViolation("cond failed"));
    EXPECT_EQ(from_contract.code, ErrorCode::InternalError);

    const Error from_alloc = error_from_exception(std::bad_alloc{});
    EXPECT_EQ(from_alloc.code, ErrorCode::ResourceError);

    const Error from_other =
        error_from_exception(std::runtime_error("mystery"));
    EXPECT_EQ(from_other.code, ErrorCode::InternalError);
    EXPECT_NE(from_other.message.find("mystery"), std::string::npos);
}

}  // namespace
}  // namespace spmvcache
