// Packed trace encoding: lossless pack/unpack, elementwise equivalence
// with the streaming segment derivation, and the typed-error paths that
// select the model's streaming fallback.
#include "trace/packed_trace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "model/options.hpp"
#include "model/replay.hpp"
#include "sparse/gen/banded.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

TEST(PackedTrace, RoundTripsEveryFieldAtItsExtremes) {
    const std::vector<MemRef> refs = {
        MemRef{0, 0, DataObject::X, false, false},
        MemRef{kPackedLineMask, kPackedThreadMask, DataObject::RowPtr, true,
               true},
        MemRef{12345678, 47, DataObject::Values, false, true},
        MemRef{1, 2047, DataObject::ColIdx, false, false},
        MemRef{(std::uint64_t{1} << 47), 1024, DataObject::Y, true, false},
    };
    for (const MemRef& ref : refs) {
        ASSERT_TRUE(memref_packable(ref));
        const std::uint64_t word = pack_memref(ref);
        EXPECT_EQ(unpack_memref(word), ref);
        EXPECT_EQ(packed_line(word), ref.line);
        EXPECT_EQ(packed_thread(word), ref.thread);
        EXPECT_EQ(packed_object(word), ref.object);
        EXPECT_EQ(packed_is_write(word), ref.is_write);
        EXPECT_EQ(packed_is_prefetch(word), ref.is_prefetch);
    }
}

TEST(PackedTrace, RejectsOutOfRangeLineOrThread) {
    EXPECT_FALSE(memref_packable(
        MemRef{kPackedLineMask + 1, 0, DataObject::X, false, false}));
    EXPECT_FALSE(memref_packable(
        MemRef{0, kPackedThreadMask + 1, DataObject::X, false, false}));
}

TEST(PackedTrace, SegmentPackMatchesStreamingDerivationElementwise) {
    const CsrMatrix m = gen::banded(600, 9, 40, 7);
    const SpmvLayout layout(m, 256);
    TraceConfig cfg;
    cfg.threads = 8;
    const std::int64_t cores_per_numa = 2;
    const auto lengths = spmv_segment_lengths(m, cfg, cores_per_numa);

    for (std::int64_t s = 0;
         s < trace_segment_count(cfg.threads, cores_per_numa); ++s) {
        const auto streamed =
            collect_spmv_trace_segment(m, layout, cfg, cores_per_numa, s);
        const auto packed =
            try_pack_spmv_trace_segment(m, layout, cfg, cores_per_numa, s);
        ASSERT_TRUE(packed.ok()) << packed.error().render();
        const auto& words = packed.value();
        ASSERT_EQ(words.size(), streamed.size());
        EXPECT_EQ(words.size(), lengths[static_cast<std::size_t>(s)]);
        for (std::size_t i = 0; i < words.size(); ++i)
            ASSERT_EQ(unpack_memref(words[i]), streamed[i]) << "ref " << i;
    }
}

TEST(PackedTrace, KeepsSoftwarePrefetchHintsWithTheFlagSet) {
    const CsrMatrix m = gen::banded(100, 6, 20, 3);
    const SpmvLayout layout(m, 256);
    TraceConfig cfg;
    cfg.threads = 2;
    cfg.x_prefetch_distance = 4;
    const auto packed =
        try_pack_spmv_trace_segment(m, layout, cfg, /*cores_per_numa=*/2,
                                    /*segment=*/0);
    ASSERT_TRUE(packed.ok()) << packed.error().render();
    const auto streamed = collect_spmv_trace_segment(m, layout, cfg, 2, 0);
    // Prefetch hints inflate the stream beyond the demand-only length
    // estimate; the packed buffer must still carry every one of them.
    ASSERT_EQ(packed.value().size(), streamed.size());
    std::size_t hints = 0;
    for (const std::uint64_t word : packed.value())
        if (packed_is_prefetch(word)) ++hints;
    EXPECT_GT(hints, 0u);
}

TEST(PackedTrace, ArmedFaultYieldsTypedErrorNotAValue) {
    const CsrMatrix m = gen::banded(50, 4, 10, 1);
    const SpmvLayout layout(m, 256);
    fault::ScopedFault f("trace.pack");
    const auto packed = try_pack_spmv_trace_segment(
        m, layout, TraceConfig{1}, /*cores_per_numa=*/12, /*segment=*/0);
    ASSERT_FALSE(packed.ok());
    EXPECT_EQ(packed.error().code, ErrorCode::FaultInjected);
}

TEST(ReplayBudget, ExplicitValuesPassThroughAndAutoIsClamped) {
    EXPECT_EQ(detail::resolve_trace_buffer_bytes(0), 0u);
    EXPECT_EQ(detail::resolve_trace_buffer_bytes(12345), 12345u);
    const std::uint64_t resolved =
        detail::resolve_trace_buffer_bytes(kTraceBufferAuto);
    EXPECT_GE(resolved, std::uint64_t{64} << 20);
    EXPECT_LE(resolved, std::uint64_t{8} << 30);
}

TEST(ReplayBudget, PackDecisionFollowsTheBudget) {
    const CsrMatrix m = gen::banded(200, 5, 15, 9);
    const SpmvLayout layout(m, 256);
    TraceConfig cfg;
    cfg.threads = 1;
    const auto lengths = spmv_segment_lengths(m, cfg, 12);
    const std::uint64_t refs = lengths[0];

    // Exactly enough bytes: packs.
    const auto fits = detail::pack_segment_within_budget(
        m, layout, cfg, 12, 0, refs, refs * 8);
    ASSERT_TRUE(fits.has_value());
    EXPECT_EQ(fits->size(), refs);

    // One reference short: streams.
    EXPECT_FALSE(detail::pack_segment_within_budget(m, layout, cfg, 12, 0,
                                                    refs, refs * 8 - 1)
                     .has_value());
    // Zero budget (--trace-buffer 0): streams.
    EXPECT_FALSE(
        detail::pack_segment_within_budget(m, layout, cfg, 12, 0, refs, 0)
            .has_value());

    // Armed packing fault: streams even though the budget fits.
    fault::ScopedFault f("trace.pack");
    EXPECT_FALSE(detail::pack_segment_within_budget(m, layout, cfg, 12, 0,
                                                    refs, refs * 8)
                     .has_value());
}

}  // namespace
}  // namespace spmvcache
