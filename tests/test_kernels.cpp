// Tests for the executable SpMV kernels and the CG solver.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/cg.hpp"
#include "kernels/spmv.hpp"
#include "kernels/spmv_merge.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

std::vector<double> dense_spmv(const CsrMatrix& a,
                               const std::vector<double>& x,
                               const std::vector<double>& y0) {
    const auto dense = to_dense(a);
    std::vector<double> y = y0;
    for (std::int64_t r = 0; r < a.rows(); ++r)
        for (std::int64_t c = 0; c < a.cols(); ++c)
            y[static_cast<std::size_t>(r)] +=
                dense[static_cast<std::size_t>(r * a.cols() + c)] *
                x[static_cast<std::size_t>(c)];
    return y;
}

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<double> v(n);
    for (auto& e : v) e = rng.uniform(-1.0, 1.0);
    return v;
}

TEST(Spmv, MatchesDenseReference) {
    const CsrMatrix a = gen::random_uniform(40, 30, 7, 5);
    const auto x = random_vector(30, 1);
    const auto y0 = random_vector(40, 2);
    auto y = y0;
    spmv_csr(a, x, y);
    const auto expected = dense_spmv(a, x, y0);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], expected[i], 1e-12) << i;
}

TEST(Spmv, AccumulatesIntoY) {
    // y <- y + A x twice equals y + 2 A x.
    const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
    const auto x = random_vector(64, 3);
    std::vector<double> y(64, 0.0);
    spmv_csr(a, x, y);
    const auto once = y;
    spmv_csr(a, x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], 2.0 * once[i], 1e-12);
}

TEST(Spmv, ParallelMatchesSequential) {
    const CsrMatrix a = gen::random_uniform(500, 400, 9, 6);
    const auto x = random_vector(400, 4);
    auto y_seq = random_vector(500, 5);
    auto y_par = y_seq;
    spmv_csr(a, x, y_seq);
    for (const std::int64_t threads : {1, 3, 8}) {
        auto y = y_par;
        const RowPartition partition(a, threads,
                                     PartitionPolicy::BalancedRows);
        spmv_csr_parallel(a, x, y, partition);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_DOUBLE_EQ(y[i], y_seq[i]) << "threads " << threads;
    }
}

TEST(Spmv, RejectsSizeMismatch) {
    const CsrMatrix a = gen::stencil_2d_5pt(4, 4);
    std::vector<double> x(15), y(16);
    EXPECT_THROW(spmv_csr(a, x, y), ContractViolation);
}

TEST(MergePath, SearchEndpoints) {
    const CsrMatrix a = gen::random_uniform(10, 10, 3, 7);
    const auto start = merge_path_search(a, 0);
    EXPECT_EQ(start.row, 0);
    EXPECT_EQ(start.nonzero, 0);
    const auto end = merge_path_search(a, a.rows() + a.nnz());
    EXPECT_EQ(end.row, a.rows());
    EXPECT_EQ(end.nonzero, a.nnz());
}

TEST(MergePath, CoordinatesAreMonotone) {
    const CsrMatrix a = gen::random_uniform(64, 64, 5, 8);
    MergeCoordinate prev = merge_path_search(a, 0);
    for (std::int64_t d = 1; d <= a.rows() + a.nnz(); ++d) {
        const auto cur = merge_path_search(a, d);
        EXPECT_GE(cur.row, prev.row);
        EXPECT_GE(cur.nonzero, prev.nonzero);
        EXPECT_EQ(cur.row + cur.nonzero, d);
        prev = cur;
    }
}

TEST(SpmvMerge, MatchesStandardCsr) {
    const CsrMatrix a = gen::random_uniform(300, 250, 6, 9);
    const auto x = random_vector(250, 10);
    auto y_ref = random_vector(300, 11);
    auto y0 = y_ref;
    spmv_csr(a, x, y_ref);
    for (const std::int64_t pieces : {1, 2, 7, 48, 300}) {
        auto y = y0;
        spmv_csr_merge(a, x, y, pieces);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_ref[i], 1e-12)
                << "pieces " << pieces << " row " << i;
    }
}

TEST(SpmvMerge, HandlesSkewedRowsAcrossPieceBoundaries) {
    // One 500-nonzero row followed by many empty and tiny rows: rows
    // straddle piece boundaries, exercising the carry fix-up.
    CsrBuilder b(50, 512);
    for (int c = 0; c < 500; ++c) b.push(0, c, 0.01);
    for (int r = 10; r < 50; r += 3)
        b.push(r, static_cast<std::int32_t>(r), 1.0);
    const CsrMatrix a = std::move(b).finish();
    const auto x = random_vector(512, 12);
    std::vector<double> y_ref(50, 0.0);
    spmv_csr(a, x, y_ref);
    for (const std::int64_t pieces : {3, 8, 16}) {
        std::vector<double> y(50, 0.0);
        spmv_csr_merge(a, x, y, pieces);
        for (std::size_t i = 0; i < y.size(); ++i)
            EXPECT_NEAR(y[i], y_ref[i], 1e-12) << "pieces " << pieces;
    }
}

TEST(SpmvMerge, EmptyMatrix) {
    CsrBuilder b(4, 4);
    const CsrMatrix a = std::move(b).finish();
    std::vector<double> x(4, 1.0), y(4, 2.0);
    spmv_csr_merge(a, x, y, 2);
    for (const double v : y) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Cg, SolvesLaplacian) {
    const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
    // 5-point Laplacian with diagonal 4 is SPD on the grid interior; use
    // b = A * ones so the exact solution is ones.
    std::vector<double> ones(256, 1.0), b(256, 0.0);
    spmv_csr_overwrite(a, ones, b);
    std::vector<double> x(256, 0.0);
    const auto result = conjugate_gradient(a, b, x, 1e-10, 2000);
    EXPECT_TRUE(result.converged);
    for (const double v : x) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(Cg, ZeroRhsConvergesImmediately) {
    const CsrMatrix a = gen::stencil_2d_5pt(4, 4);
    std::vector<double> b(16, 0.0), x(16, 0.0);
    const auto result = conjugate_gradient(a, b, x);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0);
}

TEST(Cg, ReportsNonConvergenceWithinBudget) {
    const CsrMatrix a = gen::stencil_2d_5pt(32, 32);
    std::vector<double> b(1024, 1.0), x(1024, 0.0);
    const auto result = conjugate_gradient(a, b, x, 1e-14, 2);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.iterations, 2);
}

}  // namespace
}  // namespace spmvcache
