// Chunked-parallel Matrix Market parser tests: the contract is
// bit-identity with the serial parser — same CSR arrays on success, same
// typed error with the same 1-based line number on failure — for every
// jobs count and chunk size, including chunk boundaries that split the
// file mid-entry-run. The suite is intentionally TSan-friendly (CI runs
// it under ThreadSanitizer): every case exercises the pool fan-out.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/mm_parallel.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

namespace fs = std::filesystem;

/// The jobs/chunking grid every differential case runs over. Tiny
/// min_chunk_bytes forces many chunks even for small inputs, so merge
/// order, line rebasing and boundary splitting all get exercised.
struct Grid {
    std::size_t jobs;
    std::size_t min_chunk_bytes;
};
const std::vector<Grid> kGrid = {
    {1, 1 << 20}, {2, 64}, {3, 64}, {4, 256}, {8, 31}, {0, 4096},
};

MmParallelOptions grid_options(const Grid& g, bool strict = false) {
    MmParallelOptions options;
    options.base.strict = strict;
    options.jobs = g.jobs;
    options.min_chunk_bytes = g.min_chunk_bytes;
    return options;
}

/// Asserts serial and parallel agree on `text` — bit-identical matrices
/// or identical (code, line) errors — across the whole grid.
void expect_differential(const std::string& text, bool strict = false) {
    MmReadOptions serial_options;
    serial_options.strict = strict;
    std::istringstream in(text);
    const Result<CsrMatrix> serial =
        try_read_matrix_market(in, serial_options);

    for (const Grid& g : kGrid) {
        const Result<CsrMatrix> parallel =
            try_read_matrix_market_parallel(text, grid_options(g, strict));
        ASSERT_EQ(serial.ok(), parallel.ok())
            << "jobs=" << g.jobs << " chunk=" << g.min_chunk_bytes
            << (serial.ok() ? " parallel failed: " + parallel.error().render()
                            : " parallel succeeded where serial failed");
        if (!serial.ok()) {
            EXPECT_EQ(serial.error().code, parallel.error().code)
                << "jobs=" << g.jobs << " chunk=" << g.min_chunk_bytes;
            EXPECT_EQ(serial.error().line, parallel.error().line)
                << "jobs=" << g.jobs << " chunk=" << g.min_chunk_bytes
                << " serial: " << serial.error().render()
                << " parallel: " << parallel.error().render();
            continue;
        }
        const CsrMatrix& a = serial.value();
        const CsrMatrix& b = parallel.value();
        ASSERT_EQ(a.rows(), b.rows());
        ASSERT_EQ(a.cols(), b.cols());
        ASSERT_EQ(a.nnz(), b.nnz());
        EXPECT_EQ(std::memcmp(a.rowptr().data(), b.rowptr().data(),
                              a.rowptr_bytes()),
                  0);
        EXPECT_EQ(std::memcmp(a.colidx().data(), b.colidx().data(),
                              a.colidx_bytes()),
                  0);
        EXPECT_EQ(std::memcmp(a.values().data(), b.values().data(),
                              static_cast<std::size_t>(a.nnz()) *
                                  sizeof(double)),
                  0);
    }
}

std::string to_mtx(const CsrMatrix& m) {
    std::ostringstream out;
    write_matrix_market(out, m);
    return out.str();
}

TEST(MmParallel, GeneratedMatricesAreBitIdentical) {
    expect_differential(to_mtx(gen::stencil_2d_5pt(16, 16)));
    expect_differential(to_mtx(gen::banded(120, 7, 2, 3)));
    expect_differential(to_mtx(gen::random_uniform(90, 90, 8, 17)));
    expect_differential(to_mtx(gen::random_variable_rows(80, 80, 5.0,
                                                         2.0, 9)));
}

TEST(MmParallel, HandlesCommentsBlankLinesAndPattern) {
    expect_differential(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment between header and size\n"
        "\n"
        "3 3 4\n"
        "% comment between entries\n"
        "1 1\n"
        "2 2\n"
        "\n"
        "3 1\n"
        "3 3\n");
}

TEST(MmParallel, HandlesSymmetricAndSkewMirroring) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 4\n"
        "1 1 1.5\n"
        "2 1 -2.0\n"
        "3 2 0.25\n"
        "3 3 4.0\n");
    expect_differential(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "3 3 2\n"
        "2 1 -2.0\n"
        "3 2 0.25\n");
}

TEST(MmParallel, HandlesIntegerFieldAndExponents) {
    expect_differential(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 3 3\n"
        "1 1 7\n"
        "1 3 -2\n"
        "2 2 9\n");
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.25e-3\n"
        "1 2 -7.5E+2\n"
        "2 2 +0.5\n");
}

TEST(MmParallel, LenientDuplicatesSumIdentically) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 4\n"
        "1 1 1.0\n"
        "1 1 2.0\n"
        "2 2 4.0\n"
        "2 1 8.0\n");
}

// ---- Error differentials: same code, same line, every grid point -------

TEST(MmParallel, MalformedEntryReportsSerialLineNumber) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 4\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "2 x 3.0\n"
        "3 3 4.0\n");
}

TEST(MmParallel, OutOfRangeIndexReportsSerialLineNumber) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "% a comment to shift line numbers\n"
        "2 7 2.0\n"
        "3 3 3.0\n");
}

TEST(MmParallel, TruncatedFileReportsSameError) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4 6\n"
        "1 1 1.0\n"
        "2 2 2.0\n");
}

TEST(MmParallel, MissingValueReportsSameError) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 3\n"
        "1 1 1.0\n"
        "2 2\n"
        "3 3 3.0\n");
}

TEST(MmParallel, StrictRejectsWhatSerialStrictRejects) {
    // Duplicate entry (strict sums are forbidden).
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n"
        "1 1 2.0\n"
        "2 2 4.0\n",
        /*strict=*/true);
    // Data after the declared final entry.
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "1 2 9.0\n",
        /*strict=*/true);
    // Trailing garbage on an entry line.
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0 junk\n"
        "2 2 2.0\n",
        /*strict=*/true);
    // Above-diagonal entry in a symmetric file.
    expect_differential(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "1 2 1.0\n"
        "3 3 2.0\n",
        /*strict=*/true);
    // Non-finite value.
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 nan\n"
        "2 2 2.0\n",
        /*strict=*/true);
}

TEST(MmParallel, LenientIgnoresDataAfterFinalEntry) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "1 2 9.0\n",
        /*strict=*/false);
}

TEST(MmParallel, HeaderErrorsMatchSerial) {
    expect_differential("%%MatrixMarket matrix coordinate complex general\n"
                        "1 1 1\n"
                        "1 1 1.0 0.0\n");
    expect_differential("not a matrix market file\n");
    expect_differential("%%MatrixMarket matrix coordinate real general\n"
                        "2 -2 1\n"
                        "1 1 1.0\n");
    expect_differential("");
}

TEST(MmParallel, FileWithoutTrailingNewlineParses) {
    expect_differential(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 2 2.0");
}

TEST(MmParallel, FileWrapperMatchesSerialWrapper) {
    const fs::path dir =
        fs::path(testing::TempDir()) /
        ("spmv_mm_par_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    const CsrMatrix m = gen::stencil_2d_5pt(12, 12);
    const std::string path = (dir / "m.mtx").string();
    write_matrix_market_file(path, m);

    const Result<CsrMatrix> serial = try_read_matrix_market_file(path);
    MmParallelOptions options;
    options.jobs = 3;
    options.min_chunk_bytes = 128;
    const Result<CsrMatrix> parallel =
        try_read_matrix_market_parallel_file(path, options);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok()) << parallel.error().render();
    EXPECT_EQ(serial.value().nnz(), parallel.value().nnz());

    // Missing file: both wrappers produce the same typed error.
    const Result<CsrMatrix> serial_missing =
        try_read_matrix_market_file((dir / "no.mtx").string());
    const Result<CsrMatrix> parallel_missing =
        try_read_matrix_market_parallel_file((dir / "no.mtx").string(),
                                             options);
    EXPECT_EQ(serial_missing.error().code, parallel_missing.error().code);
    fs::remove_all(dir);
}

TEST(MmParallel, ChunkFaultInjectionSurfacesTypedError) {
    const std::string text = to_mtx(gen::stencil_2d_5pt(12, 12));
    MmParallelOptions options;
    options.jobs = 4;
    options.min_chunk_bytes = 64;
    {
        fault::ScopedFault f("mm.parallel");
        const Result<CsrMatrix> r =
            try_read_matrix_market_parallel(text, options);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, ErrorCode::FaultInjected);
    }
    fault::disarm_all();
    EXPECT_TRUE(try_read_matrix_market_parallel(text, options).ok());
}

TEST(MmParallel, OverlongLineMatchesSerial) {
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n";
    text += "2 2 2.0" + std::string(100, ' ') + "\n";
    MmReadOptions serial_options;
    serial_options.max_line_bytes = 32;
    std::istringstream in(text);
    const Result<CsrMatrix> serial =
        try_read_matrix_market(in, serial_options);
    MmParallelOptions options;
    options.base.max_line_bytes = 32;
    options.jobs = 3;
    options.min_chunk_bytes = 16;
    const Result<CsrMatrix> parallel =
        try_read_matrix_market_parallel(text, options);
    ASSERT_FALSE(serial.ok());
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(serial.error().code, parallel.error().code);
    EXPECT_EQ(serial.error().line, parallel.error().line);
}

}  // namespace
}  // namespace spmvcache
