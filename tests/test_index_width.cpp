// Index-width pipeline tests: the W32 bounds at their exact boundaries
// (synthetic shapes — no huge allocations), auto-narrowing and the typed
// forced-W32 rejection in the .mtx parser, width-mismatch `.spmvc` loads,
// width-aware model accounting, and a both-widths differential over the
// generator suite — predictions bit-identical under pinned accounting,
// kernel results fma-tolerant-identical, and the narrow cache entry
// measurably smaller on disk.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/engine.hpp"
#include "model/analytic.hpp"
#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "sparse/binary_cache.hpp"
#include "sparse/csr.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/index_width.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmvcache {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();
constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();

// ---- Boundary corpus: pure shape checks, nothing is allocated ----------

TEST(IndexWidthBounds, RowsAndColsBoundAtInt32Max) {
    EXPECT_TRUE(width32_representable(kI32Max, 1, 1));
    EXPECT_TRUE(width32_representable(1, kI32Max, 1));
    EXPECT_FALSE(width32_representable(kI32Max + 1, 1, 1));
    EXPECT_FALSE(width32_representable(1, kI32Max + 1, 1));
}

TEST(IndexWidthBounds, NnzBoundAtUint32Max) {
    // rowptr is unsigned 32-bit, so nnz gets the full range — one more
    // than the signed row/col bound allows.
    EXPECT_TRUE(width32_representable(1, 1, kU32Max));
    EXPECT_FALSE(width32_representable(1, 1, kU32Max + 1));
    EXPECT_TRUE(width32_representable(kI32Max, kI32Max, kU32Max));
}

TEST(IndexWidthBounds, NegativeShapesNeverFit) {
    EXPECT_FALSE(width32_representable(-1, 1, 1));
    EXPECT_FALSE(width32_representable(1, -1, 1));
    EXPECT_FALSE(width32_representable(1, 1, -1));
}

TEST(IndexWidthBounds, ResolveAutoNarrowsExactlyWhenRepresentable) {
    const Result<IndexWidth> narrow =
        resolve_index_width(IndexWidthChoice::Auto, kI32Max, kI32Max, kU32Max);
    ASSERT_TRUE(narrow.ok());
    EXPECT_EQ(narrow.value(), IndexWidth::W32);

    const Result<IndexWidth> wide = resolve_index_width(
        IndexWidthChoice::Auto, kI32Max, kI32Max + 1, kU32Max);
    ASSERT_TRUE(wide.ok());
    EXPECT_EQ(wide.value(), IndexWidth::W64);
}

TEST(IndexWidthBounds, ForcedW32PastTheBoundIsUnsupported) {
    for (const auto& [rows, cols, nnz] :
         {std::tuple{kI32Max + 1, std::int64_t{1}, std::int64_t{1}},
          std::tuple{std::int64_t{1}, kI32Max + 1, std::int64_t{1}},
          std::tuple{std::int64_t{1}, std::int64_t{1}, kU32Max + 1}}) {
        const Result<IndexWidth> r =
            resolve_index_width(IndexWidthChoice::W32, rows, cols, nnz);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.code(), ErrorCode::UnsupportedError);
    }
    // Forced W64 always succeeds on valid shapes, even tiny ones.
    const Result<IndexWidth> wide =
        resolve_index_width(IndexWidthChoice::W64, 2, 2, 2);
    ASSERT_TRUE(wide.ok());
    EXPECT_EQ(wide.value(), IndexWidth::W64);
}

TEST(IndexWidthBounds, ParseChoiceRoundTrips) {
    for (const IndexWidthChoice c :
         {IndexWidthChoice::Auto, IndexWidthChoice::W32,
          IndexWidthChoice::W64}) {
        const Result<IndexWidthChoice> parsed =
            parse_index_width_choice(to_string(c));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), c);
    }
    EXPECT_EQ(parse_index_width_choice("16").code(),
              ErrorCode::ValidationError);
}

// ---- Parser: auto-fallback and the typed forced-W32 rejection ----------

/// A 1-by-3e9 matrix: one entry, but the column space is past INT32_MAX.
/// Cheap to parse (one row, one nonzero) while being W32-unrepresentable.
std::string huge_cols_mtx() {
    return "%%MatrixMarket matrix coordinate real general\n"
           "1 3000000000 1\n"
           "1 2500000000 1.5\n";
}

TEST(IndexWidthParse, AutoFallsBackToW64OnHugeColumnSpace) {
    std::istringstream in(huge_cols_mtx());
    // Explicit Auto: the build default may be pinned to a forced width
    // (cmake SPMV_DEFAULT_INDEX_WIDTH) and this test is about fallback.
    MmReadOptions options;
    options.index_width = IndexWidthChoice::Auto;
    const Result<AnyCsrMatrix> m = try_read_matrix_market_any(in, options);
    ASSERT_TRUE(m.ok()) << m.error().render();
    EXPECT_EQ(m.value().index_width(), IndexWidth::W64);
    const AnyCsrView v = m.value().view();
    ASSERT_NE(v.as64(), nullptr);
    EXPECT_EQ(v.as64()->colidx()[0], 2499999999);  // 0-based
}

TEST(IndexWidthParse, ForcedW32OnHugeColumnSpaceIsUnsupported) {
    std::istringstream in(huge_cols_mtx());
    MmReadOptions options;
    options.index_width = IndexWidthChoice::W32;
    const Result<AnyCsrMatrix> m = try_read_matrix_market_any(in, options);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.code(), ErrorCode::UnsupportedError);
}

TEST(IndexWidthParse, ForcedW64OnSmallMatrixWidens) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n1 1 1.0\n2 2 2.0\n");
    MmReadOptions options;
    options.index_width = IndexWidthChoice::W64;
    const Result<AnyCsrMatrix> m = try_read_matrix_market_any(in, options);
    ASSERT_TRUE(m.ok()) << m.error().render();
    EXPECT_EQ(m.value().index_width(), IndexWidth::W64);
}

// ---- .spmvc: width-mismatch rejection and the narrow-entry payoff ------

class IndexWidthCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(testing::TempDir()) /
               ("spmv_width_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    /// Writes `m` (either width, via the AnyCsrView conversion) as a
    /// synthetic-origin entry; returns the path.
    std::string write_entry(const AnyCsrView& m, const std::string& name) {
        const std::string path = (dir_ / (name + ".spmvc")).string();
        const Status written =
            write_binary_cache(path, m, fingerprint_matrix(m),
                               compute_stats(m), "synthetic://" + name,
                               SourceStamp{});
        EXPECT_TRUE(written.ok()) << written.error().render();
        return path;
    }

    fs::path dir_;
};

TEST_F(IndexWidthCacheTest, ForcedWidthRejectsTheOtherWidthsEntry) {
    const CsrMatrix m32 = gen::stencil_2d_5pt(20, 20);
    const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
    const std::string p32 = write_entry(CsrView(m32), "narrow");
    const std::string p64 = write_entry(CsrView64(m64), "wide");

    // Auto maps whichever width the file stores.
    const Result<MappedCsr> any32 = load_binary_cache(p32);
    ASSERT_TRUE(any32.ok()) << any32.error().render();
    EXPECT_EQ(any32.value().view().index_width(), IndexWidth::W32);
    const Result<MappedCsr> any64 = load_binary_cache(p64);
    ASSERT_TRUE(any64.ok()) << any64.error().render();
    EXPECT_EQ(any64.value().view().index_width(), IndexWidth::W64);

    // A forced width rejects the other with the typed miss error.
    const Result<MappedCsr> want64 =
        load_binary_cache(p32, nullptr, IndexWidthChoice::W64);
    ASSERT_FALSE(want64.ok());
    EXPECT_EQ(want64.code(), ErrorCode::UnsupportedError);
    const Result<MappedCsr> want32 =
        load_binary_cache(p64, nullptr, IndexWidthChoice::W32);
    ASSERT_FALSE(want32.ok());
    EXPECT_EQ(want32.code(), ErrorCode::UnsupportedError);

    // And the matching force still maps.
    const Result<MappedCsr> match =
        load_binary_cache(p32, nullptr, IndexWidthChoice::W32);
    EXPECT_TRUE(match.ok()) << match.error().render();
}

TEST_F(IndexWidthCacheTest, NarrowEntryIsSubstantiallySmaller) {
    // Large enough that array bytes dominate the section alignment
    // padding (sections are page-aligned in the entry).
    const CsrMatrix m32 = gen::random_uniform(2000, 2000, 16, /*seed=*/7);
    const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
    const auto s32 = fs::file_size(write_entry(CsrView(m32), "narrow"));
    const auto s64 = fs::file_size(write_entry(CsrView64(m64), "wide"));
    // 12 index bytes/nnz (amortised) -> 24: the entry loses well over a
    // fifth of its bytes; the asymptotic ratio is 2/3.
    EXPECT_LT(static_cast<double>(s32), 0.8 * static_cast<double>(s64));
}

// ---- Width-aware accounting ------------------------------------------

TEST(IndexWidthAccounting, DefaultFollowsPhysicalWidthPinOverrides) {
    const ModelOptions follow;  // accounting_* = 0
    EXPECT_EQ(follow.colidx_bytes_for(IndexWidth::W32), 4u);
    EXPECT_EQ(follow.rowptr_bytes_for(IndexWidth::W32), 4u);
    EXPECT_EQ(follow.colidx_bytes_for(IndexWidth::W64), 8u);
    EXPECT_EQ(follow.rowptr_bytes_for(IndexWidth::W64), 8u);

    ModelOptions paper;  // the paper's fixed accounting
    paper.accounting_colidx_bytes = 4;
    paper.accounting_rowptr_bytes = 8;
    for (const IndexWidth w : {IndexWidth::W32, IndexWidth::W64}) {
        EXPECT_EQ(paper.colidx_bytes_for(w), 4u);
        EXPECT_EQ(paper.rowptr_bytes_for(w), 8u);
    }
}

TEST(IndexWidthAccounting, StreamingTermsScaleWithIndexBytes) {
    // rows + 1 and nnz divide the line size so the ceilings are exact
    // and the wide terms are exactly double the narrow ones.
    const std::int64_t rows = (1 << 14) - 1, nnz = 1 << 18;
    const StreamingMisses narrow = streaming_misses(rows, nnz, 256, 4, 4);
    const StreamingMisses wide = streaming_misses(rows, nnz, 256, 8, 8);
    EXPECT_EQ(wide.colidx, 2 * narrow.colidx);
    EXPECT_EQ(wide.rowptr, 2 * narrow.rowptr);
    // a and y stream 8-byte doubles regardless of the index width.
    EXPECT_EQ(wide.values, narrow.values);
    EXPECT_EQ(wide.y, narrow.y);
}

TEST(IndexWidthAccounting, ScalingFactorsShrinkAtNarrowRowptr) {
    const std::int64_t rows = 1 << 12, nnz = 1 << 16;
    // s1 = ((8+rp)*M/K + 8)/8 and s2 adds (16+ci)/8 per nonzero: both
    // strictly shrink when the index arrays narrow.
    EXPECT_LT(scaling_factor_partitioned(rows, nnz, 4),
              scaling_factor_partitioned(rows, nnz, 8));
    EXPECT_LT(scaling_factor_unpartitioned(rows, nnz, 4, 4),
              scaling_factor_unpartitioned(rows, nnz, 4, 8));
    // At the paper's defaults the closed forms of §3.2.2 hold exactly.
    const double m_over_k =
        static_cast<double>(rows) / static_cast<double>(nnz);
    EXPECT_DOUBLE_EQ(scaling_factor_partitioned(rows, nnz),
                     (16.0 * m_over_k + 8.0) / 8.0);
    EXPECT_DOUBLE_EQ(scaling_factor_unpartitioned(rows, nnz),
                     (16.0 * m_over_k + 20.0) / 8.0);
}

// ---- Both-widths differential over the generator suite ----------------

struct DiffCase {
    const char* name;
    std::function<CsrMatrix()> make;
};

std::vector<DiffCase> differential_suite() {
    return {
        {"stencil_2d_5pt", [] { return gen::stencil_2d_5pt(40, 40); }},
        {"banded", [] { return gen::banded(1800, 9, 24, /*seed=*/11); }},
        {"random_uniform",
         [] { return gen::random_uniform(700, 700, 6, /*seed=*/3); }},
        {"random_variable_rows",
         [] {
             return gen::random_variable_rows(900, 900, 7.0, /*cv=*/1.2,
                                              /*seed=*/5);
         }},
    };
}

/// Pinned paper accounting: the model must charge both storage widths
/// identically, so every derived number agrees bit for bit.
ModelOptions pinned_options() {
    ModelOptions options;
    options.threads = 2;
    options.l2_way_options = {4};
    options.jobs = 1;
    options.accounting_colidx_bytes = 4;
    options.accounting_rowptr_bytes = 8;
    return options;
}

void expect_results_bit_identical(const ModelResult& narrow,
                                  const ModelResult& wide,
                                  const char* name) {
    ASSERT_EQ(narrow.configs.size(), wide.configs.size()) << name;
    for (std::size_t i = 0; i < narrow.configs.size(); ++i) {
        EXPECT_EQ(narrow.configs[i].l2_sector_ways,
                  wide.configs[i].l2_sector_ways)
            << name;
        // EXPECT_EQ on doubles is exact comparison — bit-identical is
        // the contract, not "close".
        EXPECT_EQ(narrow.configs[i].l2_misses, wide.configs[i].l2_misses)
            << name << " config " << i;
        EXPECT_EQ(narrow.configs[i].l2_x_misses,
                  wide.configs[i].l2_x_misses)
            << name << " config " << i;
    }
    EXPECT_EQ(narrow.l1_misses, wide.l1_misses) << name;
    EXPECT_EQ(narrow.l1_x_misses, wide.l1_x_misses) << name;
    EXPECT_EQ(narrow.x_traffic_fraction, wide.x_traffic_fraction) << name;
}

TEST(IndexWidthDifferential, MethodBPredictionsBitIdenticalAcrossWidths) {
    const ModelOptions options = pinned_options();
    for (const DiffCase& c : differential_suite()) {
        const CsrMatrix m32 = c.make();
        const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
        const ModelResult narrow = run_method_b(CsrView(m32), options);
        const ModelResult wide = run_method_b(CsrView64(m64), options);
        expect_results_bit_identical(narrow, wide, c.name);
    }
}

TEST(IndexWidthDifferential, MethodAPredictionsBitIdenticalAcrossWidths) {
    const ModelOptions options = pinned_options();
    // Method (A) shares the trace/engine machinery; two pattern classes
    // cover the structured and the scattered regime.
    for (const DiffCase& c :
         {differential_suite()[0], differential_suite()[2]}) {
        const CsrMatrix m32 = c.make();
        const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
        const ModelResult narrow = run_method_a(CsrView(m32), options);
        const ModelResult wide = run_method_a(CsrView64(m64), options);
        expect_results_bit_identical(narrow, wide, c.name);
    }
}

TEST(IndexWidthDifferential, UnpinnedAccountingChargesNarrowerRowptr) {
    // Sanity that the pin matters: with accounting following the physical
    // width, the W32 run charges 4-byte rowptr lines and must predict
    // strictly fewer unpartitioned L2 misses on a rowptr-heavy matrix.
    ModelOptions options = pinned_options();
    options.accounting_colidx_bytes = 0;
    options.accounting_rowptr_bytes = 0;
    // Shrink L2 so the working set genuinely misses: with the full 8 MiB
    // a test-sized matrix is cache-resident and both widths predict 0.
    options.machine.l2 = CacheConfig{64 * 1024, 256, 16, 0};
    const CsrMatrix m32 = gen::random_variable_rows(4000, 4000, 3.0,
                                                    /*cv=*/0.5, /*seed=*/9);
    const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
    const ModelResult narrow = run_method_b(CsrView(m32), options);
    const ModelResult wide = run_method_b(CsrView64(m64), options);
    ASSERT_FALSE(narrow.configs.empty());
    ASSERT_FALSE(wide.configs.empty());
    EXPECT_LT(narrow.configs[0].l2_misses, wide.configs[0].l2_misses);
}

TEST(IndexWidthDifferential, KernelResultsFmaTolerantIdentical) {
    for (const DiffCase& c : differential_suite()) {
        const CsrMatrix m32 = c.make();
        const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
        std::vector<double> x(static_cast<std::size_t>(m32.cols()));
        for (std::size_t j = 0; j < x.size(); ++j)
            x[j] = 0.25 + static_cast<double>(j % 17) * 0.125;
        std::vector<double> y32(static_cast<std::size_t>(m32.rows()), 0.0);
        std::vector<double> y64(y32.size(), 0.0);

        for (const KernelVariant variant :
             {KernelVariant::CsrScalar, KernelVariant::CsrSimd,
              KernelVariant::SellSimd, KernelVariant::CsrMerge}) {
            EngineOptions options;
            options.threads = 2;
            options.variant = variant;
            KernelEngine narrow(CsrView(m32), options);
            KernelEngine64 wide(CsrView64(m64), options);
            narrow.run(x, y32);
            wide.run(x, y64);
            for (std::size_t i = 0; i < y32.size(); ++i) {
                const double scale = std::max(
                    {std::abs(y32[i]), std::abs(y64[i]), 1.0});
                EXPECT_LE(std::abs(y32[i] - y64[i]), 1e-10 * scale)
                    << c.name << " variant "
                    << to_string(variant) << " row " << i;
            }
        }
    }
}

TEST(IndexWidthDifferential, PatternStatsAgreeByteSizesDiffer) {
    const CsrMatrix m32 = gen::stencil_2d_5pt(30, 30);
    const CsrMatrix64 m64 = convert_csr_width<Idx64>(CsrView(m32));
    const MatrixStats narrow = compute_stats(CsrView(m32));
    const MatrixStats wide = compute_stats(CsrView64(m64));
    EXPECT_EQ(narrow.rows, wide.rows);
    EXPECT_EQ(narrow.nnz, wide.nnz);
    EXPECT_EQ(narrow.mean_nnz_per_row, wide.mean_nnz_per_row);
    EXPECT_EQ(narrow.cv_nnz_per_row, wide.cv_nnz_per_row);
    EXPECT_EQ(narrow.bandwidth, wide.bandwidth);
    EXPECT_EQ(narrow.index_width, IndexWidth::W32);
    EXPECT_EQ(wide.index_width, IndexWidth::W64);
    EXPECT_TRUE(narrow.width32_ok);
    EXPECT_TRUE(wide.width32_ok);  // the shape fits even if storage is wide
    const std::uint64_t nnz = static_cast<std::uint64_t>(m32.nnz());
    const std::uint64_t rowptr32 = 4 * (static_cast<std::uint64_t>(m32.rows()) + 1);
    const std::uint64_t rowptr64 = 2 * rowptr32;
    EXPECT_EQ(narrow.matrix_bytes, 12 * nnz + rowptr32);
    EXPECT_EQ(wide.matrix_bytes, 16 * nnz + rowptr64);
}

}  // namespace
}  // namespace spmvcache
