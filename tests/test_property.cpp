// Property and fuzz tests: invariants that must hold for arbitrary
// inputs — layout geometry, trace length, sector-cache quota enforcement,
// hierarchy counter identities, and simulator determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/partition.hpp"
#include "trace/spmv_trace.hpp"
#include "util/prng.hpp"

namespace spmvcache {
namespace {

// ---- Layout properties over a parameter sweep ---------------------------

class LayoutProperty
    : public testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::uint64_t>> {};

TEST_P(LayoutProperty, ArraysAreContiguousAndDisjoint) {
    const auto [rows, nnz, line_bytes] = GetParam();
    const SpmvLayout layout(rows, rows, nnz, line_bytes);
    std::uint64_t cursor = 0;
    for (int o = 0; o < kDataObjectCount; ++o) {
        const auto object = static_cast<DataObject>(o);
        EXPECT_EQ(layout.base(object), cursor);
        cursor += layout.lines_of(object);
    }
    EXPECT_EQ(layout.total_lines(), cursor);
}

TEST_P(LayoutProperty, LineSizesMatchElementCounts) {
    const auto [rows, nnz, line_bytes] = GetParam();
    const SpmvLayout layout(rows, rows, nnz, line_bytes);
    const auto lines = [&](std::uint64_t elems, std::uint64_t size) {
        return (elems * size + line_bytes - 1) / line_bytes;
    };
    EXPECT_EQ(layout.lines_of(DataObject::X),
              lines(static_cast<std::uint64_t>(rows), 8));
    EXPECT_EQ(layout.lines_of(DataObject::Values),
              lines(static_cast<std::uint64_t>(nnz), 8));
    EXPECT_EQ(layout.lines_of(DataObject::ColIdx),
              lines(static_cast<std::uint64_t>(nnz), 4));
    EXPECT_EQ(layout.lines_of(DataObject::RowPtr),
              lines(static_cast<std::uint64_t>(rows) + 1, 8));
}

TEST_P(LayoutProperty, ObjectOfInvertsEveryBoundary) {
    const auto [rows, nnz, line_bytes] = GetParam();
    const SpmvLayout layout(rows, rows, nnz, line_bytes);
    for (int o = 0; o < kDataObjectCount; ++o) {
        const auto object = static_cast<DataObject>(o);
        if (layout.lines_of(object) == 0) continue;
        EXPECT_EQ(layout.object_of(layout.base(object)), object);
        EXPECT_EQ(layout.object_of(layout.base(object) +
                                   layout.lines_of(object) - 1),
                  object);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutProperty,
    testing::Values(std::make_tuple(1, 1, 16),
                    std::make_tuple(7, 13, 16),
                    std::make_tuple(100, 5000, 64),
                    std::make_tuple(4096, 65536, 256),
                    std::make_tuple(31, 997, 256),
                    std::make_tuple(1000000, 1000000, 256)));

// ---- Trace properties ----------------------------------------------------

class TraceProperty : public testing::TestWithParam<std::int64_t> {};

TEST_P(TraceProperty, LengthAndThreadOwnership) {
    const std::int64_t threads = GetParam();
    const CsrMatrix m = gen::random_uniform(97, 97, 5, 11);
    const SpmvLayout layout(m, 256);
    const RowPartition partition(m, threads,
                                 PartitionPolicy::BalancedRows);

    std::uint64_t count = 0;
    bool thread_in_range = true;
    std::vector<std::uint64_t> per_thread(
        static_cast<std::size_t>(threads), 0);
    generate_spmv_trace(m, layout, TraceConfig{threads},
                        [&](const MemRef& ref) {
                            ++count;
                            if (ref.thread >= threads) thread_in_range = false;
                            else ++per_thread[ref.thread];
                        });
    EXPECT_EQ(count, spmv_trace_length(m.rows(), m.nnz()));
    EXPECT_TRUE(thread_in_range);
    // Each thread emits exactly the references of its rows.
    const auto rowptr = m.rowptr();
    for (std::int64_t t = 0; t < threads; ++t) {
        const auto& range = partition.range(t);
        const std::int64_t rows = range.size();
        const std::int64_t nnz =
            rowptr[static_cast<std::size_t>(range.end)] -
            rowptr[static_cast<std::size_t>(range.begin)];
        EXPECT_EQ(per_thread[static_cast<std::size_t>(t)],
                  spmv_trace_length(rows, nnz))
            << "thread " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TraceProperty,
                         testing::Values(1, 2, 3, 7, 16, 48, 97, 200));

// ---- RowPartition balance properties --------------------------------------

/// Matrices that stress the partition boundaries: trailing/leading empty
/// rows, one huge row spanning several shares, skewed tails, and the
/// all-empty matrix.
std::vector<std::pair<std::string, CsrMatrix>> partition_corpus() {
    std::vector<std::pair<std::string, CsrMatrix>> corpus;
    corpus.emplace_back("uniform", gen::random_uniform(211, 211, 6, 3));
    corpus.emplace_back("skewed",
                        gen::random_variable_rows(211, 211, 5.0, 2.5, 5));
    {
        CsrBuilder b(100, 100);  // nonzeros only in the first 10 rows
        for (std::int64_t r = 0; r < 10; ++r)
            for (std::int32_t c = 0; c < 20; ++c)
                b.push(r, c, 1.0);
        corpus.emplace_back("trailing_empty", std::move(b).finish());
    }
    {
        CsrBuilder b(100, 100);  // nonzeros only in the last 5 rows
        for (std::int64_t r = 95; r < 100; ++r)
            for (std::int32_t c = 0; c < 8; ++c)
                b.push(r, c, 1.0);
        corpus.emplace_back("leading_empty", std::move(b).finish());
    }
    {
        CsrBuilder b(50, 100);  // one row holds ~95% of the nonzeros
        for (std::int32_t c = 0; c < 95; ++c) b.push(20, c, 1.0);
        for (std::int64_t r = 21; r < 26; ++r)
            b.push(r, 0, 1.0);
        corpus.emplace_back("huge_row", std::move(b).finish());
    }
    {
        CsrBuilder b(40, 40);
        corpus.emplace_back("all_empty", std::move(b).finish());
    }
    return corpus;
}

class PartitionProperty : public testing::TestWithParam<std::int64_t> {};

TEST_P(PartitionProperty, RangesAreContiguousAndCoverAllRows) {
    const std::int64_t threads = GetParam();
    for (const auto& [name, m] : partition_corpus()) {
        for (const PartitionPolicy policy :
             {PartitionPolicy::BalancedRows,
              PartitionPolicy::BalancedNonzeros}) {
            const RowPartition partition(m, threads, policy);
            ASSERT_EQ(partition.threads(), threads) << name;
            std::int64_t cursor = 0;
            for (std::int64_t t = 0; t < threads; ++t) {
                const auto& range = partition.range(t);
                EXPECT_EQ(range.begin, cursor) << name << " thread " << t;
                EXPECT_LE(range.begin, range.end) << name << " thread " << t;
                cursor = range.end;
            }
            EXPECT_EQ(cursor, m.rows()) << name;
        }
    }
}

TEST_P(PartitionProperty, NonzeroBalanceWithinOneRow) {
    // The nonzero-balanced policy can only miss the ideal share by the
    // one row that straddles each boundary (plus integer rounding): for
    // every range, |nnz(range) - nnz/threads| <= max_row_nnz + 1.
    const std::int64_t threads = GetParam();
    for (const auto& [name, m] : partition_corpus()) {
        const RowPartition partition(m, threads,
                                     PartitionPolicy::BalancedNonzeros);
        const auto rowptr = m.rowptr();
        std::int64_t max_row = 0;
        for (std::int64_t r = 0; r < m.rows(); ++r)
            max_row = std::max(
                max_row,
                static_cast<std::int64_t>(
                    rowptr[static_cast<std::size_t>(r) + 1]) -
                    static_cast<std::int64_t>(
                        rowptr[static_cast<std::size_t>(r)]));
        const double ideal = static_cast<double>(m.nnz()) /
                             static_cast<double>(threads);
        const auto per_thread = partition.nnz_per_thread(m);
        for (std::size_t t = 0; t < per_thread.size(); ++t) {
            EXPECT_LE(
                std::abs(static_cast<double>(per_thread[t]) - ideal),
                static_cast<double>(max_row) + 1.0)
                << name << " thread " << t << " of " << threads;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PartitionProperty,
                         testing::Values(1, 2, 3, 5, 8, 16, 33, 101));

// ---- Sector cache fuzzing -------------------------------------------------

class SectorQuotaFuzz : public testing::TestWithParam<std::uint32_t> {};

TEST_P(SectorQuotaFuzz, OccupancyNeverExceedsQuotaPerSet) {
    // Each line keeps a consistent sector (as when the sector is derived
    // from the data object); hits then never re-tag, and the quota is
    // enforced purely through victim selection at fill time.
    const std::uint32_t sector1_ways = GetParam();
    const CacheConfig config{8 * 4 * 16, 16, 4, sector1_ways};
    SectorCache cache(config);
    Xoshiro256 rng(1234 + sector1_ways);
    for (int step = 0; step < 50000; ++step) {
        const std::uint64_t line = rng.bounded(512);
        const int sector = static_cast<int>(line % 2);
        const bool write = rng.uniform() < 0.2;
        if (!cache.lookup(line, sector, write).hit)
            cache.fill(line, sector, write, rng.uniform() < 0.3);
    }
    // With a quota of q ways over 8 sets, sector 1 holds at most 8*q
    // lines (and sector 0 at most 8*(4-q)).
    EXPECT_LE(cache.occupancy(1),
              static_cast<std::uint64_t>(8) * sector1_ways);
    EXPECT_LE(cache.occupancy(0),
              static_cast<std::uint64_t>(8) * (4 - sector1_ways));
}

TEST(SectorQuota, ReTaggingHitsMayTransientlyExceedQuota) {
    // A hit with a different sector ID re-tags the line in place (as on
    // the A64FX, where the sector rides on every memory operation); the
    // quota is re-established by subsequent fills, not by the hit itself.
    SectorCache cache(CacheConfig{4 * 4 * 16, 16, 4, 1});
    cache.fill(0, 0, false, false);
    cache.fill(4, 0, false, false);
    cache.lookup(0, 1, false);
    cache.lookup(4, 1, false);
    EXPECT_EQ(cache.occupancy(1), 2u);  // over the 1-way quota, transiently
    // The next sector-1 fill to the set evicts within sector 1.
    cache.fill(8, 1, false, false);
    EXPECT_LE(cache.occupancy(1), 2u);
    EXPECT_TRUE(cache.contains(8));
}

INSTANTIATE_TEST_SUITE_P(Quotas, SectorQuotaFuzz, testing::Values(1u, 2u, 3u));

TEST(SectorQuotaFuzz, ReconfigurationConvergesToNewQuota) {
    SectorCache cache(CacheConfig{8 * 4 * 16, 16, 4, 3});
    Xoshiro256 rng(5);
    auto churn = [&](int steps) {
        for (int i = 0; i < steps; ++i) {
            const std::uint64_t line = rng.bounded(256);
            const int sector = static_cast<int>(rng.bounded(2));
            if (!cache.lookup(line, sector, false).hit)
                cache.fill(line, sector, false, false);
        }
    };
    churn(20000);
    cache.set_sector1_ways(1);
    churn(20000);  // future fills respect the new quota
    EXPECT_LE(cache.occupancy(1), 8u * 1u);
}

// ---- Hierarchy counter identities -----------------------------------------

TEST(HierarchyInvariants, CounterIdentitiesUnderRandomTraffic) {
    A64fxConfig cfg;
    cfg.cores = 4;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 0};
    cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 1};
    MemoryHierarchy sim(cfg);
    sim.set_sector_ways(SectorWays{1, 1});
    Xoshiro256 rng(99);
    for (int step = 0; step < 100000; ++step) {
        const auto core = static_cast<std::uint32_t>(rng.bounded(4));
        const std::uint64_t line = rng.bounded(4096);
        const int sector = static_cast<int>(rng.bounded(2));
        sim.demand_access(core, line, sector, rng.uniform() < 0.25);
    }
    const auto l1 = sim.l1_total();
    const auto l2 = sim.l2_total();
    EXPECT_EQ(l1.hits + l1.refills, l1.accesses);
    EXPECT_EQ(l2.demand_hits + l2.demand_fills, l2.demand_accesses);
    // Every L1 demand refill is one L2 demand access.
    EXPECT_EQ(l1.refills, l2.demand_accesses);
    // Swaps are a subset of demand hits.
    EXPECT_LE(l2.swap_dm, l2.demand_hits);
    // The PMU correction formula recovers the fill count.
    EXPECT_EQ(l2.refill_raw() - l2.swap_dm - l2.prefetch_fills, l2.fills());
}

TEST(HierarchyInvariants, DeterministicUnderIdenticalTraffic) {
    auto run = [] {
        A64fxConfig cfg;
        cfg.cores = 2;
        cfg.cores_per_numa = 2;
        cfg.l1 = CacheConfig{4 * 2 * 16, 16, 2, 1};
        cfg.l2 = CacheConfig{8 * 4 * 16, 16, 4, 2};
        MemoryHierarchy sim(cfg);
        Xoshiro256 rng(7);
        for (int step = 0; step < 50000; ++step) {
            sim.demand_access(static_cast<std::uint32_t>(rng.bounded(2)),
                              rng.bounded(2048),
                              static_cast<int>(rng.bounded(2)),
                              rng.uniform() < 0.5);
        }
        const auto l2 = sim.l2_total();
        return std::make_tuple(sim.l1_total().refills, l2.fills(),
                               l2.writebacks, l2.swap_dm);
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace spmvcache
