// Differential tests for host-parallel sharded model execution: for the
// generator suite and every partition policy, parallel method (A)
// (jobs in {1, 2, 4}) must produce bit-identical ConfigPrediction miss
// counts to the serial path, for both the Olken and Kim engines; method
// (B)'s sharded trace pass is held to the same standard. Miss counts are
// integers stored in doubles, so EXPECT_EQ really is bit-identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/rmat.hpp"
#include "sparse/gen/stencil.hpp"
#include "trace/spmv_trace.hpp"

namespace spmvcache {
namespace {

/// Scaled machine with 4 L2 segments (8 cores, 2 per NUMA domain) so that
/// a full-thread run shards 4 ways.
A64fxConfig sharded_machine() {
    A64fxConfig cfg;
    cfg.cores = 8;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};
    return cfg;
}

struct NamedMatrix {
    std::string name;
    CsrMatrix matrix;
};

const std::vector<NamedMatrix>& generator_suite() {
    static const std::vector<NamedMatrix>* suite = [] {
        auto* s = new std::vector<NamedMatrix>;
        s->push_back({"banded", gen::banded(768, 8, 24, 11)});
        s->push_back({"stencil", gen::stencil_2d_5pt(48, 48)});
        s->push_back({"rmat", gen::rmat(9, 4096, 12)});
        s->push_back({"block", gen::block_fem(48, 4, 3, 8, 13)});
        return s;
    }();
    return *suite;
}

ModelOptions base_options(PartitionPolicy policy, std::int64_t jobs) {
    ModelOptions o;
    o.machine = sharded_machine();
    o.threads = o.machine.cores;  // 4 segments -> 4 shards
    o.l2_way_options = {2, 4, 6};
    o.predict_l1 = true;
    o.partition = policy;
    o.jobs = jobs;
    return o;
}

void expect_identical(const ModelResult& serial, const ModelResult& parallel,
                      const std::string& label) {
    ASSERT_EQ(serial.configs.size(), parallel.configs.size()) << label;
    for (std::size_t i = 0; i < serial.configs.size(); ++i) {
        EXPECT_EQ(serial.configs[i].l2_sector_ways,
                  parallel.configs[i].l2_sector_ways)
            << label << " config " << i;
        EXPECT_EQ(serial.configs[i].l2_misses, parallel.configs[i].l2_misses)
            << label << " config " << i;
        EXPECT_EQ(serial.configs[i].l2_x_misses,
                  parallel.configs[i].l2_x_misses)
            << label << " config " << i;
    }
    EXPECT_EQ(serial.l1_misses, parallel.l1_misses) << label;
    EXPECT_EQ(serial.l1_x_misses, parallel.l1_x_misses) << label;
    EXPECT_EQ(serial.x_traffic_fraction, parallel.x_traffic_fraction)
        << label;
}

class ModelParallelTest
    : public testing::TestWithParam<PartitionPolicy> {};

TEST_P(ModelParallelTest, MethodAOlkenMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial =
            run_method_a(m, base_options(GetParam(), /*jobs=*/1));
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel =
                run_method_a(m, base_options(GetParam(), jobs));
            expect_identical(serial, parallel,
                             name + " olken jobs=" + std::to_string(jobs));
        }
    }
}

TEST_P(ModelParallelTest, MethodAKimMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial = run_method_a(
            m, base_options(GetParam(), /*jobs=*/1), EngineKind::Kim);
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel = run_method_a(
                m, base_options(GetParam(), jobs), EngineKind::Kim);
            expect_identical(serial, parallel,
                             name + " kim jobs=" + std::to_string(jobs));
        }
    }
}

TEST_P(ModelParallelTest, MethodBMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial =
            run_method_b(m, base_options(GetParam(), /*jobs=*/1));
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel =
                run_method_b(m, base_options(GetParam(), jobs));
            expect_identical(serial, parallel,
                             name + " methodB jobs=" + std::to_string(jobs));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ModelParallelTest,
    testing::Values(PartitionPolicy::BalancedRows,
                    PartitionPolicy::BalancedNonzeros),
    [](const testing::TestParamInfo<PartitionPolicy>& info) {
        return info.param == PartitionPolicy::BalancedRows
                   ? "BalancedRows"
                   : "BalancedNonzeros";
    });

TEST(ModelParallel, ShardInstrumentationIsConsistent) {
    const auto& m = generator_suite().front().matrix;
    for (const std::int64_t jobs : {std::int64_t{1}, std::int64_t{4}}) {
        for (const bool use_b : {false, true}) {
            const auto options =
                base_options(PartitionPolicy::BalancedRows, jobs);
            const ModelResult result =
                use_b ? run_method_b(m, options) : run_method_a(m, options);
            ASSERT_EQ(result.shards.size(), 4u);
            std::uint64_t refs = 0;
            for (std::size_t s = 0; s < result.shards.size(); ++s) {
                EXPECT_EQ(result.shards[s].segment,
                          static_cast<std::int64_t>(s));
                EXPECT_EQ(result.shards[s].threads, 2);
                refs += result.shards[s].references;
            }
            // Every shard replays exactly its slice of the derived trace.
            EXPECT_EQ(refs, spmv_trace_length(m.rows(), m.nnz()));
            EXPECT_EQ(result.jobs, std::min<std::int64_t>(jobs, 4));
        }
    }
}

TEST(ModelParallel, SingleSegmentRunsSerially) {
    // threads <= cores_per_numa: one shard only, any jobs value is safe.
    const auto& m = generator_suite().front().matrix;
    ModelOptions o = base_options(PartitionPolicy::BalancedRows, 8);
    o.threads = 2;  // exactly one segment
    const auto result = run_method_a(m, o);
    EXPECT_EQ(result.shards.size(), 1u);
    EXPECT_EQ(result.jobs, 1);
}

TEST(ModelParallel, DefaultJobsUsesHardwareConcurrency) {
    const auto& m = generator_suite().front().matrix;
    ModelOptions o = base_options(PartitionPolicy::BalancedRows, 0);
    const auto serial = run_method_a(m, base_options(
        PartitionPolicy::BalancedRows, 1));
    const auto parallel = run_method_a(m, o);
    EXPECT_GE(parallel.jobs, 1);
    expect_identical(serial, parallel, "default jobs");
}

}  // namespace
}  // namespace spmvcache
