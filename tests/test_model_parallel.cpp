// Differential tests for host-parallel sharded model execution: for the
// generator suite and every partition policy, parallel method (A)
// (jobs in {1, 2, 4}) must produce bit-identical ConfigPrediction miss
// counts to the serial path, for both the Olken and Kim engines; method
// (B)'s sharded trace pass is held to the same standard. Miss counts are
// integers stored in doubles, so EXPECT_EQ really is bit-identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/rmat.hpp"
#include "sparse/gen/stencil.hpp"
#include "trace/spmv_trace.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

/// Scaled machine with 4 L2 segments (8 cores, 2 per NUMA domain) so that
/// a full-thread run shards 4 ways.
A64fxConfig sharded_machine() {
    A64fxConfig cfg;
    cfg.cores = 8;
    cfg.cores_per_numa = 2;
    cfg.l1 = CacheConfig{16 * 1024, 256, 4, 0};
    cfg.l2 = CacheConfig{512 * 1024, 256, 16, 0};
    return cfg;
}

struct NamedMatrix {
    std::string name;
    CsrMatrix matrix;
};

const std::vector<NamedMatrix>& generator_suite() {
    static const std::vector<NamedMatrix>* suite = [] {
        auto* s = new std::vector<NamedMatrix>;
        s->push_back({"banded", gen::banded(768, 8, 24, 11)});
        s->push_back({"stencil", gen::stencil_2d_5pt(48, 48)});
        s->push_back({"rmat", gen::rmat(9, 4096, 12)});
        s->push_back({"block", gen::block_fem(48, 4, 3, 8, 13)});
        return s;
    }();
    return *suite;
}

ModelOptions base_options(PartitionPolicy policy, std::int64_t jobs) {
    ModelOptions o;
    o.machine = sharded_machine();
    o.threads = o.machine.cores;  // 4 segments -> 4 shards
    o.l2_way_options = {2, 4, 6};
    o.predict_l1 = true;
    o.partition = policy;
    o.jobs = jobs;
    return o;
}

void expect_identical(const ModelResult& serial, const ModelResult& parallel,
                      const std::string& label) {
    ASSERT_EQ(serial.configs.size(), parallel.configs.size()) << label;
    for (std::size_t i = 0; i < serial.configs.size(); ++i) {
        EXPECT_EQ(serial.configs[i].l2_sector_ways,
                  parallel.configs[i].l2_sector_ways)
            << label << " config " << i;
        EXPECT_EQ(serial.configs[i].l2_misses, parallel.configs[i].l2_misses)
            << label << " config " << i;
        EXPECT_EQ(serial.configs[i].l2_x_misses,
                  parallel.configs[i].l2_x_misses)
            << label << " config " << i;
    }
    EXPECT_EQ(serial.l1_misses, parallel.l1_misses) << label;
    EXPECT_EQ(serial.l1_x_misses, parallel.l1_x_misses) << label;
    EXPECT_EQ(serial.x_traffic_fraction, parallel.x_traffic_fraction)
        << label;
}

class ModelParallelTest
    : public testing::TestWithParam<PartitionPolicy> {};

TEST_P(ModelParallelTest, MethodAOlkenMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial =
            run_method_a(m, base_options(GetParam(), /*jobs=*/1));
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel =
                run_method_a(m, base_options(GetParam(), jobs));
            expect_identical(serial, parallel,
                             name + " olken jobs=" + std::to_string(jobs));
        }
    }
}

TEST_P(ModelParallelTest, MethodAKimMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial = run_method_a(
            m, base_options(GetParam(), /*jobs=*/1), EngineKind::Kim);
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel = run_method_a(
                m, base_options(GetParam(), jobs), EngineKind::Kim);
            expect_identical(serial, parallel,
                             name + " kim jobs=" + std::to_string(jobs));
        }
    }
}

TEST_P(ModelParallelTest, MethodBMatchesSerialForAllJobCounts) {
    for (const auto& [name, m] : generator_suite()) {
        const auto serial =
            run_method_b(m, base_options(GetParam(), /*jobs=*/1));
        for (const std::int64_t jobs : {std::int64_t{2}, std::int64_t{4}}) {
            const auto parallel =
                run_method_b(m, base_options(GetParam(), jobs));
            expect_identical(serial, parallel,
                             name + " methodB jobs=" + std::to_string(jobs));
        }
    }
}

void expect_replay_mode(const ModelResult& result, bool packed,
                        const std::string& label) {
    ASSERT_FALSE(result.shards.empty()) << label;
    for (const ShardStats& shard : result.shards)
        EXPECT_EQ(shard.packed_replay, packed)
            << label << " shard " << shard.segment;
}

TEST_P(ModelParallelTest, PackedReplayMatchesForcedStreaming) {
    // The tentpole differential: the packed-trace replay path (default
    // budget) and the streaming re-derivation fallback (--trace-buffer 0)
    // must agree bit-for-bit across generators x jobs x engines x both
    // methods; the shard stats must prove each run took the intended path.
    for (const auto& [name, m] : generator_suite()) {
        for (const std::int64_t jobs : {std::int64_t{1}, std::int64_t{4}}) {
            ModelOptions packed = base_options(GetParam(), jobs);
            ModelOptions streamed = packed;
            streamed.trace_buffer_bytes = 0;
            const std::string label =
                name + " jobs=" + std::to_string(jobs);

            const auto a_packed = run_method_a(m, packed);
            const auto a_streamed = run_method_a(m, streamed);
            expect_replay_mode(a_packed, true, label + " A/olken packed");
            expect_replay_mode(a_streamed, false,
                               label + " A/olken streamed");
            expect_identical(a_packed, a_streamed, label + " A/olken");

            const auto kim_packed = run_method_a(m, packed, EngineKind::Kim);
            const auto kim_streamed =
                run_method_a(m, streamed, EngineKind::Kim);
            expect_replay_mode(kim_packed, true, label + " A/kim packed");
            expect_replay_mode(kim_streamed, false,
                               label + " A/kim streamed");
            expect_identical(kim_packed, kim_streamed, label + " A/kim");

            const auto b_packed = run_method_b(m, packed);
            const auto b_streamed = run_method_b(m, streamed);
            expect_replay_mode(b_packed, true, label + " B packed");
            expect_replay_mode(b_streamed, false, label + " B streamed");
            expect_identical(b_packed, b_streamed, label + " B");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ModelParallelTest,
    testing::Values(PartitionPolicy::BalancedRows,
                    PartitionPolicy::BalancedNonzeros),
    [](const testing::TestParamInfo<PartitionPolicy>& info) {
        return info.param == PartitionPolicy::BalancedRows
                   ? "BalancedRows"
                   : "BalancedNonzeros";
    });

TEST(ModelParallel, PackingFaultEngagesStreamingFallback) {
    // An armed trace.pack fault must not fail the model or change its
    // predictions — every shard silently re-derives its trace instead.
    const auto& m = generator_suite().front().matrix;
    const auto options = base_options(PartitionPolicy::BalancedRows, 4);
    const auto packed = run_method_a(m, options);
    expect_replay_mode(packed, true, "before fault");

    // once=false: every shard's packing attempt must fail, not just the
    // first one to hit the point.
    fault::ScopedFault f("trace.pack", {.once = false});
    const auto faulted = run_method_a(m, options);
    expect_replay_mode(faulted, false, "under fault");
    expect_identical(packed, faulted, "trace.pack fallback");

    const auto faulted_b = run_method_b(m, options);
    expect_replay_mode(faulted_b, false, "under fault methodB");
}

TEST(ModelParallel, TinyBudgetStreamsOnlyOversizedShards) {
    // A budget that admits nothing still predicts identically, and the
    // decision is per shard: with jobs=1 the whole budget goes to each
    // shard in turn, so a budget sized to one shard's trace packs it.
    const auto& m = generator_suite().front().matrix;
    ModelOptions o = base_options(PartitionPolicy::BalancedRows, 1);
    const auto reference = run_method_a(m, o);

    o.trace_buffer_bytes = 8;  // one reference: every shard over budget
    const auto starved = run_method_a(m, o);
    expect_replay_mode(starved, false, "starved");
    expect_identical(reference, starved, "starved budget");

    o.trace_buffer_bytes = spmv_trace_length(m.rows(), m.nnz()) * 8;
    const auto roomy = run_method_a(m, o);
    expect_replay_mode(roomy, true, "roomy");
    expect_identical(reference, roomy, "roomy budget");
}

TEST(ModelParallel, ShardInstrumentationIsConsistent) {
    const auto& m = generator_suite().front().matrix;
    for (const std::int64_t jobs : {std::int64_t{1}, std::int64_t{4}}) {
        for (const bool use_b : {false, true}) {
            const auto options =
                base_options(PartitionPolicy::BalancedRows, jobs);
            const ModelResult result =
                use_b ? run_method_b(m, options) : run_method_a(m, options);
            ASSERT_EQ(result.shards.size(), 4u);
            std::uint64_t refs = 0;
            for (std::size_t s = 0; s < result.shards.size(); ++s) {
                EXPECT_EQ(result.shards[s].segment,
                          static_cast<std::int64_t>(s));
                EXPECT_EQ(result.shards[s].threads, 2);
                refs += result.shards[s].references;
            }
            // Every shard replays exactly its slice of the derived trace.
            EXPECT_EQ(refs, spmv_trace_length(m.rows(), m.nnz()));
            EXPECT_EQ(result.jobs, std::min<std::int64_t>(jobs, 4));
        }
    }
}

TEST(ModelParallel, SingleSegmentRunsSerially) {
    // threads <= cores_per_numa: one shard only, any jobs value is safe.
    const auto& m = generator_suite().front().matrix;
    ModelOptions o = base_options(PartitionPolicy::BalancedRows, 8);
    o.threads = 2;  // exactly one segment
    const auto result = run_method_a(m, o);
    EXPECT_EQ(result.shards.size(), 1u);
    EXPECT_EQ(result.jobs, 1);
}

TEST(ModelParallel, DefaultJobsUsesHardwareConcurrency) {
    const auto& m = generator_suite().front().matrix;
    ModelOptions o = base_options(PartitionPolicy::BalancedRows, 0);
    const auto serial = run_method_a(m, base_options(
        PartitionPolicy::BalancedRows, 1));
    const auto parallel = run_method_a(m, o);
    EXPECT_GE(parallel.jobs, 1);
    expect_identical(serial, parallel, "default jobs");
}

}  // namespace
}  // namespace spmvcache
