// Registered points and "t."-prefixed test-local points both pass the
// unknown-fault-point rule.
#include "util/fault.hpp"

namespace spmvcache {

void poke() {
    fault::maybe_throw("trace.generate");
    fault::arm("t.corpus.local");
    const fault::ScopedFault guard("serve.accept");
}

}  // namespace spmvcache
