// Clean: the serve-daemon request-handling idiom — [[nodiscard]] on every
// fallible parse/dispatch function, .value() only behind ok() branches,
// snprintf (allowed) instead of sprintf, 64-bit loop indices over queues.
#include <cstdio>
#include <string>
#include <vector>

[[nodiscard]] Result<Request> parse_request(const std::string& line);
[[nodiscard]] Status enqueue(const Request& request);

[[nodiscard]] Status handle_line(const std::string& line) {
    Result<Request> parsed = parse_request(line);
    if (!parsed.ok()) return parsed.status();
    return enqueue(parsed.value());
}

[[nodiscard]] std::string drain_report(const std::vector<int>& pending) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "in flight: %zu", pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) touch(pending[i]);
    return buffer;
}
