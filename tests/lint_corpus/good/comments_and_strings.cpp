// Clean: banned names inside comments and string literals are not code.
// Discussing atoi(x) or `new Foo` in prose, or delete in a docstring,
// must not fire.
#include <string>

/* A block comment mentioning strtoul(s, nullptr, 10) and rand() too. */
const char* kHelp =
    "never call atoi(argv[1]); reinterpret_cast is also banned; new int[4]";

struct NoCopy {
    NoCopy(const NoCopy&) = delete;
    NoCopy& operator=(const NoCopy&) = delete;
};

void small_fixed_loops() {
    for (int b = 0; b < kBuckets; ++b) touch(b);
    for (int i = 1; i < argc; ++i) touch(i);
}
