// The approved locking idiom outside util/: the annotated wrappers,
// with the protected member tied to its mutex via SPMV_GUARDED_BY.
#include "util/annotated_mutex.hpp"

namespace spmvcache {

class Counter {
public:
    void bump() SPMV_EXCLUDES(mutex_) {
        const MutexLock lock(mutex_);
        ++count_;
    }

private:
    Mutex mutex_;
    long count_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace spmvcache
