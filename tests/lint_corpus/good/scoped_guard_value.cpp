// Early-return guard at the same brace depth as the unwrap: still in
// scope when .value() runs, so the scope-aware rule accepts it.
#include <optional>

namespace spmvcache {

int consume(std::optional<int> v) {
    if (!v.has_value()) return 0;
    return v.value();
}

}  // namespace spmvcache
