// Clean: every Status/Result function is [[nodiscard]], every .value() is
// behind an ok() branch, loops over sized bounds use 64-bit indices.
#include <string>

[[nodiscard]] Result<int> try_count_entries(const std::string& path);

[[nodiscard]] Status validate(const std::string& path) {
    Result<int> r = try_count_entries(path);
    if (!r.ok()) return r.status();
    for (std::int64_t i = 0; i < r.value(); ++i) touch(i);
    return OkStatus();
}
