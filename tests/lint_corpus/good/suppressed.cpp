// Clean: every violation carries a same-line or preceding-line
// justification, which is the sanctioned escape hatch.
#include <cstdint>

std::uintptr_t address_of(const double* p) {
    // Measuring the numeric address is the point; bit_cast cannot do this.
    // spmv-lint: allow(reinterpret-cast)
    return reinterpret_cast<std::uintptr_t>(p);
}

int legacy_bridge(const char* s) {
    return atoi(s);  // spmv-lint: allow(banned-call)
}
