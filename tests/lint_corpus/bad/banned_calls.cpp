// lint-expect: banned-call
// Unchecked C parses and global randomness bypass the typed-error layer
// and the seeded PRNG.
#include <cstdlib>

long parse_threads(const char* arg) {
    return atoi(arg);
}

long parse_size(const char* arg) {
    return std::strtoul(arg, nullptr, 10);
}

int roll() {
    return rand() % 6;
}
