// lint-expect: reinterpret-cast
// Type punning through reinterpret_cast is UB for most pairs; std::bit_cast
// or a justified suppression is required.
unsigned long long bits_of(double d) {
    return *reinterpret_cast<unsigned long long*>(&d);
}
