// lint-expect: unchecked-result-value
// The has_value() guard lives in a block that has already closed by the
// time the second unwrap runs — a line-window check would wrongly accept
// this; the scope-aware rule must not.
#include <optional>

namespace spmvcache {

int consume(std::optional<int> a, std::optional<int> b) {
    int total = 0;
    {
        if (a.has_value()) total += a.value();
    }
    return total + b.value();
}

}  // namespace spmvcache
