// lint-expect: unknown-fault-point
// Typo'd fault point: armed under one name, probed under another, so the
// injection silently never fires. The registry check catches it as long
// as the lint runs with --fault-registry.
#include "util/fault.hpp"

namespace spmvcache {

void poke() {
    fault::maybe_throw("serve.acept");  // registry spells it serve.accept
}

}  // namespace spmvcache
