// lint-expect: raw-new-delete
// Raw owning pointers leak on every early return; the project is
// container/RAII-only.
double* make_buffer(int n) {
    double* buf = new double[n];
    return buf;
}

void drop_buffer(double* buf) {
    delete[] buf;
}
