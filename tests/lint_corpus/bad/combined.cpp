// lint-expect: nodiscard-status unchecked-result-value banned-call int-loop-index
// Several violations in one file: the self-test requires every listed rule
// to fire at least once.
#include <cstdlib>
#include <string>

Result<CsrMatrix> load(const std::string& spec) {
    const long n = std::strtoll(spec.c_str(), nullptr, 10);
    Result<CsrMatrix> parsed = try_read_matrix_market_file(spec);
    CsrMatrix m = std::move(parsed).value();
    for (int i = 0; i < m.nnz(); ++i) touch(i);
    return m;
}
