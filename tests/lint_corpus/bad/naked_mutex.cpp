// lint-expect: naked-mutex
// Raw std primitives are invisible to Clang's thread-safety analysis;
// outside util/ the annotated wrappers are mandatory.
#include <mutex>

namespace spmvcache {

class Counter {
public:
    void bump() {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++count_;
    }

private:
    std::mutex mutex_;
    long count_ = 0;
};

}  // namespace spmvcache
