// lint-expect: nodiscard-status
// A Status/Result-returning function without [[nodiscard]]: the caller can
// drop the error on the floor. Corpus snippets are linted, never compiled.
#include <string>

Status try_parse_header(const std::string& line);

Result<int> try_count_entries(const std::string& path) {
    return 0;
}

class Reader {
public:
    Status open(const std::string& path);
};
