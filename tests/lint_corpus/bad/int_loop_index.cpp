// lint-expect: int-loop-index
// Raw int loop variable over an nnz-sized bound: silently wraps past
// 2^31 nonzeros, well inside SuiteSparse scale.
void touch_all(const CsrMatrix& m) {
    for (int i = 0; i < m.nnz(); ++i) touch(i);
    for (unsigned r = 0; r < m.rows(); ++r) touch(r);
    for (std::int32_t k = 0; k < colidx.size(); ++k) touch(k);
}
