// lint-expect: unchecked-result-value
// .value() with no ok()/has_value() guard anywhere in scope: on the error
// path this is a contract abort (Result) or UB (optional).
#include <string>

int count_entries(const std::string& path) {
    Result<int> r = try_count_entries(path);
    return r.value();
}
