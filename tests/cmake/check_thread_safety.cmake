# Negative-compile driver for the thread-safety annotation corpus
# (tests/data/lint_thread). Run as:
#
#   cmake -DCXX=<compiler> -DCXX_ID=<id> -DCORPUS_DIR=<dir> -DINCLUDE_DIR=<dir>
#         -P check_thread_safety.cmake
#
# Two phases per corpus file:
#   1. validity  — `-fsyntax-only` WITHOUT the analysis must succeed for
#                  every file, so a rotted corpus file (broken include,
#                  syntax error) fails loudly instead of "failing" the
#                  analysis for the wrong reason.
#   2. analysis  — only when CXX_ID is Clang (GCC has no thread-safety
#                  analysis and the SPMV_* macros expand to nothing
#                  there): fail_*.cpp MUST be rejected and pass_*.cpp
#                  MUST be accepted under
#                  `-Wthread-safety -Werror=thread-safety`.
#
# The fail files are the proof that the annotations have teeth: if
# util/thread_annotations.hpp ever decays to no-ops under Clang, phase 2
# starts accepting them and this script errors out.

foreach(var CXX CXX_ID CORPUS_DIR INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_thread_safety.cmake: ${var} not set")
  endif()
endforeach()

set(base_flags -std=c++20 -fsyntax-only "-I${INCLUDE_DIR}")
set(analysis_flags -Wthread-safety -Werror=thread-safety)

file(GLOB fail_files "${CORPUS_DIR}/fail_*.cpp")
file(GLOB pass_files "${CORPUS_DIR}/pass_*.cpp")
list(LENGTH fail_files n_fail)
if(n_fail LESS 5)
  message(FATAL_ERROR "corpus has only ${n_fail} fail files (need >= 5)")
endif()
if(NOT pass_files)
  message(FATAL_ERROR "corpus has no pass_*.cpp file")
endif()

set(errors 0)

function(compile_one file extra_flags should_succeed phase)
  execute_process(
    COMMAND ${CXX} ${base_flags} ${extra_flags} ${file}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  get_filename_component(name ${file} NAME)
  if(should_succeed AND NOT rc EQUAL 0)
    message(SEND_ERROR
      "${name}: ${phase} compile FAILED but must succeed:\n${err}")
    math(EXPR e "${errors} + 1")
    set(errors ${e} PARENT_SCOPE)
  elseif(NOT should_succeed AND rc EQUAL 0)
    message(SEND_ERROR
      "${name}: ${phase} compile SUCCEEDED but must be rejected — the "
      "thread-safety annotations have no teeth")
    math(EXPR e "${errors} + 1")
    set(errors ${e} PARENT_SCOPE)
  else()
    message(STATUS "${name}: ${phase} ok")
  endif()
endfunction()

# Phase 1: every corpus file must be valid C++ without the analysis.
foreach(file ${fail_files} ${pass_files})
  compile_one(${file} "" TRUE "validity")
endforeach()

# Phase 2: the analysis verdicts, Clang only.
if(CXX_ID MATCHES "Clang")
  foreach(file ${fail_files})
    compile_one(${file} "${analysis_flags}" FALSE "analysis")
  endforeach()
  foreach(file ${pass_files})
    compile_one(${file} "${analysis_flags}" TRUE "analysis")
  endforeach()
else()
  message(STATUS
    "compiler '${CXX_ID}' has no thread-safety analysis; "
    "analysis phase skipped (validity phase ran on all files)")
endif()

if(errors GREATER 0)
  message(FATAL_ERROR "${errors} corpus file(s) misbehaved")
endif()
