#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "trace/spmv_trace.hpp"
#include "util/checked.hpp"
#include "util/cli.hpp"
#include "util/status.hpp"

namespace spmvcache {
namespace {

constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

TEST(CheckedAdd, SignedBoundary) {
    std::int64_t out = 0;
    EXPECT_TRUE(checked_add<std::int64_t>(kI64Max - 1, 1, out));
    EXPECT_EQ(out, kI64Max);
    EXPECT_FALSE(checked_add<std::int64_t>(kI64Max, 1, out));
    EXPECT_FALSE(checked_add<std::int64_t>(kI64Min, -1, out));
    EXPECT_TRUE(checked_add<std::int64_t>(kI64Min, kI64Max, out));
    EXPECT_EQ(out, -1);
}

TEST(CheckedAdd, UnsignedBoundary) {
    std::uint64_t out = 0;
    EXPECT_TRUE(checked_add<std::uint64_t>(kU64Max - 1, 1, out));
    EXPECT_EQ(out, kU64Max);
    EXPECT_FALSE(checked_add<std::uint64_t>(kU64Max, 1, out));
    std::size_t sz = 0;
    EXPECT_FALSE(checked_add<std::size_t>(SIZE_MAX, 1, sz));
}

TEST(CheckedSub, UnsignedUnderflow) {
    std::uint64_t out = 0;
    EXPECT_TRUE(checked_sub<std::uint64_t>(1, 1, out));
    EXPECT_EQ(out, 0u);
    EXPECT_FALSE(checked_sub<std::uint64_t>(0, 1, out));
}

TEST(CheckedMul, SignedBoundary) {
    std::int64_t out = 0;
    // 2^31 * 2^31 = 2^62 fits; 2^32 * 2^31 = 2^63 does not.
    EXPECT_TRUE(checked_mul<std::int64_t>(std::int64_t{1} << 31,
                                          std::int64_t{1} << 31, out));
    EXPECT_EQ(out, std::int64_t{1} << 62);
    EXPECT_FALSE(checked_mul<std::int64_t>(std::int64_t{1} << 32,
                                           std::int64_t{1} << 31, out));
    EXPECT_FALSE(checked_mul<std::int64_t>(kI64Max, 2, out));
    EXPECT_TRUE(checked_mul<std::int64_t>(kI64Max, 1, out));
    EXPECT_EQ(out, kI64Max);
}

TEST(CheckedMul, UnsignedBoundary) {
    std::uint64_t out = 0;
    EXPECT_TRUE(checked_mul<std::uint64_t>(kU64Max / 2, 2, out));
    EXPECT_EQ(out, kU64Max - 1);
    EXPECT_FALSE(checked_mul<std::uint64_t>(kU64Max / 2 + 1, 2, out));
}

TEST(CheckedNarrow, NegativeToUnsignedFails) {
    std::uint32_t u32 = 0;
    EXPECT_FALSE(checked_narrow(std::int64_t{-1}, u32));
    std::uint64_t u64 = 0;
    EXPECT_FALSE(checked_narrow(std::int64_t{-1}, u64));
    EXPECT_TRUE(checked_narrow(std::int64_t{0}, u64));
    EXPECT_EQ(u64, 0u);
}

TEST(CheckedNarrow, WidthBoundaries) {
    std::int32_t i32 = 0;
    EXPECT_TRUE(checked_narrow(std::int64_t{2147483647}, i32));
    EXPECT_EQ(i32, 2147483647);
    EXPECT_FALSE(checked_narrow(std::int64_t{2147483648}, i32));
    EXPECT_TRUE(checked_narrow(std::int64_t{-2147483648}, i32));
    EXPECT_FALSE(checked_narrow(std::int64_t{-2147483649}, i32));

    std::int64_t i64 = 0;
    EXPECT_FALSE(checked_narrow(kU64Max, i64));
    EXPECT_TRUE(checked_narrow(kU64Max / 2, i64));
    EXPECT_EQ(i64, kI64Max);
}

TEST(CheckedResult, AddOverflowIsTypedError) {
    Result<std::int64_t> ok = checked_add<std::int64_t>(20, 22);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 42);

    Result<std::int64_t> bad = checked_add<std::int64_t>(kI64Max, 1);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::OverflowError);
    EXPECT_NE(bad.error().message.find("overflows"), std::string::npos);
}

TEST(CheckedResult, MulAndSubOverflow) {
    EXPECT_EQ(checked_mul<std::int64_t>(kI64Max, 2).code(),
              ErrorCode::OverflowError);
    EXPECT_EQ(checked_sub<std::uint64_t>(0, 1).code(),
              ErrorCode::OverflowError);
    EXPECT_EQ(checked_mul<std::uint64_t>(3, 4).value(), 12u);
}

TEST(CheckedResult, NarrowReportsRange) {
    Result<std::uint32_t> bad = checked_narrow<std::uint32_t>(std::int64_t{-5});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::OverflowError);
    EXPECT_NE(bad.error().message.find("does not fit"), std::string::npos);
    EXPECT_EQ(checked_narrow<std::uint32_t>(std::int64_t{7}).value(), 7u);
}

TEST(CheckedToDouble, ExactnessBoundary) {
    EXPECT_TRUE(exactly_representable(kMaxExactDouble));
    EXPECT_TRUE(exactly_representable(-kMaxExactDouble));
    EXPECT_FALSE(exactly_representable(kMaxExactDouble + 1));
    EXPECT_FALSE(exactly_representable(kI64Max));
    EXPECT_EQ(checked_to_double(1 << 20), 1048576.0);
    EXPECT_EQ(checked_to_double(kMaxExactDouble),
              9007199254740992.0);
}

// In the default log mode a violated contract reports and continues; the
// test process must survive. (Trap-mode abort is covered by
// test_contracts_trap.)
TEST(Contracts, LogModeDoesNotAbort) {
    testing::internal::CaptureStderr();
    SPMV_EXPECT(1 + 1 == 3);
    SPMV_ENSURE(false);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("expectation violated"), std::string::npos);
    EXPECT_NE(err.find("guarantee violated"), std::string::npos);
}

// Off mode drops the diagnostic but must still evaluate the condition:
// call sites put the checked arithmetic itself inside the macro.
TEST(Contracts, ConditionIsAlwaysEvaluated) {
    std::int64_t out = 0;
    SPMV_EXPECT(checked_add<std::int64_t>(40, 2, out));
    EXPECT_EQ(out, 42);
}

TEST(ParseInt, StrictWholeString) {
    EXPECT_EQ(parse_int("42").value(), 42);
    EXPECT_EQ(parse_int("+7").value(), 7);
    EXPECT_EQ(parse_int("-9").value(), -9);
    EXPECT_EQ(parse_int(" 13\t").value(), 13);
    EXPECT_EQ(parse_int("12abc").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_int("").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_int("1e3").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_int("9223372036854775807").value(), kI64Max);
    EXPECT_EQ(parse_int("9223372036854775808").code(),
              ErrorCode::OverflowError);
}

TEST(ParseDouble, StrictWholeString) {
    EXPECT_EQ(parse_double("2.5").value(), 2.5);
    EXPECT_EQ(parse_double("1e3").value(), 1000.0);
    EXPECT_EQ(parse_double("nope").code(), ErrorCode::ParseError);
    EXPECT_EQ(parse_double("2.5x").code(), ErrorCode::ParseError);
}

TEST(CliParser, GarbageNumericOptionThrowsTyped) {
    const char* argv[] = {"prog", "--threads", "banana", "--alpha", "0.5"};
    CliParser cli(5, argv);
    EXPECT_EQ(cli.get_double("alpha", 0.0), 0.5);
    try {
        (void)cli.get_int("threads", 1);
        FAIL() << "expected StatusError";
    } catch (const StatusError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError);
        EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
    }
}

TEST(TraceLength, CheckedFlavourMatchesConstexpr) {
    Result<std::uint64_t> n = try_spmv_trace_length(100, 500);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), spmv_trace_length(100, 500));
}

TEST(TraceLength, RejectsNegativeAndOverflow) {
    EXPECT_EQ(try_spmv_trace_length(-1, 10).code(),
              ErrorCode::ValidationError);
    EXPECT_EQ(try_spmv_trace_length(10, -1).code(),
              ErrorCode::ValidationError);
    EXPECT_EQ(try_spmv_trace_length(kI64Max, kI64Max).code(),
              ErrorCode::OverflowError);
}

}  // namespace
}  // namespace spmvcache
