// Batch-runner tests: per-matrix isolation (valid matrices keep modelling
// while corrupt ones are recorded), retry-once-on-transient semantics,
// failure reports, and standardized exit codes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/batch.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "util/fault.hpp"

namespace spmvcache {
namespace {

namespace fs = std::filesystem;

class BatchTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::path(testing::TempDir()) /
               ("spmv_batch_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override {
        fault::disarm_all();
        fs::remove_all(dir_);
    }

    std::string add_valid(const std::string& name, std::int64_t side = 12) {
        const auto path = dir_ / (name + ".mtx");
        write_matrix_market_file(path.string(),
                                 gen::stencil_2d_5pt(side, side));
        return path.string();
    }

    std::string add_corrupt(const std::string& name,
                            const std::string& content) {
        const auto path = dir_ / (name + ".mtx");
        std::ofstream out(path);
        out << content;
        return path.string();
    }

    BatchOptions fast_options() const {
        BatchOptions options;
        options.threads = 2;
        options.l2_way_options = {2, 5};
        return options;
    }

    fs::path dir_;
};

const BatchItemResult& find_item(const BatchReport& report,
                                 const std::string& name) {
    for (const auto& item : report.items)
        if (item.name == name) return item;
    static const BatchItemResult missing;
    ADD_FAILURE() << "no item named " << name;
    return missing;
}

TEST_F(BatchTest, AllValidMatricesExitZero) {
    add_valid("a");
    add_valid("b");
    const auto paths = collect_matrix_paths(dir_.string());
    ASSERT_TRUE(paths.ok());
    const BatchReport report = run_batch(paths.value(), fast_options());
    EXPECT_EQ(report.items.size(), 2u);
    EXPECT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.exit_code(), kExitOk);
    for (const auto& item : report.items) {
        EXPECT_TRUE(item.ok);
        EXPECT_EQ(item.stage, BatchStage::Model);
        EXPECT_GT(item.nnz, 0);
    }
}

TEST_F(BatchTest, CorruptMatricesAreIsolatedAndRecorded) {
    add_valid("good1");
    add_valid("good2");
    add_valid("good3");
    add_corrupt("bad_header", "%%NotMatrixMarket nope\n1 1 1\n");
    add_corrupt("bad_truncated",
                "%%MatrixMarket matrix coordinate real general\n"
                "3 3 4\n1 1 1.0\n");
    add_corrupt("bad_index",
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n5 5 1.0\n");

    const auto paths = collect_matrix_paths(dir_.string());
    ASSERT_TRUE(paths.ok());
    const BatchReport report = run_batch(paths.value(), fast_options());

    EXPECT_EQ(report.items.size(), 6u);
    EXPECT_EQ(report.failed(), 3u);
    EXPECT_EQ(report.succeeded(), 3u);
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);

    // The valid matrices were fully modelled despite the corrupt ones.
    for (const auto* name : {"good1", "good2", "good3"}) {
        const auto& item = find_item(report, name);
        EXPECT_TRUE(item.ok) << name;
        EXPECT_EQ(item.stage, BatchStage::Model);
    }
    // Each corrupt matrix names its stage and a typed code.
    EXPECT_EQ(find_item(report, "bad_header").stage, BatchStage::Parse);
    EXPECT_EQ(find_item(report, "bad_header").code, ErrorCode::ParseError);
    EXPECT_EQ(find_item(report, "bad_truncated").code,
              ErrorCode::ParseError);
    EXPECT_EQ(find_item(report, "bad_index").code,
              ErrorCode::ValidationError);
    for (const auto* name : {"bad_header", "bad_truncated", "bad_index"})
        EXPECT_FALSE(find_item(report, name).message.empty()) << name;
}

TEST_F(BatchTest, MissingFileIsResourceErrorNotCrash) {
    const BatchReport report =
        run_batch({(dir_ / "nope.mtx").string()}, fast_options());
    ASSERT_EQ(report.items.size(), 1u);
    EXPECT_FALSE(report.items[0].ok);
    EXPECT_EQ(report.items[0].code, ErrorCode::ResourceError);
    EXPECT_TRUE(report.items[0].retried);  // transient: retried once
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);
}

TEST_F(BatchTest, TransientFaultIsRetriedOnceAndSucceeds) {
    add_valid("flaky");
    // One-shot fault: the first attempt fails, the retry goes through.
    fault::arm("batch.item", {.fail_after = 0, .once = true});
    const auto paths = collect_matrix_paths(dir_.string());
    ASSERT_TRUE(paths.ok());
    const BatchReport report = run_batch(paths.value(), fast_options());
    ASSERT_EQ(report.items.size(), 1u);
    EXPECT_TRUE(report.items[0].ok);
    EXPECT_TRUE(report.items[0].retried);
    EXPECT_EQ(report.exit_code(), kExitOk);
}

TEST_F(BatchTest, RetryDisabledRecordsInjectedFault) {
    add_valid("flaky");
    fault::arm("batch.item", {.fail_after = 0, .once = true});
    BatchOptions options = fast_options();
    options.retry_transient = false;
    const BatchReport report =
        run_batch(collect_matrix_paths(dir_.string()).value(), options);
    ASSERT_EQ(report.items.size(), 1u);
    EXPECT_FALSE(report.items[0].ok);
    EXPECT_EQ(report.items[0].code, ErrorCode::FaultInjected);
    EXPECT_FALSE(report.items[0].retried);
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);
}

TEST_F(BatchTest, TimeoutRecordsTimeoutError) {
    // A FIFO with no writer blocks the parser's open() indefinitely — the
    // canonical stuck-I/O case the per-matrix budget exists for. The
    // abandoned worker stays blocked until process exit, by design.
    const auto fifo = dir_ / "stuck.mtx";
    ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
    BatchOptions options = fast_options();
    options.timeout_seconds = 0.05;
    const BatchReport report = run_batch({fifo.string()}, options);
    ASSERT_EQ(report.items.size(), 1u);
    EXPECT_FALSE(report.items[0].ok);
    EXPECT_EQ(report.items[0].code, ErrorCode::TimeoutError);
    EXPECT_FALSE(report.items[0].retried);  // timeouts are not transient
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);
}

TEST_F(BatchTest, ModelStageFaultIsIsolatedPerMatrix) {
    add_valid("m1");
    add_valid("m2");
    add_valid("m3");
    // The reuse engine throws once, mid-model, on whichever matrix hits the
    // armed access count first; the others must still complete.
    fault::arm("reuse.access", {.fail_after = 10, .once = true});
    BatchOptions options = fast_options();
    options.retry_transient = false;
    const BatchReport report =
        run_batch(collect_matrix_paths(dir_.string()).value(), options);
    EXPECT_EQ(report.items.size(), 3u);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_EQ(report.succeeded(), 2u);
    const auto& failed = *std::find_if(
        report.items.begin(), report.items.end(),
        [](const BatchItemResult& i) { return !i.ok; });
    EXPECT_EQ(failed.stage, BatchStage::Model);
    EXPECT_EQ(failed.code, ErrorCode::FaultInjected);
}

TEST_F(BatchTest, CancelCheckDrainsRemainingMatricesAsCancelled) {
    add_valid("a");
    add_valid("b");
    add_valid("c");
    BatchOptions options = fast_options();
    // Fires after the first matrix: exactly what the CLI's SIGINT/SIGTERM
    // drain handler feeds through cancel_check.
    int polls = 0;
    options.cancel_check = [&polls] { return ++polls > 1; };
    const BatchReport report =
        run_batch(collect_matrix_paths(dir_.string()).value(), options);
    ASSERT_EQ(report.items.size(), 3u);
    EXPECT_TRUE(report.items[0].ok);
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_FALSE(report.items[i].ok);
        EXPECT_EQ(report.items[i].code, ErrorCode::Cancelled);
        EXPECT_NE(report.items[i].message.find("drained"),
                  std::string::npos);
    }
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);
}

TEST_F(BatchTest, StatsOnlyModeSkipsModelStage) {
    add_valid("quick");
    BatchOptions options = fast_options();
    options.run_model = false;
    const BatchReport report =
        run_batch(collect_matrix_paths(dir_.string()).value(), options);
    ASSERT_EQ(report.items.size(), 1u);
    EXPECT_TRUE(report.items[0].ok);
    EXPECT_EQ(report.items[0].stage, BatchStage::Stats);
    EXPECT_EQ(report.items[0].best_l2_ways, 0u);
}

TEST_F(BatchTest, StrictParseFlagReachesTheParser) {
    add_corrupt("dupes",
                "%%MatrixMarket matrix coordinate real general\n"
                "3 3 3\n1 1 1.0\n2 2 2.0\n1 1 5.0\n");
    BatchOptions lenient = fast_options();
    BatchOptions strict = fast_options();
    strict.strict_parse = true;
    const auto paths = collect_matrix_paths(dir_.string()).value();
    EXPECT_EQ(run_batch(paths, lenient).exit_code(), kExitOk);
    const BatchReport report = run_batch(paths, strict);
    EXPECT_EQ(report.exit_code(), kExitSomeFailed);
    EXPECT_EQ(report.items[0].code, ErrorCode::ValidationError);
}

TEST_F(BatchTest, CsvReportNamesFailuresWithStageAndCode) {
    add_valid("fine");
    add_corrupt("broken",
                "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n9 9 1.0\n");
    const BatchReport report = run_batch(
        collect_matrix_paths(dir_.string()).value(), fast_options());
    std::ostringstream csv;
    write_batch_report_csv(csv, report);
    const std::string text = csv.str();
    EXPECT_NE(text.find("name,path,status,stage,error_code"),
              std::string::npos);
    EXPECT_NE(text.find("broken"), std::string::npos);
    EXPECT_NE(text.find("ValidationError"), std::string::npos);
    EXPECT_NE(text.find("parse"), std::string::npos);
    EXPECT_NE(text.find("fine"), std::string::npos);
    EXPECT_NE(text.find(",ok,"), std::string::npos);
}

TEST_F(BatchTest, JsonReportIsWellFormedEnoughToGrep) {
    add_corrupt("broken", "not a matrix at all\n");
    const BatchReport report = run_batch(
        collect_matrix_paths(dir_.string()).value(), fast_options());
    std::ostringstream json;
    write_batch_report_json(json, report);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"failed\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"exit_code\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"error_code\": \"ParseError\""),
              std::string::npos);
    // Quotes inside messages must be escaped.
    EXPECT_EQ(text.find("\"message\": \"\""), std::string::npos);
}

TEST_F(BatchTest, CollectPathsHandlesDirListAndSingle) {
    const std::string a = add_valid("a");
    const std::string b = add_valid("b");

    const auto from_dir = collect_matrix_paths(dir_.string());
    ASSERT_TRUE(from_dir.ok());
    EXPECT_EQ(from_dir.value().size(), 2u);
    EXPECT_LT(from_dir.value()[0], from_dir.value()[1]);  // sorted

    const auto single = collect_matrix_paths(a);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single.value(), std::vector<std::string>{a});

    const auto list_path = dir_ / "matrices.txt";
    {
        std::ofstream out(list_path);
        out << "# comment\n" << a << "\n\n" << b << "\n";
    }
    const auto from_list = collect_matrix_paths(list_path.string());
    ASSERT_TRUE(from_list.ok());
    EXPECT_EQ(from_list.value(), (std::vector<std::string>{a, b}));

    const auto missing = collect_matrix_paths(
        (dir_ / "no_such_thing").string());
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.code(), ErrorCode::ResourceError);
}

}  // namespace
}  // namespace spmvcache
