#!/usr/bin/env bash
# End-to-end smoke test of the `spmvcache serve` daemon as a real process:
# a burst of well-formed, malformed, and oversized requests over stdin,
# then a SIGTERM-drain variant. Asserts every request is answered, the
# daemon never crashes, and both exits are clean (exit code 0).
#
#   scripts/serve_smoke.sh [path/to/spmvcache]
set -euo pipefail

BIN="${1:-./build/tools/spmvcache}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$BIN" ] || { echo "serve_smoke: no binary at $BIN" >&2; exit 2; }

# ---- leg 1: mixed request burst, shutdown request, clean drain ----------
REQS="$WORK/requests.jsonl"
{
  echo '{"id":"h0","op":"health"}'
  for i in $(seq 1 8); do
    echo "{\"id\":\"p$i\",\"op\":\"predict\",\"gen\":\"stencil2d5:24\",\"threads\":2}"
  done
  echo 'this line is not json'
  echo '{"id":"nosrc","op":"predict"}'
  # Oversized: far beyond --max-request-bytes below.
  printf '{"id":"big","op":"predict","gen":"%s"}\n' \
    "$(head -c 6000 /dev/zero | tr '\0' 'x')"
  echo '{"id":"c1","op":"predict","matrix":"tests/data/corrupt/truncated_entries.mtx","strict":true}'
  echo '{"id":"end","op":"shutdown"}'
} > "$REQS"

OUT="$WORK/responses.jsonl"
LOG="$WORK/serve.log"
"$BIN" serve --workers 2 --max-request-bytes 4096 < "$REQS" > "$OUT" 2> "$LOG"
echo "serve_smoke: leg 1 exit ok"

lines_in=$(wc -l < "$REQS")
lines_out=$(wc -l < "$OUT")
[ "$lines_out" -eq "$lines_in" ] || {
  echo "serve_smoke: expected $lines_in responses, got $lines_out" >&2
  cat "$OUT" >&2; exit 1
}
grep -q '"id":"h0".*"ok":true' "$OUT"
grep -q '"id":"p1".*"ok":true' "$OUT"
grep -q '"code":"ParseError"' "$OUT"        # the non-JSON line
grep -q '"code":"ValidationError"' "$OUT"   # oversized / missing source
grep -q '"id":"c1".*"ok":false' "$OUT"      # corrupt matrix answered, typed
grep -q '"id":"end".*"ok":true' "$OUT"
grep -q 'draining (shutdown)' "$LOG"
grep -q 'final stats:' "$LOG"
echo "serve_smoke: leg 1 responses verified"

# ---- leg 2: SIGTERM mid-stream drains gracefully ------------------------
FIFO="$WORK/in.fifo"
mkfifo "$FIFO"
OUT2="$WORK/responses2.jsonl"
LOG2="$WORK/serve2.log"
"$BIN" serve --workers 2 < "$FIFO" > "$OUT2" 2> "$LOG2" &
SERVE_PID=$!
exec 3> "$FIFO"
echo '{"id":"w1","op":"predict","gen":"stencil2d5:24","threads":2}' >&3
# Wait until the first response lands so the daemon is mid-loop, not
# still starting up.
for _ in $(seq 1 100); do
  grep -q '"id":"w1"' "$OUT2" 2>/dev/null && break
  sleep 0.1
done
grep -q '"id":"w1"' "$OUT2" || { echo "serve_smoke: no response before signal" >&2; exit 1; }
kill -TERM "$SERVE_PID"
exec 3>&-
code=0
wait "$SERVE_PID" || code=$?
[ "$code" -eq 0 ] || { echo "serve_smoke: SIGTERM exit was $code" >&2; cat "$LOG2" >&2; exit 1; }
grep -q 'draining (signal)' "$LOG2"
grep -q 'final stats:' "$LOG2"
echo "serve_smoke: leg 2 SIGTERM drain verified"
echo "serve_smoke: OK"
