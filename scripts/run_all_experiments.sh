#!/usr/bin/env bash
# Regenerates every table and figure of the paper and archives the raw
# per-matrix data as CSV. Pass a scale factor to grow toward paper scale
# (default: the benches' tuned defaults; 1.0 approaches the paper's sizes
# and takes hours on a laptop).
#
#   ./scripts/run_all_experiments.sh [results_dir] [extra bench args...]
set -euo pipefail

BUILD=${BUILD:-build}
OUT=${1:-results}
shift || true
mkdir -p "$OUT"

run() {
    local name=$1
    shift
    echo "=== $name $* ==="
    "$BUILD/bench/$name" --csv "$OUT/$name.csv" "$@" 2>"$OUT/$name.log" \
        | tee "$OUT/$name.txt"
}

run bench_table1 "$@"
run bench_fig2 "$@"
run bench_fig3 "$@"
run bench_fig4 "$@"
run bench_fig5 "$@"
run bench_table2 "$@"
run bench_table3 "$@"
"$BUILD/bench/bench_overhead" "$@" | tee "$OUT/bench_overhead.txt"
"$BUILD/bench/bench_ablation" "$@" | tee "$OUT/bench_ablation.txt"
"$BUILD/bench/bench_micro" --benchmark_min_time=0.05s \
    | tee "$OUT/bench_micro.txt"

echo "all outputs in $OUT/"
