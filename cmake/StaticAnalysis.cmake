# Static-analysis entry points. Only the `lint` target (our own spmv_lint
# binary) is always available; clang-tidy, cppcheck and clang-format are
# optional host tools, so their targets appear only when find_program
# succeeds — the CI lint job installs all three.

set(SPMV_LINT_PATHS
    ${CMAKE_SOURCE_DIR}/src
    ${CMAKE_SOURCE_DIR}/tools
    ${CMAKE_SOURCE_DIR}/bench)

add_custom_target(lint
  COMMAND spmv_lint --json ${CMAKE_BINARY_DIR}/spmv_lint_report.json
          --fault-registry ${CMAKE_SOURCE_DIR}/src/util/fault_points.hpp
          ${SPMV_LINT_PATHS}
  COMMENT "spmv-lint over src/, tools/, bench/"
  VERBATIM)
add_dependencies(lint spmv_lint)

find_program(SPMV_CLANG_TIDY_EXE clang-tidy)
if(SPMV_CLANG_TIDY_EXE)
  file(GLOB_RECURSE SPMV_TIDY_SOURCES
       ${CMAKE_SOURCE_DIR}/src/*.cpp
       ${CMAKE_SOURCE_DIR}/tools/*.cpp)
  add_custom_target(tidy
    COMMAND ${SPMV_CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR} --quiet
            ${SPMV_TIDY_SOURCES}
    COMMENT "clang-tidy (profile: .clang-tidy)"
    VERBATIM)
else()
  message(STATUS "clang-tidy not found; `tidy` target disabled")
endif()

find_program(SPMV_CPPCHECK_EXE cppcheck)
if(SPMV_CPPCHECK_EXE)
  add_custom_target(cppcheck
    COMMAND ${SPMV_CPPCHECK_EXE}
            --project=${CMAKE_BINARY_DIR}/compile_commands.json
            --enable=warning,performance,portability
            --suppressions-list=${CMAKE_SOURCE_DIR}/tools/cppcheck-suppressions.txt
            --inline-suppr --error-exitcode=1 --quiet
    COMMENT "cppcheck over the compilation database"
    VERBATIM)
else()
  message(STATUS "cppcheck not found; `cppcheck` target disabled")
endif()

find_program(SPMV_CLANG_FORMAT_EXE clang-format)
if(SPMV_CLANG_FORMAT_EXE)
  file(GLOB_RECURSE SPMV_FORMAT_SOURCES
       ${CMAKE_SOURCE_DIR}/src/*.cpp ${CMAKE_SOURCE_DIR}/src/*.hpp
       ${CMAKE_SOURCE_DIR}/tools/*.cpp
       ${CMAKE_SOURCE_DIR}/tests/*.cpp
       ${CMAKE_SOURCE_DIR}/bench/*.cpp
       ${CMAKE_SOURCE_DIR}/examples/*.cpp)
  list(FILTER SPMV_FORMAT_SOURCES EXCLUDE REGEX "tests/lint_corpus/")
  list(FILTER SPMV_FORMAT_SOURCES EXCLUDE REGEX "tests/data/lint_thread/")
  add_custom_target(format-check
    COMMAND ${SPMV_CLANG_FORMAT_EXE} --dry-run --Werror
            ${SPMV_FORMAT_SOURCES}
    COMMENT "clang-format --dry-run (profile: .clang-format)"
    VERBATIM)
  add_custom_target(format
    COMMAND ${SPMV_CLANG_FORMAT_EXE} -i ${SPMV_FORMAT_SOURCES}
    COMMENT "clang-format in place"
    VERBATIM)
else()
  message(STATUS "clang-format not found; `format`/`format-check` disabled")
endif()
