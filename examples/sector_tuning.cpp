// Sector-cache auto-tuning: the co-design use case from the paper's
// conclusion ("useful ... to determine optimized cache sizes, or to
// decide whether to integrate a cache partitioning mechanism").
//
// Given a matrix (.mtx path or a generated default), this example prices
// *every* L2 way split with one model run — no simulation, no hardware —
// and recommends the configuration to pass to FCC's
//   #pragma procedure scache_isolate_way L2=<N>
// It then verifies the recommendation on the simulated A64FX.
//
//   ./sector_tuning [path.mtx] [--threads N]
#include <iostream>

#include "core/spmvcache.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    const CliParser cli(argc, argv);
    const std::int64_t threads = cli.get_int("threads", 48);

    const CsrMatrix matrix =
        !cli.positionals().empty()
            ? read_matrix_market_file(cli.positionals().front())
            : gen::circuit(1 << 21, 4.0, 1 << 14, 0.08, 7);
    std::cout << "matrix: " << to_string(compute_stats(matrix)) << "\n"
              << "threads: " << threads << "\n\n";

    // Model every way split in one pass per partitioning mode.
    ModelOptions options;
    options.machine = a64fx_default();
    options.threads = threads;
    options.l2_way_options = {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14};
    options.predict_l1 = false;
    const ModelResult result = run_method_a(matrix, options);

    const double baseline = result.at(0).l2_misses;
    TextTable table({"L2 ways (sector 1)", "predicted L2 misses",
                     "vs no partitioning"});
    std::uint32_t best_ways = 0;
    double best_misses = baseline;
    for (const auto& config : result.configs) {
        const double diff =
            baseline > 0 ? 100.0 * (config.l2_misses - baseline) / baseline
                         : 0.0;
        table.add_row({config.l2_sector_ways == 0
                           ? "off"
                           : std::to_string(config.l2_sector_ways),
                       fmt_count(static_cast<unsigned long long>(
                           config.l2_misses)),
                       fmt(diff, 2) + " %"});
        if (config.l2_misses < best_misses) {
            best_misses = config.l2_misses;
            best_ways = config.l2_sector_ways;
        }
    }
    table.render(std::cout, "Model-based sector sweep (method A):");

    if (best_ways == 0) {
        std::cout << "\nRecommendation: leave the sector cache off for this "
                     "matrix.\n";
        return 0;
    }
    std::cout << "\nRecommendation:\n"
              << "  #pragma procedure scache_isolate_way L2=" << best_ways
              << "\n  #pragma procedure scache_isolate_assign a colidx\n"
              << "  (predicted "
              << fmt(100.0 * (baseline - best_misses) / baseline, 1)
              << " % fewer L2 misses)\n";

    // Verify on the simulated machine.
    ExperimentOptions experiment;
    experiment.machine = a64fx_default();
    experiment.threads = threads;
    const auto measured = run_sector_sweep(
        matrix, {SectorWays{0, 0}, SectorWays{best_ways, 0}}, experiment);
    std::cout << "\nsimulated check: " << measured[0].l2.fills() << " -> "
              << measured[1].l2.fills() << " L2 misses, speedup "
              << fmt(measured[1].speedup_over(measured[0]), 3) << "x\n";
    return 0;
}
