// Iterative-solver scenario: conjugate gradients on a 2D Poisson problem.
//
// This is the paper's motivating context (repeated SpMV with the same
// matrix: "the SpMV operation y <- y + Ax is performed repeatedly") and
// the benchmark setting of the related work (Lu et al., Breiter et al.).
// The example solves the system on the host, then asks the model what the
// sector cache would buy this matrix on an A64FX — demonstrating how the
// library answers tuning questions for a real application kernel.
//
//   ./cg_solver [--grid N] [--threads T]
#include <iostream>
#include <vector>

#include "core/spmvcache.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    const CliParser cli(argc, argv);
    const std::int64_t grid = cli.get_int("grid", 512);
    const std::int64_t threads = cli.get_int("threads", 48);

    std::cout << "2D Poisson problem on a " << grid << "x" << grid
              << " grid (5-point Laplacian)\n";
    const CsrMatrix a = gen::stencil_2d_5pt(grid, grid);
    const auto n = static_cast<std::size_t>(a.rows());
    std::cout << "matrix: " << to_string(compute_stats(a)) << "\n\n";

    // Manufactured solution: b = A * ones, so the solver must return ones.
    std::vector<double> ones(n, 1.0), b(n, 0.0), x(n, 0.0);
    spmv_csr_overwrite(a, ones, b);

    const Timer timer;
    const CgResult result = conjugate_gradient(a, b, x, 1e-8, 2000);
    const double seconds = timer.seconds();

    double max_err = 0.0;
    for (const double v : x) max_err = std::max(max_err, std::abs(v - 1.0));
    std::cout << "CG " << (result.converged ? "converged" : "did NOT converge")
              << " in " << result.iterations << " iterations ("
              << fmt(seconds, 2) << " s host time), residual "
              << result.residual_norm << ", max error " << max_err << "\n";

    // Each CG iteration performs one SpMV with the same matrix: exactly
    // the iterative setting where isolating a/colidx pays off. What would
    // the sector cache do on the A64FX?
    ExperimentOptions experiment;
    experiment.machine = a64fx_default();
    experiment.threads = threads;
    const auto sweep = run_sector_sweep(
        a, {SectorWays{0, 0}, SectorWays{4, 0}, SectorWays{5, 0}},
        experiment);

    TextTable table({"config", "L2 misses / SpMV", "Gflop/s",
                     "speedup"});
    for (const auto& mc : sweep) {
        table.add_row({mc.ways.l2 == 0 ? "sector cache off"
                                       : std::to_string(mc.ways.l2) +
                                             " L2 ways",
                       fmt_count(mc.l2.fills()), fmt(mc.timing.gflops, 1),
                       fmt(mc.speedup_over(sweep.front()), 3) + "x"});
    }
    table.render(std::cout, "\nSpMV inside CG on the simulated A64FX (" +
                                std::to_string(threads) + " threads):");

    const double per_iter_saving =
        sweep.front().timing.seconds - sweep.back().timing.seconds;
    std::cout << "\nprojected saving over the whole solve: "
              << fmt(per_iter_saving * static_cast<double>(result.iterations) *
                         1e3,
                     2)
              << " ms\n";
    return 0;
}
