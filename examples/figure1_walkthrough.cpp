// Walkthrough of Fig. 1 of the paper: the 4x4 matrix with 7 nonzeros,
// 16-byte cache lines, and the full derivation chain —
// sparsity pattern -> memory trace -> cache-line layout -> reuse
// distances -> miss counts for a chosen cache size.
#include <iostream>

#include "core/spmvcache.hpp"
#include "sparse/coo.hpp"

namespace {

const char* object_name(spmvcache::DataObject object) {
    using spmvcache::DataObject;
    switch (object) {
        case DataObject::X:
            return "x";
        case DataObject::Y:
            return "y";
        case DataObject::Values:
            return "a";
        case DataObject::ColIdx:
            return "col";
        case DataObject::RowPtr:
            return "row";
    }
    return "?";
}

}  // namespace

int main() {
    using namespace spmvcache;

    // Fig. 1a: the sparsity pattern.
    CooMatrix coo(4, 4);
    coo.add(0, 1, 1.0);
    coo.add(0, 2, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(2, 2, 1.0);
    coo.add(2, 3, 1.0);
    coo.add(3, 1, 1.0);
    coo.add(3, 3, 1.0);
    const CsrMatrix m = std::move(coo).to_csr();
    std::cout << "Fig. 1a — 4x4 sparse matrix, " << m.nnz()
              << " nonzeros\n\n";

    // Fig. 1c: cache-line layout with 16-byte lines.
    const SpmvLayout layout(m, 16);
    std::cout << "Fig. 1c — cache-line layout (16 B lines):\n";
    for (int o = 0; o < kDataObjectCount; ++o) {
        const auto object = static_cast<DataObject>(o);
        std::cout << "  " << object_name(object) << ": lines "
                  << layout.base(object) << ".."
                  << layout.base(object) + layout.lines_of(object) - 1
                  << "\n";
    }

    // Fig. 1b: the access pattern of CSR SpMV, derived from the pattern.
    std::cout << "\nFig. 1b — derived access pattern (object[line]):\n  ";
    const auto trace = collect_spmv_trace(m, layout, TraceConfig{1});
    for (const auto& ref : trace) {
        std::cout << object_name(ref.object) << "[" << ref.line << "]"
                  << (ref.is_write ? "w " : " ");
    }
    std::cout << "\n";

    // Reuse distances (§2.2) over two iterations: the second iteration
    // has no cold misses, exactly the situation the model targets.
    NaiveStackEngine engine;
    for (const auto& ref : trace) engine.access(ref.line);  // warm-up

    std::cout << "\nReuse distances in the second SpMV iteration:\n  ";
    std::uint64_t misses_4 = 0, misses_8 = 0;
    for (const auto& ref : trace) {
        const auto d = engine.access(ref.line);
        std::cout << object_name(ref.object) << "[" << ref.line << "]=";
        if (d == kInfiniteDistance)
            std::cout << "inf ";
        else
            std::cout << d << " ";
        if (d == kInfiniteDistance || d >= 4) ++misses_4;
        if (d == kInfiniteDistance || d >= 8) ++misses_8;
    }
    std::cout << "\n\nEq. (1): misses in a fully associative LRU cache\n"
              << "  capacity  4 lines: " << misses_4 << " / " << trace.size()
              << " references miss\n"
              << "  capacity  8 lines: " << misses_8 << " / " << trace.size()
              << " references miss\n"
              << "  capacity 13 lines (everything fits): 0 misses\n";
    return 0;
}
