// Quickstart: the 60-second tour of the library.
//
//   1. Get a sparse matrix (generated here; read_matrix_market_file works
//      the same way for a .mtx file).
//   2. Classify it against the A64FX L2 geometry (§3.1 of the paper).
//   3. Predict its L2 misses per sector configuration with the
//      reuse-distance model (method A).
//   4. "Run" it on the simulated A64FX and compare.
//
//   ./quickstart [path.mtx]
#include <iostream>

#include "core/spmvcache.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;

    // 1. A matrix: either the user's .mtx or a FEM-like default whose
    //    working set exceeds one 8 MiB L2 segment (class 2).
    const CsrMatrix matrix =
        argc > 1 ? read_matrix_market_file(argv[1])
                 : gen::block_fem(/*blocks=*/16384, /*block_size=*/8,
                                  /*blocks_per_row=*/6, /*block_span=*/256,
                                  /*seed=*/42);
    const MatrixStats stats = compute_stats(matrix);
    std::cout << "matrix: " << to_string(stats) << "\n";

    // 2. Classification: which §3.1 size class is this matrix in, with 5
    //    of the 16 L2 ways given to the streaming matrix data?
    const A64fxConfig machine = a64fx_default();
    const std::uint64_t sector0_bytes =
        ways_to_lines(machine.l2, machine.l2.ways - 5) *
        machine.l2.line_bytes;
    const MatrixClass cls =
        classify(stats, machine.l2.size_bytes, sector0_bytes);
    std::cout << "working-set class: " << to_string(cls)
              << "  (class (2) benefits most from the sector cache)\n\n";

    // 3. Model: price every interesting sector configuration in two
    //    stack-processing passes over the inferred memory trace.
    ModelOptions model_options;
    model_options.machine = machine;
    model_options.threads = 48;
    model_options.l2_way_options = {2, 3, 4, 5, 6};
    const ModelResult predicted = run_method_a(matrix, model_options);
    std::cout << "predicted L2 misses per iteration (method A):\n";
    for (const auto& config : predicted.configs) {
        std::cout << "  "
                  << (config.l2_sector_ways == 0
                          ? "sector cache off"
                          : std::to_string(config.l2_sector_ways) +
                                " L2 ways to matrix data")
                  << ": " << static_cast<std::uint64_t>(config.l2_misses)
                  << "\n";
    }

    // 4. Measurement on the simulated A64FX: warm-up + measured iteration.
    ExperimentOptions experiment;
    experiment.machine = machine;
    experiment.threads = 48;
    const auto measured = run_sector_sweep(
        matrix, {SectorWays{0, 0}, SectorWays{5, 0}}, experiment);
    std::cout << "\nsimulated A64FX, no sector cache:   "
              << measured[0].l2.fills() << " L2 misses, "
              << measured[0].timing.gflops << " Gflop/s\n";
    std::cout << "simulated A64FX, 5 L2 ways:         "
              << measured[1].l2.fills() << " L2 misses, "
              << measured[1].timing.gflops << " Gflop/s  ("
              << measured[1].speedup_over(measured[0]) << "x)\n";

    const double err = 100.0 *
                       (predicted.at(5).l2_misses -
                        static_cast<double>(measured[1].l2.fills())) /
                       static_cast<double>(measured[1].l2.fills());
    std::cout << "model vs simulator at 5 ways: " << err
              << " % error (paper: 2-3 %)\n";
    return 0;
}
