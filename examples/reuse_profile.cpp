// Locality profiling: prints the reuse-distance distribution of an SpMV
// execution per data object — the paper's §3.2 analysis as a tool. Shows
// at a glance why a/colidx are "non-temporal" (all reuse at infinite or
// huge distances) while x/y/rowptr reuse at short distances, and where
// the matrix sits relative to the A64FX cache capacities.
//
//   ./reuse_profile [path.mtx] [--threads N]
#include <iostream>

#include "core/spmvcache.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace spmvcache;
    const CliParser cli(argc, argv);
    const std::int64_t threads = cli.get_int("threads", 1);

    // Default: a matrix whose x vector (8 MiB) exceeds one L2 segment —
    // the hard regime where x misses dominate (§4.5.5).
    const CsrMatrix matrix =
        !cli.positionals().empty()
            ? read_matrix_market_file(cli.positionals().front())
            : gen::random_variable_rows(1 << 20, 1 << 20, 8.0, 1.5, 3);
    const MatrixStats stats = compute_stats(matrix);
    std::cout << "matrix: " << to_string(stats) << "\n\n";

    const A64fxConfig machine = a64fx_default();
    const SpmvLayout layout(matrix, machine.l2.line_bytes);
    const TraceConfig trace_cfg{threads};

    // One engine per data object... no: one shared engine (distances are
    // defined on the full interleaved trace), but histograms split by the
    // object of each reference.
    OlkenEngine engine(static_cast<std::size_t>(layout.total_lines()));
    ReuseHistogram histograms[kDataObjectCount];

    generate_spmv_trace(matrix, layout, trace_cfg, [&](const MemRef& ref) {
        engine.access(ref.line);  // warm-up iteration
    });
    generate_spmv_trace(matrix, layout, trace_cfg, [&](const MemRef& ref) {
        histograms[static_cast<int>(ref.object)].record(
            engine.access(ref.line));
    });

    static constexpr const char* kNames[] = {"x", "y", "a", "colidx",
                                             "rowptr"};
    const std::uint64_t l1_lines = machine.l1.lines();
    const std::uint64_t l2_lines = machine.l2.lines();

    TextTable table({"object", "references", "cold", "<= L1 (256 lines)",
                     "<= L2 (32768 lines)", "> L2"});
    for (int o = 0; o < kDataObjectCount; ++o) {
        const auto& h = histograms[o];
        const double beyond_l1 = h.misses_at_least(l1_lines);
        const double beyond_l2 = h.misses_at_least(l2_lines);
        const auto total = static_cast<double>(h.total());
        table.add_row(
            {kNames[o], fmt_count(h.total()), fmt_count(h.cold()),
             fmt(100.0 * (total - beyond_l1) / total, 1) + " %",
             fmt(100.0 * (beyond_l1 - beyond_l2) / total, 1) + " %",
             fmt(100.0 * (beyond_l2 - static_cast<double>(h.cold())) / total,
                 1) +
                 " %"});
    }
    table.render(std::cout,
                 "Reuse-distance profile (2nd SpMV iteration, " +
                     std::to_string(threads) + " thread(s)):");

    // The headline quantity of §3.1: how much of the traffic is x?
    ModelOptions options;
    options.machine = machine;
    options.threads = threads;
    options.l2_way_options = {5};
    options.predict_l1 = false;
    const auto model = run_method_a(matrix, options);
    std::cout << "\nx share of predicted L2 miss traffic: "
              << fmt(100.0 * model.x_traffic_fraction, 1)
              << " %  (>= 50 % marks the paper's hard cases; worst case "
                 "95 %)\n";
    const std::uint64_t sector0 =
        ways_to_lines(machine.l2, machine.l2.ways - 5) *
        machine.l2.line_bytes;
    std::cout << "class with 5 L2 ways isolated: "
              << to_string(classify(stats, machine.l2.size_bytes, sector0))
              << "\n";
    return 0;
}
