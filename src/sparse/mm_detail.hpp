// Internal Matrix Market parsing primitives shared by the serial parser
// (matrix_market.cpp) and the chunked parallel parser (mm_parallel.cpp).
//
// Both front ends must agree bit-for-bit: same accepted grammar, same typed
// error codes and messages, same double parsing (std::from_chars over the
// identical byte range). Keeping the per-token and per-line logic in one
// header is what makes the parallel parser's differential test against the
// serial parser a real invariant instead of a coincidence.
//
// Not installed API — include only from sparse/*.cpp and tests.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "sparse/index_width.hpp"
#include "util/checked.hpp"
#include "util/fault.hpp"
#include "util/format.hpp"
#include "util/status.hpp"

namespace spmvcache::mm_detail {

/// Banner facts that change entry-line interpretation.
struct MmHeader {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

/// The size line: declared dimensions and stored (file) nnz.
struct MmSize {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
};

/// One validated entry line, 1-based indices as written in the file.
struct MmEntry {
    std::int64_t row = 0;
    std::int64_t col = 0;
    double value = 1.0;
};

inline const char* skip_ws(const char* p, const char* end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    return p;
}

inline bool rest_is_blank(const char* p, const char* end) {
    return skip_ws(p, end) == end;
}

inline bool parse_i64(const char*& p, const char* end, std::int64_t& out) {
    p = skip_ws(p, end);
    if (p < end && *p == '+') ++p;  // from_chars rejects a leading '+'
    const auto [ptr, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || ptr == p) return false;
    p = ptr;
    return true;
}

inline bool parse_f64(const char*& p, const char* end, double& out) {
    p = skip_ws(p, end);
    if (p < end && *p == '+') ++p;
    const auto [ptr, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || ptr == p) return false;
    p = ptr;
    return true;
}

inline bool is_comment_or_blank(std::string_view line) {
    const char* p = skip_ws(line.data(), line.data() + line.size());
    return p == line.data() + line.size() || *p == '%';
}

[[nodiscard]] inline Result<MmHeader> parse_banner(std::string_view line,
                                                   std::int64_t line_no) {
    std::istringstream is{std::string(line)};
    std::string banner, object, format, field, symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    const auto bad = [line_no](std::string what) {
        return Error(ErrorCode::ParseError, std::move(what), line_no);
    };
    if (banner != "%%MatrixMarket") return bad("not a Matrix Market file");
    if (to_lower(object) != "matrix")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket object: " + object, line_no);
    if (to_lower(format) != "coordinate")
        return Error(ErrorCode::UnsupportedError,
                     "only coordinate format is supported", line_no);
    const std::string f = to_lower(field);
    if (f != "real" && f != "integer" && f != "pattern")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket field: " + field, line_no);
    const std::string s = to_lower(symmetry);
    if (s != "general" && s != "symmetric" && s != "skew-symmetric")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket symmetry: " + symmetry,
                     line_no);
    MmHeader h;
    h.pattern = (f == "pattern");
    h.symmetric = (s == "symmetric" || s == "skew-symmetric");
    h.skew = (s == "skew-symmetric");
    return h;
}

[[nodiscard]] inline Result<MmSize> parse_size_line(
    std::string_view line, std::int64_t line_no, const MmHeader& header,
    IndexWidthChoice width = IndexWidthChoice::W32) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.size_line"));
    MmSize size;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    if (!parse_i64(p, end, size.rows) || !parse_i64(p, end, size.cols) ||
        !parse_i64(p, end, size.nnz))
        return Error(ErrorCode::ParseError,
                     "malformed size line (expected 'rows cols nnz')",
                     line_no);
    // A fourth token means this is not a coordinate size line (array
    // format, or a corrupted file) — never accept trailing garbage here.
    if (!rest_is_blank(p, end))
        return Error(ErrorCode::ParseError,
                     "trailing garbage after size line", line_no);
    if (size.rows < 0 || size.cols < 0 || size.nnz < 0)
        return Error(ErrorCode::ValidationError,
                     "negative Matrix Market dimensions", line_no);
    if (header.symmetric && size.rows != size.cols)
        return Error(ErrorCode::ValidationError,
                     "symmetric file with non-square dimensions", line_no);
    // int64 overflow is diagnosed before any width policy: a file whose
    // rows*cols does not even fit int64 is broken at every index width.
    std::int64_t cells = 0;
    if (!checked_mul(size.rows, size.cols, cells))
        return Error(ErrorCode::OverflowError,
                     "rows*cols overflows int64", line_no);
    if (size.nnz > cells)
        return Error(ErrorCode::ValidationError,
                     "declared nnz " + std::to_string(size.nnz) +
                         " exceeds rows*cols = " + std::to_string(cells),
                     line_no);
    // The W32 bounds are enforced here, before any entry is read, only
    // when the caller *forces* the narrow layout; Auto resolves the width
    // after the size line (sparse/index_width.hpp) and W64 has no 32-bit
    // bounds at all.
    if (width == IndexWidthChoice::W32) {
        if (size.cols > std::numeric_limits<std::int32_t>::max())
            return Error(ErrorCode::UnsupportedError,
                         "cols exceed int32 (CSR layout stores 4-byte column "
                         "indices)",
                         line_no);
        if (header.symmetric &&
            size.rows > std::numeric_limits<std::int32_t>::max())
            return Error(ErrorCode::UnsupportedError,
                         "symmetric expansion needs rows to fit int32",
                         line_no);
        if (!width32_representable(size.rows, size.cols,
                                   header.symmetric ? 0 : size.nnz))
            return Error(ErrorCode::UnsupportedError,
                         "matrix does not fit the forced 32-bit index layout",
                         line_no);
    }
    std::int64_t logical = size.nnz;
    if (header.symmetric &&
        !checked_mul<std::int64_t>(size.nnz, 2, logical))
        return Error(ErrorCode::OverflowError,
                     "symmetric nnz expansion overflows int64", line_no);
    (void)logical;
    return size;
}

/// Parses and validates one non-comment entry line. Performs every
/// per-entry check except the cross-entry duplicate test (which needs
/// global state and stays with the caller). Checks run in the serial
/// parser's historical order so both parsers report the same first error.
[[nodiscard]] inline Result<MmEntry> parse_entry_line(std::string_view line,
                                                      std::int64_t line_no,
                                                      const MmHeader& header,
                                                      const MmSize& size,
                                                      bool strict) {
    MmEntry entry;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    if (!parse_i64(p, end, entry.row) || !parse_i64(p, end, entry.col))
        return Error(ErrorCode::ParseError,
                     "malformed entry line (expected 'row col[ value]')",
                     line_no);
    if (!header.pattern && !parse_f64(p, end, entry.value))
        return Error(ErrorCode::ParseError,
                     "missing or non-numeric value on entry line", line_no);
    if (strict && !rest_is_blank(p, end))
        return Error(ErrorCode::ParseError,
                     "trailing garbage after entry", line_no);
    if (entry.row < 1 || entry.row > size.rows || entry.col < 1 ||
        entry.col > size.cols)
        return Error(ErrorCode::ValidationError,
                     "index (" + std::to_string(entry.row) + ", " +
                         std::to_string(entry.col) + ") out of range for " +
                         std::to_string(size.rows) + "x" +
                         std::to_string(size.cols) + " matrix",
                     line_no);
    if (strict) {
        if (!std::isfinite(entry.value))
            return Error(ErrorCode::ValidationError,
                         "non-finite value on entry line", line_no);
        if (header.symmetric && entry.col > entry.row)
            return Error(ErrorCode::ValidationError,
                         "entry above the diagonal in a symmetric file",
                         line_no);
    }
    return entry;
}

/// Duplicate-detection key as used by the strict serial parser.
[[nodiscard]] inline std::int64_t entry_key(const MmEntry& entry,
                                            const MmSize& size) noexcept {
    return (entry.row - 1) * size.cols + (entry.col - 1);
}

}  // namespace spmvcache::mm_detail
