// Non-owning read-only view of a CSR matrix.
//
// The paper's pipeline (trace generation, reuse-distance replay, kernels,
// statistics, fingerprinting) only ever *reads* the three CSR arrays. A
// BasicCsrView carries spans over rowptr/colidx/values plus the
// dimensions, so those consumers no longer care who owns the bytes: an
// aligned_vector inside a BasicCsrMatrix, or a read-only mmap of a
// `.spmvc` binary cache file (sparse/binary_cache.hpp). The view mirrors
// the matrix's read API exactly and converts implicitly from
// `const BasicCsrMatrix<Idx>&`, so call sites holding a real matrix keep
// working unchanged. `CsrView` aliases the narrow default width;
// `CsrView64` the wide fallback (sparse/index_width.hpp).
//
// Lifetime: a view never keeps anything alive. Pair it with whatever owns
// the storage (BasicCsrMatrix, MappedCsr, LoadedMatrix) for any use that
// outlives the owner's scope.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Read-only, non-owning CSR matrix view (see file comment).
template <class Idx>
class BasicCsrView {
public:
    using value_type = double;
    using index_type = typename Idx::index_type;
    using offset_type = typename Idx::offset_type;
    using idx_tag = Idx;

    BasicCsrView() = default;

    [[nodiscard]] static constexpr IndexWidth index_width() noexcept {
        return Idx::width;
    }

    /// Views an owning matrix. Implicit on purpose: every consumer of the
    /// locality pipeline takes a view, and a BasicCsrMatrix is one.
    /* implicit */ BasicCsrView(const BasicCsrMatrix<Idx>& m) noexcept
        : rows_(m.rows()),
          cols_(m.cols()),
          rowptr_(m.rowptr()),
          colidx_(m.colidx()),
          values_(m.values()) {}

    /// Views raw arrays (the mmap path). Pre: rowptr.size() == rows + 1,
    /// colidx.size() == values.size() == rowptr.back().
    BasicCsrView(std::int64_t rows, std::int64_t cols,
                 std::span<const offset_type> rowptr,
                 std::span<const index_type> colidx,
                 std::span<const value_type> values) noexcept
        : rows_(rows),
          cols_(cols),
          rowptr_(rowptr),
          colidx_(colidx),
          values_(values) {}

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return rowptr_.empty() ? 0
                               : static_cast<std::int64_t>(rowptr_.back());
    }

    [[nodiscard]] std::span<const offset_type> rowptr() const noexcept {
        return rowptr_;
    }
    [[nodiscard]] std::span<const index_type> colidx() const noexcept {
        return colidx_;
    }
    [[nodiscard]] std::span<const value_type> values() const noexcept {
        return values_;
    }

    /// Number of nonzeros in row r. Pre: 0 <= r < rows().
    [[nodiscard]] std::int64_t row_nnz(std::int64_t r) const {
        SPMV_EXPECTS(r >= 0 && r < rows_);
        return static_cast<std::int64_t>(
            rowptr_[static_cast<std::size_t>(r) + 1] -
            rowptr_[static_cast<std::size_t>(r)]);
    }

    /// Byte sizes of the individual arrays (§3.1 working-set terms).
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return values_.size() * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return colidx_.size() * sizeof(index_type);
    }
    [[nodiscard]] std::uint64_t rowptr_bytes() const noexcept {
        return rowptr_.size() * sizeof(offset_type);
    }
    [[nodiscard]] std::uint64_t x_bytes() const noexcept {
        return static_cast<std::uint64_t>(cols_) * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t y_bytes() const noexcept {
        return static_cast<std::uint64_t>(rows_) * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
        return values_bytes() + colidx_bytes() + rowptr_bytes() + x_bytes() +
               y_bytes();
    }

private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::span<const offset_type> rowptr_;
    std::span<const index_type> colidx_;
    std::span<const value_type> values_;
};

using CsrView = BasicCsrView<Idx32>;
using CsrView64 = BasicCsrView<Idx64>;

/// Structural invariant check shared by BasicCsrMatrix::check() and the
/// binary cache loader: monotone rowptr, indices in range, strictly
/// increasing columns per row. Never throws; reports the first violation.
template <class Idx>
[[nodiscard]] Status check_csr_view(const BasicCsrView<Idx>& m);

extern template Status check_csr_view<Idx32>(const CsrView&);
extern template Status check_csr_view<Idx64>(const CsrView64&);

}  // namespace spmvcache
