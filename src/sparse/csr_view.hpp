// Non-owning read-only view of a CSR matrix.
//
// The paper's pipeline (trace generation, reuse-distance replay, kernels,
// statistics, fingerprinting) only ever *reads* the three CSR arrays. A
// CsrView carries spans over rowptr/colidx/values plus the dimensions, so
// those consumers no longer care who owns the bytes: an aligned_vector
// inside a CsrMatrix, or a read-only mmap of a `.spmvc` binary cache file
// (sparse/binary_cache.hpp). The view mirrors CsrMatrix's read API exactly
// and converts implicitly from `const CsrMatrix&`, so call sites holding a
// real matrix keep working unchanged.
//
// Lifetime: a CsrView never keeps anything alive. Pair it with whatever
// owns the storage (CsrMatrix, MappedCsr, LoadedMatrix) for any use that
// outlives the owner's scope.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Read-only, non-owning CSR matrix view (see file comment).
class CsrView {
public:
    using value_type = CsrMatrix::value_type;
    using index_type = CsrMatrix::index_type;
    using offset_type = CsrMatrix::offset_type;

    CsrView() = default;

    /// Views an owning matrix. Implicit on purpose: every consumer of the
    /// locality pipeline takes a CsrView, and a CsrMatrix is one.
    /* implicit */ CsrView(const CsrMatrix& m) noexcept
        : rows_(m.rows()),
          cols_(m.cols()),
          rowptr_(m.rowptr()),
          colidx_(m.colidx()),
          values_(m.values()) {}

    /// Views raw arrays (the mmap path). Pre: rowptr.size() == rows + 1,
    /// colidx.size() == values.size() == rowptr.back().
    CsrView(std::int64_t rows, std::int64_t cols,
            std::span<const offset_type> rowptr,
            std::span<const index_type> colidx,
            std::span<const value_type> values) noexcept
        : rows_(rows),
          cols_(cols),
          rowptr_(rowptr),
          colidx_(colidx),
          values_(values) {}

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return rowptr_.empty() ? 0 : rowptr_.back();
    }

    [[nodiscard]] std::span<const offset_type> rowptr() const noexcept {
        return rowptr_;
    }
    [[nodiscard]] std::span<const index_type> colidx() const noexcept {
        return colidx_;
    }
    [[nodiscard]] std::span<const value_type> values() const noexcept {
        return values_;
    }

    /// Number of nonzeros in row r. Pre: 0 <= r < rows().
    [[nodiscard]] std::int64_t row_nnz(std::int64_t r) const {
        SPMV_EXPECTS(r >= 0 && r < rows_);
        return rowptr_[static_cast<std::size_t>(r) + 1] -
               rowptr_[static_cast<std::size_t>(r)];
    }

    /// Byte sizes of the individual arrays (§3.1 working-set terms).
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return values_.size() * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return colidx_.size() * sizeof(index_type);
    }
    [[nodiscard]] std::uint64_t rowptr_bytes() const noexcept {
        return rowptr_.size() * sizeof(offset_type);
    }
    [[nodiscard]] std::uint64_t x_bytes() const noexcept {
        return static_cast<std::uint64_t>(cols_) * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t y_bytes() const noexcept {
        return static_cast<std::uint64_t>(rows_) * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
        return values_bytes() + colidx_bytes() + rowptr_bytes() + x_bytes() +
               y_bytes();
    }

private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::span<const offset_type> rowptr_;
    std::span<const index_type> colidx_;
    std::span<const value_type> values_;
};

/// Structural invariant check shared by CsrMatrix::check() and the binary
/// cache loader: monotone rowptr, indices in range, strictly increasing
/// columns per row. Never throws; reports the first violation.
[[nodiscard]] Status check_csr_view(const CsrView& m);

}  // namespace spmvcache
