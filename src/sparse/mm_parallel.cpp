#include "sparse/mm_parallel.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/mm_detail.hpp"
#include "sync/thread_pool.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace spmvcache {

namespace {

using mm_detail::MmEntry;
using mm_detail::MmHeader;
using mm_detail::MmSize;

/// Line iterator over an in-memory buffer with the serial LineReader's
/// exact semantics: '\n' delimits lines, a non-empty trailing fragment
/// without '\n' is a line, and any line longer than max_line_bytes is a
/// ParseError attributed to that (not-yet-counted) line.
class BufLineCursor {
public:
    BufLineCursor(std::string_view text, std::size_t max_line_bytes)
        : text_(text), max_line_bytes_(max_line_bytes) {}

    /// true = a line is available via view(); false = clean end of input.
    [[nodiscard]] Result<bool> next() {
        if (pos_ >= text_.size()) return false;
        const char* begin = text_.data() + pos_;
        const char* nl = static_cast<const char*>(
            std::memchr(begin, '\n', text_.size() - pos_));
        const std::size_t len =
            nl != nullptr ? static_cast<std::size_t>(nl - begin)
                          : text_.size() - pos_;
        if (len > max_line_bytes_)
            return Error(ErrorCode::ParseError,
                         "line exceeds maximum length of " +
                             std::to_string(max_line_bytes_) + " bytes",
                         line_no_ + 1);
        ++line_no_;
        view_ = std::string_view(begin, len);
        pos_ += len + (nl != nullptr ? 1 : 0);
        return true;
    }

    [[nodiscard]] std::string_view view() const noexcept { return view_; }
    [[nodiscard]] std::int64_t line_no() const noexcept { return line_no_; }
    /// Byte offset of the first unread character.
    [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

private:
    std::string_view text_;
    std::size_t max_line_bytes_;
    std::size_t pos_ = 0;
    std::string_view view_;
    std::int64_t line_no_ = 0;
};

/// What one chunk worker hands to the merge: validated entries in file
/// order with their chunk-relative (1-based) line numbers, the chunk's
/// total line count, and the first error if parsing stopped early. Line
/// numbers are rebased to absolute during the merge via the prefix sum of
/// earlier chunks' line counts.
struct ChunkResult {
    std::vector<MmEntry> entries;
    std::vector<std::int64_t> entry_lines;
    std::int64_t lines = 0;
    std::optional<Error> error;  ///< .line is chunk-relative
};

/// Parses one chunk of the entry region. Stops at the first error; lines
/// after it stay uncounted, which is safe because an error either aborts
/// the whole parse (so later lines are never needed) or falls beyond the
/// declared final entry (where the merge needs only the error's own line).
ChunkResult parse_chunk(std::string_view chunk, const MmHeader& header,
                        const MmSize& size, const MmReadOptions& base) {
    ChunkResult out;
    if (Status s = fault::maybe_fail("mm.parallel"); !s.ok()) {
        Error e = std::move(s).to_error();
        e.line = 1;
        out.error = std::move(e);
        return out;
    }
    BufLineCursor cursor(chunk, base.max_line_bytes);
    // Rough guess: a minimal entry line ("1 1\n") is four bytes.
    out.entries.reserve(chunk.size() / 8 + 1);
    out.entry_lines.reserve(chunk.size() / 8 + 1);
    for (;;) {
        Result<bool> have_line = cursor.next();
        if (!have_line.ok()) {
            out.lines = cursor.line_no();
            out.error = std::move(have_line).to_error();
            return out;
        }
        if (!have_line.value()) break;
        if (mm_detail::is_comment_or_blank(cursor.view())) continue;
        Result<MmEntry> entry = mm_detail::parse_entry_line(
            cursor.view(), cursor.line_no(), header, size, base.strict);
        if (!entry.ok()) {
            out.lines = cursor.line_no();
            out.error = std::move(entry).to_error();
            return out;
        }
        out.entries.push_back(entry.value());
        out.entry_lines.push_back(cursor.line_no());
    }
    out.lines = cursor.line_no();
    return out;
}

/// Splits the tail of `text` from `begin` into at most `want` chunks whose
/// boundaries fall just past a '\n', so no line straddles two chunks.
std::vector<std::string_view> split_chunks(std::string_view text,
                                           std::size_t begin,
                                           std::size_t want) {
    std::vector<std::string_view> chunks;
    const std::size_t total = text.size() - begin;
    if (total == 0 || want == 0) return chunks;
    std::size_t pos = begin;
    for (std::size_t i = 0; i + 1 < want && pos < text.size(); ++i) {
        const std::size_t nominal_end = begin + (total * (i + 1)) / want;
        if (nominal_end <= pos) continue;
        // Extend to just past the next newline so no line is split.
        const char* nl = static_cast<const char*>(
            std::memchr(text.data() + nominal_end - 1, '\n',
                        text.size() - nominal_end + 1));
        if (nl == nullptr) break;  // rest is one unterminated line
        const std::size_t chunk_end =
            static_cast<std::size_t>(nl - text.data()) + 1;
        if (chunk_end <= pos) continue;
        chunks.push_back(text.substr(pos, chunk_end - pos));
        pos = chunk_end;
    }
    if (pos < text.size()) chunks.push_back(text.substr(pos));
    return chunks;
}

[[nodiscard]] Result<AnyCsrMatrix> parallel_impl(
    std::string_view text, const MmParallelOptions& options,
    IndexWidthChoice width) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.header"));
    BufLineCursor cursor(text, options.base.max_line_bytes);

    SPMV_ASSIGN_OR_RETURN(bool have_banner, cursor.next());
    if (!have_banner)
        return Error(ErrorCode::ParseError, "empty Matrix Market stream", 1);
    SPMV_ASSIGN_OR_RETURN(
        const MmHeader header,
        mm_detail::parse_banner(cursor.view(), cursor.line_no()));
    for (;;) {
        SPMV_ASSIGN_OR_RETURN(bool have_line, cursor.next());
        if (!have_line)
            return Error(ErrorCode::ParseError, "missing size line",
                         cursor.line_no() + 1);
        if (!mm_detail::is_comment_or_blank(cursor.view())) break;
    }
    SPMV_ASSIGN_OR_RETURN(
        const MmSize size,
        mm_detail::parse_size_line(cursor.view(), cursor.line_no(), header,
                                   width));

    const std::int64_t header_lines = cursor.line_no();
    const std::size_t entry_begin = cursor.pos();

    const std::size_t jobs = std::max<std::size_t>(
        options.jobs != 0 ? options.jobs : default_host_jobs(), 1);
    const std::size_t region = text.size() - entry_begin;
    const std::size_t per_chunk =
        std::max<std::size_t>(options.min_chunk_bytes, 1);
    std::size_t want = region / per_chunk + (region % per_chunk != 0 ? 1 : 0);
    want = std::clamp<std::size_t>(want, 1, 4 * jobs);

    const std::vector<std::string_view> chunks =
        split_chunks(text, entry_begin, want);
    std::vector<ChunkResult> results(chunks.size());
    if (chunks.size() <= 1 || jobs <= 1) {
        for (std::size_t i = 0; i < chunks.size(); ++i)
            results[i] = parse_chunk(chunks[i], header, size, options.base);
    } else {
        ThreadPool pool(std::min(jobs, chunks.size()));
        pool.parallel_for(chunks.size(), [&](std::size_t i) {
            results[i] = parse_chunk(chunks[i], header, size, options.base);
        });
    }

    // Deterministic merge in file order. The absolute line of
    // chunk-relative line r in chunk k is header_lines + sum of the line
    // counts of chunks 0..k-1 + r, so errors and duplicates report exactly
    // the serial reader's line numbers.
    CooMatrix coo(size.rows, size.cols);
    std::int64_t logical_nnz = size.nnz;
    if (header.symmetric)
        SPMV_EXPECT(checked_mul<std::int64_t>(2, size.nnz, logical_nnz));
    coo.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(logical_nnz, std::int64_t{1} << 24)));

    std::unordered_set<std::int64_t> seen_keys;
    if (options.base.strict)
        seen_keys.reserve(static_cast<std::size_t>(
            std::min<std::int64_t>(size.nnz, std::int64_t{1} << 24)));

    std::int64_t seen = 0;
    std::int64_t line_base = header_lines;
    bool done = false;  // lenient mode: all nnz entries collected
    for (const ChunkResult& chunk : results) {
        for (std::size_t i = 0; i < chunk.entries.size(); ++i) {
            const MmEntry& entry = chunk.entries[i];
            const std::int64_t abs_line = line_base + chunk.entry_lines[i];
            if (seen == size.nnz) {
                // The serial reader stops consuming entries here: lenient
                // mode ignores the rest of the input, strict mode rejects
                // the first non-comment line after the declared final
                // entry.
                if (options.base.strict)
                    return Error(ErrorCode::ParseError,
                                 "data after the declared final entry",
                                 abs_line);
                done = true;
                break;
            }
            if (options.base.strict &&
                !seen_keys.insert(mm_detail::entry_key(entry, size)).second)
                return Error(ErrorCode::ValidationError,
                             "duplicate entry (" + std::to_string(entry.row) +
                                 ", " + std::to_string(entry.col) + ")",
                             abs_line);
            coo.add(entry.row - 1, entry.col - 1, entry.value);
            if (header.symmetric && entry.row != entry.col)
                coo.add(entry.col - 1, entry.row - 1,
                        header.skew ? -entry.value : entry.value);
            ++seen;
        }
        if (done) break;
        if (chunk.error.has_value()) {
            const std::int64_t abs_line = line_base + chunk.error->line;
            if (seen == size.nnz) {
                // Past the final entry: the erroring line is data the size
                // line never declared. Lenient mode never reads this far.
                if (options.base.strict)
                    return Error(ErrorCode::ParseError,
                                 "data after the declared final entry",
                                 abs_line);
                done = true;
                break;
            }
            Error rebased = *chunk.error;
            rebased.line = abs_line;
            return rebased;
        }
        line_base += chunk.lines;
    }
    if (!done && seen != size.nnz)
        return Error(ErrorCode::ParseError,
                     "truncated: size line declares " +
                         std::to_string(size.nnz) + " entries, found " +
                         std::to_string(seen),
                     std::max<std::int64_t>(line_base, 1));
    return std::move(coo).to_csr_any(width);
}

/// Unwraps a forced-W32 parse into the narrow matrix the legacy entry
/// points return.
[[nodiscard]] Result<CsrMatrix> narrow_result(Result<AnyCsrMatrix> any) {
    if (!any.ok()) return std::move(any).to_error();
    AnyCsrMatrix m = std::move(any).value();
    SPMV_EXPECTS(m.as32() != nullptr);
    return std::move(m).take32();
}

/// Slurps the whole file; the chunked scanner needs random access.
[[nodiscard]] Result<std::string> read_file_text(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error(ErrorCode::ResourceError, "cannot open '" + path + "'");
    std::string text;
    in.seekg(0, std::ios::end);
    const auto end_pos = in.tellg();
    if (end_pos > 0) {
        text.resize(static_cast<std::size_t>(end_pos));
        in.seekg(0, std::ios::beg);
        in.read(text.data(), end_pos);
    }
    if (in.bad())
        return Error(ErrorCode::ResourceError,
                     "read failed for '" + path + "'");
    return text;
}

}  // namespace

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_parallel(
    std::string_view text, const MmParallelOptions& options) {
    return narrow_result(
        std::move(parallel_impl(text, options, IndexWidthChoice::W32))
            .wrap("reading Matrix Market stream"));
}

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_parallel_file(
    const std::string& path, const MmParallelOptions& options) {
    if (const Status s = fault::maybe_fail("mm.open"); !s.ok())
        return Status(s).wrap("reading '" + path + "'");
    SPMV_ASSIGN_OR_RETURN(const std::string text, read_file_text(path));
    return narrow_result(
        std::move(parallel_impl(text, options, IndexWidthChoice::W32))
            .wrap("reading '" + path + "'"));
}

[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_parallel_any(
    std::string_view text, const MmParallelOptions& options) {
    return std::move(parallel_impl(text, options, options.base.index_width))
        .wrap("reading Matrix Market stream");
}

[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_parallel_any_file(
    const std::string& path, const MmParallelOptions& options) {
    if (const Status s = fault::maybe_fail("mm.open"); !s.ok())
        return Status(s).wrap("reading '" + path + "'");
    SPMV_ASSIGN_OR_RETURN(const std::string text, read_file_text(path));
    return std::move(parallel_impl(text, options, options.base.index_width))
        .wrap("reading '" + path + "'");
}

}  // namespace spmvcache
