// Per-matrix statistics used throughout the paper's evaluation:
// mean (mu_K) and coefficient of variation (CV_K) of nonzeros per row are
// the quantities §4.5.2 filters on; the byte sizes feed the §3.1 working-set
// classification.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Summary statistics of a sparse matrix's pattern.
struct MatrixStats {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
    double mean_nnz_per_row = 0.0;     ///< mu_K in the paper
    double stddev_nnz_per_row = 0.0;   ///< sigma_K
    double cv_nnz_per_row = 0.0;       ///< CV_K = sigma_K / mu_K
    std::int64_t max_nnz_per_row = 0;
    std::int64_t empty_rows = 0;
    double mean_abs_column_distance = 0.0;  ///< avg |col - row| (bandedness)
    std::int64_t bandwidth = 0;             ///< max |col - row|
    std::uint64_t matrix_bytes = 0;    ///< a + colidx + rowptr
    std::uint64_t working_set_bytes = 0;  ///< matrix + x + y
    /// Physical index width of the matrix the stats were computed from
    /// (matrix_bytes/working_set_bytes already reflect it).
    IndexWidth index_width = IndexWidth::W32;
    /// True when the shape fits the W32 layout — reported by
    /// `spmvcache stats` so 64-bit entries that could narrow are visible.
    bool width32_ok = true;
};

/// Computes all statistics in a single pass. Pattern statistics are
/// width-independent; matrix_bytes/working_set_bytes reflect the physical
/// storage width of `m` (views of either width convert implicitly).
[[nodiscard]] MatrixStats compute_stats(const AnyCsrView& m);

/// One-line human-readable rendering ("1.5M x 1.5M, 52.7M nnz, mu=35.0 ...").
[[nodiscard]] std::string to_string(const MatrixStats& s);

}  // namespace spmvcache
