#include "sparse/binary_cache.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "util/fault.hpp"

namespace spmvcache {

namespace {

// The array sections are raw native-layout dumps so the mmap path is
// genuinely zero-copy; that ties the format to little-endian hosts (x86,
// A64FX). The header is serialized byte-by-byte and stays portable.
static_assert(std::endian::native == std::endian::little,
              ".spmvc caches store native little-endian arrays");

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a 64 over a byte range (header checksum — the header is small).
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = kFnvBasis) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/// Section checksum: FNV-1a folded 8 little-endian bytes at a time, with
/// the byte-wise variant over the tail. The sections are tens to hundreds
/// of megabytes, and the word-wise fold keeps validation at memory
/// bandwidth instead of a byte-serial multiply chain — it is what makes a
/// warm cache load an order of magnitude cheaper than a parse. Any
/// word-length prefix still influences every later state, so a single
/// flipped bit anywhere changes the digest.
std::uint64_t section_checksum(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = kFnvBasis ^ (bytes * kFnvPrime);
    std::size_t i = 0;
    for (; i + 8 <= bytes; i += 8) {
        std::uint64_t word = 0;
        std::memcpy(&word, p + i, 8);  // native little-endian (asserted)
        h ^= word;
        h *= kFnvPrime;
        h ^= h >> 29;
    }
    return fnv1a(p + i, bytes - i, h);
}

/// Little-endian field serializer over a growable byte buffer.
struct Writer {
    std::vector<char> buf;

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const char*>(data);
        buf.insert(buf.end(), p, p + n);
    }
};

/// Little-endian field reader with bounds checking.
struct Reader {
    const unsigned char* data;
    std::size_t size;
    std::size_t pos = 0;

    [[nodiscard]] bool have(std::size_t n) const { return size - pos >= n; }
    std::uint32_t u32() {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
                 << (8 * i);
        pos += 4;
        return v;
    }
    std::uint64_t u64() {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
                 << (8 * i);
        pos += 8;
        return v;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
};

std::uint64_t align_up(std::uint64_t v) {
    return (v + kSpmvcSectionAlign - 1) / kSpmvcSectionAlign *
           kSpmvcSectionAlign;
}

/// Fixed offset of the nnz field (see serialize_header): magic(8) +
/// version(4) + header_len(4) + rows(8) + cols(8).
constexpr std::uint64_t kHeaderNnzOffset = 32;
/// Longest source path stored verbatim; longer paths are truncated (the
/// path is informational — identity is the stamp + checksums).
constexpr std::size_t kMaxStoredPath = 2048;

struct SectionPlan {
    std::uint64_t rowptr_offset = 0, rowptr_bytes = 0;
    std::uint64_t colidx_offset = 0, colidx_bytes = 0;
    std::uint64_t values_offset = 0, values_bytes = 0;
    std::uint64_t total_bytes = 0;
};

template <class Idx>
SectionPlan plan_sections(const BasicCsrView<Idx>& m) {
    SectionPlan plan;
    plan.rowptr_bytes = m.rowptr_bytes();
    plan.colidx_bytes = m.colidx_bytes();
    plan.values_bytes = m.values_bytes();
    plan.rowptr_offset = kSpmvcSectionAlign;  // header owns page 0
    plan.colidx_offset = align_up(plan.rowptr_offset + plan.rowptr_bytes);
    plan.values_offset = align_up(plan.colidx_offset + plan.colidx_bytes);
    plan.total_bytes = align_up(plan.values_offset + plan.values_bytes);
    return plan;
}

/// Per-width element sizes as stored in (and validated against) the
/// header's width fields.
std::uint32_t rowptr_elem_bytes(IndexWidth w) noexcept {
    return w == IndexWidth::W32 ? sizeof(Idx32::offset_type)
                                : sizeof(Idx64::offset_type);
}
std::uint32_t colidx_elem_bytes(IndexWidth w) noexcept {
    return w == IndexWidth::W32 ? sizeof(Idx32::index_type)
                                : sizeof(Idx64::index_type);
}

/// Serializes the full header (everything on page 0, trailing checksum
/// included). The layout is part of the format: bump kSpmvcFormatVersion
/// on any change.
template <class Idx>
std::vector<char> serialize_header(const BasicCsrView<Idx>& m,
                                   const MatrixFingerprint& fingerprint,
                                   const MatrixStats& stats,
                                   const std::string& source_path,
                                   const SourceStamp& stamp,
                                   const SectionPlan& plan,
                                   std::uint64_t rowptr_checksum,
                                   std::uint64_t colidx_checksum,
                                   std::uint64_t values_checksum) {
    std::string path = source_path;
    if (path.size() > kMaxStoredPath) path.resize(kMaxStoredPath);

    Writer w;
    w.bytes(kSpmvcMagic, sizeof(kSpmvcMagic));
    w.u32(kSpmvcFormatVersion);
    // Total header length (checksum included); patched below once known.
    const std::size_t len_field = w.buf.size();
    w.u32(0);
    w.i64(m.rows());
    w.i64(m.cols());
    w.i64(m.nnz());
    w.u32(sizeof(typename Idx::offset_type));
    w.u32(sizeof(typename Idx::index_type));
    w.u32(sizeof(double));
    // Element-width tag (32 or 64): redundant with the per-array width
    // fields above, and validated against them on load, so a corrupted
    // width field cannot silently change the array layout.
    w.u32(static_cast<std::uint32_t>(Idx::width));
    w.u64(stamp.size);
    w.i64(stamp.mtime_ns);
    w.u64(plan.rowptr_offset);
    w.u64(plan.rowptr_bytes);
    w.u64(plan.colidx_offset);
    w.u64(plan.colidx_bytes);
    w.u64(plan.values_offset);
    w.u64(plan.values_bytes);
    w.u64(rowptr_checksum);
    w.u64(colidx_checksum);
    w.u64(values_checksum);
    w.i64(fingerprint.rows);
    w.i64(fingerprint.cols);
    w.i64(fingerprint.nnz);
    for (const std::uint64_t b : fingerprint.row_hist) w.u64(b);
    for (const std::uint64_t b : fingerprint.band_hist) w.u64(b);
    w.u64(fingerprint.hash_hi);
    w.u64(fingerprint.hash_lo);
    w.i64(stats.rows);
    w.i64(stats.cols);
    w.i64(stats.nnz);
    w.f64(stats.mean_nnz_per_row);
    w.f64(stats.stddev_nnz_per_row);
    w.f64(stats.cv_nnz_per_row);
    w.i64(stats.max_nnz_per_row);
    w.i64(stats.empty_rows);
    w.f64(stats.mean_abs_column_distance);
    w.i64(stats.bandwidth);
    w.u64(stats.matrix_bytes);
    w.u64(stats.working_set_bytes);
    w.u32(static_cast<std::uint32_t>(path.size()));
    w.bytes(path.data(), path.size());

    const std::uint32_t total =
        static_cast<std::uint32_t>(w.buf.size() + 8);  // + checksum field
    for (int i = 0; i < 4; ++i)
        w.buf[len_field + static_cast<std::size_t>(i)] =
            static_cast<char>((total >> (8 * i)) & 0xFF);
    w.u64(fnv1a(w.buf.data(), w.buf.size()));
    return w.buf;
}

const void* byte_ptr(const unsigned char* base, std::uint64_t offset) {
    return static_cast<const void*>(base + offset);
}

/// Decodes + validates the header region (steps: magic, version, length,
/// checksum, widths, internal consistency). `file_bytes` bounds every
/// read. On success `plan` and `info` are filled in.
[[nodiscard]] Status decode_header(const unsigned char* data,
                                   std::uint64_t file_bytes, SpmvcInfo& info,
                                   SectionPlan& plan) {
    const auto invalid = [](std::string what) {
        return Status(ErrorCode::ValidationError, std::move(what));
    };
    if (file_bytes < sizeof(kSpmvcMagic) ||
        std::memcmp(data, kSpmvcMagic, sizeof(kSpmvcMagic)) != 0)
        return Status(ErrorCode::ParseError,
                      "not a .spmvc file (bad magic)");
    Reader r{data, static_cast<std::size_t>(
                       std::min<std::uint64_t>(file_bytes, kSpmvcSectionAlign))};
    r.pos = sizeof(kSpmvcMagic);
    if (!r.have(8))
        return Status(ErrorCode::ParseError, "truncated .spmvc header");
    info.format_version = r.u32();
    if (info.format_version != kSpmvcFormatVersion)
        return Status(ErrorCode::UnsupportedError,
                      "unsupported .spmvc format version " +
                          std::to_string(info.format_version) +
                          " (this build reads version " +
                          std::to_string(kSpmvcFormatVersion) + ")");
    const std::uint32_t header_len = r.u32();
    if (header_len < 64 || header_len > kSpmvcSectionAlign)
        return invalid("header length field out of range");
    if (header_len > file_bytes)
        return Status(ErrorCode::ParseError,
                      "truncated .spmvc file (header cut short)");
    const std::uint64_t stored_checksum = fnv1a(data, header_len - 8);
    Reader tail{data, header_len};
    tail.pos = header_len - 8;
    if (tail.u64() != stored_checksum)
        return invalid("header checksum mismatch");

    r.size = header_len - 8;  // all further reads stay inside the payload
    if (!r.have(8 * 3 + 4 * 4 + 8 * 2 + 8 * 6 + 8 * 3))
        return Status(ErrorCode::ParseError, "truncated .spmvc header");
    info.rows = r.i64();
    info.cols = r.i64();
    info.nnz = r.i64();
    const std::uint32_t rowptr_width = r.u32();
    const std::uint32_t colidx_width = r.u32();
    const std::uint32_t value_width = r.u32();
    const std::uint32_t width_tag = r.u32();
    if (value_width != sizeof(double))
        return Status(ErrorCode::UnsupportedError,
                      "unsupported .spmvc array widths");
    if (rowptr_width == 4 && colidx_width == 4) {
        info.index_width = IndexWidth::W32;
    } else if (rowptr_width == 8 && colidx_width == 8) {
        info.index_width = IndexWidth::W64;
    } else if (rowptr_width == 8 && colidx_width == 4) {
        // The retired mixed layout (int64 rowptr + int32 colidx) of
        // format version 1; the version check already rejects those
        // files, but a doctored header must not slip through either.
        return Status(ErrorCode::UnsupportedError,
                      "legacy mixed-width .spmvc layout (re-ingest the "
                      "source to rebuild the cache)");
    } else {
        return Status(ErrorCode::UnsupportedError,
                      "unsupported .spmvc array widths");
    }
    if (width_tag != static_cast<std::uint32_t>(info.index_width))
        return invalid("element-width tag disagrees with array widths");
    info.source.size = r.u64();
    info.source.mtime_ns = r.i64();
    plan.rowptr_offset = r.u64();
    plan.rowptr_bytes = r.u64();
    plan.colidx_offset = r.u64();
    plan.colidx_bytes = r.u64();
    plan.values_offset = r.u64();
    plan.values_bytes = r.u64();
    const std::uint64_t rowptr_checksum = r.u64();
    const std::uint64_t colidx_checksum = r.u64();
    const std::uint64_t values_checksum = r.u64();
    (void)rowptr_checksum;
    (void)colidx_checksum;
    (void)values_checksum;

    const std::size_t fp_stats_bytes =
        8 * 3 + 8 * (kFingerprintRowBuckets + kFingerprintBandBuckets) +
        8 * 2 + 8 * 3 + 8 * 3 + 8 * 2 + 8 + 8 + 8 * 2;
    if (!r.have(fp_stats_bytes + 4))
        return Status(ErrorCode::ParseError, "truncated .spmvc header");
    info.fingerprint.rows = r.i64();
    info.fingerprint.cols = r.i64();
    info.fingerprint.nnz = r.i64();
    for (std::uint64_t& b : info.fingerprint.row_hist) b = r.u64();
    for (std::uint64_t& b : info.fingerprint.band_hist) b = r.u64();
    info.fingerprint.hash_hi = r.u64();
    info.fingerprint.hash_lo = r.u64();
    info.stats.rows = r.i64();
    info.stats.cols = r.i64();
    info.stats.nnz = r.i64();
    info.stats.mean_nnz_per_row = r.f64();
    info.stats.stddev_nnz_per_row = r.f64();
    info.stats.cv_nnz_per_row = r.f64();
    info.stats.max_nnz_per_row = r.i64();
    info.stats.empty_rows = r.i64();
    info.stats.mean_abs_column_distance = r.f64();
    info.stats.bandwidth = r.i64();
    info.stats.matrix_bytes = r.u64();
    info.stats.working_set_bytes = r.u64();
    const std::uint32_t path_len = r.u32();
    if (!r.have(path_len))
        return Status(ErrorCode::ParseError, "truncated .spmvc header");
    info.source_path.assign(
        static_cast<const char*>(byte_ptr(data, r.pos)), path_len);
    r.pos += path_len;
    info.file_bytes = file_bytes;

    // Internal consistency: the dimensions, the section geometry and the
    // fingerprint must agree before any array bytes are trusted.
    if (info.rows < 0 || info.cols < 0 || info.nnz < 0)
        return invalid("negative dimensions in .spmvc header");
    if (plan.rowptr_bytes != (static_cast<std::uint64_t>(info.rows) + 1) *
                                 rowptr_elem_bytes(info.index_width))
        return invalid("rowptr section length disagrees with rows");
    if (plan.colidx_bytes != static_cast<std::uint64_t>(info.nnz) *
                                 colidx_elem_bytes(info.index_width))
        return invalid("colidx section length disagrees with nnz");
    if (plan.values_bytes !=
        static_cast<std::uint64_t>(info.nnz) * sizeof(double))
        return invalid("values section length disagrees with nnz");
    for (const std::uint64_t offset :
         {plan.rowptr_offset, plan.colidx_offset, plan.values_offset})
        if (offset % kSpmvcSectionAlign != 0)
            return invalid("misaligned section offset");
    if (plan.rowptr_offset < kSpmvcSectionAlign ||
        plan.colidx_offset < plan.rowptr_offset + plan.rowptr_bytes ||
        plan.values_offset < plan.colidx_offset + plan.colidx_bytes)
        return invalid("overlapping .spmvc sections");
    if (info.fingerprint.rows != info.rows ||
        info.fingerprint.cols != info.cols ||
        info.fingerprint.nnz != info.nnz)
        return invalid("fingerprint disagrees with .spmvc dimensions");
    return OkStatus();
}

/// Section checksums live at a fixed offset past the geometry block.
struct SectionChecksums {
    std::uint64_t rowptr = 0, colidx = 0, values = 0;
};

SectionChecksums read_section_checksums(const unsigned char* data) {
    Reader r{data, kSpmvcSectionAlign};
    r.pos = kHeaderNnzOffset + 8 + 4 * 4 + 8 * 2 + 8 * 6;
    SectionChecksums sums;
    sums.rowptr = r.u64();
    sums.colidx = r.u64();
    sums.values = r.u64();
    return sums;
}

}  // namespace

[[nodiscard]] Result<SourceStamp> stat_source(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0)
        return Error(ErrorCode::ResourceError,
                     "cannot stat '" + path + "'");
    SourceStamp stamp;
    stamp.size = static_cast<std::uint64_t>(st.st_size);
    stamp.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                         1000000000LL +
                     static_cast<std::int64_t>(st.st_mtim.tv_nsec);
    return stamp;
}

MappedCsr::MappedCsr(MappedCsr&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      length_(std::exchange(other.length_, 0)),
      view_(std::exchange(other.view_, AnyCsrView{})),
      info_(std::move(other.info_)) {}

MappedCsr& MappedCsr::operator=(MappedCsr&& other) noexcept {
    if (this != &other) {
        if (base_ != nullptr) ::munmap(base_, length_);
        base_ = std::exchange(other.base_, nullptr);
        length_ = std::exchange(other.length_, 0);
        view_ = std::exchange(other.view_, AnyCsrView{});
        info_ = std::move(other.info_);
    }
    return *this;
}

MappedCsr::~MappedCsr() {
    if (base_ != nullptr) ::munmap(base_, length_);
}

namespace {

template <class Idx>
[[nodiscard]] Status write_binary_cache_impl(
    const std::string& cache_path, const BasicCsrView<Idx>& m,
    const MatrixFingerprint& fingerprint, const MatrixStats& stats,
    const std::string& source_path, const SourceStamp& stamp) {
    const SectionPlan plan = plan_sections(m);
    const std::uint64_t rowptr_checksum =
        section_checksum(m.rowptr().data(), plan.rowptr_bytes);
    const std::uint64_t colidx_checksum =
        section_checksum(m.colidx().data(), plan.colidx_bytes);
    const std::uint64_t values_checksum =
        section_checksum(m.values().data(), plan.values_bytes);
    const std::vector<char> header = serialize_header(
        m, fingerprint, stats, source_path, stamp, plan, rowptr_checksum,
        colidx_checksum, values_checksum);
    SPMV_EXPECTS(header.size() <= kSpmvcSectionAlign);

    // Assemble under a temporary name, rename over the target: readers see
    // the old cache or the complete new one, never a half-written file.
    const std::string tmp_path = cache_path + ".tmp";
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Status(ErrorCode::ResourceError,
                      "cannot open '" + tmp_path + "' for writing");
    const auto pad_to = [&out](std::uint64_t target) {
        static constexpr char zeros[512] = {};
        auto pos = static_cast<std::uint64_t>(out.tellp());
        while (pos < target) {
            const std::uint64_t n =
                std::min<std::uint64_t>(target - pos, sizeof(zeros));
            out.write(zeros, static_cast<std::streamsize>(n));
            pos += n;
        }
    };
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    pad_to(plan.rowptr_offset);
    out.write(static_cast<const char*>(
                  static_cast<const void*>(m.rowptr().data())),
              static_cast<std::streamsize>(plan.rowptr_bytes));
    pad_to(plan.colidx_offset);
    out.write(static_cast<const char*>(
                  static_cast<const void*>(m.colidx().data())),
              static_cast<std::streamsize>(plan.colidx_bytes));
    pad_to(plan.values_offset);
    out.write(static_cast<const char*>(
                  static_cast<const void*>(m.values().data())),
              static_cast<std::streamsize>(plan.values_bytes));
    pad_to(plan.total_bytes);
    out.flush();
    const bool write_ok = static_cast<bool>(out);
    out.close();
    if (!write_ok) {
        std::error_code ec;
        std::filesystem::remove(tmp_path, ec);
        return Status(ErrorCode::ResourceError,
                      "write failed for '" + tmp_path + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, cache_path, ec);
    if (ec) {
        std::filesystem::remove(tmp_path, ec);
        return Status(ErrorCode::ResourceError,
                      "cannot rename cache into place at '" + cache_path +
                          "'");
    }
    return OkStatus();
}

}  // namespace

[[nodiscard]] Status write_binary_cache(const std::string& cache_path,
                                        const AnyCsrView& m,
                                        const MatrixFingerprint& fingerprint,
                                        const MatrixStats& stats,
                                        const std::string& source_path,
                                        const SourceStamp& stamp) {
    if (Status s = fault::maybe_fail("cache.write"); !s.ok())
        return std::move(s).wrap("writing cache '" + cache_path + "'");
    return m.visit([&](const auto& view) {
        return write_binary_cache_impl(cache_path, view, fingerprint, stats,
                                       source_path, stamp);
    });
}

[[nodiscard]] Result<MappedCsr> load_binary_cache(
    const std::string& cache_path, const SourceStamp* expected,
    IndexWidthChoice want) {
    if (Status s = fault::maybe_fail("cache.map"); !s.ok())
        return std::move(s).wrap("mapping cache '" + cache_path + "'");

    const int fd = ::open(cache_path.c_str(), O_RDONLY);
    if (fd < 0)
        return Error(ErrorCode::ResourceError,
                     "cannot open cache '" + cache_path + "'");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return Error(ErrorCode::ResourceError,
                     "cannot stat cache '" + cache_path + "'");
    }
    const auto file_bytes = static_cast<std::uint64_t>(st.st_size);
    if (file_bytes == 0) {
        ::close(fd);
        return Error(ErrorCode::ParseError, "empty .spmvc file");
    }
    void* base = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (base == MAP_FAILED)
        return Error(ErrorCode::ResourceError,
                     "mmap failed for cache '" + cache_path + "'");

    MappedCsr mapped;
    mapped.base_ = base;
    mapped.length_ = file_bytes;  // destructor now owns the munmap

    const auto* data = static_cast<const unsigned char*>(base);
    SectionPlan plan;
    if (Status s = decode_header(data, file_bytes, mapped.info_, plan);
        !s.ok())
        return std::move(s).wrap("loading cache '" + cache_path + "'");

    // A forced width treats the other-width entry like a miss: the caller
    // re-parses at the wanted width and rewrites the cache.
    if ((want == IndexWidthChoice::W32 &&
         mapped.info_.index_width != IndexWidth::W32) ||
        (want == IndexWidthChoice::W64 &&
         mapped.info_.index_width != IndexWidth::W64))
        return Error(ErrorCode::UnsupportedError,
                     "cache stores " +
                         std::string(to_string(mapped.info_.index_width)) +
                         "-bit indices but --index-width forces " +
                         std::string(to_string(want)))
            .wrap("loading cache '" + cache_path + "'");

    for (const auto& [offset, bytes, what] :
         {std::tuple{plan.rowptr_offset, plan.rowptr_bytes, "rowptr"},
          std::tuple{plan.colidx_offset, plan.colidx_bytes, "colidx"},
          std::tuple{plan.values_offset, plan.values_bytes, "values"}})
        if (offset > file_bytes || bytes > file_bytes - offset)
            return Error(ErrorCode::ParseError,
                         "truncated .spmvc file (" + std::string(what) +
                             " section extends past end of file)")
                .wrap("loading cache '" + cache_path + "'");

    if (expected != nullptr &&
        (mapped.info_.source.size != expected->size ||
         mapped.info_.source.mtime_ns != expected->mtime_ns))
        return Error(ErrorCode::CacheStale,
                     "source file changed since the cache was written "
                     "(cached size=" +
                         std::to_string(mapped.info_.source.size) +
                         ", live size=" + std::to_string(expected->size) +
                         ")")
            .wrap("loading cache '" + cache_path + "'");

    const SectionChecksums sums = read_section_checksums(data);
    if (section_checksum(byte_ptr(data, plan.rowptr_offset),
                         plan.rowptr_bytes) != sums.rowptr)
        return Error(ErrorCode::ValidationError,
                     "rowptr section checksum mismatch")
            .wrap("loading cache '" + cache_path + "'");
    if (section_checksum(byte_ptr(data, plan.colidx_offset),
                         plan.colidx_bytes) != sums.colidx)
        return Error(ErrorCode::ValidationError,
                     "colidx section checksum mismatch")
            .wrap("loading cache '" + cache_path + "'");
    if (section_checksum(byte_ptr(data, plan.values_offset),
                         plan.values_bytes) != sums.values)
        return Error(ErrorCode::ValidationError,
                     "values section checksum mismatch")
            .wrap("loading cache '" + cache_path + "'");

    // Page-aligned offsets guarantee the alignment of every element type.
    const auto make_view = [&]<class Idx>(Idx) {
        return BasicCsrView<Idx>(
            mapped.info_.rows, mapped.info_.cols,
            std::span<const typename Idx::offset_type>(
                static_cast<const typename Idx::offset_type*>(
                    byte_ptr(data, plan.rowptr_offset)),
                static_cast<std::size_t>(mapped.info_.rows) + 1),
            std::span<const typename Idx::index_type>(
                static_cast<const typename Idx::index_type*>(
                    byte_ptr(data, plan.colidx_offset)),
                static_cast<std::size_t>(mapped.info_.nnz)),
            std::span<const double>(
                static_cast<const double*>(
                    byte_ptr(data, plan.values_offset)),
                static_cast<std::size_t>(mapped.info_.nnz)));
    };
    if (mapped.info_.index_width == IndexWidth::W32)
        mapped.view_ = AnyCsrView(make_view(Idx32{}));
    else
        mapped.view_ = AnyCsrView(make_view(Idx64{}));
    if (Status s = mapped.view_.visit(
            [](const auto& v) { return check_csr_view(v); });
        !s.ok())
        return std::move(s).wrap("loading cache '" + cache_path + "'");
    return mapped;
}

[[nodiscard]] Result<SpmvcInfo> inspect_binary_cache(
    const std::string& cache_path) {
    std::ifstream in(cache_path, std::ios::binary);
    if (!in)
        return Error(ErrorCode::ResourceError,
                     "cannot open cache '" + cache_path + "'");
    std::vector<char> head(kSpmvcSectionAlign);
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    const auto got = static_cast<std::uint64_t>(in.gcount());
    std::error_code ec;
    const auto file_bytes = static_cast<std::uint64_t>(
        std::filesystem::file_size(cache_path, ec));
    SpmvcInfo info;
    SectionPlan plan;
    if (Status s = decode_header(
            static_cast<const unsigned char*>(
                static_cast<const void*>(head.data())),
            got, info, plan);
        !s.ok())
        return std::move(s).wrap("inspecting cache '" + cache_path + "'");
    if (!ec) info.file_bytes = file_bytes;
    return info;
}

namespace spmvc_testing {

[[nodiscard]] Status fixup_header_checksum(const std::string& cache_path) {
    std::fstream io(cache_path,
                    std::ios::binary | std::ios::in | std::ios::out);
    if (!io)
        return Status(ErrorCode::ResourceError,
                      "cannot open '" + cache_path + "'");
    std::vector<char> head(kSpmvcSectionAlign);
    io.read(head.data(), static_cast<std::streamsize>(head.size()));
    const auto got = static_cast<std::size_t>(io.gcount());
    if (got < 16)
        return Status(ErrorCode::ParseError, "truncated .spmvc header");
    Reader r{static_cast<const unsigned char*>(
                 static_cast<const void*>(head.data())),
             got};
    r.pos = sizeof(kSpmvcMagic) + 4;
    const std::uint32_t header_len = r.u32();
    if (header_len < 64 || header_len > got)
        return Status(ErrorCode::ValidationError,
                      "header length field out of range");
    const std::uint64_t checksum = fnv1a(head.data(), header_len - 8);
    Writer w;
    w.u64(checksum);
    io.clear();
    io.seekp(static_cast<std::streamoff>(header_len - 8));
    io.write(w.buf.data(), static_cast<std::streamsize>(w.buf.size()));
    io.flush();
    if (!io)
        return Status(ErrorCode::ResourceError,
                      "rewrite failed for '" + cache_path + "'");
    return OkStatus();
}

std::uint64_t header_nnz_offset() noexcept { return kHeaderNnzOffset; }

}  // namespace spmvc_testing

}  // namespace spmvcache
