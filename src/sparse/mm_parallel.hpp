// Parallel Matrix Market parser: chunked line scanning over an in-memory
// copy of the file, fanned out on sync/thread_pool, merged deterministically.
//
// The contract is *bit identity with the serial parser*: for any input and
// any worker/chunk count, the parallel parser produces exactly the CSR
// arrays (and exactly the first typed error, same code/message/line) that
// try_read_matrix_market_file produces. The header (banner, comments, size
// line) is parsed serially; the entry region is split at '\n' boundaries
// into chunks, each chunk parses its lines into a private entry list using
// the shared per-line logic in mm_detail.hpp, and the merge walks chunks in
// file order — so entry order, duplicate detection order, truncation
// semantics and lenient-mode "stop after nnz entries" all replicate the
// serial reader. Feeds the binary cache (sparse/binary_cache.hpp) so cold
// ingest of large .mtx files is parse-bound on all cores instead of one.
#pragma once

#include <string>
#include <string_view>

#include "sparse/matrix_market.hpp"

namespace spmvcache {

/// Knobs for the parallel reader.
struct MmParallelOptions {
    /// Shared grammar/strictness knobs (identical meaning to the serial
    /// parser's options).
    MmReadOptions base;
    /// Worker threads for chunk parsing; 0 = default_host_jobs(). With one
    /// worker (or one chunk) everything runs inline on the caller.
    std::size_t jobs = 0;
    /// Minimum entry-region bytes per chunk; the chunk count is
    /// ceil(region / min_chunk_bytes) clamped to [1, 4 * jobs]. Tests set
    /// this tiny to force many chunks on small inputs.
    std::size_t min_chunk_bytes = std::size_t{1} << 20;
};

/// Parses a whole Matrix Market file already resident in memory.
/// Forces the W32 layout (return type is the narrow CsrMatrix).
/// Fault points: "mm.parallel" (hit once per chunk task).
[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_parallel(
    std::string_view text, const MmParallelOptions& options = {});

/// Reads the file into memory, then parses it with the chunked reader.
/// Forces the W32 layout (return type is the narrow CsrMatrix).
/// Fault points: "mm.open" (shared with the serial reader), "mm.parallel".
[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_parallel_file(
    const std::string& path, const MmParallelOptions& options = {});

/// Width-aware chunked parse: honours options.base.index_width and
/// materializes the CSR arrays directly at the resolved width.
[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_parallel_any(
    std::string_view text, const MmParallelOptions& options = {});

/// Width-aware chunked file read; the error chain names the file.
[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_parallel_any_file(
    const std::string& path, const MmParallelOptions& options = {});

}  // namespace spmvcache
