#include "sparse/sellcs.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace spmvcache {

template <class Idx>
BasicSellCSigmaMatrix<Idx>::BasicSellCSigmaMatrix(
    const BasicCsrView<Idx>& csr, std::int64_t chunk_height,
    std::int64_t sigma)
    : rows_(csr.rows()), cols_(csr.cols()), nnz_(csr.nnz()),
      c_(chunk_height), sigma_(sigma) {
    SPMV_EXPECTS(chunk_height >= 1);
    SPMV_EXPECTS(sigma >= 1);
    SPMV_EXPECTS(sigma == 1 || sigma % chunk_height == 0);

    const auto rowptr = csr.rowptr();
    const auto csr_colidx = csr.colidx();
    const auto csr_values = csr.values();

    // Sort rows by descending length within windows of sigma rows.
    perm_.resize(static_cast<std::size_t>(rows_));
    std::iota(perm_.begin(), perm_.end(), index_type{0});
    auto row_len = [&](index_type r) {
        return static_cast<std::int64_t>(
            rowptr[static_cast<std::size_t>(r) + 1] -
            rowptr[static_cast<std::size_t>(r)]);
    };
    for (std::int64_t window = 0; window < rows_; window += sigma_) {
        const auto begin = perm_.begin() + static_cast<std::ptrdiff_t>(window);
        const auto end =
            perm_.begin() +
            static_cast<std::ptrdiff_t>(std::min(window + sigma_, rows_));
        std::stable_sort(begin, end, [&](index_type a, index_type b) {
            return row_len(a) > row_len(b);
        });
    }

    row_lengths_.resize(static_cast<std::size_t>(rows_));
    for (std::int64_t p = 0; p < rows_; ++p)
        row_lengths_[static_cast<std::size_t>(p)] = static_cast<index_type>(
            row_len(perm_[static_cast<std::size_t>(p)]));

    // Chunk geometry: width of chunk k = longest row in it.
    const std::int64_t num_chunks = (rows_ + c_ - 1) / c_;
    chunk_width_.resize(static_cast<std::size_t>(num_chunks));
    chunk_offset_.resize(static_cast<std::size_t>(num_chunks) + 1);
    chunk_offset_[0] = 0;
    for (std::int64_t k = 0; k < num_chunks; ++k) {
        std::int64_t width = 0;
        for (std::int64_t i = 0; i < c_; ++i) {
            const std::int64_t p = k * c_ + i;
            if (p < rows_)
                width = std::max<std::int64_t>(
                    width, row_lengths_[static_cast<std::size_t>(p)]);
        }
        chunk_width_[static_cast<std::size_t>(k)] = width;
        chunk_offset_[static_cast<std::size_t>(k) + 1] =
            chunk_offset_[static_cast<std::size_t>(k)] + width * c_;
    }

    // Fill column-major chunks; padding uses column 0 and value 0 so the
    // kernel needs no branches.
    const auto total = static_cast<std::size_t>(chunk_offset_.back());
    values_.assign(total, 0.0);
    colidx_.assign(total, 0);
    for (std::int64_t k = 0; k < num_chunks; ++k) {
        const std::int64_t base = chunk_offset_[static_cast<std::size_t>(k)];
        const std::int64_t width = chunk_width_[static_cast<std::size_t>(k)];
        for (std::int64_t i = 0; i < c_; ++i) {
            const std::int64_t p = k * c_ + i;
            if (p >= rows_) continue;
            const auto row = perm_[static_cast<std::size_t>(p)];
            const auto begin = rowptr[static_cast<std::size_t>(row)];
            const auto len = row_lengths_[static_cast<std::size_t>(p)];
            for (std::int64_t j = 0; j < width; ++j) {
                const std::size_t slot =
                    static_cast<std::size_t>(base + j * c_ + i);
                if (j < len) {
                    values_[slot] =
                        csr_values[static_cast<std::size_t>(begin + j)];
                    colidx_[slot] =
                        csr_colidx[static_cast<std::size_t>(begin + j)];
                }
            }
        }
    }
}

template <class Idx>
std::int64_t BasicSellCSigmaMatrix<Idx>::chunk_width(std::int64_t k) const {
    SPMV_EXPECTS(k >= 0 && k < chunks());
    return chunk_width_[static_cast<std::size_t>(k)];
}

template <class Idx>
std::int64_t BasicSellCSigmaMatrix<Idx>::chunk_offset(std::int64_t k) const {
    SPMV_EXPECTS(k >= 0 && k < chunks());
    return chunk_offset_[static_cast<std::size_t>(k)];
}

template <class Idx>
void spmv_sell(const BasicSellCSigmaMatrix<Idx>& a, std::span<const double> x,
               std::span<double> y) {
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(a.cols()));
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(a.rows()));
    const auto values = a.values();
    const auto colidx = a.colidx();
    const auto perm = a.perm();
    const std::int64_t c = a.chunk_height();

    for (std::int64_t k = 0; k < a.chunks(); ++k) {
        const std::int64_t base = a.chunk_offset(k);
        const std::int64_t width = a.chunk_width(k);
        const std::int64_t rows_in_chunk =
            std::min(c, a.rows() - k * c);
        // Column-major accumulation: the i-loop vectorises over the chunk.
        for (std::int64_t i = 0; i < rows_in_chunk; ++i) {
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::size_t slot =
                    static_cast<std::size_t>(base + j * c + i);
                acc += values[slot] *
                       x[static_cast<std::size_t>(colidx[slot])];
            }
            y[static_cast<std::size_t>(
                perm[static_cast<std::size_t>(k * c + i)])] += acc;
        }
    }
}

template class BasicSellCSigmaMatrix<Idx32>;
template class BasicSellCSigmaMatrix<Idx64>;
template void spmv_sell<Idx32>(const BasicSellCSigmaMatrix<Idx32>&,
                               std::span<const double>, std::span<double>);
template void spmv_sell<Idx64>(const BasicSellCSigmaMatrix<Idx64>&,
                               std::span<const double>, std::span<double>);

}  // namespace spmvcache
