// SELL-C-sigma sparse matrix format (Kreutzer et al.), the format the
// paper's related work (Alappat et al.) found faster than CSR on the
// A64FX and names as future work for the sector cache ("it is worth
// investigating how the sector cache can be applied in the case of other
// sparse matrix storage formats").
//
// Rows are sorted by length within windows of sigma rows, grouped into
// chunks of C rows, and each chunk is stored column-major, padded to the
// length of its longest row — SIMD-friendly on 512-bit SVE (C = multiple
// of 8 doubles).
//
// The per-element arrays (colidx, perm, row_lengths) follow the CSR index
// width (Idx32/Idx64); the chunk geometry (offsets, widths) stays int64 at
// both widths since padding can push the stored element count past the
// logical nnz bound.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr_view.hpp"
#include "util/align.hpp"

namespace spmvcache {

/// Immutable SELL-C-sigma matrix, built from a CSR matrix.
template <class Idx>
class BasicSellCSigmaMatrix {
public:
    using index_type = typename Idx::index_type;
    using idx_tag = Idx;

    /// Converts `csr`. Pre: chunk_height >= 1; sigma >= 1 and a multiple
    /// of chunk_height (or 1 for no sorting).
    BasicSellCSigmaMatrix(const BasicCsrView<Idx>& csr,
                          std::int64_t chunk_height, std::int64_t sigma);

    [[nodiscard]] static constexpr IndexWidth index_width() noexcept {
        return Idx::width;
    }

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    /// Logical nonzeros (excluding padding).
    [[nodiscard]] std::int64_t nnz() const noexcept { return nnz_; }
    [[nodiscard]] std::int64_t chunk_height() const noexcept { return c_; }
    [[nodiscard]] std::int64_t sigma() const noexcept { return sigma_; }
    [[nodiscard]] std::int64_t chunks() const noexcept {
        return static_cast<std::int64_t>(chunk_width_.size());
    }

    /// Stored elements including zero padding.
    [[nodiscard]] std::int64_t padded_nnz() const noexcept {
        return static_cast<std::int64_t>(values_.size());
    }
    /// Padding overhead beta = padded / logical (1.0 = no padding).
    [[nodiscard]] double padding_factor() const noexcept {
        return nnz_ > 0 ? static_cast<double>(padded_nnz()) /
                              static_cast<double>(nnz_)
                        : 1.0;
    }

    /// Width (longest row) of chunk `k`. Pre: 0 <= k < chunks().
    [[nodiscard]] std::int64_t chunk_width(std::int64_t k) const;
    /// Offset of chunk k's first element in values()/colidx().
    [[nodiscard]] std::int64_t chunk_offset(std::int64_t k) const;

    /// Whole geometry arrays (for kernels that loop over chunk ranges):
    /// chunks()+1 offsets and chunks() widths.
    [[nodiscard]] std::span<const std::int64_t> chunk_offsets() const noexcept {
        return {chunk_offset_.data(), chunk_offset_.size()};
    }
    [[nodiscard]] std::span<const std::int64_t> chunk_widths() const noexcept {
        return {chunk_width_.data(), chunk_width_.size()};
    }

    /// Row permutation: perm()[sorted_position] = original row.
    [[nodiscard]] std::span<const index_type> perm() const noexcept {
        return {perm_.data(), perm_.size()};
    }
    [[nodiscard]] std::span<const double> values() const noexcept {
        return {values_.data(), values_.size()};
    }
    [[nodiscard]] std::span<const index_type> colidx() const noexcept {
        return {colidx_.data(), colidx_.size()};
    }
    /// Nonzeros (unpadded length) of sorted row position p.
    [[nodiscard]] std::span<const index_type> row_lengths() const noexcept {
        return {row_lengths_.data(), row_lengths_.size()};
    }

    /// Byte sizes for working-set classification.
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return values_.size() * sizeof(double);
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return colidx_.size() * sizeof(index_type);
    }

private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t nnz_ = 0;
    std::int64_t c_ = 1;
    std::int64_t sigma_ = 1;
    aligned_vector<double> values_;
    aligned_vector<index_type> colidx_;
    aligned_vector<std::int64_t> chunk_offset_;  ///< chunks()+1 entries
    std::vector<std::int64_t> chunk_width_;
    std::vector<index_type> perm_;
    std::vector<index_type> row_lengths_;
};

using SellCSigmaMatrix = BasicSellCSigmaMatrix<Idx32>;
using SellCSigmaMatrix64 = BasicSellCSigmaMatrix<Idx64>;

/// y <- y + A x with A in SELL-C-sigma form (results land at the original
/// row positions via the permutation).
/// Pre: x.size() == cols, y.size() == rows.
template <class Idx>
void spmv_sell(const BasicSellCSigmaMatrix<Idx>& a, std::span<const double> x,
               std::span<double> y);

extern template class BasicSellCSigmaMatrix<Idx32>;
extern template class BasicSellCSigmaMatrix<Idx64>;
extern template void spmv_sell<Idx32>(const BasicSellCSigmaMatrix<Idx32>&,
                                      std::span<const double>,
                                      std::span<double>);
extern template void spmv_sell<Idx64>(const BasicSellCSigmaMatrix<Idx64>&,
                                      std::span<const double>,
                                      std::span<double>);

}  // namespace spmvcache
