// Row partitioning of the CSR matrix across threads.
//
// Listing 1 of the paper uses the OpenMP static worksharing loop, i.e. a
// balanced-rows split; Alappat et al.'s results that Table 1 compares
// against additionally balance *nonzeros* per thread. Both policies are
// provided, and the trace generator, simulator and kernels all consume the
// same RowPartition so every component agrees which thread owns which rows.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Contiguous row range [begin, end) owned by one thread.
struct RowRange {
    std::int64_t begin = 0;
    std::int64_t end = 0;

    [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
    friend bool operator==(const RowRange&, const RowRange&) = default;
};

/// How rows are divided among threads.
enum class PartitionPolicy {
    BalancedRows,     ///< OpenMP static: equal row counts (Listing 1)
    BalancedNonzeros  ///< equal nonzero counts (Alappat et al.)
};

/// A full assignment of rows to `threads` contiguous ranges. The split is
/// width-agnostic (ranges are int64 row ids), so one RowPartition serves
/// either index width; views of both widths convert implicitly.
class RowPartition {
public:
    /// Pre: threads >= 1.
    RowPartition(const AnyCsrView& m, std::int64_t threads,
                 PartitionPolicy policy);

    [[nodiscard]] std::int64_t threads() const noexcept {
        return static_cast<std::int64_t>(ranges_.size());
    }
    [[nodiscard]] const RowRange& range(std::int64_t thread) const;
    [[nodiscard]] const std::vector<RowRange>& ranges() const noexcept {
        return ranges_;
    }

    /// Nonzeros owned by each thread (for imbalance metrics).
    [[nodiscard]] std::vector<std::int64_t> nnz_per_thread(
        const AnyCsrView& m) const;

    /// max(nnz per thread) / mean(nnz per thread); 1.0 = perfectly balanced.
    [[nodiscard]] double imbalance(const AnyCsrView& m) const;

private:
    std::vector<RowRange> ranges_;
};

}  // namespace spmvcache
