#include "sparse/fingerprint.hpp"

#include <bit>
#include <cstdlib>

namespace spmvcache {

namespace {

/// Bucket index for a non-negative count: 0 for 0, otherwise
/// 1 + floor(log2(count)) clamped to the last bucket.
template <std::size_t N>
std::size_t log2_bucket(std::uint64_t count) noexcept {
    if (count == 0) return 0;
    const auto bucket = static_cast<std::size_t>(std::bit_width(count));
    return bucket < N ? bucket : N - 1;
}

/// Running 128-bit mix: feed words one at a time, alternating lanes with
/// different odd multipliers so hi/lo decorrelate.
struct Mix128 {
    std::uint64_t hi = 0x9e3779b97f4a7c15ULL;
    std::uint64_t lo = 0xd1b54a32d192ed03ULL;

    void feed(std::uint64_t word) noexcept {
        hi = mix64(hi ^ word);
        lo = mix64(lo + ((word * 0x2545f4914f6cdd1dULL) | 1ULL));
    }
};

}  // namespace

std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

MatrixFingerprint fingerprint_matrix(const AnyCsrView& m) {
    MatrixFingerprint fp;
    fp.rows = m.rows();
    fp.cols = m.cols();
    fp.nnz = m.nnz();

    m.visit([&](const auto& v) {
        const auto rowptr = v.rowptr();
        const auto colidx = v.colidx();
        for (std::int64_t r = 0; r < fp.rows; ++r) {
            const std::int64_t row_nnz = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r) + 1] -
                rowptr[static_cast<std::size_t>(r)]);
            ++fp.row_hist[log2_bucket<kFingerprintRowBuckets>(
                static_cast<std::uint64_t>(row_nnz))];
            const auto begin = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r)]);
            const auto end = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r) + 1]);
            for (std::int64_t k = begin; k < end; ++k) {
                const std::int64_t distance =
                    std::llabs(static_cast<std::int64_t>(
                                   colidx[static_cast<std::size_t>(k)]) -
                               r);
                ++fp.band_hist[log2_bucket<kFingerprintBandBuckets>(
                    static_cast<std::uint64_t>(distance))];
            }
        }
    });

    Mix128 mix;
    mix.feed(static_cast<std::uint64_t>(fp.rows));
    mix.feed(static_cast<std::uint64_t>(fp.cols));
    mix.feed(static_cast<std::uint64_t>(fp.nnz));
    for (const std::uint64_t bucket : fp.row_hist) mix.feed(bucket);
    for (const std::uint64_t bucket : fp.band_hist) mix.feed(bucket);
    fp.hash_hi = mix.hi;
    fp.hash_lo = mix.lo;
    return fp;
}

std::string to_string(const MatrixFingerprint& fp) {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (const std::uint64_t word : {fp.hash_hi, fp.hash_lo})
        for (int shift = 60; shift >= 0; shift -= 4)
            out += kHex[(word >> shift) & 0xF];
    return out;
}

}  // namespace spmvcache
