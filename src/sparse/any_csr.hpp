// Width-erased CSR handles for pipeline boundaries.
//
// Inside a subsystem (parser, kernel engine, trace generator, model
// method) everything is templated on Idx32/Idx64 and pays nothing for the
// choice. At the seams — CLI subcommands, the matrix source, the binary
// cache loader — the width is a runtime fact, so these variants carry
// "a matrix at whichever width it resolved to" plus the width-agnostic
// accessors (dims, byte sizes) that the seams need without dispatching.
// Anything that touches the actual arrays goes through visit().
#pragma once

#include <cstdint>
#include <utility>
#include <variant>

#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Non-owning view of a CSR matrix at either index width. Same lifetime
/// rules as BasicCsrView: never keeps anything alive.
class AnyCsrView {
public:
    AnyCsrView() = default;
    /* implicit */ AnyCsrView(CsrView v) noexcept : v_(v) {}
    /* implicit */ AnyCsrView(CsrView64 v) noexcept : v_(v) {}
    /* implicit */ AnyCsrView(const CsrMatrix& m) noexcept : v_(CsrView(m)) {}
    /* implicit */ AnyCsrView(const CsrMatrix64& m) noexcept
        : v_(CsrView64(m)) {}

    [[nodiscard]] IndexWidth index_width() const noexcept {
        return v_.index() == 0 ? IndexWidth::W32 : IndexWidth::W64;
    }

    /// Invokes f with the concrete BasicCsrView<Idx>.
    template <class F>
    decltype(auto) visit(F&& f) const {
        return std::visit(std::forward<F>(f), v_);
    }

    [[nodiscard]] const CsrView* as32() const noexcept {
        return std::get_if<CsrView>(&v_);
    }
    [[nodiscard]] const CsrView64* as64() const noexcept {
        return std::get_if<CsrView64>(&v_);
    }

    [[nodiscard]] std::int64_t rows() const noexcept {
        return visit([](const auto& v) { return v.rows(); });
    }
    [[nodiscard]] std::int64_t cols() const noexcept {
        return visit([](const auto& v) { return v.cols(); });
    }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return visit([](const auto& v) { return v.nnz(); });
    }
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return visit([](const auto& v) { return v.values_bytes(); });
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return visit([](const auto& v) { return v.colidx_bytes(); });
    }
    [[nodiscard]] std::uint64_t rowptr_bytes() const noexcept {
        return visit([](const auto& v) { return v.rowptr_bytes(); });
    }
    [[nodiscard]] std::uint64_t x_bytes() const noexcept {
        return visit([](const auto& v) { return v.x_bytes(); });
    }
    [[nodiscard]] std::uint64_t y_bytes() const noexcept {
        return visit([](const auto& v) { return v.y_bytes(); });
    }
    [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
        return visit([](const auto& v) { return v.working_set_bytes(); });
    }

private:
    std::variant<CsrView, CsrView64> v_;
};

/// Owning CSR matrix at either index width.
class AnyCsrMatrix {
public:
    AnyCsrMatrix() = default;
    /* implicit */ AnyCsrMatrix(CsrMatrix m) noexcept : v_(std::move(m)) {}
    /* implicit */ AnyCsrMatrix(CsrMatrix64 m) noexcept : v_(std::move(m)) {}

    [[nodiscard]] IndexWidth index_width() const noexcept {
        return v_.index() == 0 ? IndexWidth::W32 : IndexWidth::W64;
    }

    template <class F>
    decltype(auto) visit(F&& f) const {
        return std::visit(std::forward<F>(f), v_);
    }

    [[nodiscard]] const CsrMatrix* as32() const noexcept {
        return std::get_if<CsrMatrix>(&v_);
    }
    [[nodiscard]] const CsrMatrix64* as64() const noexcept {
        return std::get_if<CsrMatrix64>(&v_);
    }

    /// Moves the narrow alternative out. Pre: index_width() == W32.
    [[nodiscard]] CsrMatrix take32() && {
        return std::get<CsrMatrix>(std::move(v_));
    }
    /// Moves the wide alternative out. Pre: index_width() == W64.
    [[nodiscard]] CsrMatrix64 take64() && {
        return std::get<CsrMatrix64>(std::move(v_));
    }

    /// A width-erased view of this matrix (valid while *this lives).
    [[nodiscard]] AnyCsrView view() const noexcept {
        return visit([](const auto& m) { return AnyCsrView(m); });
    }

    [[nodiscard]] std::int64_t rows() const noexcept {
        return visit([](const auto& m) { return m.rows(); });
    }
    [[nodiscard]] std::int64_t cols() const noexcept {
        return visit([](const auto& m) { return m.cols(); });
    }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return visit([](const auto& m) { return m.nnz(); });
    }

private:
    std::variant<CsrMatrix, CsrMatrix64> v_;
};

}  // namespace spmvcache
