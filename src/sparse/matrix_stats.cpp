#include "sparse/matrix_stats.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace spmvcache {

MatrixStats compute_stats(const AnyCsrView& m) {
    MatrixStats s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.nnz = m.nnz();
    s.matrix_bytes = m.values_bytes() + m.colidx_bytes() + m.rowptr_bytes();
    s.working_set_bytes = m.working_set_bytes();
    s.index_width = m.index_width();
    s.width32_ok = width32_representable(s.rows, s.cols, s.nnz);

    RunningMoments per_row;
    double abs_dist_sum = 0.0;
    m.visit([&](const auto& v) {
        const auto rowptr = v.rowptr();
        const auto colidx = v.colidx();
        for (std::int64_t r = 0; r < v.rows(); ++r) {
            const auto begin = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r)]);
            const auto end = static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r) + 1]);
            const std::int64_t k = end - begin;
            per_row.add(static_cast<double>(k));
            if (k == 0) ++s.empty_rows;
            if (k > s.max_nnz_per_row) s.max_nnz_per_row = k;
            for (std::int64_t i = begin; i < end; ++i) {
                const std::int64_t dist =
                    std::llabs(static_cast<std::int64_t>(
                                   colidx[static_cast<std::size_t>(i)]) -
                               r);
                abs_dist_sum += static_cast<double>(dist);
                if (dist > s.bandwidth) s.bandwidth = dist;
            }
        }
    });
    s.mean_nnz_per_row = per_row.mean();
    s.stddev_nnz_per_row = per_row.stddev();
    s.cv_nnz_per_row = per_row.cv();
    s.mean_abs_column_distance =
        s.nnz > 0 ? abs_dist_sum / static_cast<double>(s.nnz) : 0.0;
    return s;
}

std::string to_string(const MatrixStats& s) {
    std::ostringstream os;
    os << s.rows << " x " << s.cols << ", nnz=" << fmt_count(
              static_cast<unsigned long long>(s.nnz))
       << ", mu_K=" << fmt(s.mean_nnz_per_row, 2)
       << ", CV_K=" << fmt(s.cv_nnz_per_row, 2) << ", ws="
       << fmt_bytes(s.working_set_bytes);
    return os.str();
}

}  // namespace spmvcache
