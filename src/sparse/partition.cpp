#include "sparse/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmvcache {

RowPartition::RowPartition(const AnyCsrView& m, std::int64_t threads,
                           PartitionPolicy policy) {
    SPMV_EXPECTS(threads >= 1);
    const auto n = m.rows();
    ranges_.resize(static_cast<std::size_t>(threads));

    if (policy == PartitionPolicy::BalancedRows) {
        // OpenMP static schedule: ceil(n/threads) rows per thread.
        const std::int64_t chunk = (n + threads - 1) / threads;
        for (std::int64_t t = 0; t < threads; ++t) {
            const std::int64_t begin = std::min(t * chunk, n);
            const std::int64_t end = std::min(begin + chunk, n);
            ranges_[static_cast<std::size_t>(t)] = RowRange{begin, end};
        }
        return;
    }

    // BalancedNonzeros: walk rowptr, cutting when the running nonzero count
    // passes the next multiple of nnz/threads; a row straddling the target
    // goes to whichever side brings the cut closer to it.
    m.visit([&](const auto& v) {
        const auto rowptr = v.rowptr();
        const std::int64_t total = v.nnz();
        std::int64_t row = 0;
        for (std::int64_t t = 0; t < threads; ++t) {
            const std::int64_t target = (t + 1) * total / threads;
            const std::int64_t begin = row;
            while (row < n && static_cast<std::int64_t>(rowptr[
                                  static_cast<std::size_t>(row) + 1]) <=
                                  target)
                ++row;
            if (row < n) {
                const std::int64_t below =
                    target - static_cast<std::int64_t>(
                                 rowptr[static_cast<std::size_t>(row)]);
                const std::int64_t above =
                    static_cast<std::int64_t>(
                        rowptr[static_cast<std::size_t>(row) + 1]) -
                    target;
                if (above < below) ++row;  // straddling row joins this thread
            }
            if (t == threads - 1) row = n;
            ranges_[static_cast<std::size_t>(t)] = RowRange{begin, row};
        }
    });
    SPMV_ENSURES(ranges_.back().end == n);
}

const RowRange& RowPartition::range(std::int64_t thread) const {
    SPMV_EXPECTS(thread >= 0 && thread < threads());
    return ranges_[static_cast<std::size_t>(thread)];
}

std::vector<std::int64_t> RowPartition::nnz_per_thread(
    const AnyCsrView& m) const {
    std::vector<std::int64_t> out(ranges_.size());
    m.visit([&](const auto& v) {
        const auto rowptr = v.rowptr();
        for (std::size_t t = 0; t < ranges_.size(); ++t) {
            out[t] = static_cast<std::int64_t>(
                         rowptr[static_cast<std::size_t>(ranges_[t].end)]) -
                     static_cast<std::int64_t>(
                         rowptr[static_cast<std::size_t>(ranges_[t].begin)]);
        }
    });
    return out;
}

double RowPartition::imbalance(const AnyCsrView& m) const {
    const auto per_thread = nnz_per_thread(m);
    std::int64_t max = 0, sum = 0;
    for (auto k : per_thread) {
        max = std::max(max, k);
        sum += k;
    }
    if (sum == 0) return 1.0;
    const double mean =
        static_cast<double>(sum) / static_cast<double>(per_thread.size());
    return static_cast<double>(max) / mean;
}

}  // namespace spmvcache
