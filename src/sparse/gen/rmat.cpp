#include "sparse/gen/rmat.hpp"

#include <cmath>

#include "sparse/coo.hpp"
#include "util/error.hpp"
#include "util/prng.hpp"

namespace spmvcache::gen {

CsrMatrix rmat(std::int64_t scale, std::int64_t edges, std::uint64_t seed,
               RmatParams params) {
    SPMV_EXPECTS(scale >= 1 && scale <= 30);
    SPMV_EXPECTS(edges >= 1);
    const double total = params.a + params.b + params.c + params.d;
    SPMV_EXPECTS(std::abs(total - 1.0) < 1e-6);

    const std::int64_t n = std::int64_t{1} << scale;
    Xoshiro256 rng(seed);
    CooMatrix coo(n, n);
    coo.reserve(static_cast<std::size_t>(edges));

    for (std::int64_t e = 0; e < edges; ++e) {
        std::int64_t row = 0, col = 0;
        for (std::int64_t level = 0; level < scale; ++level) {
            const double p = rng.uniform();
            row <<= 1;
            col <<= 1;
            if (p < params.a) {
                // top-left quadrant
            } else if (p < params.a + params.b) {
                col |= 1;
            } else if (p < params.a + params.b + params.c) {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        coo.add(row, col, 1.0);
    }
    return std::move(coo).to_csr();
}

}  // namespace spmvcache::gen
