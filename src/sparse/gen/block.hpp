// Block-structured FEM-like generator: dense blocks along a banded profile,
// mimicking structural-mechanics matrices (shipsec1, pwtk, af_shell10) whose
// high mu_K and contiguous column runs make them the friendliest SpMV inputs.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// Block-banded matrix of `blocks` x `blocks` block rows with dense
/// `block_size` x `block_size` blocks: the diagonal block plus
/// `blocks_per_row - 1` blocks at random offsets within
/// [-block_span, +block_span] block columns.
/// Pre: blocks, block_size, blocks_per_row >= 1, block_span >= 0.
[[nodiscard]] CsrMatrix block_fem(std::int64_t blocks, std::int64_t block_size,
                                  std::int64_t blocks_per_row,
                                  std::int64_t block_span, std::uint64_t seed);

}  // namespace spmvcache::gen
