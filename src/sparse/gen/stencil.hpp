// Structured-grid (stencil) matrix generators: the best-behaved patterns in
// the collection (high spatial locality in x, low CV of nonzeros per row) —
// analogues of the PDE/FEM matrices that dominate SuiteSparse.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// 5-point Laplacian stencil on an nx-by-ny 2D grid (row-major numbering).
/// Diagonal value 4, off-diagonals -1. Pre: nx, ny >= 1.
[[nodiscard]] CsrMatrix stencil_2d_5pt(std::int64_t nx, std::int64_t ny);

/// 9-point stencil on an nx-by-ny 2D grid (full 3x3 neighborhood).
[[nodiscard]] CsrMatrix stencil_2d_9pt(std::int64_t nx, std::int64_t ny);

/// 7-point Laplacian on an nx*ny*nz 3D grid.
[[nodiscard]] CsrMatrix stencil_3d_7pt(std::int64_t nx, std::int64_t ny,
                                       std::int64_t nz);

/// 27-point stencil on an nx*ny*nz 3D grid (full 3x3x3 neighborhood).
[[nodiscard]] CsrMatrix stencil_3d_27pt(std::int64_t nx, std::int64_t ny,
                                        std::int64_t nz);

}  // namespace spmvcache::gen
