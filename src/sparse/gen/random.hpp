// Unstructured random matrix generators: the worst case for x-vector
// locality (the paper's §3.1 notes a full 256 B line can be transferred per
// nonzero in this regime, up to 95 % of traffic).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// Uniform random matrix: each row gets exactly `nnz_per_row` distinct
/// columns drawn uniformly from [0, cols). Pre: rows, cols >= 1,
/// 1 <= nnz_per_row <= cols.
[[nodiscard]] CsrMatrix random_uniform(std::int64_t rows, std::int64_t cols,
                                       std::int64_t nnz_per_row,
                                       std::uint64_t seed);

/// Random matrix with per-row nonzero counts drawn from a clamped normal
/// distribution N(mean, mean*cv) — used to produce matrices with a chosen
/// coefficient of variation CV_K, the quantity §4.5.2 identifies as hard
/// for method (B). Pre: rows, cols >= 1, mean >= 1, cv >= 0.
[[nodiscard]] CsrMatrix random_variable_rows(std::int64_t rows,
                                             std::int64_t cols, double mean,
                                             double cv, std::uint64_t seed);

}  // namespace spmvcache::gen
