// Recursive-matrix (R-MAT) generator: produces power-law degree
// distributions — the graph/mesh matrices (delaunay_n24, bundle_adj style)
// with low mu_K and high CV_K that the paper identifies as the hard cases
// for method (B).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// Parameters of the RMAT recursion; must sum to ~1.
struct RmatParams {
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    double d = 0.05;
};

/// Generates a square 2^scale x 2^scale RMAT matrix with approximately
/// `edges` distinct nonzeros (duplicates are combined, so the exact count
/// is slightly lower). Pre: 1 <= scale <= 30, edges >= 1.
[[nodiscard]] CsrMatrix rmat(std::int64_t scale, std::int64_t edges,
                             std::uint64_t seed, RmatParams params = {});

}  // namespace spmvcache::gen
