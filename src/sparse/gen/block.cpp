#include "sparse/gen/block.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace spmvcache::gen {

CsrMatrix block_fem(std::int64_t blocks, std::int64_t block_size,
                    std::int64_t blocks_per_row, std::int64_t block_span,
                    std::uint64_t seed) {
    SPMV_EXPECTS(blocks >= 1);
    SPMV_EXPECTS(block_size >= 1);
    SPMV_EXPECTS(blocks_per_row >= 1);
    SPMV_EXPECTS(block_span >= 0);
    Xoshiro256 rng(seed);

    const std::int64_t n = blocks * block_size;
    CsrBuilder builder(n, n,
                       static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(blocks_per_row) *
                           static_cast<std::size_t>(block_size));

    std::vector<std::int64_t> block_cols;
    for (std::int64_t br = 0; br < blocks; ++br) {
        // Choose the block columns once per block row so all rows of the
        // block share them (as in FEM matrices with node-level blocks).
        block_cols.clear();
        block_cols.push_back(br);
        const std::int64_t lo = std::max<std::int64_t>(0, br - block_span);
        const std::int64_t hi = std::min(blocks - 1, br + block_span);
        const std::int64_t avail = hi - lo + 1;
        const std::int64_t want = std::min(blocks_per_row, avail);
        std::int64_t attempts = 0;
        while (static_cast<std::int64_t>(block_cols.size()) < want &&
               attempts < 64 * want) {
            ++attempts;
            const std::int64_t bc =
                lo + static_cast<std::int64_t>(
                         rng.bounded(static_cast<std::uint64_t>(avail)));
            if (std::find(block_cols.begin(), block_cols.end(), bc) ==
                block_cols.end())
                block_cols.push_back(bc);
        }
        std::sort(block_cols.begin(), block_cols.end());

        for (std::int64_t lr = 0; lr < block_size; ++lr) {
            const std::int64_t row = br * block_size + lr;
            for (std::int64_t bc : block_cols) {
                for (std::int64_t lc = 0; lc < block_size; ++lc) {
                    const std::int64_t col = bc * block_size + lc;
                    const double v = (row == col) ? 4.0 : -0.5 + rng.uniform();
                    builder.push(row, static_cast<std::int32_t>(col), v);
                }
            }
        }
    }
    return std::move(builder).finish();
}

}  // namespace spmvcache::gen
