// Synthetic analogues of the 18 SuiteSparse matrices in Table 1 of the
// paper. Each analogue matches its namesake's dimensions, nonzero count and
// pattern family (FEM block, circuit, KKT/optimization, mesh, ...) at a
// configurable scale factor, so bench_table1 reproduces the *shape* of the
// paper's performance table without the proprietary files.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/gen/suite.hpp"

namespace spmvcache::gen {

/// Reference data from Table 1 of the paper, for side-by-side reporting.
struct Table1Reference {
    const char* name;
    double rows_millions;      ///< as printed in the paper
    double nnz_millions;
    double gflops_paper;       ///< "Ours" column
    double gflops_alappat;     ///< "[1]" column
};

/// The 18 reference rows in the paper's order.
[[nodiscard]] const std::vector<Table1Reference>& table1_reference();

/// Builds the analogue generator for each Table 1 matrix at `scale`
/// (dimensions multiplied by scale; nonzeros-per-row preserved).
/// Pre: 0 < scale <= 1.
[[nodiscard]] std::vector<MatrixSpec> table1_suite(double scale,
                                                   std::uint64_t seed = 42);

}  // namespace spmvcache::gen
