#include "sparse/gen/table1.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "util/error.hpp"

namespace spmvcache::gen {

const std::vector<Table1Reference>& table1_reference() {
    static const std::vector<Table1Reference> kRows = {
        {"pdb1HYS", 0.036, 4.3, 82.9, 40.2},
        {"Hamrle3", 1.447, 5.5, 15.9, 9.4},
        {"G3_circuit", 1.585, 7.7, 10.8, 11.2},
        {"shipsec1", 0.141, 7.8, 94.0, 16.7},
        {"pwtk", 0.218, 11.5, 87.3, 94.5},
        {"kkt_power", 2.063, 14.6, 8.6, 14.3},
        {"Si41Ge41H72", 0.186, 15.0, 71.6, 70.3},
        {"bundle_adj", 0.513, 20.2, 7.6, 66.6},
        {"msdoor", 0.416, 20.2, 50.6, 53.3},
        {"Fault_639", 0.639, 28.6, 75.7, 77.5},
        {"af_shell10", 1.508, 52.7, 94.0, 92.3},
        {"Serena", 1.391, 64.5, 65.6, 70.5},
        {"bone010", 0.987, 71.7, 110.8, 118.9},
        {"audikw_1", 0.944, 77.7, 45.1, 102.8},
        {"channel-500", 4.802, 85.4, 42.1, 47.0},
        {"nlpkkt120", 3.542, 96.8, 75.7, 77.2},
        {"delaunay_n24", 16.777, 100.6, 5.8, 22.7},
        {"ML_Geer", 1.504, 110.9, 117.8, 120.5},
    };
    return kRows;
}

namespace {

std::int64_t scaled(double millions, double scale) {
    return std::max<std::int64_t>(
        1024, static_cast<std::int64_t>(millions * 1e6 * scale));
}

/// Block-FEM analogue: rows and mean nnz/row matched via block geometry.
MatrixSpec fem_like(const char* name, double rows_m, double nnz_m,
                    std::int64_t block_size, double span_fraction,
                    double scale, std::uint64_t seed) {
    const std::int64_t rows = scaled(rows_m, scale);
    const std::int64_t blocks = std::max<std::int64_t>(2, rows / block_size);
    const double nnz_per_row = nnz_m / rows_m;
    const std::int64_t blocks_per_row = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(nnz_per_row / static_cast<double>(block_size))));
    // The span must be wide enough to host blocks_per_row distinct block
    // columns even at small scales.
    const std::int64_t span = std::min(
        blocks,
        std::max(blocks_per_row,
                 static_cast<std::int64_t>(static_cast<double>(blocks) *
                                           span_fraction)));
    return MatrixSpec{name, "fem",
                      [blocks, block_size, blocks_per_row, span, seed] {
                          return block_fem(blocks, block_size, blocks_per_row,
                                           span, seed);
                      }};
}

/// Circuit/KKT analogue: low mu_K with a tunable fraction of long-range
/// couplings controlling x-vector irregularity.
MatrixSpec circuit_like(const char* name, double rows_m, double nnz_m,
                        double global_fraction, double scale,
                        std::uint64_t seed) {
    const std::int64_t rows = scaled(rows_m, scale);
    const double extra = std::max(0.0, nnz_m / rows_m - 1.0);
    const std::int64_t local_span = std::max<std::int64_t>(8, rows / 128);
    return MatrixSpec{name, "circuit",
                      [rows, extra, local_span, global_fraction, seed] {
                          return circuit(rows, extra, local_span,
                                         global_fraction, seed);
                      }};
}

/// High-CV analogue for bundle adjustment (dense border rows).
MatrixSpec skewed_like(const char* name, double rows_m, double nnz_m,
                       double cv, double scale, std::uint64_t seed) {
    const std::int64_t rows = scaled(rows_m, scale);
    const double mean = nnz_m / rows_m;
    return MatrixSpec{name, "skewed", [rows, mean, cv, seed] {
                          return random_variable_rows(rows, rows, mean, cv,
                                                      seed);
                      }};
}

/// 3D-grid analogue (channel flow / nlpkkt): 27-point stencil with the
/// side chosen to match rows.
MatrixSpec grid3d_like(const char* name, double rows_m, double scale) {
    const std::int64_t rows = scaled(rows_m, scale);
    const auto side = std::max<std::int64_t>(
        4, static_cast<std::int64_t>(std::cbrt(static_cast<double>(rows))));
    return MatrixSpec{name, "grid3d", [side] {
                          return stencil_3d_27pt(side, side, side);
                      }};
}

}  // namespace

std::vector<MatrixSpec> table1_suite(double scale, std::uint64_t seed) {
    SPMV_EXPECTS(scale > 0.0 && scale <= 1.0);
    std::vector<MatrixSpec> suite;
    suite.reserve(18);
    // Pattern families chosen per the SuiteSparse domain of each namesake;
    // dimensions and nnz densities follow Table 1.
    suite.push_back(fem_like("pdb1HYS", 0.036, 4.3, 8, 0.02, scale, seed));
    suite.push_back(circuit_like("Hamrle3", 1.447, 5.5, 0.02, scale, seed));
    suite.push_back(circuit_like("G3_circuit", 1.585, 7.7, 0.01, scale, seed));
    suite.push_back(fem_like("shipsec1", 0.141, 7.8, 8, 0.02, scale, seed));
    suite.push_back(fem_like("pwtk", 0.218, 11.5, 8, 0.01, scale, seed));
    suite.push_back(circuit_like("kkt_power", 2.063, 14.6, 0.30, scale, seed));
    suite.push_back(
        fem_like("Si41Ge41H72", 0.186, 15.0, 8, 0.10, scale, seed));
    suite.push_back(skewed_like("bundle_adj", 0.513, 20.2, 4.0, scale, seed));
    suite.push_back(fem_like("msdoor", 0.416, 20.2, 8, 0.01, scale, seed));
    suite.push_back(fem_like("Fault_639", 0.639, 28.6, 8, 0.01, scale, seed));
    suite.push_back(
        fem_like("af_shell10", 1.508, 52.7, 8, 0.005, scale, seed));
    suite.push_back(fem_like("Serena", 1.391, 64.5, 8, 0.01, scale, seed));
    suite.push_back(fem_like("bone010", 0.987, 71.7, 8, 0.01, scale, seed));
    suite.push_back(fem_like("audikw_1", 0.944, 77.7, 8, 0.05, scale, seed));
    suite.push_back(grid3d_like("channel-500", 4.802, scale));
    suite.push_back(grid3d_like("nlpkkt120", 3.542, scale));
    suite.push_back(
        circuit_like("delaunay_n24", 16.777, 100.6, 0.02, scale, seed));
    suite.push_back(fem_like("ML_Geer", 1.504, 110.9, 8, 0.005, scale, seed));
    return suite;
}

}  // namespace spmvcache::gen
