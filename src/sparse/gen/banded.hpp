// Banded and diagonal-dominated matrix generators: circuit-simulation-like
// patterns (a dominant diagonal plus a few near-diagonal couplings) and
// classic banded FEM profiles.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// Banded matrix: each row has nonzeros at the diagonal and at offsets
/// sampled within [-half_bandwidth, +half_bandwidth], `nnz_per_row` total.
/// Deterministic for a given seed. Pre: n >= 1, nnz_per_row >= 1,
/// half_bandwidth >= 0.
[[nodiscard]] CsrMatrix banded(std::int64_t n, std::int64_t nnz_per_row,
                               std::int64_t half_bandwidth,
                               std::uint64_t seed);

/// Circuit-like pattern: every row has its diagonal; additional couplings
/// are mostly local (within `local_span`) with a `global_fraction` of
/// uniformly random long-range entries — the structure of Hamrle3 or
/// G3_circuit style matrices (low mu_K, moderate irregularity).
/// Pre: n >= 1, extra_per_row >= 0, 0 <= global_fraction <= 1.
[[nodiscard]] CsrMatrix circuit(std::int64_t n, double extra_per_row,
                                std::int64_t local_span,
                                double global_fraction, std::uint64_t seed);

}  // namespace spmvcache::gen
