// The synthetic matrix collection standing in for the paper's 490
// SuiteSparse matrices (see DESIGN.md, substitution table).
//
// The suite spans the two axes that drive the paper's results: working-set
// size relative to the 8 MiB L2 segment (the §3.1 classes) and x-vector
// locality (banded/stencil vs power-law/uniform-random). Matrices are
// produced lazily via factories so a collection run never holds more than
// a few of them in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvcache::gen {

/// A named, lazily-generated matrix.
struct MatrixSpec {
    std::string name;
    std::string family;
    std::function<CsrMatrix()> factory;
};

/// Options controlling suite size; defaults complete in minutes on one core.
struct SuiteOptions {
    /// Approximate number of matrices (rounded up to cover all families).
    std::int64_t count = 24;
    /// Multiplies all matrix dimensions (1.0 = the built-in sizes, whose
    /// working sets span ~2 MiB ... ~400 MiB around the A64FX L2 sizes).
    double scale = 1.0;
    /// Lower bound of the per-family size interpolation parameter in
    /// [0, 1): raising it drops the small end of each family (e.g. 0.4
    /// keeps only matrices large enough to stream through the 48-thread
    /// L2 segments, the paper's ">1M nonzeros" criterion).
    double t_min = 0.0;
    std::uint64_t seed = 42;
};

/// Builds the synthetic collection. Matrix names encode family and size,
/// e.g. "stencil2d5@512" for a 512x512-grid 5-point stencil.
[[nodiscard]] std::vector<MatrixSpec> synthetic_suite(
    const SuiteOptions& options = {});

/// Loads every *.mtx file in `directory` as a MatrixSpec (sorted by name),
/// so benches can run on real SuiteSparse data via --mm <dir>.
[[nodiscard]] std::vector<MatrixSpec> matrix_market_suite(
    const std::string& directory);

}  // namespace spmvcache::gen
