#include "sparse/gen/random.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace spmvcache::gen {

namespace {

/// Samples `k` distinct columns in [0, cols) into `cols_out`, sorted.
void sample_row(Xoshiro256& rng, std::int64_t cols, std::int64_t k,
                std::vector<std::int32_t>& cols_out) {
    cols_out.clear();
    // For small k relative to cols, rejection sampling is fast; fall back
    // to a partial Fisher-Yates only for dense rows.
    if (k * 4 < cols) {
        while (static_cast<std::int64_t>(cols_out.size()) < k) {
            const auto c = static_cast<std::int32_t>(
                rng.bounded(static_cast<std::uint64_t>(cols)));
            if (std::find(cols_out.begin(), cols_out.end(), c) ==
                cols_out.end())
                cols_out.push_back(c);
        }
    } else {
        std::vector<std::int32_t> all(static_cast<std::size_t>(cols));
        for (std::int64_t c = 0; c < cols; ++c)
            all[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(c);
        for (std::int64_t i = 0; i < k; ++i) {
            const auto j =
                i + static_cast<std::int64_t>(rng.bounded(
                        static_cast<std::uint64_t>(cols - i)));
            std::swap(all[static_cast<std::size_t>(i)],
                      all[static_cast<std::size_t>(j)]);
        }
        cols_out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
    }
    std::sort(cols_out.begin(), cols_out.end());
}

}  // namespace

CsrMatrix random_uniform(std::int64_t rows, std::int64_t cols,
                         std::int64_t nnz_per_row, std::uint64_t seed) {
    SPMV_EXPECTS(rows >= 1 && cols >= 1);
    SPMV_EXPECTS(nnz_per_row >= 1 && nnz_per_row <= cols);
    Xoshiro256 rng(seed);
    CsrBuilder builder(rows, cols,
                       static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(nnz_per_row));
    std::vector<std::int32_t> row_cols;
    for (std::int64_t r = 0; r < rows; ++r) {
        sample_row(rng, cols, nnz_per_row, row_cols);
        for (auto c : row_cols)
            builder.push(r, c, 1.0 + rng.uniform());
    }
    return std::move(builder).finish();
}

CsrMatrix random_variable_rows(std::int64_t rows, std::int64_t cols,
                               double mean, double cv, std::uint64_t seed) {
    SPMV_EXPECTS(rows >= 1 && cols >= 1);
    SPMV_EXPECTS(mean >= 1.0);
    SPMV_EXPECTS(cv >= 0.0);
    Xoshiro256 rng(seed);
    CsrBuilder builder(
        rows, cols,
        static_cast<std::size_t>(static_cast<double>(rows) * mean));
    std::vector<std::int32_t> row_cols;
    for (std::int64_t r = 0; r < rows; ++r) {
        const double sampled = mean + mean * cv * rng.normal();
        const auto k = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(std::llround(sampled)), 1, cols);
        sample_row(rng, cols, k, row_cols);
        for (auto c : row_cols)
            builder.push(r, c, 1.0 + rng.uniform());
    }
    return std::move(builder).finish();
}

}  // namespace spmvcache::gen
