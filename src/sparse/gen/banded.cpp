#include "sparse/gen/banded.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace spmvcache::gen {

CsrMatrix banded(std::int64_t n, std::int64_t nnz_per_row,
                 std::int64_t half_bandwidth, std::uint64_t seed) {
    SPMV_EXPECTS(n >= 1);
    SPMV_EXPECTS(nnz_per_row >= 1);
    SPMV_EXPECTS(half_bandwidth >= 0);
    Xoshiro256 rng(seed);
    CsrBuilder builder(n, n,
                       static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(nnz_per_row));
    std::vector<std::int32_t> cols;
    for (std::int64_t r = 0; r < n; ++r) {
        cols.clear();
        cols.push_back(static_cast<std::int32_t>(r));
        const std::int64_t span = 2 * half_bandwidth + 1;
        // Rejection-sample distinct in-band columns; a row can saturate if
        // the band is narrower than nnz_per_row.
        const std::int64_t lo = std::max<std::int64_t>(0, r - half_bandwidth);
        const std::int64_t hi = std::min(n - 1, r + half_bandwidth);
        const std::int64_t band_size = hi - lo + 1;
        const std::int64_t want =
            std::min(nnz_per_row, band_size);
        std::int64_t attempts = 0;
        while (static_cast<std::int64_t>(cols.size()) < want &&
               attempts < 16 * span) {
            ++attempts;
            const auto c = static_cast<std::int32_t>(
                lo + static_cast<std::int64_t>(rng.bounded(
                         static_cast<std::uint64_t>(band_size))));
            if (std::find(cols.begin(), cols.end(), c) == cols.end())
                cols.push_back(c);
        }
        std::sort(cols.begin(), cols.end());
        for (auto c : cols) {
            const double v = (c == r) ? static_cast<double>(cols.size())
                                      : -1.0 + 0.1 * rng.uniform();
            builder.push(r, c, v);
        }
    }
    return std::move(builder).finish();
}

CsrMatrix circuit(std::int64_t n, double extra_per_row,
                  std::int64_t local_span, double global_fraction,
                  std::uint64_t seed) {
    SPMV_EXPECTS(n >= 1);
    SPMV_EXPECTS(extra_per_row >= 0.0);
    SPMV_EXPECTS(global_fraction >= 0.0 && global_fraction <= 1.0);
    Xoshiro256 rng(seed);
    CsrBuilder builder(
        n, n,
        static_cast<std::size_t>(static_cast<double>(n) *
                                 (1.0 + extra_per_row)));
    std::vector<std::int32_t> cols;
    for (std::int64_t r = 0; r < n; ++r) {
        cols.clear();
        cols.push_back(static_cast<std::int32_t>(r));
        // Bernoulli-rounded number of extra couplings for this row.
        auto extras = static_cast<std::int64_t>(extra_per_row);
        if (rng.uniform() < extra_per_row - static_cast<double>(extras))
            ++extras;
        for (std::int64_t e = 0; e < extras; ++e) {
            std::int64_t c;
            if (rng.uniform() < global_fraction) {
                c = static_cast<std::int64_t>(
                    rng.bounded(static_cast<std::uint64_t>(n)));
            } else {
                const std::int64_t lo =
                    std::max<std::int64_t>(0, r - local_span);
                const std::int64_t hi = std::min(n - 1, r + local_span);
                c = lo + static_cast<std::int64_t>(rng.bounded(
                             static_cast<std::uint64_t>(hi - lo + 1)));
            }
            const auto c32 = static_cast<std::int32_t>(c);
            if (std::find(cols.begin(), cols.end(), c32) == cols.end())
                cols.push_back(c32);
        }
        std::sort(cols.begin(), cols.end());
        for (auto c : cols) {
            const double v = (c == r) ? static_cast<double>(cols.size())
                                      : -1.0 + 0.1 * rng.uniform();
            builder.push(r, c, v);
        }
    }
    return std::move(builder).finish();
}

}  // namespace spmvcache::gen
