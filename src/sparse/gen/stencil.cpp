#include "sparse/gen/stencil.hpp"

#include "util/error.hpp"

namespace spmvcache::gen {

namespace {

/// Generic 2D stencil: offsets within [-1,1]^2, chosen by a mask callback.
template <class Keep>
CsrMatrix grid_2d(std::int64_t nx, std::int64_t ny, Keep keep,
                  std::size_t nnz_per_point) {
    SPMV_EXPECTS(nx >= 1 && ny >= 1);
    const std::int64_t n = nx * ny;
    CsrBuilder builder(n, n, static_cast<std::size_t>(n) * nnz_per_point);
    for (std::int64_t j = 0; j < ny; ++j) {
        for (std::int64_t i = 0; i < nx; ++i) {
            const std::int64_t row = j * nx + i;
            for (std::int64_t dj = -1; dj <= 1; ++dj) {
                for (std::int64_t di = -1; di <= 1; ++di) {
                    if (!keep(di, dj)) continue;
                    const std::int64_t ii = i + di;
                    const std::int64_t jj = j + dj;
                    if (ii < 0 || ii >= nx || jj < 0 || jj >= ny) continue;
                    const std::int64_t col = jj * nx + ii;
                    const double v = (di == 0 && dj == 0)
                                         ? static_cast<double>(nnz_per_point) -
                                               1.0
                                         : -1.0;
                    builder.push(row, static_cast<std::int32_t>(col), v);
                }
            }
        }
    }
    return std::move(builder).finish();
}

template <class Keep>
CsrMatrix grid_3d(std::int64_t nx, std::int64_t ny, std::int64_t nz, Keep keep,
                  std::size_t nnz_per_point) {
    SPMV_EXPECTS(nx >= 1 && ny >= 1 && nz >= 1);
    const std::int64_t n = nx * ny * nz;
    CsrBuilder builder(n, n, static_cast<std::size_t>(n) * nnz_per_point);
    for (std::int64_t k = 0; k < nz; ++k) {
        for (std::int64_t j = 0; j < ny; ++j) {
            for (std::int64_t i = 0; i < nx; ++i) {
                const std::int64_t row = (k * ny + j) * nx + i;
                for (std::int64_t dk = -1; dk <= 1; ++dk) {
                    for (std::int64_t dj = -1; dj <= 1; ++dj) {
                        for (std::int64_t di = -1; di <= 1; ++di) {
                            if (!keep(di, dj, dk)) continue;
                            const std::int64_t ii = i + di;
                            const std::int64_t jj = j + dj;
                            const std::int64_t kk = k + dk;
                            if (ii < 0 || ii >= nx || jj < 0 || jj >= ny ||
                                kk < 0 || kk >= nz)
                                continue;
                            const std::int64_t col = (kk * ny + jj) * nx + ii;
                            const double v =
                                (di == 0 && dj == 0 && dk == 0)
                                    ? static_cast<double>(nnz_per_point) - 1.0
                                    : -1.0;
                            builder.push(row, static_cast<std::int32_t>(col),
                                         v);
                        }
                    }
                }
            }
        }
    }
    return std::move(builder).finish();
}

}  // namespace

CsrMatrix stencil_2d_5pt(std::int64_t nx, std::int64_t ny) {
    return grid_2d(
        nx, ny,
        [](std::int64_t di, std::int64_t dj) {
            return (di == 0) != (dj == 0) || (di == 0 && dj == 0);
        },
        5);
}

CsrMatrix stencil_2d_9pt(std::int64_t nx, std::int64_t ny) {
    return grid_2d(nx, ny, [](std::int64_t, std::int64_t) { return true; }, 9);
}

CsrMatrix stencil_3d_7pt(std::int64_t nx, std::int64_t ny, std::int64_t nz) {
    return grid_3d(
        nx, ny, nz,
        [](std::int64_t di, std::int64_t dj, std::int64_t dk) {
            const int nonzero_axes =
                (di != 0 ? 1 : 0) + (dj != 0 ? 1 : 0) + (dk != 0 ? 1 : 0);
            return nonzero_axes <= 1;
        },
        7);
}

CsrMatrix stencil_3d_27pt(std::int64_t nx, std::int64_t ny, std::int64_t nz) {
    return grid_3d(
        nx, ny, nz,
        [](std::int64_t, std::int64_t, std::int64_t) { return true; }, 27);
}

}  // namespace spmvcache::gen
