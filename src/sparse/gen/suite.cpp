#include "sparse/gen/suite.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/rmat.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "util/error.hpp"

namespace spmvcache::gen {

namespace {

/// One family = a size-parameterised generator; `t` in [0, 1] sweeps from
/// the family's smallest to largest instance (log-interpolated dimensions).
struct Family {
    const char* name;
    std::function<MatrixSpec(double t, double scale, std::uint64_t seed)> make;
};

std::int64_t lerp_size(double t, double lo, double hi, double scale) {
    const double v = lo * std::pow(hi / lo, t) * scale;
    return std::max<std::int64_t>(4, static_cast<std::int64_t>(v));
}

std::string size_tag(std::int64_t n) { return "@" + std::to_string(n); }

const std::vector<Family>& families() {
    static const std::vector<Family> kFamilies = {
        {"stencil2d5",
         [](double t, double scale, std::uint64_t) {
             // 2D 5-point grids from 256^2 to 2048^2 nodes.
             const auto side = lerp_size(t, 256, 2048, std::sqrt(scale));
             return MatrixSpec{"stencil2d5" + size_tag(side), "stencil2d5",
                               [side] { return stencil_2d_5pt(side, side); }};
         }},
        {"stencil3d27",
         [](double t, double scale, std::uint64_t) {
             // 3D 27-point grids from 24^3 to 128^3 nodes.
             const auto side = lerp_size(t, 24, 128, std::cbrt(scale));
             return MatrixSpec{"stencil3d27" + size_tag(side), "stencil3d27",
                               [side] {
                                   return stencil_3d_27pt(side, side, side);
                               }};
         }},
        {"banded",
         [](double t, double scale, std::uint64_t seed) {
             const auto n = lerp_size(t, 1 << 16, 1 << 21, scale);
             const std::int64_t k = 16;
             const std::int64_t hb = std::max<std::int64_t>(64, n / 256);
             return MatrixSpec{"banded" + size_tag(n), "banded",
                               [n, k, hb, seed] {
                                   return banded(n, k, hb, seed);
                               }};
         }},
        {"circuit",
         [](double t, double scale, std::uint64_t seed) {
             const auto n = lerp_size(t, 1 << 17, 1 << 22, scale);
             return MatrixSpec{"circuit" + size_tag(n), "circuit",
                               [n, seed] {
                                   return circuit(n, 3.0, n / 64, 0.05, seed);
                               }};
         }},
        {"random",
         [](double t, double scale, std::uint64_t seed) {
             const auto n = lerp_size(t, 1 << 15, 1 << 20, scale);
             return MatrixSpec{"random" + size_tag(n), "random",
                               [n, seed] {
                                   return random_uniform(n, n, 24, seed);
                               }};
         }},
        {"randomcv",
         [](double t, double scale, std::uint64_t seed) {
             // Low mu_K, high CV_K: the hard case for method (B) (§4.5.2).
             const auto n = lerp_size(t, 1 << 16, 1 << 21, scale);
             return MatrixSpec{"randomcv" + size_tag(n), "randomcv",
                               [n, seed] {
                                   return random_variable_rows(n, n, 5.0, 2.0,
                                                               seed);
                               }};
         }},
        {"rmat",
         [](double t, double scale, std::uint64_t seed) {
             const auto target = lerp_size(t, 1 << 16, 1 << 21, scale);
             std::int64_t sc = 14;
             while ((std::int64_t{1} << sc) < target && sc < 24) ++sc;
             const std::int64_t edges = (std::int64_t{1} << sc) * 12;
             return MatrixSpec{"rmat" + size_tag(std::int64_t{1} << sc),
                               "rmat",
                               [sc, edges, seed] {
                                   return rmat(sc, edges, seed);
                               }};
         }},
        {"blockfem",
         [](double t, double scale, std::uint64_t seed) {
             const auto blocks = lerp_size(t, 4096, 65536, scale);
             return MatrixSpec{"blockfem" + size_tag(blocks * 8), "blockfem",
                               [blocks, seed] {
                                   return block_fem(blocks, 8, 6, blocks / 64,
                                                    seed);
                               }};
         }},
    };
    return kFamilies;
}

}  // namespace

std::vector<MatrixSpec> synthetic_suite(const SuiteOptions& options) {
    SPMV_EXPECTS(options.count >= 1);
    SPMV_EXPECTS(options.scale > 0.0);
    SPMV_EXPECTS(options.t_min >= 0.0 && options.t_min < 1.0);
    const auto& fams = families();
    const auto per_family = static_cast<std::int64_t>(
        (options.count + static_cast<std::int64_t>(fams.size()) - 1) /
        static_cast<std::int64_t>(fams.size()));

    std::vector<MatrixSpec> suite;
    suite.reserve(static_cast<std::size_t>(per_family) * fams.size());
    for (std::size_t f = 0; f < fams.size(); ++f) {
        for (std::int64_t i = 0; i < per_family; ++i) {
            double t = per_family == 1
                           ? 0.5
                           : static_cast<double>(i) /
                                 static_cast<double>(per_family - 1);
            t = options.t_min + (1.0 - options.t_min) * t;
            const std::uint64_t seed =
                options.seed * 1000003ULL + f * 101ULL +
                static_cast<std::uint64_t>(i);
            suite.push_back(fams[f].make(t, options.scale, seed));
        }
    }
    std::sort(suite.begin(), suite.end(),
              [](const MatrixSpec& a, const MatrixSpec& b) {
                  return a.name < b.name;
              });
    return suite;
}

std::vector<MatrixSpec> matrix_market_suite(const std::string& directory) {
    namespace fs = std::filesystem;
    std::vector<MatrixSpec> suite;
    for (const auto& entry : fs::directory_iterator(directory)) {
        if (!entry.is_regular_file()) continue;
        const auto path = entry.path();
        if (path.extension() != ".mtx") continue;
        suite.push_back(MatrixSpec{
            path.stem().string(), "matrix-market",
            [p = path.string()] { return read_matrix_market_file(p); }});
    }
    std::sort(suite.begin(), suite.end(),
              [](const MatrixSpec& a, const MatrixSpec& b) {
                  return a.name < b.name;
              });
    return suite;
}

}  // namespace spmvcache::gen
