#include "sparse/csr.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "sparse/csr_view.hpp"
#include "util/error.hpp"

namespace spmvcache {

template <class Idx>
void BasicCsrMatrix<Idx>::validate() const {
    if (const Status s = check(); !s.ok())
        throw ContractViolation("CsrMatrix::validate: " + s.render());
}

template <class Idx>
[[nodiscard]] Status BasicCsrMatrix<Idx>::check() const {
    return check_csr_view(BasicCsrView<Idx>(*this));
}

template <class Idx>
[[nodiscard]] Status check_csr_view(const BasicCsrView<Idx>& m) {
    const auto invalid = [](std::string what) {
        return Status(ErrorCode::ValidationError, std::move(what));
    };
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    if (rowptr.size() != static_cast<std::size_t>(m.rows()) + 1)
        return invalid("rowptr has " + std::to_string(rowptr.size()) +
                       " entries, expected rows+1 = " +
                       std::to_string(m.rows() + 1));
    if (rowptr.front() != 0) return invalid("rowptr[0] != 0");
    if (colidx.size() != m.values().size())
        return invalid("colidx/values length mismatch");
    if (static_cast<std::uint64_t>(rowptr.back()) != colidx.size())
        return invalid("rowptr[rows] != nnz");
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        const auto begin = static_cast<std::int64_t>(
            rowptr[static_cast<std::size_t>(r)]);
        const auto end = static_cast<std::int64_t>(
            rowptr[static_cast<std::size_t>(r) + 1]);
        if (begin > end)
            return invalid("rowptr not monotone at row " + std::to_string(r));
        for (std::int64_t i = begin; i < end; ++i) {
            const auto c = static_cast<std::int64_t>(
                colidx[static_cast<std::size_t>(i)]);
            if (c < 0 || c >= m.cols())
                return invalid("column index " + std::to_string(c) +
                               " out of range in row " + std::to_string(r));
            if (i > begin &&
                static_cast<std::int64_t>(
                    colidx[static_cast<std::size_t>(i - 1)]) >= c)
                return invalid("columns not strictly increasing in row " +
                               std::to_string(r));
        }
    }
    return OkStatus();
}

template <class Idx>
BasicCsrMatrix<Idx> BasicCsrMatrix<Idx>::permuted_symmetric(
    std::span<const index_type> perm) const {
    SPMV_EXPECTS(rows_ == cols_);
    SPMV_EXPECTS(perm.size() == static_cast<std::size_t>(rows_));

    // inverse[old] = new
    std::vector<index_type> inverse(perm.size());
    for (std::size_t n = 0; n < perm.size(); ++n) {
        const auto old = perm[n];
        SPMV_EXPECTS(old >= 0 && static_cast<std::int64_t>(old) < rows_);
        inverse[static_cast<std::size_t>(old)] = static_cast<index_type>(n);
    }

    BasicCsrBuilder<Idx> builder(rows_, cols_,
                                 static_cast<std::size_t>(nnz()));
    std::vector<std::pair<index_type, double>> row_entries;
    for (std::int64_t new_r = 0; new_r < rows_; ++new_r) {
        const auto old_r = static_cast<std::size_t>(perm[
            static_cast<std::size_t>(new_r)]);
        row_entries.clear();
        for (auto i = static_cast<std::int64_t>(rowptr_[old_r]);
             i < static_cast<std::int64_t>(rowptr_[old_r + 1]); ++i) {
            const auto old_c = colidx_[static_cast<std::size_t>(i)];
            row_entries.emplace_back(inverse[static_cast<std::size_t>(old_c)],
                                     values_[static_cast<std::size_t>(i)]);
        }
        std::sort(row_entries.begin(), row_entries.end());
        for (const auto& [c, v] : row_entries)
            builder.push(new_r, static_cast<std::int64_t>(c), v);
    }
    return std::move(builder).finish();
}

template <class Idx>
BasicCsrBuilder<Idx>::BasicCsrBuilder(std::int64_t rows, std::int64_t cols,
                                      std::size_t nnz_hint) {
    SPMV_EXPECTS(rows >= 0);
    SPMV_EXPECTS(cols >= 0);
    SPMV_EXPECTS(cols <= static_cast<std::int64_t>(
                             std::numeric_limits<index_type>::max()));
    SPMV_EXPECTS(rows < static_cast<std::int64_t>(
                            std::numeric_limits<offset_type>::max()));
    m_.rows_ = rows;
    m_.cols_ = cols;
    m_.rowptr_.reserve(static_cast<std::size_t>(rows) + 1);
    m_.rowptr_.push_back(0);
    m_.colidx_.reserve(nnz_hint);
    m_.values_.reserve(nnz_hint);
}

template <class Idx>
void BasicCsrBuilder<Idx>::push(std::int64_t row, std::int64_t col,
                                double value) {
    SPMV_EXPECTS(row >= current_row_ && row < m_.rows_);
    SPMV_EXPECTS(col >= 0 && col < m_.cols_);
    while (current_row_ < row) {
        m_.rowptr_.push_back(checked_nnz());
        ++current_row_;
        last_col_ = -1;
    }
    SPMV_EXPECTS(col > last_col_);
    last_col_ = col;
    m_.colidx_.push_back(static_cast<index_type>(col));
    m_.values_.push_back(value);
}

template <class Idx>
BasicCsrMatrix<Idx> BasicCsrBuilder<Idx>::finish() && {
    while (current_row_ < m_.rows_) {
        m_.rowptr_.push_back(checked_nnz());
        ++current_row_;
    }
    return std::move(m_);
}

template <class Idx>
std::vector<double> to_dense(const BasicCsrMatrix<Idx>& m) {
    std::vector<double> dense(
        static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols()),
        0.0);
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    const auto values = m.values();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        for (auto i = static_cast<std::int64_t>(
                 rowptr[static_cast<std::size_t>(r)]);
             i < static_cast<std::int64_t>(
                     rowptr[static_cast<std::size_t>(r) + 1]);
             ++i) {
            dense[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(m.cols()) +
                  static_cast<std::size_t>(
                      colidx[static_cast<std::size_t>(i)])] =
                values[static_cast<std::size_t>(i)];
        }
    }
    return dense;
}

template class BasicCsrMatrix<Idx32>;
template class BasicCsrMatrix<Idx64>;
template class BasicCsrBuilder<Idx32>;
template class BasicCsrBuilder<Idx64>;
template std::vector<double> to_dense<Idx32>(const CsrMatrix&);
template std::vector<double> to_dense<Idx64>(const CsrMatrix64&);
template Status check_csr_view<Idx32>(const CsrView&);
template Status check_csr_view<Idx64>(const CsrView64&);

}  // namespace spmvcache
