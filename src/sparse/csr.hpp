// Compressed Sparse Row matrix with the exact memory layout the paper
// analyses (§3.1): 8-byte double values (`a`), plus column indices and row
// pointers whose element width is a runtime property of the pipeline
// (sparse/index_width.hpp). The default `CsrMatrix` uses the narrow W32
// layout — 4-byte int32 colidx, 4-byte uint32 rowptr — and `CsrMatrix64`
// is the wide fallback for shapes beyond the 32-bit bounds. All three
// arrays are aligned to A64FX cache-line (256 B) boundaries so the host
// kernels, trace generator and simulator share one notion of line
// boundaries.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "sparse/index_width.hpp"
#include "util/align.hpp"
#include "util/status.hpp"

namespace spmvcache {

template <class Idx>
class BasicCsrBuilder;

/// Immutable CSR matrix at index width `Idx` (Idx32 or Idx64); build via
/// BasicCsrBuilder or CooMatrix::to_csr().
template <class Idx>
class BasicCsrMatrix {
public:
    using value_type = double;
    using index_type = typename Idx::index_type;
    using offset_type = typename Idx::offset_type;
    using idx_tag = Idx;

    BasicCsrMatrix() = default;

    [[nodiscard]] static constexpr IndexWidth index_width() noexcept {
        return Idx::width;
    }

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return rowptr_.empty() ? 0
                               : static_cast<std::int64_t>(rowptr_.back());
    }

    [[nodiscard]] std::span<const offset_type> rowptr() const noexcept {
        return {rowptr_.data(), rowptr_.size()};
    }
    [[nodiscard]] std::span<const index_type> colidx() const noexcept {
        return {colidx_.data(), colidx_.size()};
    }
    [[nodiscard]] std::span<const value_type> values() const noexcept {
        return {values_.data(), values_.size()};
    }

    /// Number of nonzeros in row r. Pre: 0 <= r < rows().
    [[nodiscard]] std::int64_t row_nnz(std::int64_t r) const {
        SPMV_EXPECTS(r >= 0 && r < rows_);
        return static_cast<std::int64_t>(
            rowptr_[static_cast<std::size_t>(r) + 1] -
            rowptr_[static_cast<std::size_t>(r)]);
    }

    /// Byte sizes of the individual arrays (as used by the paper's
    /// working-set classification in §3.1).
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return values_.size() * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return colidx_.size() * sizeof(index_type);
    }
    [[nodiscard]] std::uint64_t rowptr_bytes() const noexcept {
        return rowptr_.size() * sizeof(offset_type);
    }
    /// Size of the input vector x (cols() doubles).
    [[nodiscard]] std::uint64_t x_bytes() const noexcept {
        return static_cast<std::uint64_t>(cols_) * sizeof(value_type);
    }
    /// Size of the output vector y (rows() doubles).
    [[nodiscard]] std::uint64_t y_bytes() const noexcept {
        return static_cast<std::uint64_t>(rows_) * sizeof(value_type);
    }
    /// Total working set: matrix arrays plus both vectors.
    [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
        return values_bytes() + colidx_bytes() + rowptr_bytes() + x_bytes() +
               y_bytes();
    }

    /// Checks structural invariants (monotone rowptr, indices in range,
    /// sorted columns within each row). Throws ContractViolation on failure.
    void validate() const;

    /// Typed form of validate() for input pipelines: never throws, reports
    /// the first violated invariant (with the offending row) as a
    /// ValidationError Status.
    [[nodiscard]] Status check() const;

    /// Returns a new matrix with rows and columns permuted by `perm`,
    /// where perm[new_index] = old_index. Pre: square matrix, perm is a
    /// permutation of [0, rows()).
    [[nodiscard]] BasicCsrMatrix permuted_symmetric(
        std::span<const index_type> perm) const;

private:
    friend class BasicCsrBuilder<Idx>;

    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    aligned_vector<offset_type> rowptr_;
    aligned_vector<index_type> colidx_;
    aligned_vector<value_type> values_;
};

/// The pipeline default: narrow 32-bit indices (every representable
/// matrix), and the wide fallback.
using CsrMatrix = BasicCsrMatrix<Idx32>;
using CsrMatrix64 = BasicCsrMatrix<Idx64>;

/// Row-by-row CSR assembler. Entries must be pushed in row-major order
/// (ties on row must have strictly increasing columns).
template <class Idx>
class BasicCsrBuilder {
public:
    using index_type = typename Idx::index_type;
    using offset_type = typename Idx::offset_type;

    /// Pre: rows, cols >= 0; the shape fits the Idx layout (rows+1 rowptr
    /// slots, cols representable as index_type).
    BasicCsrBuilder(std::int64_t rows, std::int64_t cols,
                    std::size_t nnz_hint = 0);

    /// Appends one entry; rows must be non-decreasing, columns strictly
    /// increasing within a row. Pre: the running nonzero count stays
    /// representable as offset_type.
    void push(std::int64_t row, std::int64_t col, double value);

    /// Finalises trailing empty rows and yields the matrix.
    [[nodiscard]] BasicCsrMatrix<Idx> finish() &&;

private:
    [[nodiscard]] offset_type checked_nnz() const {
        SPMV_EXPECTS(m_.colidx_.size() <=
                     static_cast<std::size_t>(
                         std::numeric_limits<offset_type>::max()));
        return static_cast<offset_type>(m_.colidx_.size());
    }

    BasicCsrMatrix<Idx> m_;
    std::int64_t current_row_ = 0;
    std::int64_t last_col_ = -1;
};

using CsrBuilder = BasicCsrBuilder<Idx32>;
using CsrBuilder64 = BasicCsrBuilder<Idx64>;

/// Rebuilds a matrix at another index width (used by the width-forcing
/// paths: generators always assemble narrow, benches and differential
/// tests widen explicitly). Pre: the shape fits `To` — always true when
/// widening.
template <class To, class FromView>
[[nodiscard]] BasicCsrMatrix<To> convert_csr_width(const FromView& m) {
    BasicCsrBuilder<To> builder(m.rows(), m.cols(),
                                static_cast<std::size_t>(m.nnz()));
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    const auto values = m.values();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        for (auto i = static_cast<std::int64_t>(
                 rowptr[static_cast<std::size_t>(r)]);
             i < static_cast<std::int64_t>(
                     rowptr[static_cast<std::size_t>(r) + 1]);
             ++i) {
            builder.push(r,
                         static_cast<std::int64_t>(
                             colidx[static_cast<std::size_t>(i)]),
                         values[static_cast<std::size_t>(i)]);
        }
    }
    return std::move(builder).finish();
}

/// Builds a small dense row-major reference of the matrix (tests only).
/// Pre: rows*cols small enough to allocate.
template <class Idx>
[[nodiscard]] std::vector<double> to_dense(const BasicCsrMatrix<Idx>& m);

extern template class BasicCsrMatrix<Idx32>;
extern template class BasicCsrMatrix<Idx64>;
extern template class BasicCsrBuilder<Idx32>;
extern template class BasicCsrBuilder<Idx64>;
extern template std::vector<double> to_dense<Idx32>(const CsrMatrix&);
extern template std::vector<double> to_dense<Idx64>(const CsrMatrix64&);

}  // namespace spmvcache
