// Compressed Sparse Row matrix with the exact memory layout the paper
// analyses (§3.1): 8-byte double values (`a`), 4-byte int32 column indices
// (`colidx`) and 8-byte int64 row pointers (`rowptr`). All three arrays are
// aligned to A64FX cache-line (256 B) boundaries so the host kernels, trace
// generator and simulator share one notion of line boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/align.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Immutable CSR matrix (build via CsrBuilder or CooMatrix::to_csr()).
class CsrMatrix {
public:
    using value_type = double;
    using index_type = std::int32_t;
    using offset_type = std::int64_t;

    CsrMatrix() = default;

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::int64_t nnz() const noexcept {
        return rowptr_.empty() ? 0 : rowptr_.back();
    }

    [[nodiscard]] std::span<const offset_type> rowptr() const noexcept {
        return {rowptr_.data(), rowptr_.size()};
    }
    [[nodiscard]] std::span<const index_type> colidx() const noexcept {
        return {colidx_.data(), colidx_.size()};
    }
    [[nodiscard]] std::span<const value_type> values() const noexcept {
        return {values_.data(), values_.size()};
    }

    /// Number of nonzeros in row r. Pre: 0 <= r < rows().
    [[nodiscard]] std::int64_t row_nnz(std::int64_t r) const;

    /// Byte sizes of the individual arrays (as used by the paper's
    /// working-set classification in §3.1).
    [[nodiscard]] std::uint64_t values_bytes() const noexcept {
        return values_.size() * sizeof(value_type);
    }
    [[nodiscard]] std::uint64_t colidx_bytes() const noexcept {
        return colidx_.size() * sizeof(index_type);
    }
    [[nodiscard]] std::uint64_t rowptr_bytes() const noexcept {
        return rowptr_.size() * sizeof(offset_type);
    }
    /// Size of the input vector x (cols() doubles).
    [[nodiscard]] std::uint64_t x_bytes() const noexcept {
        return static_cast<std::uint64_t>(cols_) * sizeof(value_type);
    }
    /// Size of the output vector y (rows() doubles).
    [[nodiscard]] std::uint64_t y_bytes() const noexcept {
        return static_cast<std::uint64_t>(rows_) * sizeof(value_type);
    }
    /// Total working set: matrix arrays plus both vectors.
    [[nodiscard]] std::uint64_t working_set_bytes() const noexcept {
        return values_bytes() + colidx_bytes() + rowptr_bytes() + x_bytes() +
               y_bytes();
    }

    /// Checks structural invariants (monotone rowptr, indices in range,
    /// sorted columns within each row). Throws ContractViolation on failure.
    void validate() const;

    /// Typed form of validate() for input pipelines: never throws, reports
    /// the first violated invariant (with the offending row) as a
    /// ValidationError Status.
    [[nodiscard]] Status check() const;

    /// Returns a new matrix with rows and columns permuted by `perm`,
    /// where perm[new_index] = old_index. Pre: square matrix, perm is a
    /// permutation of [0, rows()).
    [[nodiscard]] CsrMatrix permuted_symmetric(
        std::span<const std::int32_t> perm) const;

private:
    friend class CsrBuilder;

    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    aligned_vector<offset_type> rowptr_;
    aligned_vector<index_type> colidx_;
    aligned_vector<value_type> values_;
};

/// Row-by-row CSR assembler. Entries must be pushed in row-major order
/// (ties on row must have strictly increasing columns).
class CsrBuilder {
public:
    /// Pre: rows, cols >= 0; cols fits in int32.
    CsrBuilder(std::int64_t rows, std::int64_t cols, std::size_t nnz_hint = 0);

    /// Appends one entry; rows must be non-decreasing, columns strictly
    /// increasing within a row.
    void push(std::int64_t row, std::int32_t col, double value);

    /// Finalises trailing empty rows and yields the matrix.
    [[nodiscard]] CsrMatrix finish() &&;

private:
    CsrMatrix m_;
    std::int64_t current_row_ = 0;
    std::int32_t last_col_ = -1;
};

/// Builds a small dense row-major reference of the matrix (tests only).
/// Pre: rows*cols small enough to allocate.
[[nodiscard]] std::vector<double> to_dense(const CsrMatrix& m);

}  // namespace spmvcache
