// Reverse Cuthill-McKee reordering.
//
// Table 1's discussion attributes part of the performance gap for
// kkt_power, bundle_adj, audikw_1 and delaunay_n24 to Alappat et al.'s use
// of RCM reordering; this module implements it so the ablation bench can
// quantify the effect (bench_ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvcache {

/// Computes the Reverse Cuthill-McKee ordering of the symmetrised pattern
/// of `m` (edges of A union A^T, self-loops ignored). Returns perm with
/// perm[new_index] = old_index, covering every row even in disconnected
/// graphs (each component is seeded from a pseudo-peripheral vertex).
/// Pre: m is square.
[[nodiscard]] std::vector<std::int32_t> rcm_ordering(const CsrMatrix& m);

/// Convenience: applies rcm_ordering via CsrMatrix::permuted_symmetric.
[[nodiscard]] CsrMatrix rcm_reorder(const CsrMatrix& m);

}  // namespace spmvcache
