// Versioned, checksummed binary CSR cache (`.spmvc`): parse a Matrix
// Market file once, mmap the result forever after.
//
// A `.spmvc` file holds the three CSR arrays in their in-memory layout at
// either index width (W32: uint32 rowptr + int32 colidx; W64: int64 rowptr
// + int64 colidx; values are always double — §3.1 of the paper), each
// starting on a 4096-byte page boundary so a read-only mmap yields
// correctly aligned arrays with zero copying or byte-swapping on
// little-endian hosts. The header carries a format version, the source
// file's size and mtime (staleness detection), the structural fingerprint
// (sparse/fingerprint.hpp) so the serve daemon can key its plan cache
// without touching the source text, the precomputed MatrixStats, and
// FNV-1a checksums of the header and of every section. See DESIGN.md
// ("The .spmvc binary cache") for the byte-level layout.
//
// Every failure mode is a typed Status: bad magic and truncation are
// ParseError, a format-version bump is UnsupportedError, checksum or
// internal-consistency damage is ValidationError, and a source file that
// changed since the cache was written is CacheStale. Callers
// (core/matrix_source) treat any of them as "fall back to re-parse and
// rewrite" — a corrupt or stale cache is never fatal.
//
// Writes are atomic: the file is assembled under a temporary name in the
// same directory and renamed over the target, so a crash mid-write leaves
// either the old cache or a stray .tmp the loader never looks at.
//
// Fault points: "cache.write" (before the write starts), "cache.map"
// (before the mmap).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// First 8 bytes of every .spmvc file.
inline constexpr char kSpmvcMagic[8] = {'S', 'P', 'M', 'V', 'C', 'S', 'R',
                                        '\0'};
/// Bumped on any layout change; readers reject other versions. Version 2
/// introduced the dual-width index layout (the W32 rowptr narrowed from
/// int64 to uint32) and made the reserved header word a width tag.
inline constexpr std::uint32_t kSpmvcFormatVersion = 2;
/// Sections (and the header block) are padded to this boundary. A page
/// multiple, and comfortably a multiple of the 256-byte A64FX line.
inline constexpr std::uint64_t kSpmvcSectionAlign = 4096;

/// Identity of the source file a cache entry was built from.
struct SourceStamp {
    std::uint64_t size = 0;       ///< byte size of the source file
    std::int64_t mtime_ns = 0;    ///< mtime in nanoseconds since epoch
};

/// stat() the source file. ResourceError if it does not exist.
[[nodiscard]] Result<SourceStamp> stat_source(const std::string& path);

/// Decoded header of a .spmvc file (everything but the arrays).
struct SpmvcInfo {
    std::uint32_t format_version = 0;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
    IndexWidth index_width = IndexWidth::W32;  ///< stored array width
    SourceStamp source;           ///< stamp of the source at write time
    MatrixFingerprint fingerprint;
    MatrixStats stats;
    std::string source_path;      ///< path recorded at write time
    std::uint64_t file_bytes = 0; ///< total .spmvc size on disk
};

/// A .spmvc file mapped read-only. Owns the mapping; view() spans point
/// into it, so keep the MappedCsr alive as long as any view is in use
/// (core/matrix_source wraps it in a shared_ptr for exactly that).
class MappedCsr {
public:
    MappedCsr() = default;
    MappedCsr(MappedCsr&& other) noexcept;
    MappedCsr& operator=(MappedCsr&& other) noexcept;
    MappedCsr(const MappedCsr&) = delete;
    MappedCsr& operator=(const MappedCsr&) = delete;
    ~MappedCsr();

    /// Width-erased view over the mapped arrays; the stored width is
    /// info().index_width (or view().index_width()).
    [[nodiscard]] AnyCsrView view() const noexcept { return view_; }
    [[nodiscard]] const SpmvcInfo& info() const noexcept { return info_; }

private:
    friend Result<MappedCsr> load_binary_cache(const std::string&,
                                               const SourceStamp*,
                                               IndexWidthChoice);
    void* base_ = nullptr;
    std::size_t length_ = 0;
    AnyCsrView view_;
    SpmvcInfo info_;
};

/// Serializes `m` (plus its fingerprint and stats) to `cache_path`
/// atomically, at whatever index width `m` carries. `source_path`/`stamp`
/// describe the file the matrix was parsed from; loads check the stamp
/// against the live file.
[[nodiscard]] Status write_binary_cache(const std::string& cache_path,
                                        const AnyCsrView& m,
                                        const MatrixFingerprint& fingerprint,
                                        const MatrixStats& stats,
                                        const std::string& source_path,
                                        const SourceStamp& stamp);

/// Maps `cache_path` read-only and validates it end to end: magic,
/// version, header checksum, header-internal consistency, section bounds
/// and alignment, section checksums, and the CSR structural invariants.
/// When `expected` is non-null, a stamp mismatch is CacheStale. `want`
/// narrows acceptance: Auto maps whichever width the file stores; a forced
/// width rejects the other with UnsupportedError, which callers treat like
/// any other cache miss (re-parse at the wanted width and rewrite).
[[nodiscard]] Result<MappedCsr> load_binary_cache(
    const std::string& cache_path, const SourceStamp* expected = nullptr,
    IndexWidthChoice want = IndexWidthChoice::Auto);

/// Reads and validates only the header (magic/version/checksum) — the
/// cheap path for `spmvcache cache inspect` and fingerprint reuse; array
/// sections are neither touched nor verified.
[[nodiscard]] Result<SpmvcInfo> inspect_binary_cache(
    const std::string& cache_path);

namespace spmvc_testing {

/// Recomputes and rewrites the header checksum of an existing .spmvc
/// file in place. Test support only: lets the corrupt-cache corpus flip
/// semantic header fields (nnz, offsets) without tripping the checksum
/// first, so the deeper validation layers get exercised.
[[nodiscard]] Status fixup_header_checksum(const std::string& cache_path);

/// Byte offset of the header field holding `nnz` — anchor for corpus
/// generators that corrupt specific fields rather than random bytes.
[[nodiscard]] std::uint64_t header_nnz_offset() noexcept;

}  // namespace spmvc_testing

}  // namespace spmvcache
