// Matrix Market (.mtx) I/O, so real SuiteSparse matrices — the paper's data
// set — can be dropped into any bench via --mm when available.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry. Pattern entries get value 1.0.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace spmvcache {

/// Parses a Matrix Market stream. Throws std::runtime_error on malformed
/// input or unsupported format (complex field, array format).
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Reads a .mtx file from disk. Throws std::runtime_error if unreadable.
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `m` in coordinate/real/general format.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);

/// Writes `m` to a .mtx file. Throws std::runtime_error if unwritable.
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

}  // namespace spmvcache
