// Matrix Market (.mtx) I/O, so real SuiteSparse matrices — the paper's data
// set — can be dropped into any bench via --mm when available.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry. Pattern entries get value 1.0.
//
// The parser is hardened for unattended batch sweeps over hundreds of
// downloaded matrices: every failure is a typed Error (util/status.hpp)
// carrying the 1-based input line, dimension and nnz arithmetic is
// overflow-checked, line length is bounded, and a strict mode rejects
// trailing garbage, duplicate entries and upper-triangle entries in
// symmetric files instead of silently repairing them.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/any_csr.hpp"
#include "sparse/csr.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Parser knobs; default-constructed == lenient (historical behaviour).
struct MmReadOptions {
    /// Strict mode rejects what lenient mode repairs: trailing tokens after
    /// the size line or an entry, duplicate (row, col) entries (lenient
    /// sums them), and entries above the diagonal in symmetric files
    /// (lenient mirrors them anyway).
    bool strict = false;
    /// Any input line longer than this is a ParseError; guards the parser
    /// against pathological single-line files.
    std::size_t max_line_bytes = std::size_t{1} << 20;
    /// Target CSR index width for the `_any` entry points: Auto narrows
    /// whenever the parsed shape fits the W32 layout and widens otherwise;
    /// a forced W32 rejects oversized shapes at the size line, before any
    /// entry is read. The non-`_any` entry points ignore this and always
    /// force W32 (their return type is the narrow CsrMatrix).
    IndexWidthChoice index_width = default_index_width_choice();
};

/// Parses a Matrix Market stream. Errors carry the 1-based line number of
/// the offending input line.
[[nodiscard]] Result<CsrMatrix> try_read_matrix_market(
    std::istream& in, const MmReadOptions& options = {});

/// Reads a .mtx file from disk; the error chain names the file.
[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_file(
    const std::string& path, const MmReadOptions& options = {});

/// Width-aware parse: honours options.index_width and materializes the
/// CSR arrays directly at the resolved width (no widen-then-narrow pass).
[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_any(
    std::istream& in, const MmReadOptions& options = {});

/// Width-aware file read; the error chain names the file.
[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_any_file(
    const std::string& path, const MmReadOptions& options = {});

/// Legacy throwing wrapper: throws StatusError (a std::runtime_error) on
/// malformed input or unsupported format (complex field, array format).
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);

/// Legacy throwing wrapper: throws StatusError if unreadable or malformed.
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `m` in coordinate/real/general format.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);

/// Writes `m` to a .mtx file. Throws StatusError if unwritable.
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

}  // namespace spmvcache
