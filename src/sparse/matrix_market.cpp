#include "sparse/matrix_market.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/coo.hpp"
#include "util/format.hpp"

namespace spmvcache {

namespace {

struct MmHeader {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

MmHeader parse_banner(const std::string& line) {
    std::istringstream is(line);
    std::string banner, object, format, field, symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        throw std::runtime_error("not a Matrix Market file");
    if (to_lower(object) != "matrix")
        throw std::runtime_error("unsupported MatrixMarket object: " + object);
    if (to_lower(format) != "coordinate")
        throw std::runtime_error("only coordinate format is supported");
    const std::string f = to_lower(field);
    if (f != "real" && f != "integer" && f != "pattern")
        throw std::runtime_error("unsupported MatrixMarket field: " + field);
    const std::string s = to_lower(symmetry);
    if (s != "general" && s != "symmetric" && s != "skew-symmetric")
        throw std::runtime_error("unsupported MatrixMarket symmetry: " +
                                 symmetry);
    MmHeader h;
    h.pattern = (f == "pattern");
    h.symmetric = (s == "symmetric" || s == "skew-symmetric");
    h.skew = (s == "skew-symmetric");
    return h;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
    std::string line;
    if (!std::getline(in, line))
        throw std::runtime_error("empty Matrix Market stream");
    const MmHeader header = parse_banner(line);

    // Skip comments and blank lines to the size line.
    while (std::getline(in, line)) {
        const std::string t = trim(line);
        if (!t.empty() && t[0] != '%') break;
    }
    std::int64_t rows = 0, cols = 0, declared_nnz = 0;
    {
        std::istringstream is(line);
        if (!(is >> rows >> cols >> declared_nnz))
            throw std::runtime_error("malformed Matrix Market size line");
    }
    if (rows < 0 || cols < 0 || declared_nnz < 0)
        throw std::runtime_error("negative Matrix Market dimensions");

    CooMatrix coo(rows, cols);
    coo.reserve(static_cast<std::size_t>(
        header.symmetric ? 2 * declared_nnz : declared_nnz));
    std::int64_t seen = 0;
    while (seen < declared_nnz && std::getline(in, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '%') continue;
        std::istringstream is(t);
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        if (!(is >> r >> c)) throw std::runtime_error("malformed entry line");
        if (!header.pattern && !(is >> v))
            throw std::runtime_error("missing value on entry line");
        if (r < 1 || r > rows || c < 1 || c > cols)
            throw std::runtime_error("Matrix Market index out of range");
        coo.add(r - 1, c - 1, v);
        if (header.symmetric && r != c)
            coo.add(c - 1, r - 1, header.skew ? -v : v);
        ++seen;
    }
    if (seen != declared_nnz)
        throw std::runtime_error("Matrix Market stream truncated");
    return std::move(coo).to_csr();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open: " + path);
    return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    const auto values = m.values();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
            out << (r + 1) << ' '
                << (colidx[static_cast<std::size_t>(i)] + 1) << ' '
                << values[static_cast<std::size_t>(i)] << '\n';
        }
    }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open for writing: " + path);
    write_matrix_market(out, m);
}

}  // namespace spmvcache
