#include "sparse/matrix_market.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sparse/coo.hpp"
#include "util/checked.hpp"
#include "util/fault.hpp"
#include "util/format.hpp"

namespace spmvcache {

namespace {

struct MmHeader {
    bool pattern = false;
    bool symmetric = false;
    bool skew = false;
};

/// Reads lines through istream::getline into a fixed buffer, so a single
/// pathological line can never allocate more than max_line_bytes. Tracks
/// 1-based line numbers for diagnostics.
class LineReader {
public:
    LineReader(std::istream& in, std::size_t max_line_bytes)
        : in_(in), buf_(max_line_bytes + 2) {}

    /// true = a line is available via view(); false = clean end of input.
    [[nodiscard]] Result<bool> next() {
        in_.getline(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        const auto got = in_.gcount();
        if (in_.fail()) {
            // Buffer filled without finding a newline: bounded-length guard.
            if (got == static_cast<std::streamsize>(buf_.size()) - 1)
                return Error(ErrorCode::ParseError,
                             "line exceeds maximum length of " +
                                 std::to_string(buf_.size() - 2) + " bytes",
                             line_no_ + 1);
            return false;  // end of input
        }
        ++line_no_;
        // gcount() includes the consumed newline unless EOF ended the line.
        auto len = static_cast<std::size_t>(got);
        if (!in_.eof() && len > 0) --len;
        view_ = std::string_view(buf_.data(), len);
        return true;
    }

    [[nodiscard]] std::string_view view() const noexcept { return view_; }
    [[nodiscard]] std::int64_t line_no() const noexcept { return line_no_; }

private:
    std::istream& in_;
    std::vector<char> buf_;
    std::string_view view_;
    std::int64_t line_no_ = 0;
};

const char* skip_ws(const char* p, const char* end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    return p;
}

bool rest_is_blank(const char* p, const char* end) {
    return skip_ws(p, end) == end;
}

bool parse_i64(const char*& p, const char* end, std::int64_t& out) {
    p = skip_ws(p, end);
    if (p < end && *p == '+') ++p;  // from_chars rejects a leading '+'
    const auto [ptr, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || ptr == p) return false;
    p = ptr;
    return true;
}

bool parse_f64(const char*& p, const char* end, double& out) {
    p = skip_ws(p, end);
    if (p < end && *p == '+') ++p;
    const auto [ptr, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{} || ptr == p) return false;
    p = ptr;
    return true;
}

bool is_comment_or_blank(std::string_view line) {
    const char* p = skip_ws(line.data(), line.data() + line.size());
    return p == line.data() + line.size() || *p == '%';
}

[[nodiscard]] Result<MmHeader> parse_banner(std::string_view line, std::int64_t line_no) {
    std::istringstream is{std::string(line)};
    std::string banner, object, format, field, symmetry;
    is >> banner >> object >> format >> field >> symmetry;
    const auto bad = [line_no](std::string what) {
        return Error(ErrorCode::ParseError, std::move(what), line_no);
    };
    if (banner != "%%MatrixMarket") return bad("not a Matrix Market file");
    if (to_lower(object) != "matrix")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket object: " + object, line_no);
    if (to_lower(format) != "coordinate")
        return Error(ErrorCode::UnsupportedError,
                     "only coordinate format is supported", line_no);
    const std::string f = to_lower(field);
    if (f != "real" && f != "integer" && f != "pattern")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket field: " + field, line_no);
    const std::string s = to_lower(symmetry);
    if (s != "general" && s != "symmetric" && s != "skew-symmetric")
        return Error(ErrorCode::UnsupportedError,
                     "unsupported MatrixMarket symmetry: " + symmetry,
                     line_no);
    MmHeader h;
    h.pattern = (f == "pattern");
    h.symmetric = (s == "symmetric" || s == "skew-symmetric");
    h.skew = (s == "skew-symmetric");
    return h;
}

struct MmSize {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
};

[[nodiscard]] Result<MmSize> parse_size_line(std::string_view line, std::int64_t line_no,
                               const MmHeader& header) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.size_line"));
    MmSize size;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    if (!parse_i64(p, end, size.rows) || !parse_i64(p, end, size.cols) ||
        !parse_i64(p, end, size.nnz))
        return Error(ErrorCode::ParseError,
                     "malformed size line (expected 'rows cols nnz')",
                     line_no);
    // A fourth token means this is not a coordinate size line (array
    // format, or a corrupted file) — never accept trailing garbage here.
    if (!rest_is_blank(p, end))
        return Error(ErrorCode::ParseError,
                     "trailing garbage after size line", line_no);
    if (size.rows < 0 || size.cols < 0 || size.nnz < 0)
        return Error(ErrorCode::ValidationError,
                     "negative Matrix Market dimensions", line_no);
    if (header.symmetric && size.rows != size.cols)
        return Error(ErrorCode::ValidationError,
                     "symmetric file with non-square dimensions", line_no);
    if (size.cols > std::numeric_limits<std::int32_t>::max())
        return Error(ErrorCode::UnsupportedError,
                     "cols exceed int32 (CSR layout stores 4-byte column "
                     "indices)",
                     line_no);
    if (header.symmetric &&
        size.rows > std::numeric_limits<std::int32_t>::max())
        return Error(ErrorCode::UnsupportedError,
                     "symmetric expansion needs rows to fit int32", line_no);
    std::int64_t cells = 0;
    if (!checked_mul(size.rows, size.cols, cells))
        return Error(ErrorCode::OverflowError,
                     "rows*cols overflows int64", line_no);
    if (size.nnz > cells)
        return Error(ErrorCode::ValidationError,
                     "declared nnz " + std::to_string(size.nnz) +
                         " exceeds rows*cols = " + std::to_string(cells),
                     line_no);
    std::int64_t logical = size.nnz;
    if (header.symmetric &&
        !checked_mul<std::int64_t>(size.nnz, 2, logical))
        return Error(ErrorCode::OverflowError,
                     "symmetric nnz expansion overflows int64", line_no);
    (void)logical;
    return size;
}

[[nodiscard]] Result<CsrMatrix> read_impl(std::istream& in, const MmReadOptions& options) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.header"));
    LineReader reader(in, options.max_line_bytes);

    SPMV_ASSIGN_OR_RETURN(bool have_banner, reader.next());
    if (!have_banner)
        return Error(ErrorCode::ParseError, "empty Matrix Market stream", 1);
    SPMV_ASSIGN_OR_RETURN(
        const MmHeader header,
        parse_banner(reader.view(), reader.line_no()));

    // Skip comments and blank lines to the size line.
    for (;;) {
        SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
        if (!have_line)
            return Error(ErrorCode::ParseError, "missing size line",
                         reader.line_no() + 1);
        if (!is_comment_or_blank(reader.view())) break;
    }
    SPMV_ASSIGN_OR_RETURN(
        const MmSize size,
        parse_size_line(reader.view(), reader.line_no(), header));

    CooMatrix coo(size.rows, size.cols);
    // parse_size_line proved 2*nnz fits; the contract keeps that proof
    // attached to the arithmetic it guards.
    std::int64_t logical_nnz = size.nnz;
    if (header.symmetric)
        SPMV_EXPECT(checked_mul<std::int64_t>(2, size.nnz, logical_nnz));
    // Cap the up-front reservation: a lying size line must not be able to
    // trigger a huge allocation before the truncation check catches it.
    coo.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(logical_nnz, std::int64_t{1} << 24)));

    std::unordered_set<std::int64_t> seen_keys;
    if (options.strict)
        seen_keys.reserve(static_cast<std::size_t>(
            std::min<std::int64_t>(size.nnz, std::int64_t{1} << 24)));

    std::int64_t seen = 0;
    while (seen < size.nnz) {
        SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
        if (!have_line) break;
        const std::string_view line = reader.view();
        if (is_comment_or_blank(line)) continue;
        const std::int64_t line_no = reader.line_no();
        if (Status s = fault::maybe_fail("mm.read_entry"); !s.ok())
            return std::move(s).wrap("entry " + std::to_string(seen + 1));

        const char* p = line.data();
        const char* end = line.data() + line.size();
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        if (!parse_i64(p, end, r) || !parse_i64(p, end, c))
            return Error(ErrorCode::ParseError,
                         "malformed entry line (expected 'row col[ value]')",
                         line_no);
        if (!header.pattern && !parse_f64(p, end, v))
            return Error(ErrorCode::ParseError,
                         "missing or non-numeric value on entry line",
                         line_no);
        if (options.strict && !rest_is_blank(p, end))
            return Error(ErrorCode::ParseError,
                         "trailing garbage after entry", line_no);
        if (r < 1 || r > size.rows || c < 1 || c > size.cols)
            return Error(ErrorCode::ValidationError,
                         "index (" + std::to_string(r) + ", " +
                             std::to_string(c) + ") out of range for " +
                             std::to_string(size.rows) + "x" +
                             std::to_string(size.cols) + " matrix",
                         line_no);
        if (options.strict) {
            if (!std::isfinite(v))
                return Error(ErrorCode::ValidationError,
                             "non-finite value on entry line", line_no);
            if (header.symmetric && c > r)
                return Error(ErrorCode::ValidationError,
                             "entry above the diagonal in a symmetric file",
                             line_no);
            if (!seen_keys.insert((r - 1) * size.cols + (c - 1)).second)
                return Error(ErrorCode::ValidationError,
                             "duplicate entry (" + std::to_string(r) + ", " +
                                 std::to_string(c) + ")",
                             line_no);
        }
        coo.add(r - 1, c - 1, v);
        if (header.symmetric && r != c)
            coo.add(c - 1, r - 1, header.skew ? -v : v);
        ++seen;
    }
    if (seen != size.nnz)
        return Error(ErrorCode::ParseError,
                     "truncated: size line declares " +
                         std::to_string(size.nnz) + " entries, found " +
                         std::to_string(seen),
                     std::max<std::int64_t>(reader.line_no(), 1));
    if (options.strict) {
        // Anything but comments and blanks after the final entry means the
        // size line undercounts — reject rather than silently drop data.
        for (;;) {
            SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
            if (!have_line) break;
            if (!is_comment_or_blank(reader.view()))
                return Error(ErrorCode::ParseError,
                             "data after the declared final entry",
                             reader.line_no());
        }
    }
    return std::move(coo).try_to_csr();
}

}  // namespace

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market(std::istream& in,
                                         const MmReadOptions& options) {
    return std::move(read_impl(in, options))
        .wrap("reading Matrix Market stream");
}

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_file(const std::string& path,
                                              const MmReadOptions& options) {
    if (const Status s = fault::maybe_fail("mm.open"); !s.ok())
        return Status(s).wrap("reading '" + path + "'");
    std::ifstream in(path);
    if (!in)
        return Error(ErrorCode::ResourceError, "cannot open '" + path + "'");
    return std::move(read_impl(in, options)).wrap("reading '" + path + "'");
}

CsrMatrix read_matrix_market(std::istream& in) {
    Result<CsrMatrix> r = try_read_matrix_market(in);
    if (!r.ok()) throw_status(std::move(r).to_error());
    return std::move(r).value();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
    Result<CsrMatrix> r = try_read_matrix_market_file(path);
    if (!r.ok()) throw_status(std::move(r).to_error());
    return std::move(r).value();
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    const auto values = m.values();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
            out << (r + 1) << ' '
                << (colidx[static_cast<std::size_t>(i)] + 1) << ' '
                << values[static_cast<std::size_t>(i)] << '\n';
        }
    }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
    std::ofstream out(path);
    if (!out)
        throw_status(Error(ErrorCode::ResourceError,
                           "cannot open '" + path + "' for writing"));
    write_matrix_market(out, m);
    out.flush();
    if (!out)
        throw_status(Error(ErrorCode::ResourceError,
                           "write failed for '" + path + "'"));
}

}  // namespace spmvcache
