#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/mm_detail.hpp"
#include "util/checked.hpp"
#include "util/fault.hpp"

namespace spmvcache {

namespace {

using mm_detail::MmHeader;
using mm_detail::MmSize;

/// Reads lines through istream::getline into a fixed buffer, so a single
/// pathological line can never allocate more than max_line_bytes. Tracks
/// 1-based line numbers for diagnostics.
class LineReader {
public:
    LineReader(std::istream& in, std::size_t max_line_bytes)
        : in_(in), buf_(max_line_bytes + 2) {}

    /// true = a line is available via view(); false = clean end of input.
    [[nodiscard]] Result<bool> next() {
        in_.getline(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        const auto got = in_.gcount();
        if (in_.fail()) {
            // Buffer filled without finding a newline: bounded-length guard.
            if (got == static_cast<std::streamsize>(buf_.size()) - 1)
                return Error(ErrorCode::ParseError,
                             "line exceeds maximum length of " +
                                 std::to_string(buf_.size() - 2) + " bytes",
                             line_no_ + 1);
            return false;  // end of input
        }
        ++line_no_;
        // gcount() includes the consumed newline unless EOF ended the line.
        auto len = static_cast<std::size_t>(got);
        if (!in_.eof() && len > 0) --len;
        view_ = std::string_view(buf_.data(), len);
        return true;
    }

    [[nodiscard]] std::string_view view() const noexcept { return view_; }
    [[nodiscard]] std::int64_t line_no() const noexcept { return line_no_; }

private:
    std::istream& in_;
    std::vector<char> buf_;
    std::string_view view_;
    std::int64_t line_no_ = 0;
};

[[nodiscard]] Result<AnyCsrMatrix> read_impl(std::istream& in,
                                             const MmReadOptions& options,
                                             IndexWidthChoice width) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.header"));
    LineReader reader(in, options.max_line_bytes);

    SPMV_ASSIGN_OR_RETURN(bool have_banner, reader.next());
    if (!have_banner)
        return Error(ErrorCode::ParseError, "empty Matrix Market stream", 1);
    SPMV_ASSIGN_OR_RETURN(
        const MmHeader header,
        mm_detail::parse_banner(reader.view(), reader.line_no()));

    // Skip comments and blank lines to the size line.
    for (;;) {
        SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
        if (!have_line)
            return Error(ErrorCode::ParseError, "missing size line",
                         reader.line_no() + 1);
        if (!mm_detail::is_comment_or_blank(reader.view())) break;
    }
    SPMV_ASSIGN_OR_RETURN(
        const MmSize size,
        mm_detail::parse_size_line(reader.view(), reader.line_no(), header,
                                   width));

    CooMatrix coo(size.rows, size.cols);
    // parse_size_line proved 2*nnz fits; the contract keeps that proof
    // attached to the arithmetic it guards.
    std::int64_t logical_nnz = size.nnz;
    if (header.symmetric)
        SPMV_EXPECT(checked_mul<std::int64_t>(2, size.nnz, logical_nnz));
    // Cap the up-front reservation: a lying size line must not be able to
    // trigger a huge allocation before the truncation check catches it.
    coo.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(logical_nnz, std::int64_t{1} << 24)));

    std::unordered_set<std::int64_t> seen_keys;
    if (options.strict)
        seen_keys.reserve(static_cast<std::size_t>(
            std::min<std::int64_t>(size.nnz, std::int64_t{1} << 24)));

    std::int64_t seen = 0;
    while (seen < size.nnz) {
        SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
        if (!have_line) break;
        const std::string_view line = reader.view();
        if (mm_detail::is_comment_or_blank(line)) continue;
        const std::int64_t line_no = reader.line_no();
        if (Status s = fault::maybe_fail("mm.read_entry"); !s.ok())
            return std::move(s).wrap("entry " + std::to_string(seen + 1));

        SPMV_ASSIGN_OR_RETURN(
            const mm_detail::MmEntry entry,
            mm_detail::parse_entry_line(line, line_no, header, size,
                                        options.strict));
        if (options.strict &&
            !seen_keys.insert(mm_detail::entry_key(entry, size)).second)
            return Error(ErrorCode::ValidationError,
                         "duplicate entry (" + std::to_string(entry.row) +
                             ", " + std::to_string(entry.col) + ")",
                         line_no);
        coo.add(entry.row - 1, entry.col - 1, entry.value);
        if (header.symmetric && entry.row != entry.col)
            coo.add(entry.col - 1, entry.row - 1,
                    header.skew ? -entry.value : entry.value);
        ++seen;
    }
    if (seen != size.nnz)
        return Error(ErrorCode::ParseError,
                     "truncated: size line declares " +
                         std::to_string(size.nnz) + " entries, found " +
                         std::to_string(seen),
                     std::max<std::int64_t>(reader.line_no(), 1));
    if (options.strict) {
        // Anything but comments and blanks after the final entry means the
        // size line undercounts — reject rather than silently drop data.
        for (;;) {
            SPMV_ASSIGN_OR_RETURN(bool have_line, reader.next());
            if (!have_line) break;
            if (!mm_detail::is_comment_or_blank(reader.view()))
                return Error(ErrorCode::ParseError,
                             "data after the declared final entry",
                             reader.line_no());
        }
    }
    return std::move(coo).to_csr_any(width);
}

/// Unwraps a forced-W32 parse into the narrow matrix the legacy entry
/// points return.
[[nodiscard]] Result<CsrMatrix> narrow_result(Result<AnyCsrMatrix> any) {
    if (!any.ok()) return std::move(any).to_error();
    AnyCsrMatrix m = std::move(any).value();
    SPMV_EXPECTS(m.as32() != nullptr);
    return std::move(m).take32();
}

}  // namespace

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market(std::istream& in,
                                         const MmReadOptions& options) {
    return narrow_result(
        std::move(read_impl(in, options, IndexWidthChoice::W32))
            .wrap("reading Matrix Market stream"));
}

[[nodiscard]] Result<CsrMatrix> try_read_matrix_market_file(const std::string& path,
                                              const MmReadOptions& options) {
    if (const Status s = fault::maybe_fail("mm.open"); !s.ok())
        return Status(s).wrap("reading '" + path + "'");
    std::ifstream in(path);
    if (!in)
        return Error(ErrorCode::ResourceError, "cannot open '" + path + "'");
    return narrow_result(std::move(read_impl(in, options, IndexWidthChoice::W32))
                             .wrap("reading '" + path + "'"));
}

[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_any(
    std::istream& in, const MmReadOptions& options) {
    return std::move(read_impl(in, options, options.index_width))
        .wrap("reading Matrix Market stream");
}

[[nodiscard]] Result<AnyCsrMatrix> try_read_matrix_market_any_file(
    const std::string& path, const MmReadOptions& options) {
    if (const Status s = fault::maybe_fail("mm.open"); !s.ok())
        return Status(s).wrap("reading '" + path + "'");
    std::ifstream in(path);
    if (!in)
        return Error(ErrorCode::ResourceError, "cannot open '" + path + "'");
    return std::move(read_impl(in, options, options.index_width))
        .wrap("reading '" + path + "'");
}

CsrMatrix read_matrix_market(std::istream& in) {
    Result<CsrMatrix> r = try_read_matrix_market(in);
    if (!r.ok()) throw_status(std::move(r).to_error());
    return std::move(r).value();
}

CsrMatrix read_matrix_market_file(const std::string& path) {
    Result<CsrMatrix> r = try_read_matrix_market_file(path);
    if (!r.ok()) throw_status(std::move(r).to_error());
    return std::move(r).value();
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();
    const auto values = m.values();
    for (std::int64_t r = 0; r < m.rows(); ++r) {
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
            out << (r + 1) << ' '
                << (colidx[static_cast<std::size_t>(i)] + 1) << ' '
                << values[static_cast<std::size_t>(i)] << '\n';
        }
    }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
    std::ofstream out(path);
    if (!out)
        throw_status(Error(ErrorCode::ResourceError,
                           "cannot open '" + path + "' for writing"));
    write_matrix_market(out, m);
    out.flush();
    if (!out)
        throw_status(Error(ErrorCode::ResourceError,
                           "write failed for '" + path + "'"));
}

}  // namespace spmvcache
