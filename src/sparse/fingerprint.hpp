// Matrix fingerprint: the plan-cache key of the serve daemon.
//
// The locality model's predictions depend on the matrix *pattern summary*,
// not the numerical values: dimensions, nnz, the nonzeros-per-row
// distribution (mu_K / CV_K drive §4.5.2), and how far column indices
// stray from the diagonal (bandedness drives x-reuse distances). The
// fingerprint captures exactly those: dims + nnz + a log2-bucketed
// row-length histogram + a log2-bucketed column-distance (bandwidth)
// profile, mixed into a 128-bit key. Two requests for the same matrix —
// or for structurally identical copies of it — hash to the same plan;
// near-duplicates that differ in any bucket do not collide by
// construction of the mix (see DESIGN.md §7 for the aliasing caveat:
// matrices agreeing on every summary bucket share a plan by design).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Number of log2 buckets in the row-length histogram (bucket i counts
/// rows with nnz in [2^(i-1), 2^i), bucket 0 counts empty rows; the last
/// bucket absorbs the tail).
inline constexpr std::size_t kFingerprintRowBuckets = 16;
/// Same bucketing for |col - row| of every nonzero (bucket 0 = diagonal).
inline constexpr std::size_t kFingerprintBandBuckets = 16;

/// Structural summary of a matrix plus its 128-bit mix.
struct MatrixFingerprint {
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
    std::array<std::uint64_t, kFingerprintRowBuckets> row_hist{};
    std::array<std::uint64_t, kFingerprintBandBuckets> band_hist{};
    std::uint64_t hash_hi = 0;
    std::uint64_t hash_lo = 0;

    [[nodiscard]] bool operator==(const MatrixFingerprint& other)
        const noexcept = default;
};

/// Computes the fingerprint in one pass over rowptr/colidx. The summary is
/// a function of the *pattern* only, so both index widths of the same
/// matrix produce an identical fingerprint (views of either width convert
/// implicitly).
[[nodiscard]] MatrixFingerprint fingerprint_matrix(const AnyCsrView& m);

/// 32-hex-digit key ("3f09..."), the external fingerprint identity used in
/// responses and logs.
[[nodiscard]] std::string to_string(const MatrixFingerprint& fp);

/// splitmix64 finalizer — the mixing primitive behind the fingerprint and
/// the plan-cache key digests (exposed so both stay consistent).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace spmvcache
