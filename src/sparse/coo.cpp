#include "sparse/coo.hpp"

#include <algorithm>
#include <limits>

#include "sparse/any_csr.hpp"
#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace spmvcache {

CooMatrix::CooMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
    SPMV_EXPECTS(rows >= 0);
    SPMV_EXPECTS(cols >= 0);
}

void CooMatrix::add(std::int64_t row, std::int64_t col, double value) {
    SPMV_EXPECTS(row >= 0 && row < rows_);
    SPMV_EXPECTS(col >= 0 && col < cols_);
    entries_.push_back(CooEntry{row, col, value});
}

std::size_t CooMatrix::sort_and_combine() {
    std::sort(entries_.begin(), entries_.end(),
              [](const CooEntry& a, const CooEntry& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    // Merge duplicates in place.
    const std::size_t before = entries_.size();
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].value += entries_[i].value;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
    return before - out;
}

template <class Idx>
[[nodiscard]] Result<BasicCsrMatrix<Idx>> CooMatrix::to_csr_width(
    std::size_t* duplicates) && {
    const std::size_t merged = sort_and_combine();
    if (duplicates != nullptr) *duplicates = merged;
    if constexpr (Idx::width == IndexWidth::W32) {
        if (!width32_representable(rows_, cols_,
                                   static_cast<std::int64_t>(entries_.size())))
            return Error(ErrorCode::UnsupportedError,
                         "matrix does not fit the 32-bit index layout "
                         "(rows " + std::to_string(rows_) + ", cols " +
                             std::to_string(cols_) + ", nnz " +
                             std::to_string(entries_.size()) + ")");
    }
    try {
        BasicCsrBuilder<Idx> builder(rows_, cols_, entries_.size());
        for (const auto& e : entries_) builder.push(e.row, e.col, e.value);
        entries_.clear();
        entries_.shrink_to_fit();
        return std::move(builder).finish();
    } catch (const std::bad_alloc&) {
        return Error(ErrorCode::ResourceError,
                     "out of memory assembling CSR (" +
                         std::to_string(entries_.size()) + " entries)");
    }
}

[[nodiscard]] Result<AnyCsrMatrix> CooMatrix::to_csr_any(
    IndexWidthChoice choice, std::size_t* duplicates) && {
    const std::size_t merged = sort_and_combine();
    if (duplicates != nullptr) *duplicates = merged;
    Result<IndexWidth> width = resolve_index_width(
        choice, rows_, cols_, static_cast<std::int64_t>(entries_.size()));
    if (!width.ok()) return std::move(width).to_error();
    if (width.value() == IndexWidth::W32) {
        Result<CsrMatrix> narrow = std::move(*this).to_csr_width<Idx32>();
        if (!narrow.ok()) return std::move(narrow).to_error();
        return AnyCsrMatrix(std::move(narrow).value());
    }
    Result<CsrMatrix64> wide = std::move(*this).to_csr_width<Idx64>();
    if (!wide.ok()) return std::move(wide).to_error();
    return AnyCsrMatrix(std::move(wide).value());
}

CsrMatrix CooMatrix::to_csr() && {
    sort_and_combine();

    CsrBuilder builder(rows_, cols_, entries_.size());
    for (const auto& e : entries_) builder.push(e.row, e.col, e.value);
    entries_.clear();
    entries_.shrink_to_fit();
    return std::move(builder).finish();
}

[[nodiscard]] Result<CsrMatrix> CooMatrix::try_to_csr(std::size_t* duplicates) && {
    return std::move(*this).to_csr_width<Idx32>(duplicates);
}

template Result<BasicCsrMatrix<Idx32>> CooMatrix::to_csr_width<Idx32>(
    std::size_t*) &&;
template Result<BasicCsrMatrix<Idx64>> CooMatrix::to_csr_width<Idx64>(
    std::size_t*) &&;

}  // namespace spmvcache
