#include "sparse/coo.hpp"

#include <algorithm>
#include <limits>

#include "sparse/csr.hpp"
#include "util/error.hpp"

namespace spmvcache {

CooMatrix::CooMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
    SPMV_EXPECTS(rows >= 0);
    SPMV_EXPECTS(cols >= 0);
    SPMV_EXPECTS(cols <= std::numeric_limits<std::int32_t>::max());
}

void CooMatrix::add(std::int64_t row, std::int64_t col, double value) {
    SPMV_EXPECTS(row >= 0 && row < rows_);
    SPMV_EXPECTS(col >= 0 && col < cols_);
    entries_.push_back(
        CooEntry{row, static_cast<std::int32_t>(col), value});
}

std::size_t CooMatrix::sort_and_combine() {
    std::sort(entries_.begin(), entries_.end(),
              [](const CooEntry& a, const CooEntry& b) {
                  return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    // Merge duplicates in place.
    const std::size_t before = entries_.size();
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].value += entries_[i].value;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
    return before - out;
}

CsrMatrix CooMatrix::to_csr() && {
    sort_and_combine();

    CsrBuilder builder(rows_, cols_, entries_.size());
    for (const auto& e : entries_) builder.push(e.row, e.col, e.value);
    entries_.clear();
    entries_.shrink_to_fit();
    return std::move(builder).finish();
}

[[nodiscard]] Result<CsrMatrix> CooMatrix::try_to_csr(std::size_t* duplicates) && {
    const std::size_t merged = sort_and_combine();
    if (duplicates != nullptr) *duplicates = merged;
    try {
        CsrBuilder builder(rows_, cols_, entries_.size());
        for (const auto& e : entries_) builder.push(e.row, e.col, e.value);
        entries_.clear();
        entries_.shrink_to_fit();
        return std::move(builder).finish();
    } catch (const std::bad_alloc&) {
        return Error(ErrorCode::ResourceError,
                     "out of memory assembling CSR (" +
                         std::to_string(entries_.size()) + " entries)");
    }
}

}  // namespace spmvcache
