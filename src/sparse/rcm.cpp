#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace spmvcache {

namespace {

/// Symmetrised adjacency in CSR-like arrays (pattern only, no self-loops).
struct Graph {
    std::vector<std::int64_t> offsets;
    std::vector<std::int32_t> neighbors;

    [[nodiscard]] std::int64_t degree(std::int32_t v) const {
        return offsets[static_cast<std::size_t>(v) + 1] -
               offsets[static_cast<std::size_t>(v)];
    }
};

Graph symmetrize(const CsrMatrix& m) {
    const auto n = m.rows();
    const auto rowptr = m.rowptr();
    const auto colidx = m.colidx();

    // Count symmetric degree. To dedup A and A^T edges we build adjacency
    // lists and sort/unique per vertex; memory is O(2*nnz).
    std::vector<std::int64_t> count(static_cast<std::size_t>(n) + 1, 0);
    for (std::int64_t r = 0; r < n; ++r) {
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
            const auto c = colidx[static_cast<std::size_t>(i)];
            if (c == r) continue;
            ++count[static_cast<std::size_t>(r) + 1];
            ++count[static_cast<std::size_t>(c) + 1];
        }
    }
    for (std::size_t v = 1; v < count.size(); ++v) count[v] += count[v - 1];

    Graph g;
    g.offsets = count;
    g.neighbors.resize(static_cast<std::size_t>(g.offsets.back()));
    std::vector<std::int64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (std::int64_t r = 0; r < n; ++r) {
        for (auto i = rowptr[static_cast<std::size_t>(r)];
             i < rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
            const auto c = colidx[static_cast<std::size_t>(i)];
            if (c == r) continue;
            g.neighbors[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(r)]++)] = c;
            g.neighbors[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(c)]++)] =
                static_cast<std::int32_t>(r);
        }
    }
    // Dedup each adjacency list in place.
    std::vector<std::int64_t> new_offsets(g.offsets.size(), 0);
    std::size_t out = 0;
    for (std::int64_t v = 0; v < n; ++v) {
        const auto begin = static_cast<std::size_t>(
            g.offsets[static_cast<std::size_t>(v)]);
        const auto end = static_cast<std::size_t>(
            g.offsets[static_cast<std::size_t>(v) + 1]);
        std::sort(g.neighbors.begin() + static_cast<std::ptrdiff_t>(begin),
                  g.neighbors.begin() + static_cast<std::ptrdiff_t>(end));
        const std::size_t start_out = out;
        for (std::size_t i = begin; i < end; ++i) {
            if (out > start_out && g.neighbors[out - 1] == g.neighbors[i])
                continue;
            g.neighbors[out++] = g.neighbors[i];
        }
        new_offsets[static_cast<std::size_t>(v) + 1] =
            static_cast<std::int64_t>(out);
    }
    g.neighbors.resize(out);
    g.offsets = std::move(new_offsets);
    return g;
}

/// Finds a pseudo-peripheral vertex by repeated BFS (George-Liu).
std::int32_t pseudo_peripheral(const Graph& g, std::int32_t start,
                               std::vector<std::int32_t>& level_scratch) {
    std::int32_t current = start;
    std::int64_t eccentricity = -1;
    for (;;) {
        // BFS from `current`, recording levels in scratch (-1 = unseen).
        std::fill(level_scratch.begin(), level_scratch.end(), -1);
        std::queue<std::int32_t> q;
        q.push(current);
        level_scratch[static_cast<std::size_t>(current)] = 0;
        std::int32_t last = current;
        std::int64_t max_level = 0;
        while (!q.empty()) {
            const auto v = q.front();
            q.pop();
            const auto lvl = level_scratch[static_cast<std::size_t>(v)];
            if (lvl > max_level) max_level = lvl;
            last = v;
            for (auto i = g.offsets[static_cast<std::size_t>(v)];
                 i < g.offsets[static_cast<std::size_t>(v) + 1]; ++i) {
                const auto u = g.neighbors[static_cast<std::size_t>(i)];
                if (level_scratch[static_cast<std::size_t>(u)] < 0) {
                    level_scratch[static_cast<std::size_t>(u)] = lvl + 1;
                    q.push(u);
                }
            }
        }
        if (max_level <= eccentricity) return current;
        eccentricity = max_level;
        // Among deepest-level vertices, take the one with minimum degree;
        // the BFS above visits them in order, `last` is a cheap proxy.
        current = last;
    }
}

}  // namespace

std::vector<std::int32_t> rcm_ordering(const CsrMatrix& m) {
    SPMV_EXPECTS(m.rows() == m.cols());
    const auto n = m.rows();
    const Graph g = symmetrize(m);

    std::vector<std::int32_t> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<std::int32_t> level_scratch(static_cast<std::size_t>(n), -1);

    for (std::int32_t seed = 0; seed < n; ++seed) {
        if (visited[static_cast<std::size_t>(seed)]) continue;
        const std::int32_t root =
            g.degree(seed) == 0 ? seed
                                : pseudo_peripheral(g, seed, level_scratch);

        // Cuthill-McKee BFS: neighbors enqueued in increasing-degree order.
        std::queue<std::int32_t> q;
        q.push(root);
        visited[static_cast<std::size_t>(root)] = true;
        std::vector<std::int32_t> nbrs;
        while (!q.empty()) {
            const auto v = q.front();
            q.pop();
            order.push_back(v);
            nbrs.clear();
            for (auto i = g.offsets[static_cast<std::size_t>(v)];
                 i < g.offsets[static_cast<std::size_t>(v) + 1]; ++i) {
                const auto u = g.neighbors[static_cast<std::size_t>(i)];
                if (!visited[static_cast<std::size_t>(u)]) {
                    visited[static_cast<std::size_t>(u)] = true;
                    nbrs.push_back(u);
                }
            }
            std::sort(nbrs.begin(), nbrs.end(),
                      [&g](std::int32_t a, std::int32_t b) {
                          return g.degree(a) != g.degree(b)
                                     ? g.degree(a) < g.degree(b)
                                     : a < b;
                      });
            for (auto u : nbrs) q.push(u);
        }
    }
    // Reverse for RCM.
    std::reverse(order.begin(), order.end());
    SPMV_ENSURES(order.size() == static_cast<std::size_t>(n));
    return order;
}

CsrMatrix rcm_reorder(const CsrMatrix& m) {
    const auto perm = rcm_ordering(m);
    return m.permuted_symmetric(perm);
}

}  // namespace spmvcache
