// Runtime index-width selection for the CSR/SELL storage pipeline.
//
// The repository supports two physical index layouts, in the spirit of
// ellspmv's compile-time IDXTYPEWIDTH switch — but resolved at *runtime*,
// per matrix:
//
//   W32  4-byte column indices (int32) + 4-byte row pointers (uint32)
//   W64  8-byte column indices (int64) + 8-byte row pointers (int64)
//
// A matrix narrows to W32 whenever rows, cols and nnz all fit the 32-bit
// layout; the bandwidth-bound SpMV kernel then streams half the index
// bytes per nonzero and the `.spmvc` cache entry shrinks by ~1/3. The
// colidx element stays *signed* 32-bit so the AVX2/AVX-512 i32 gathers
// are safe without masking, which bounds cols at INT32_MAX rather than
// UINT32_MAX; row ids (SELL permutations, trace cursors) reuse the same
// signed element, bounding rows identically; rowptr is unsigned, so nnz
// may use the full 32-bit range.
//
// Everything that stores or streams indices is templated on one of the
// two tag types below (Idx32/Idx64); pipeline boundaries that must pick a
// width at runtime carry an IndexWidth (resolved) or IndexWidthChoice
// (requested) and dispatch through sparse/any_csr.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace spmvcache {

/// Physical index layout of a concrete matrix (resolved).
enum class IndexWidth : std::uint8_t { W32 = 32, W64 = 64 };

/// Requested index layout (CLI --index-width {auto,32,64}).
enum class IndexWidthChoice : std::uint8_t { Auto, W32, W64 };

/// Narrow 32-bit layout: the default for every representable matrix.
struct Idx32 {
    using index_type = std::int32_t;    ///< colidx element (gather-safe)
    using offset_type = std::uint32_t;  ///< rowptr element
    static constexpr IndexWidth width = IndexWidth::W32;
};

/// Wide 64-bit layout: the fallback for matrices beyond the W32 bounds.
struct Idx64 {
    using index_type = std::int64_t;
    using offset_type = std::int64_t;
    static constexpr IndexWidth width = IndexWidth::W64;
};

[[nodiscard]] constexpr const char* to_string(IndexWidth w) noexcept {
    return w == IndexWidth::W32 ? "32" : "64";
}

[[nodiscard]] constexpr const char* to_string(IndexWidthChoice c) noexcept {
    switch (c) {
        case IndexWidthChoice::Auto: return "auto";
        case IndexWidthChoice::W32: return "32";
        case IndexWidthChoice::W64: return "64";
    }
    return "auto";
}

/// Build-configured default for the runtime choice (cmake
/// `SPMV_DEFAULT_INDEX_WIDTH={auto,32,64}`, mapped to 0/32/64 here).
/// Pipeline entry points (MmReadOptions, MatrixSource) default to this,
/// so a 32-forced build runs the whole tier-1 suite through the narrow
/// pipeline without touching any call site; --index-width overrides per
/// invocation as usual.
#ifndef SPMV_DEFAULT_INDEX_WIDTH_VALUE
#define SPMV_DEFAULT_INDEX_WIDTH_VALUE 0
#endif

[[nodiscard]] constexpr IndexWidthChoice default_index_width_choice() noexcept {
    static_assert(SPMV_DEFAULT_INDEX_WIDTH_VALUE == 0 ||
                      SPMV_DEFAULT_INDEX_WIDTH_VALUE == 32 ||
                      SPMV_DEFAULT_INDEX_WIDTH_VALUE == 64,
                  "SPMV_DEFAULT_INDEX_WIDTH_VALUE must be 0 (auto), 32 or 64");
    return SPMV_DEFAULT_INDEX_WIDTH_VALUE == 32   ? IndexWidthChoice::W32
           : SPMV_DEFAULT_INDEX_WIDTH_VALUE == 64 ? IndexWidthChoice::W64
                                                  : IndexWidthChoice::Auto;
}

/// Parses "auto", "32" or "64" (ValidationError otherwise).
[[nodiscard]] inline Result<IndexWidthChoice> parse_index_width_choice(
    std::string_view text) {
    if (text == "auto") return IndexWidthChoice::Auto;
    if (text == "32") return IndexWidthChoice::W32;
    if (text == "64") return IndexWidthChoice::W64;
    return Error(ErrorCode::ValidationError,
                 "invalid index width '" + std::string(text) +
                     "' (expected auto, 32 or 64)");
}

/// Bytes of one colidx element at width `w`.
[[nodiscard]] constexpr std::uint32_t colidx_width_bytes(IndexWidth w) noexcept {
    return w == IndexWidth::W32 ? sizeof(Idx32::index_type)
                                : sizeof(Idx64::index_type);
}

/// Bytes of one rowptr element at width `w`.
[[nodiscard]] constexpr std::uint32_t rowptr_width_bytes(IndexWidth w) noexcept {
    return w == IndexWidth::W32 ? sizeof(Idx32::offset_type)
                                : sizeof(Idx64::offset_type);
}

/// True when an (rows, cols, nnz) shape fits the W32 layout: rowptr holds
/// nnz in uint32, and every row or column id fits int32 (gather-safe, and
/// narrow enough for SELL permutations). Pure — callable on synthetic
/// shapes without allocating anything.
[[nodiscard]] constexpr bool width32_representable(std::int64_t rows,
                                                   std::int64_t cols,
                                                   std::int64_t nnz) noexcept {
    return rows >= 0 && cols >= 0 && nnz >= 0 &&
           rows <= static_cast<std::int64_t>(
                       std::numeric_limits<std::int32_t>::max()) &&
           cols <= static_cast<std::int64_t>(
                       std::numeric_limits<std::int32_t>::max()) &&
           nnz <= static_cast<std::int64_t>(
                      std::numeric_limits<std::uint32_t>::max());
}

/// Resolves a requested width against a concrete shape: Auto narrows to
/// W32 whenever the shape fits and widens to W64 otherwise; a forced W32
/// on an unrepresentable shape is a typed UnsupportedError naming the
/// violated bound (raised before any allocation happens).
[[nodiscard]] inline Result<IndexWidth> resolve_index_width(
    IndexWidthChoice choice, std::int64_t rows, std::int64_t cols,
    std::int64_t nnz) {
    const bool fits = width32_representable(rows, cols, nnz);
    switch (choice) {
        case IndexWidthChoice::Auto:
            return fits ? IndexWidth::W32 : IndexWidth::W64;
        case IndexWidthChoice::W64:
            return IndexWidth::W64;
        case IndexWidthChoice::W32:
            if (fits) return IndexWidth::W32;
            return Error(
                ErrorCode::UnsupportedError,
                "matrix does not fit the 32-bit index layout (rows " +
                    std::to_string(rows) + ", cols " + std::to_string(cols) +
                    ", nnz " + std::to_string(nnz) +
                    " vs bounds rows <= 2^31-1, cols <= 2^31-1, nnz <= "
                    "2^32-1); use --index-width auto or 64");
    }
    return Error(ErrorCode::ValidationError, "invalid index width choice");
}

}  // namespace spmvcache
