// Coordinate-format sparse matrix: the assembly format every generator and
// the Matrix Market reader produce before conversion to CSR. Entries keep
// 64-bit coordinates regardless of the target CSR index width — the width
// is chosen at conversion time (to_csr_width / to_csr_any), so narrow
// matrices are materialized narrow directly with no 64->32 copy pass over
// the finished CSR arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/index_width.hpp"
#include "util/status.hpp"

namespace spmvcache {

template <class Idx>
class BasicCsrMatrix;  // forward declaration (csr.hpp)
using CsrMatrix = BasicCsrMatrix<Idx32>;
class AnyCsrMatrix;  // forward declaration (any_csr.hpp)

/// One nonzero entry in coordinate form.
struct CooEntry {
    std::int64_t row = 0;
    std::int64_t col = 0;
    double value = 0.0;
};

/// Mutable coordinate-format matrix used during construction.
class CooMatrix {
public:
    CooMatrix() = default;

    /// Pre: rows >= 0, cols >= 0.
    CooMatrix(std::int64_t rows, std::int64_t cols);

    /// Appends an entry. Pre: 0 <= row < rows(), 0 <= col < cols().
    void add(std::int64_t row, std::int64_t col, double value);

    /// Reserves storage for `n` entries.
    void reserve(std::size_t n) { entries_.reserve(n); }

    /// Sorts entries row-major and merges duplicates by summing values.
    /// Returns the number of entries removed by merging (0 = no duplicates).
    std::size_t sort_and_combine();

    /// Converts to narrow CSR; sorts and combines duplicates first.
    /// Pre: the shape fits the W32 layout.
    [[nodiscard]] CsrMatrix to_csr() &&;

    /// Typed narrow conversion for input pipelines: never throws for data
    /// the add() contract admitted; reports merged duplicates through
    /// `duplicates` (may be null) so strict parsers can reject them.
    /// UnsupportedError when the shape exceeds the W32 bounds.
    [[nodiscard]] Result<CsrMatrix> try_to_csr(
        std::size_t* duplicates = nullptr) &&;

    /// Width-explicit conversion: materializes the CSR arrays directly at
    /// `Idx`'s element widths. UnsupportedError when Idx is Idx32 and the
    /// shape exceeds the W32 bounds.
    template <class Idx>
    [[nodiscard]] Result<BasicCsrMatrix<Idx>> to_csr_width(
        std::size_t* duplicates = nullptr) &&;

    /// Resolves `choice` against the final (post-merge) shape and converts
    /// at the resolved width (auto narrows whenever representable).
    [[nodiscard]] Result<AnyCsrMatrix> to_csr_any(
        IndexWidthChoice choice, std::size_t* duplicates = nullptr) &&;

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::vector<CooEntry>& entries() const noexcept {
        return entries_;
    }

private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<CooEntry> entries_;
};

extern template Result<BasicCsrMatrix<Idx32>> CooMatrix::to_csr_width<Idx32>(
    std::size_t*) &&;
extern template Result<BasicCsrMatrix<Idx64>> CooMatrix::to_csr_width<Idx64>(
    std::size_t*) &&;

}  // namespace spmvcache
