// Coordinate-format sparse matrix: the assembly format every generator and
// the Matrix Market reader produce before conversion to CSR.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace spmvcache {

class CsrMatrix;  // forward declaration (csr.hpp)

/// One nonzero entry in coordinate form.
struct CooEntry {
    std::int64_t row = 0;
    std::int32_t col = 0;
    double value = 0.0;
};

/// Mutable coordinate-format matrix used during construction.
class CooMatrix {
public:
    CooMatrix() = default;

    /// Pre: rows >= 0, cols >= 0 and cols representable as int32.
    CooMatrix(std::int64_t rows, std::int64_t cols);

    /// Appends an entry. Pre: 0 <= row < rows(), 0 <= col < cols().
    void add(std::int64_t row, std::int64_t col, double value);

    /// Reserves storage for `n` entries.
    void reserve(std::size_t n) { entries_.reserve(n); }

    /// Sorts entries row-major and merges duplicates by summing values.
    /// Returns the number of entries removed by merging (0 = no duplicates).
    std::size_t sort_and_combine();

    /// Converts to CSR; sorts and combines duplicates first.
    [[nodiscard]] CsrMatrix to_csr() &&;

    /// Typed conversion for input pipelines: never throws for data the
    /// add() contract admitted; reports merged duplicates through
    /// `duplicates` (may be null) so strict parsers can reject them.
    [[nodiscard]] Result<CsrMatrix> try_to_csr(
        std::size_t* duplicates = nullptr) &&;

    [[nodiscard]] std::int64_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::int64_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
    [[nodiscard]] const std::vector<CooEntry>& entries() const noexcept {
        return entries_;
    }

private:
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::vector<CooEntry> entries_;
};

}  // namespace spmvcache
