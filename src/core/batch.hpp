// Batch runner: the model pipeline over a directory or list of matrices
// with per-matrix isolation, so one malformed download cannot abort a
// 490-matrix SuiteSparse-scale sweep (§5 of the paper).
//
// Each matrix runs through parse -> validate -> stats -> model. A failure
// in any stage is captured as a typed Error (never an escaping exception),
// recorded with its stage, and the batch moves on. Transient failures
// (ResourceError, injected faults) are retried once; an optional
// per-matrix wall-clock timeout turns runaway inputs into TimeoutError.
// The report serialises to CSV or JSON for machine consumption.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "model/options.hpp"
#include "sparse/index_width.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Pipeline stage a matrix was in when it succeeded or failed.
enum class BatchStage : std::uint8_t {
    Parse,     ///< reading the .mtx file
    Validate,  ///< CSR invariant check
    Stats,     ///< matrix statistics (mu_K, CV_K, working set)
    Model,     ///< method (A) miss prediction
};

[[nodiscard]] const char* to_string(BatchStage stage) noexcept;

/// Knobs for one batch sweep.
struct BatchOptions {
    /// Parse in strict mode (reject duplicates, trailing garbage, ...).
    bool strict_parse = false;
    /// Skip the model stage (parse/validate/stats only) for fast triage.
    bool run_model = true;
    std::int64_t threads = 48;
    /// Host workers for the model's sharded stack passes (ModelOptions::
    /// jobs): 0 = hardware concurrency, 1 = serial.
    std::int64_t jobs = 0;
    /// Packed-trace replay budget (ModelOptions::trace_buffer_bytes):
    /// kTraceBufferAuto = derive from host RAM, 0 = always stream.
    std::uint64_t trace_buffer_bytes = kTraceBufferAuto;
    std::vector<std::uint32_t> l2_way_options = {2, 3, 4, 5, 6, 7};
    /// Per-matrix wall-clock budget in seconds; <= 0 disables the timeout.
    /// A timed-out matrix is recorded as TimeoutError and abandoned (its
    /// worker thread is detached — see DESIGN.md).
    double timeout_seconds = 0.0;
    /// Retry a failed matrix once when the failure looks transient
    /// (ResourceError or an injected fault).
    bool retry_transient = true;
    /// Polled between matrices (and before a retry); when it returns true
    /// the sweep drains gracefully — matrices not yet started are recorded
    /// as Cancelled so the CSV/JSON report still accounts for every input.
    /// The CLI wires this to the SIGINT/SIGTERM drain flag (util/signal).
    std::function<bool()> cancel_check;
    /// Directory for `.spmvc` binary cache entries (core/matrix_source):
    /// a warm cache turns the parse stage into an mmap; empty disables it.
    std::string cache_dir;
    /// Parser workers on a cache miss (1 serial, 0 all cores, N > 1 = N).
    std::int64_t parse_jobs = 1;
    /// SHARDS sampling rate for the model stage (ModelOptions::
    /// sample_rate): 1 = exact, R < 1 = approximate predictions at ~R of
    /// the stack-pass cost. CLI: --approx[=R].
    double sample_rate = 1.0;
    /// Physical index width for every load (core/matrix_source.hpp):
    /// Auto narrows when representable. CLI: --index-width; default =
    /// the build-configured choice.
    IndexWidthChoice index_width = default_index_width_choice();
};

/// Outcome of one matrix.
struct BatchItemResult {
    std::string name;  ///< file stem, e.g. "bcsstk17"
    std::string path;
    bool ok = false;
    BatchStage stage = BatchStage::Parse;  ///< last stage entered
    ErrorCode code = ErrorCode::Ok;
    std::string message;  ///< rendered error; empty on success
    bool retried = false;
    double seconds = 0.0;
    /// How the matrix was ingested ("parsed" / "cache-hit"); see
    /// LoadOrigin in core/matrix_source.hpp.
    std::string load_origin = "parsed";
    /// True when this run wrote (or refreshed) the .spmvc cache entry.
    bool cache_written = false;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
    /// Best predicted configuration (model stage only).
    std::uint32_t best_l2_ways = 0;
    double best_l2_misses = 0.0;
    /// Model-stage instrumentation (zero when the model stage was skipped
    /// or not reached): wall-clock, shard count = active L2 segments, host
    /// workers used, and demand references replayed per iteration.
    double model_seconds = 0.0;
    std::int64_t model_shards = 0;
    std::int64_t model_jobs = 0;
    std::uint64_t model_references = 0;
    /// True when the model ran as a SHARDS estimate (sample_rate < 1 and
    /// not degraded to exact by an armed `reuse.sample` fault).
    bool model_sampled = false;
    /// Rate the model stage actually used (1.0 when exact or degraded).
    double model_sample_rate = 1.0;
    /// References that survived the sampling filter and reached the
    /// engines (== model_references when exact).
    std::uint64_t model_sampled_refs = 0;
};

/// Standardised CLI exit codes (also used by `spmvcache batch`).
inline constexpr int kExitOk = 0;
inline constexpr int kExitSomeFailed = 1;
inline constexpr int kExitUsage = 2;

/// Everything a sweep produced, failures included.
struct BatchReport {
    std::vector<BatchItemResult> items;

    [[nodiscard]] std::size_t succeeded() const noexcept;
    [[nodiscard]] std::size_t failed() const noexcept;
    /// kExitOk when every matrix modelled, kExitSomeFailed otherwise.
    [[nodiscard]] int exit_code() const noexcept;
};

/// Expands `spec` into matrix paths: a directory yields its *.mtx files
/// (sorted), a .mtx path yields itself, and any other file is read as a
/// list (one path per line, '#' comments and blanks skipped).
[[nodiscard]] Result<std::vector<std::string>> collect_matrix_paths(
    const std::string& spec);

/// Runs the pipeline over `paths` with per-matrix isolation. Never throws
/// for bad input; programmer errors (contract violations) surface as
/// InternalError items.
[[nodiscard]] BatchReport run_batch(const std::vector<std::string>& paths,
                                    const BatchOptions& options = {});

/// Machine-readable failure reports.
void write_batch_report_csv(std::ostream& out, const BatchReport& report);
void write_batch_report_json(std::ostream& out, const BatchReport& report);

}  // namespace spmvcache
