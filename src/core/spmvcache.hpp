// Umbrella header: the public API of the spmvcache library.
//
// A downstream user typically needs:
//   * a matrix        — sparse/csr.hpp, sparse/matrix_market.hpp, gen/...
//   * the model       — run_method_a / run_method_b (model/...)
//   * the "hardware"  — run_sector_sweep (core/experiment.hpp)
//   * interpretation  — classify (model/classify.hpp), estimate_timing
#pragma once

#include "cachesim/a64fx.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/batch.hpp"
#include "core/collection.hpp"
#include "core/deadline.hpp"
#include "core/experiment.hpp"
#include "core/matrix_source.hpp"
#include "core/model_runner.hpp"
#include "kernels/cg.hpp"
#include "kernels/spmv.hpp"
#include "kernels/spmv_merge.hpp"
#include "model/analytic.hpp"
#include "model/classify.hpp"
#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "perf/timing.hpp"
#include "reuse/histogram.hpp"
#include "reuse/kim.hpp"
#include "reuse/naive.hpp"
#include "reuse/olken.hpp"
#include "sparse/csr.hpp"
#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/rmat.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/gen/suite.hpp"
#include "sparse/gen/table1.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/matrix_stats.hpp"
#include "sparse/partition.hpp"
#include "sparse/rcm.hpp"
#include "trace/spmv_trace.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"
