#include "core/experiment.hpp"

#include <memory>

#include "trace/spmv_trace.hpp"
#include "util/error.hpp"

namespace spmvcache {

double MeasuredConfig::l2_miss_difference_percent(
    const MeasuredConfig& baseline) const {
    const auto base = static_cast<double>(baseline.l2.fills());
    if (base == 0.0) return 0.0;
    return 100.0 * (static_cast<double>(l2.fills()) - base) / base;
}

double MeasuredConfig::l2_demand_difference_percent(
    const MeasuredConfig& baseline) const {
    const auto base = static_cast<double>(baseline.l2.demand_misses());
    if (base == 0.0) return 0.0;
    return 100.0 * (static_cast<double>(l2.demand_misses()) - base) / base;
}

double MeasuredConfig::speedup_over(const MeasuredConfig& baseline) const {
    if (timing.seconds == 0.0) return 1.0;
    return baseline.timing.seconds / timing.seconds;
}

namespace {

/// Width-typed body of run_sector_sweep: the trace generator is templated
/// on the physical index, but the simulated addresses come from SpmvLayout
/// with the paper's (4, 8)-byte accounting at either width, so the sweep
/// result is identical for a narrow and a wide load of the same matrix.
template <class Idx>
std::vector<MeasuredConfig> run_sector_sweep_impl(
    const BasicCsrView<Idx>& m, const std::vector<SectorWays>& configs,
    const ExperimentOptions& options) {
    SPMV_EXPECTS(!configs.empty());
    SPMV_EXPECTS(options.threads >= 1 &&
                 options.threads <= options.machine.cores);

    // One simulator per configuration; sizing the machine to the thread
    // count (only segments with active threads exist, as in the paper's
    // sequential runs that see a single 8 MiB segment).
    A64fxConfig machine = options.machine;
    machine.cores = options.threads;
    std::vector<std::unique_ptr<MemoryHierarchy>> sims;
    sims.reserve(configs.size());
    for (const auto& ways : configs) {
        auto sim = std::make_unique<MemoryHierarchy>(machine);
        sim->set_sector_ways(ways);
        sims.push_back(std::move(sim));
    }

    const SpmvLayout layout(m, machine.l2.line_bytes);
    const TraceConfig trace_cfg{options.threads, options.partition,
                                options.quantum,
                                options.x_prefetch_distance};

    auto play_iteration = [&] {
        generate_spmv_trace(m, layout, trace_cfg, [&](const MemRef& ref) {
            const int sector = sector_of(ref.object, options.policy);
            if (ref.is_prefetch) {
                for (auto& sim : sims)
                    sim->software_prefetch(ref.thread, ref.line, sector);
            } else {
                for (auto& sim : sims)
                    sim->demand_access(ref.thread, ref.line, sector,
                                       ref.is_write);
            }
        });
    };

    for (std::int64_t i = 0; i < options.warmup_iterations; ++i)
        play_iteration();
    for (auto& sim : sims) sim->reset_counters();
    play_iteration();

    const RowPartition partition(m, options.threads, options.partition);
    const auto nnz_per_thread = partition.nnz_per_thread(m);

    std::vector<MeasuredConfig> results;
    results.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        MeasuredConfig mc;
        mc.ways = configs[i];
        mc.l1 = sims[i]->l1_total();
        mc.l2 = sims[i]->l2_total();
        mc.timing = estimate_timing(*sims[i], nnz_per_thread, options.timing);
        results.push_back(mc);
    }
    return results;
}

}  // namespace

std::vector<MeasuredConfig> run_sector_sweep(
    const AnyCsrView& m, const std::vector<SectorWays>& configs,
    const ExperimentOptions& options) {
    return m.visit([&](const auto& v) {
        return run_sector_sweep_impl(v, configs, options);
    });
}

ModelComparison model_vs_measured(
    const AnyCsrView& m, const std::vector<std::uint32_t>& l2_way_options,
    const ExperimentOptions& options) {
    ModelComparison comparison;
    comparison.stats = compute_stats(m);

    // Measured: unpartitioned baseline plus each L2 way count (L1 sector
    // cache off, matching the setup of Tables 2 and 3).
    std::vector<SectorWays> configs;
    configs.push_back(SectorWays{0, 0});
    for (const auto w : l2_way_options) configs.push_back(SectorWays{w, 0});
    const auto measured = run_sector_sweep(m, configs, options);
    comparison.measured_l2.reserve(measured.size());
    for (const auto& mc : measured)
        comparison.measured_l2.push_back(static_cast<double>(mc.l2.fills()));
    // All lines entering the L1 (demand refills + prefetch fills): the
    // L1 analogue of the corrected L2 miss metric, and what the
    // fully-associative model predicts.
    comparison.measured_l1_unpartitioned =
        static_cast<double>(measured.front().l1.refills +
                            measured.front().l1.prefetch_fills);

    // Predicted.
    ModelOptions model_options;
    model_options.machine = options.machine;
    model_options.threads = options.threads;
    model_options.policy = options.policy;
    model_options.l2_way_options = l2_way_options;
    model_options.partition = options.partition;
    model_options.quantum = options.quantum;
    comparison.method_a = run_method_a(m, model_options);
    comparison.method_b = run_method_b(m, model_options);
    return comparison;
}

}  // namespace spmvcache
