// A matrix "source": either a Matrix Market file path or a generator spec
// (`FAMILY:N`, e.g. `stencil2d5:512`). The CLI subcommands and the serve
// daemon share this one loader, so a request can name a matrix exactly the
// way the command line does and both front ends agree on what it denotes —
// canonical_key() is that shared identity (quarantine and logging key on
// it before a fingerprint can exist).
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Where a request's matrix comes from. Exactly one of `path` / `gen_spec`
/// is non-empty.
struct MatrixSource {
    std::string path;      ///< Matrix Market file
    std::string gen_spec;  ///< generator family:size spec
    std::uint64_t seed = 42;
    bool strict_parse = false;

    [[nodiscard]] bool empty() const noexcept {
        return path.empty() && gen_spec.empty();
    }

    /// Stable identity string ("file:/a/b.mtx|strict=1", "gen:banded:64@42")
    /// used for quarantine keys and log lines.
    [[nodiscard]] std::string canonical_key() const;
};

/// Builds a matrix from a generator spec (`stencil2d5:512`). Families:
/// stencil2d5 stencil3d27 banded circuit random randomcv blockfem.
[[nodiscard]] Result<CsrMatrix> generated_matrix(const std::string& spec,
                                                 std::uint64_t seed);

/// Loads the source (file parse or generator run), typed errors on failure.
[[nodiscard]] Result<CsrMatrix> load_matrix_source(const MatrixSource& source);

}  // namespace spmvcache
