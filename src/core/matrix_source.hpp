// A matrix "source": either a Matrix Market file path or a generator spec
// (`FAMILY:N`, e.g. `stencil2d5:512`). The CLI subcommands and the serve
// daemon share this one loader, so a request can name a matrix exactly the
// way the command line does and both front ends agree on what it denotes —
// canonical_key() is that shared identity (quarantine and logging key on
// it before a fingerprint can exist).
//
// With cache_dir set, file sources flow through the `.spmvc` binary cache
// (sparse/binary_cache.hpp): a fresh cache entry is mmapped zero-copy and
// the stored fingerprint/stats are reused without touching the .mtx text;
// a missing, stale or corrupt entry falls back to a parse (parallel when
// parse_jobs != 1) and rewrites the cache. load_matrix_handle() is the
// cache-aware entry point; the legacy load_matrix_source() always parses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "sparse/any_csr.hpp"
#include "sparse/binary_cache.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/fingerprint.hpp"
#include "sparse/index_width.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/annotated_mutex.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Where a request's matrix comes from. Exactly one of `path` / `gen_spec`
/// is non-empty.
struct MatrixSource {
    std::string path;      ///< Matrix Market file
    std::string gen_spec;  ///< generator family:size spec
    std::uint64_t seed = 42;
    bool strict_parse = false;
    /// Directory for `.spmvc` binary cache entries; empty disables the
    /// cache (every load parses). Created on first write if missing.
    std::string cache_dir;
    /// Workers for the chunked .mtx parser on a cache miss or uncached
    /// load: 1 = serial parser (historical behaviour), 0 = all cores,
    /// N > 1 = that many.
    std::int64_t parse_jobs = 1;
    /// Physical index width of the loaded arrays: Auto narrows to 32-bit
    /// whenever rows/cols/nnz fit, a forced width is honoured or fails
    /// with UnsupportedError. Part of the identity — the same file at
    /// 32-bit and at 64-bit indices is two different loaded matrices.
    /// The default is the build-configured choice (cmake
    /// SPMV_DEFAULT_INDEX_WIDTH, normally auto).
    IndexWidthChoice index_width = default_index_width_choice();

    [[nodiscard]] bool empty() const noexcept {
        return path.empty() && gen_spec.empty();
    }

    /// Stable identity string ("file:/a/b.mtx|strict=1|w=auto",
    /// "gen:banded:64@42|strict=0|w=32") used for quarantine keys and log
    /// lines. Cache and parser knobs do not change what the source
    /// denotes, so they are not part of the key; the index width is,
    /// because it changes the loaded arrays.
    [[nodiscard]] std::string canonical_key() const;
};

/// How a LoadedMatrix was obtained.
enum class LoadOrigin : std::uint8_t {
    Generated,  ///< synthesized from a generator spec
    Parsed,     ///< .mtx text parsed (cache off, missing, stale or corrupt)
    CacheHit,   ///< mmapped from a valid .spmvc entry, zero text I/O
};

[[nodiscard]] const char* to_string(LoadOrigin origin) noexcept;

/// A loaded matrix plus everything the pipeline downstream needs: a
/// non-owning view, the owner keeping the bytes alive (an in-memory
/// CsrMatrix or a read-only mmap), and the fingerprint/stats that the
/// serve plan cache and the batch report consume. Copyable — copies share
/// the owner.
struct LoadedMatrix {
    AnyCsrView view;
    std::shared_ptr<const AnyCsrMatrix> owned;  ///< set unless mmapped
    std::shared_ptr<const MappedCsr> mapped; ///< set on a cache hit
    MatrixFingerprint fingerprint;
    MatrixStats stats;
    LoadOrigin origin = LoadOrigin::Parsed;
    /// True when this load wrote (or refreshed) the cache entry.
    bool cache_written = false;

    /// Anything that must outlive the view (detached deadline workers hold
    /// this; see core/deadline.hpp).
    [[nodiscard]] std::shared_ptr<const void> keepalive() const noexcept {
        if (mapped) return mapped;
        return owned;
    }
};

/// Builds a matrix from a generator spec (`stencil2d5:512`). Families:
/// stencil2d5 stencil3d27 banded circuit random randomcv blockfem.
[[nodiscard]] Result<CsrMatrix> generated_matrix(const std::string& spec,
                                                 std::uint64_t seed);

/// Loads the source (file parse or generator run), typed errors on
/// failure. Always parses file sources from text; ignores cache_dir.
/// Honours source.index_width (forced 32 on an unrepresentable shape is
/// UnsupportedError).
[[nodiscard]] Result<AnyCsrMatrix> load_matrix_source(
    const MatrixSource& source);

/// Cache entry path for a file source: <cache_dir>/<stem>-<hash>[s].spmvc.
/// The hash covers the absolute source path; strict parses get their own
/// entry because strict acceptance is part of what the cache certifies.
[[nodiscard]] std::string spmvc_cache_path(const std::string& cache_dir,
                                           const std::string& source_path,
                                           bool strict_parse);

/// Cache-aware loader (see file comment). Never fails because of cache
/// trouble alone: any cache problem silently degrades to a parse.
[[nodiscard]] Result<LoadedMatrix> load_matrix_handle(
    const MatrixSource& source);

/// Process-local memo of loaded matrices keyed by canonical_key(), so a
/// daemon serving repeated requests for the same source skips file I/O
/// entirely (the serve hot path holds one of these). File-backed entries
/// revalidate against the live file's size/mtime on every get; stale
/// entries reload through load_matrix_handle. Thread-safe.
class SourceCache {
public:
    /// One consistent counter snapshot (single lock acquisition), so
    /// hits + loads equals the number of completed get() calls even
    /// while other threads are mid-get.
    struct Stats {
        std::size_t entries = 0;   ///< currently resident
        std::uint64_t hits = 0;    ///< get()s answered without a load
        std::uint64_t loads = 0;   ///< get()s that loaded (miss/stale)
    };

    /// Keeps at most `capacity` entries (least-recently-used evicted).
    explicit SourceCache(std::size_t capacity = 8) : capacity_(capacity) {}

    /// Cached LoadedMatrix for `source`, loading (and caching) on miss.
    [[nodiscard]] Result<LoadedMatrix> get(const MatrixSource& source)
        SPMV_EXCLUDES(mutex_);

    /// All counters under one lock; prefer this over the per-counter
    /// accessors when the values are reported together.
    [[nodiscard]] Stats stats() const SPMV_EXCLUDES(mutex_);

    /// Entries currently resident.
    [[nodiscard]] std::size_t size() const SPMV_EXCLUDES(mutex_);
    /// get() calls answered without a load since construction.
    [[nodiscard]] std::uint64_t hits() const SPMV_EXCLUDES(mutex_);
    /// get() calls that had to load (misses + stale reloads).
    [[nodiscard]] std::uint64_t loads() const SPMV_EXCLUDES(mutex_);

private:
    struct Entry {
        LoadedMatrix loaded;
        SourceStamp stamp;       ///< zero for generated sources
        bool file_backed = false;
        std::uint64_t last_used = 0;
    };

    mutable Mutex mutex_;
    std::unordered_map<std::string, Entry> entries_ SPMV_GUARDED_BY(mutex_);
    const std::size_t capacity_;  ///< immutable after construction
    std::uint64_t tick_ SPMV_GUARDED_BY(mutex_) = 0;
    std::uint64_t hits_ SPMV_GUARDED_BY(mutex_) = 0;
    std::uint64_t loads_ SPMV_GUARDED_BY(mutex_) = 0;
};

}  // namespace spmvcache
