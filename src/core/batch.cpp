#include "core/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <ostream>
#include <thread>
#include <utility>

#include "core/deadline.hpp"
#include "core/matrix_source.hpp"
#include "model/method_a.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/fault.hpp"
#include "util/format.hpp"

namespace spmvcache {

namespace {

namespace fs = std::filesystem;

bool is_transient(ErrorCode code) {
    return code == ErrorCode::ResourceError ||
           code == ErrorCode::FaultInjected;
}

/// One attempt at one matrix; every stage failure is captured in the
/// returned item, never thrown.
BatchItemResult attempt_one(const std::string& path,
                            const BatchOptions& options) {
    BatchItemResult item;
    item.path = path;
    item.name = fs::path(path).stem().string();
    const auto started = std::chrono::steady_clock::now();
    const auto finish = [&](BatchItemResult r) {
        r.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - started)
                        .count();
        return r;
    };
    const auto fail = [&](BatchItemResult r, Error e) {
        r.ok = false;
        r.code = e.code;
        r.message = e.render();
        return finish(std::move(r));
    };

    try {
        item.stage = BatchStage::Parse;
        if (Status s = fault::maybe_fail("batch.item"); !s.ok())
            return fail(std::move(item), std::move(s).to_error());
        MatrixSource source;
        source.path = path;
        source.strict_parse = options.strict_parse;
        source.cache_dir = options.cache_dir;
        source.parse_jobs = options.parse_jobs;
        source.index_width = options.index_width;
        Result<LoadedMatrix> handle = load_matrix_handle(source);
        if (!handle.ok())
            return fail(std::move(item), std::move(handle).to_error());
        const LoadedMatrix loaded = std::move(handle).value();
        const AnyCsrView m = loaded.view;
        item.load_origin = to_string(loaded.origin);
        item.cache_written = loaded.cache_written;
        item.rows = m.rows();
        item.cols = m.cols();
        item.nnz = m.nnz();

        item.stage = BatchStage::Validate;
        if (Status s = m.visit([](const auto& v) { return check_csr_view(v); });
            !s.ok())
            return fail(std::move(item),
                        std::move(s).wrap("validating '" + path + "'")
                            .to_error());

        // Stats were computed once during the load (or read back from the
        // cache header), so the stage is an accounting marker only.
        item.stage = BatchStage::Stats;
        (void)loaded.stats;

        if (options.run_model) {
            item.stage = BatchStage::Model;
            ModelOptions model;
            model.threads = options.threads;
            model.jobs = options.jobs;
            model.trace_buffer_bytes = options.trace_buffer_bytes;
            model.l2_way_options = options.l2_way_options;
            model.predict_l1 = false;
            model.sample_rate = options.sample_rate;
            const ModelResult result = run_method_a(m, model);
            const ConfigPrediction* best = &result.configs.front();
            for (const auto& config : result.configs)
                if (config.l2_misses < best->l2_misses) best = &config;
            item.best_l2_ways = best->l2_sector_ways;
            item.best_l2_misses = best->l2_misses;
            item.model_seconds = result.seconds;
            item.model_shards =
                static_cast<std::int64_t>(result.shards.size());
            item.model_jobs = result.jobs;
            for (const auto& shard : result.shards)
                item.model_references += shard.references;
            item.model_sampled = result.sampled;
            item.model_sample_rate = result.sample_rate;
            item.model_sampled_refs = result.sampled_refs;
        }
        item.ok = true;
        item.code = ErrorCode::Ok;
        return finish(std::move(item));
    } catch (const std::exception& e) {
        return fail(std::move(item), error_from_exception(e));
    } catch (...) {
        return fail(std::move(item),
                    Error(ErrorCode::InternalError, "unknown exception"));
    }
}

/// attempt_one under the shared wall-clock mechanism (core/deadline.hpp).
/// On timeout the worker thread is abandoned (detached) and the matrix
/// recorded as TimeoutError; threads cannot be killed portably, so a stuck
/// parse may keep a core busy until process exit — the sweep itself
/// continues. The lambda copies path and options so the abandoned thread
/// never touches caller stack.
BatchItemResult attempt_with_timeout(const std::string& path,
                                     const BatchOptions& options) {
    // BatchOptions::cancel_check is not copyable into the detached worker
    // cheaply and must not be consulted mid-item anyway (items are the
    // isolation unit), so strip it before the capture.
    BatchOptions worker_options = options;
    worker_options.cancel_check = nullptr;
    Result<BatchItemResult> attempted = run_with_deadline<BatchItemResult>(
        options.timeout_seconds, [path, worker_options] {
            return Result<BatchItemResult>(
                attempt_one(path, worker_options));
        });
    if (attempted.ok()) return std::move(attempted).value();
    BatchItemResult item;
    item.path = path;
    item.name = fs::path(path).stem().string();
    item.ok = false;
    item.stage = BatchStage::Parse;
    item.code = attempted.error().code;
    item.seconds = options.timeout_seconds;
    item.message = Error(attempted.error())
                       .wrap("per-matrix budget")
                       .render();
    return item;
}

/// A matrix the drained sweep never started, recorded so the report still
/// names every input.
BatchItemResult cancelled_item(const std::string& path) {
    BatchItemResult item;
    item.path = path;
    item.name = fs::path(path).stem().string();
    item.ok = false;
    item.stage = BatchStage::Parse;
    item.code = ErrorCode::Cancelled;
    item.message = Error(ErrorCode::Cancelled,
                         "sweep drained before this matrix started")
                       .render();
    return item;
}

std::string csv_quote(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char ch : s) {
        if (ch == '"') quoted += "\"\"";
        else quoted += ch;
    }
    quoted += "\"";
    return quoted;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

}  // namespace

const char* to_string(BatchStage stage) noexcept {
    switch (stage) {
        case BatchStage::Parse: return "parse";
        case BatchStage::Validate: return "validate";
        case BatchStage::Stats: return "stats";
        case BatchStage::Model: return "model";
    }
    return "unknown";
}

std::size_t BatchReport::succeeded() const noexcept {
    return static_cast<std::size_t>(
        std::count_if(items.begin(), items.end(),
                      [](const BatchItemResult& i) { return i.ok; }));
}

std::size_t BatchReport::failed() const noexcept {
    return items.size() - succeeded();
}

int BatchReport::exit_code() const noexcept {
    return failed() == 0 ? kExitOk : kExitSomeFailed;
}

[[nodiscard]] Result<std::vector<std::string>> collect_matrix_paths(
    const std::string& spec) {
    std::error_code ec;
    if (fs::is_directory(spec, ec)) {
        std::vector<std::string> paths;
        for (const auto& entry : fs::directory_iterator(spec, ec)) {
            if (!entry.is_regular_file()) continue;
            if (entry.path().extension() != ".mtx") continue;
            paths.push_back(entry.path().string());
        }
        if (ec)
            return Error(ErrorCode::ResourceError,
                         "cannot list directory '" + spec +
                             "': " + ec.message());
        std::sort(paths.begin(), paths.end());
        if (paths.empty())
            return Error(ErrorCode::ResourceError,
                         "no .mtx files in directory '" + spec + "'");
        return paths;
    }
    if (!fs::is_regular_file(spec, ec)) {
        if (fs::exists(spec, ec))
            return Error(ErrorCode::ResourceError,
                         "'" + spec + "' is not a regular file or directory");
        return Error(ErrorCode::ResourceError,
                     "no such file or directory: '" + spec + "'");
    }
    if (fs::path(spec).extension() == ".mtx")
        return std::vector<std::string>{spec};
    // Anything else is a list file: one matrix path per line.
    std::ifstream in(spec);
    if (!in)
        return Error(ErrorCode::ResourceError,
                     "cannot open list file '" + spec + "'");
    std::vector<std::string> paths;
    std::string line;
    while (std::getline(in, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#') continue;
        paths.push_back(t);
    }
    if (paths.empty())
        return Error(ErrorCode::ValidationError,
                     "list file '" + spec + "' names no matrices");
    return paths;
}

BatchReport run_batch(const std::vector<std::string>& paths,
                      const BatchOptions& options) {
    BatchReport report;
    report.items.reserve(paths.size());
    const auto cancelled = [&options] {
        return options.cancel_check && options.cancel_check();
    };
    for (std::size_t n = 0; n < paths.size(); ++n) {
        const std::string& path = paths[n];
        if (cancelled()) {
            // Graceful drain: record this and every remaining matrix as
            // Cancelled so the failure report stays complete, then stop.
            for (std::size_t rest = n; rest < paths.size(); ++rest)
                report.items.push_back(cancelled_item(paths[rest]));
            break;
        }
        BatchItemResult item = attempt_with_timeout(path, options);
        if (!item.ok && options.retry_transient &&
            is_transient(item.code) && !cancelled()) {
            item = attempt_with_timeout(path, options);
            item.retried = true;
        }
        report.items.push_back(std::move(item));
    }
    return report;
}

void write_batch_report_csv(std::ostream& out, const BatchReport& report) {
    out << "name,path,status,stage,error_code,message,retried,seconds,"
           "load_origin,cache_written,"
           "rows,cols,nnz,best_l2_ways,best_l2_misses,"
           "model_seconds,model_shards,model_jobs,model_references,"
           "model_sampled,model_sample_rate,model_sampled_refs\n";
    for (const auto& i : report.items) {
        out << csv_quote(i.name) << ',' << csv_quote(i.path) << ','
            << (i.ok ? "ok" : "failed") << ',' << to_string(i.stage) << ','
            << to_string(i.code) << ',' << csv_quote(i.message) << ','
            << (i.retried ? 1 : 0) << ',' << i.seconds << ','
            << csv_quote(i.load_origin) << ',' << (i.cache_written ? 1 : 0)
            << ',' << i.rows
            << ',' << i.cols << ',' << i.nnz << ',' << i.best_l2_ways << ','
            << i.best_l2_misses << ',' << i.model_seconds << ','
            << i.model_shards << ',' << i.model_jobs << ','
            << i.model_references << ',' << (i.model_sampled ? 1 : 0) << ','
            << i.model_sample_rate << ',' << i.model_sampled_refs << '\n';
    }
}

void write_batch_report_json(std::ostream& out, const BatchReport& report) {
    out << "{\n  \"total\": " << report.items.size()
        << ",\n  \"succeeded\": " << report.succeeded()
        << ",\n  \"failed\": " << report.failed()
        << ",\n  \"exit_code\": " << report.exit_code()
        << ",\n  \"items\": [\n";
    for (std::size_t n = 0; n < report.items.size(); ++n) {
        const auto& i = report.items[n];
        out << "    {\"name\": \"" << json_escape(i.name)
            << "\", \"path\": \"" << json_escape(i.path)
            << "\", \"ok\": " << (i.ok ? "true" : "false")
            << ", \"stage\": \"" << to_string(i.stage)
            << "\", \"error_code\": \"" << to_string(i.code)
            << "\", \"message\": \"" << json_escape(i.message)
            << "\", \"retried\": " << (i.retried ? "true" : "false")
            << ", \"seconds\": " << i.seconds
            << ", \"load_origin\": \"" << json_escape(i.load_origin)
            << "\", \"cache_written\": "
            << (i.cache_written ? "true" : "false")
            << ", \"rows\": " << i.rows
            << ", \"cols\": " << i.cols << ", \"nnz\": " << i.nnz
            << ", \"best_l2_ways\": " << i.best_l2_ways
            << ", \"best_l2_misses\": " << i.best_l2_misses
            << ", \"model_seconds\": " << i.model_seconds
            << ", \"model_shards\": " << i.model_shards
            << ", \"model_jobs\": " << i.model_jobs
            << ", \"model_references\": " << i.model_references
            << ", \"model_sampled\": " << (i.model_sampled ? "true" : "false")
            << ", \"model_sample_rate\": " << i.model_sample_rate
            << ", \"model_sampled_refs\": " << i.model_sampled_refs << "}"
            << (n + 1 < report.items.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

}  // namespace spmvcache
