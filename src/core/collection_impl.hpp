// Implementation of run_collection (included from collection.hpp).
#pragma once

#include <atomic>
#include <exception>
#include <iostream>

#include "sync/thread_pool.hpp"
#include "util/annotated_mutex.hpp"
#include "util/timer.hpp"

namespace spmvcache {

template <class Result>
std::vector<CollectionOutcome<Result>> run_collection(
    const std::vector<gen::MatrixSpec>& suite,
    const std::function<Result(const std::string& name, const CsrMatrix&)>&
        experiment,
    const CollectionOptions& options) {
    std::vector<CollectionOutcome<Result>> outcomes(suite.size());
    std::atomic<std::size_t> completed{0};
    // Serializes the verbose progress lines so concurrent workers never
    // interleave characters on stderr.
    Mutex progress_mutex;

    auto run_one = [&](std::size_t i) {
        const auto& spec = suite[i];
        auto& outcome = outcomes[i];
        outcome.name = spec.name;
        outcome.family = spec.family;
        const Timer timer;
        try {
            const CsrMatrix m = spec.factory();
            outcome.result = experiment(spec.name, m);
            outcome.ok = true;
        } catch (const std::exception& e) {
            outcome.error = e.what();
        }
        const std::size_t done = completed.fetch_add(1) + 1;
        if (options.verbose) {
            const MutexLock lock(progress_mutex);
            std::cerr << "[" << done << "/" << suite.size() << "] "
                      << spec.name << (outcome.ok ? "" : " FAILED: ")
                      << outcome.error << " (" << timer.seconds() << "s)\n";
        }
    };

    if (options.host_threads <= 1) {
        for (std::size_t i = 0; i < suite.size(); ++i) run_one(i);
    } else {
        ThreadPool pool(static_cast<std::size_t>(options.host_threads));
        pool.parallel_for(suite.size(), run_one);
    }
    return outcomes;
}

}  // namespace spmvcache
