#include "core/matrix_source.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "util/cli.hpp"

namespace spmvcache {

std::string MatrixSource::canonical_key() const {
    std::string key;
    if (!path.empty()) {
        key = "file:" + path;
    } else {
        key = "gen:" + gen_spec + "@" + std::to_string(seed);
    }
    key += "|strict=";
    key += strict_parse ? '1' : '0';
    return key;
}

[[nodiscard]] Result<CsrMatrix> generated_matrix(const std::string& spec,
                                   std::uint64_t seed) {
    const auto colon = spec.find(':');
    const std::string family =
        colon == std::string::npos ? spec : spec.substr(0, colon);
    std::int64_t n = 512;
    if (colon != std::string::npos) {
        Result<std::int64_t> parsed =
            parse_int(std::string_view(spec).substr(colon + 1));
        if (!parsed.ok())
            return std::move(parsed)
                .wrap("parsing generator size in '" + spec + "'")
                .to_error();
        n = parsed.value();
    }
    if (n <= 0)
        return Error(ErrorCode::ValidationError,
                     "generator size must be positive in '" + spec + "'");
    if (family == "stencil2d5") return gen::stencil_2d_5pt(n, n);
    if (family == "stencil3d27") return gen::stencil_3d_27pt(n, n, n);
    if (family == "banded") return gen::banded(n, 16, n / 256 + 1, seed);
    if (family == "circuit")
        return gen::circuit(n, 3.0, n / 64 + 1, 0.05, seed);
    if (family == "random") return gen::random_uniform(n, n, 24, seed);
    if (family == "randomcv")
        return gen::random_variable_rows(n, n, 8.0, 2.0, seed);
    if (family == "blockfem")
        return gen::block_fem(std::max<std::int64_t>(2, n / 8), 8, 6,
                              std::max<std::int64_t>(6, n / 64), seed);
    return Error(ErrorCode::ValidationError,
                 "unknown generator family: " + family);
}

[[nodiscard]] Result<CsrMatrix> load_matrix_source(const MatrixSource& source) {
    if (source.empty())
        return Error(ErrorCode::ValidationError,
                     "request names no matrix (need a path or a gen spec)");
    if (!source.gen_spec.empty())
        return generated_matrix(source.gen_spec, source.seed);
    MmReadOptions options;
    options.strict = source.strict_parse;
    return try_read_matrix_market_file(source.path, options);
}

}  // namespace spmvcache
