#include "core/matrix_source.hpp"

#include <algorithm>
#include <filesystem>
#include <string_view>
#include <utility>

#include "sparse/gen/banded.hpp"
#include "sparse/gen/block.hpp"
#include "sparse/gen/random.hpp"
#include "sparse/gen/stencil.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/mm_parallel.hpp"
#include "util/cli.hpp"

namespace spmvcache {

namespace {

namespace fs = std::filesystem;

/// Parses the .mtx text of a file source, serial or chunked-parallel
/// depending on parse_jobs, at the width source.index_width resolves to.
[[nodiscard]] Result<AnyCsrMatrix> parse_file_source(
    const MatrixSource& source) {
    if (source.parse_jobs == 1) {
        MmReadOptions options;
        options.strict = source.strict_parse;
        options.index_width = source.index_width;
        return try_read_matrix_market_any_file(source.path, options);
    }
    MmParallelOptions options;
    options.base.strict = source.strict_parse;
    options.base.index_width = source.index_width;
    options.jobs = source.parse_jobs <= 0
                       ? 0
                       : static_cast<std::size_t>(source.parse_jobs);
    return try_read_matrix_market_parallel_any_file(source.path, options);
}

/// Generators always assemble narrow (their shapes are representable by
/// construction); a forced wide request widens the arrays afterwards.
[[nodiscard]] Result<AnyCsrMatrix> generated_matrix_any(
    const MatrixSource& source) {
    Result<CsrMatrix> narrow = generated_matrix(source.gen_spec, source.seed);
    if (!narrow.ok()) return std::move(narrow).to_error();
    if (source.index_width == IndexWidthChoice::W64)
        return AnyCsrMatrix(
            convert_csr_width<Idx64>(CsrView(narrow.value())));
    return AnyCsrMatrix(std::move(narrow).value());
}

/// Wraps a parsed/generated matrix into a handle, computing the derived
/// structure summaries once.
LoadedMatrix make_owned_handle(AnyCsrMatrix matrix, LoadOrigin origin) {
    LoadedMatrix loaded;
    loaded.owned = std::make_shared<const AnyCsrMatrix>(std::move(matrix));
    loaded.view = loaded.owned->view();
    loaded.fingerprint = fingerprint_matrix(loaded.view);
    loaded.stats = compute_stats(loaded.view);
    loaded.origin = origin;
    return loaded;
}

}  // namespace

std::string MatrixSource::canonical_key() const {
    std::string key;
    if (!path.empty()) {
        key = "file:" + path;
    } else {
        key = "gen:" + gen_spec + "@" + std::to_string(seed);
    }
    key += "|strict=";
    key += strict_parse ? '1' : '0';
    key += "|w=";
    key += to_string(index_width);
    return key;
}

const char* to_string(LoadOrigin origin) noexcept {
    switch (origin) {
        case LoadOrigin::Generated: return "generated";
        case LoadOrigin::Parsed: return "parsed";
        case LoadOrigin::CacheHit: return "cache-hit";
    }
    return "unknown";
}

[[nodiscard]] Result<CsrMatrix> generated_matrix(const std::string& spec,
                                   std::uint64_t seed) {
    const auto colon = spec.find(':');
    const std::string family =
        colon == std::string::npos ? spec : spec.substr(0, colon);
    std::int64_t n = 512;
    if (colon != std::string::npos) {
        Result<std::int64_t> parsed =
            parse_int(std::string_view(spec).substr(colon + 1));
        if (!parsed.ok())
            return std::move(parsed)
                .wrap("parsing generator size in '" + spec + "'")
                .to_error();
        n = parsed.value();
    }
    if (n <= 0)
        return Error(ErrorCode::ValidationError,
                     "generator size must be positive in '" + spec + "'");
    if (family == "stencil2d5") return gen::stencil_2d_5pt(n, n);
    if (family == "stencil3d27") return gen::stencil_3d_27pt(n, n, n);
    if (family == "banded") return gen::banded(n, 16, n / 256 + 1, seed);
    if (family == "circuit")
        return gen::circuit(n, 3.0, n / 64 + 1, 0.05, seed);
    if (family == "random") return gen::random_uniform(n, n, 24, seed);
    if (family == "randomcv")
        return gen::random_variable_rows(n, n, 8.0, 2.0, seed);
    if (family == "blockfem")
        return gen::block_fem(std::max<std::int64_t>(2, n / 8), 8, 6,
                              std::max<std::int64_t>(6, n / 64), seed);
    return Error(ErrorCode::ValidationError,
                 "unknown generator family: " + family);
}

[[nodiscard]] Result<AnyCsrMatrix> load_matrix_source(
    const MatrixSource& source) {
    if (source.empty())
        return Error(ErrorCode::ValidationError,
                     "request names no matrix (need a path or a gen spec)");
    if (!source.gen_spec.empty()) return generated_matrix_any(source);
    return parse_file_source(source);
}

std::string spmvc_cache_path(const std::string& cache_dir,
                             const std::string& source_path,
                             bool strict_parse) {
    std::error_code ec;
    fs::path abs = fs::absolute(source_path, ec);
    if (ec) abs = source_path;
    const std::string key = abs.lexically_normal().string();
    std::uint64_t h = 0;
    for (const char ch : key)
        h = mix64(h ^ static_cast<unsigned char>(ch));
    static constexpr char kHex[] = "0123456789abcdef";
    std::string digest;
    digest.reserve(16);
    for (int shift = 60; shift >= 0; shift -= 4)
        digest += kHex[(h >> shift) & 0xF];
    std::string stem = fs::path(source_path).stem().string();
    if (stem.empty()) stem = "matrix";
    return (fs::path(cache_dir) /
            (stem + "-" + digest + (strict_parse ? "s" : "") + ".spmvc"))
        .string();
}

[[nodiscard]] Result<LoadedMatrix> load_matrix_handle(
    const MatrixSource& source) {
    if (source.empty())
        return Error(ErrorCode::ValidationError,
                     "request names no matrix (need a path or a gen spec)");
    if (!source.gen_spec.empty()) {
        Result<AnyCsrMatrix> generated = generated_matrix_any(source);
        if (!generated.ok()) return std::move(generated).to_error();
        return make_owned_handle(std::move(generated).value(),
                                 LoadOrigin::Generated);
    }

    // File source. With a cache dir, try the mmap fast path first; every
    // cache-side failure (missing entry, stale stamp, version bump,
    // corruption) degrades to a parse that then refreshes the entry.
    SourceStamp stamp{};
    bool have_stamp = false;
    std::string cache_path;
    if (!source.cache_dir.empty()) {
        cache_path = spmvc_cache_path(source.cache_dir, source.path,
                                      source.strict_parse);
        Result<SourceStamp> live = stat_source(source.path);
        if (live.ok()) {
            stamp = live.value();
            have_stamp = true;
            Result<MappedCsr> mapped = load_binary_cache(
                cache_path, &stamp, source.index_width);
            if (mapped.ok()) {
                LoadedMatrix loaded;
                loaded.mapped = std::make_shared<const MappedCsr>(
                    std::move(mapped).value());
                loaded.view = loaded.mapped->view();
                loaded.fingerprint = loaded.mapped->info().fingerprint;
                loaded.stats = loaded.mapped->info().stats;
                loaded.origin = LoadOrigin::CacheHit;
                return loaded;
            }
        }
        // !live.ok(): the source itself is unreadable; fall through so the
        // parser reports the canonical "cannot open" error.
    }

    Result<AnyCsrMatrix> parsed = parse_file_source(source);
    if (!parsed.ok()) return std::move(parsed).to_error();
    LoadedMatrix loaded =
        make_owned_handle(std::move(parsed).value(), LoadOrigin::Parsed);

    if (!cache_path.empty() && have_stamp) {
        std::error_code ec;
        fs::create_directories(source.cache_dir, ec);
        // Best effort: a read-only cache dir or full disk must not fail
        // the load — the parse already succeeded.
        if (!ec) {
            const Status written = write_binary_cache(
                cache_path, loaded.view, loaded.fingerprint, loaded.stats,
                source.path, stamp);
            loaded.cache_written = written.ok();
        }
    }
    return loaded;
}

[[nodiscard]] Result<LoadedMatrix> SourceCache::get(
    const MatrixSource& source) {
    const std::string key = source.canonical_key();
    const bool file_backed = !source.path.empty();

    SourceStamp live{};
    if (file_backed) {
        Result<SourceStamp> stat = stat_source(source.path);
        if (stat.ok()) live = stat.value();
        // stat failure: fall through with a zero stamp — a resident entry
        // then looks stale and the reload reports the real error.
    }

    {
        const MutexLock lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            const bool fresh =
                !it->second.file_backed ||
                (it->second.stamp.size == live.size &&
                 it->second.stamp.mtime_ns == live.mtime_ns &&
                 (live.size != 0 || live.mtime_ns != 0));
            if (fresh) {
                it->second.last_used = ++tick_;
                ++hits_;
                return it->second.loaded;
            }
            entries_.erase(it);
        }
    }

    Result<LoadedMatrix> loaded = load_matrix_handle(source);
    const MutexLock lock(mutex_);
    ++loads_;
    if (!loaded.ok()) return std::move(loaded).to_error();

    Entry entry;
    entry.loaded = loaded.value();
    entry.stamp = live;
    entry.file_backed = file_backed;
    entry.last_used = ++tick_;
    entries_[key] = std::move(entry);
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.last_used < victim->second.last_used) victim = it;
        entries_.erase(victim);
    }
    return std::move(loaded).value();
}

SourceCache::Stats SourceCache::stats() const {
    const MutexLock lock(mutex_);
    Stats out;
    out.entries = entries_.size();
    out.hits = hits_;
    out.loads = loads_;
    return out;
}

std::size_t SourceCache::size() const {
    const MutexLock lock(mutex_);
    return entries_.size();
}

std::uint64_t SourceCache::hits() const {
    const MutexLock lock(mutex_);
    return hits_;
}

std::uint64_t SourceCache::loads() const {
    const MutexLock lock(mutex_);
    return loads_;
}

}  // namespace spmvcache
