// Experiment driver: the "run on hardware" step of every bench.
//
// run_sector_sweep() plays one warm-up plus one measured SpMV iteration
// through a bank of simulated A64FX machines — one per sector-cache
// configuration — in a single trace pass, and attaches the analytic timing
// estimate to each. The model (methods A/B) is run by model_vs_measured()
// against the same matrix for Tables 2 and 3.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "perf/timing.hpp"
#include "sparse/csr.hpp"
#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/matrix_stats.hpp"
#include "trace/memref.hpp"

namespace spmvcache {

/// Options shared by the sweep and the model comparison.
struct ExperimentOptions {
    A64fxConfig machine{};
    std::int64_t threads = 48;
    SectorPolicy policy = SectorPolicy::IsolateMatrix;
    PartitionPolicy partition = PartitionPolicy::BalancedRows;
    std::int64_t quantum = 1;
    TimingParameters timing{};
    /// Warm-up iterations before the measured one.
    std::int64_t warmup_iterations = 1;
    /// Software-prefetch distance for x in nonzeros (0 = off); see
    /// TraceConfig::x_prefetch_distance.
    std::int64_t x_prefetch_distance = 0;
};

/// Measured (simulated-hardware) outcome of one sector configuration.
struct MeasuredConfig {
    SectorWays ways;
    L1Counters l1;
    L2Counters l2;
    TimingBreakdown timing;

    /// Relative difference in corrected L2 misses vs `baseline` in percent
    /// (negative = reduction), the Fig. 2 quantity.
    [[nodiscard]] double l2_miss_difference_percent(
        const MeasuredConfig& baseline) const;

    /// Relative difference in L2 *demand* misses in percent (Fig. 5).
    [[nodiscard]] double l2_demand_difference_percent(
        const MeasuredConfig& baseline) const;

    /// Speedup of this configuration over `baseline` (Fig. 3/4).
    [[nodiscard]] double speedup_over(const MeasuredConfig& baseline) const;
};

/// Runs the warm-up + measured iteration through one simulator per entry
/// of `configs` (a single trace generation feeds all of them).
[[nodiscard]] std::vector<MeasuredConfig> run_sector_sweep(
    const AnyCsrView& m, const std::vector<SectorWays>& configs,
    const ExperimentOptions& options);

/// Model prediction vs simulator measurement for Tables 2 and 3.
struct ModelComparison {
    MatrixStats stats;
    /// Measured corrected L2 misses per configuration: index 0 is the
    /// unpartitioned baseline, then one entry per l2_way_option.
    std::vector<double> measured_l2;
    double measured_l1_unpartitioned = 0.0;
    ModelResult method_a;
    ModelResult method_b;
};

/// Runs methods (A) and (B) plus the matching simulator measurements for
/// the unpartitioned case and every way count in `l2_way_options`
/// (L1 sector cache disabled throughout, as in Tables 2 and 3).
[[nodiscard]] ModelComparison model_vs_measured(
    const AnyCsrView& m, const std::vector<std::uint32_t>& l2_way_options,
    const ExperimentOptions& options);

}  // namespace spmvcache
