// Collection driver: runs a per-matrix experiment over a suite of lazily
// generated matrices, optionally in parallel across host threads, with
// deterministic result ordering (results are indexed by suite position,
// not completion order).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sparse/gen/suite.hpp"

namespace spmvcache {

/// Options for a collection run.
struct CollectionOptions {
    /// Host worker threads (1 = sequential; experiments are independent).
    std::int64_t host_threads = 1;
    /// Print a one-line progress message per matrix to stderr.
    bool verbose = false;
};

/// Runs `experiment` for every spec; the result vector preserves suite
/// order. Exceptions from an experiment are caught, reported to stderr,
/// and the matrix is skipped (its `ok` flag is false).
template <class Result>
struct CollectionOutcome {
    std::string name;
    std::string family;
    bool ok = false;
    std::string error;
    Result result{};
};

template <class Result>
[[nodiscard]] std::vector<CollectionOutcome<Result>> run_collection(
    const std::vector<gen::MatrixSpec>& suite,
    const std::function<Result(const std::string& name, const CsrMatrix&)>&
        experiment,
    const CollectionOptions& options = {});

}  // namespace spmvcache

#include "core/collection_impl.hpp"
