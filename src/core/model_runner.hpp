// Deadline-aware front door to the miss model: the one-shot CLI
// (`predict`/`tune` with --timeout) and every `spmvcache serve` request
// run the model through this wrapper so they share a single wall-clock
// budget mechanism (ModelOptions::timeout_seconds via core/deadline.hpp)
// and a single exception boundary (escaping exceptions become typed
// errors, never aborts).
#pragma once

#include <memory>

#include "core/matrix_source.hpp"
#include "model/options.hpp"
#include "sparse/csr.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Which prediction method to run (paper §4: stack-distance variants).
enum class ModelMethod : std::uint8_t { A, B };

[[nodiscard]] const char* to_string(ModelMethod method) noexcept;

/// ModelMethod from "a"/"b" (case-insensitive); ValidationError otherwise.
[[nodiscard]] Result<ModelMethod> parse_model_method(const std::string& text);

/// Runs method A or B over `m` honoring options.timeout_seconds. The
/// matrix is passed via shared_ptr because an expired deadline abandons
/// the computation on a detached thread, which must keep the matrix alive
/// past the caller's scope (see core/deadline.hpp).
[[nodiscard]] Result<ModelResult> run_model(
    std::shared_ptr<const CsrMatrix> m, const ModelOptions& options,
    ModelMethod method);

/// Same, over a cache-aware handle (core/matrix_source.hpp): works for
/// owned and mmapped matrices alike — the handle's keepalive() rides into
/// the worker so an abandoned computation cannot outlive its mapping.
[[nodiscard]] Result<ModelResult> run_model(const LoadedMatrix& m,
                                            const ModelOptions& options,
                                            ModelMethod method);

}  // namespace spmvcache
