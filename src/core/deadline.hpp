// One wall-clock deadline mechanism for every per-request budget in the
// tree: `spmvcache batch` items, one-shot `predict`/`tune` runs with
// --timeout, and each `spmvcache serve` request all funnel through
// run_with_deadline so timeout semantics (and their caveats) stay in one
// place.
//
// The budgeted function runs on a helper thread; on expiry the helper is
// *detached* and TimeoutError returned — threads cannot be killed portably,
// so a runaway computation may keep a core busy until it finishes on its
// own, but the caller regains control immediately. Because the helper can
// outlive the call, `fn` must own everything it touches (capture matrices
// via shared_ptr or by value, never by reference to caller stack).
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <string>
#include <thread>

#include "util/status.hpp"

namespace spmvcache {

/// Runs `fn` under a wall-clock budget of `seconds` (<= 0 = no budget, run
/// inline). Returns fn's Result, or TimeoutError on expiry. Exceptions
/// escaping `fn` are mapped to typed errors (never rethrown).
template <typename T>
[[nodiscard]] Result<T> run_with_deadline(double seconds,
                                          std::function<Result<T>()> fn) {
    const auto guarded = [fn = std::move(fn)]() -> Result<T> {
        try {
            return fn();
        } catch (const std::exception& e) {
            return error_from_exception(e);
        } catch (...) {
            return Error(ErrorCode::InternalError, "unknown exception");
        }
    };
    if (seconds <= 0.0) return guarded();

    std::packaged_task<Result<T>()> task(guarded);
    std::future<Result<T>> future = task.get_future();
    std::thread worker(std::move(task));
    const auto budget = std::chrono::duration<double>(seconds);
    if (future.wait_for(budget) == std::future_status::ready) {
        worker.join();
        return future.get();
    }
    worker.detach();
    return Error(ErrorCode::TimeoutError,
                 "exceeded wall-clock budget of " + std::to_string(seconds) +
                     " s");
}

}  // namespace spmvcache
