// collection.hpp is header-only (template); this translation unit exists
// to give the target a compiled anchor and to catch header self-containment
// regressions at build time.
#include "core/collection.hpp"
