#include "core/model_runner.hpp"

#include <utility>

#include "core/deadline.hpp"
#include "model/method_a.hpp"
#include "model/method_b.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace spmvcache {

const char* to_string(ModelMethod method) noexcept {
    return method == ModelMethod::B ? "b" : "a";
}

[[nodiscard]] Result<ModelMethod> parse_model_method(const std::string& text) {
    const std::string lower = to_lower(text);
    if (lower == "a") return ModelMethod::A;
    if (lower == "b") return ModelMethod::B;
    return Error(ErrorCode::ValidationError,
                 "unknown model method '" + text + "' (expected a or b)");
}

[[nodiscard]] Result<ModelResult> run_model(std::shared_ptr<const CsrMatrix> m,
                              const ModelOptions& options,
                              ModelMethod method) {
    SPMV_EXPECTS(m != nullptr);
    return run_with_deadline<ModelResult>(
        options.timeout_seconds,
        [m = std::move(m), options, method]() -> Result<ModelResult> {
            return method == ModelMethod::B ? run_method_b(*m, options)
                                            : run_method_a(*m, options);
        });
}

[[nodiscard]] Result<ModelResult> run_model(const LoadedMatrix& m,
                                            const ModelOptions& options,
                                            ModelMethod method) {
    SPMV_EXPECTS(m.keepalive() != nullptr);
    return run_with_deadline<ModelResult>(
        options.timeout_seconds,
        [view = m.view, keepalive = m.keepalive(), options,
         method]() -> Result<ModelResult> {
            (void)keepalive;  // pins the matrix bytes for abandoned workers
            return method == ModelMethod::B ? run_method_b(view, options)
                                            : run_method_a(view, options);
        });
}

}  // namespace spmvcache
