// AVX-512F kernels (8 doubles per vector — the same 512-bit width as the
// A64FX's SVE implementation, so lane-group geometry matches the paper's
// target; 32-bit or 64-bit index gathers chosen per width at compile
// time). Compiled with -mavx512f; dispatched to only after a runtime
// __builtin_cpu_supports("avx512f") check.
#include "kernels/simd.hpp"

#if defined(SPMVCACHE_SIMD_AVX512)

#include <immintrin.h>

#include <cstring>

namespace spmvcache::simd::detail {

namespace {

__m256i load_idx8_32(const std::int32_t* p) noexcept {
    __m256i idx;
    std::memcpy(&idx, p, sizeof(idx));
    return idx;
}

__m512i load_idx8_64(const std::int64_t* p) noexcept {
    __m512i idx;
    std::memcpy(&idx, p, sizeof(idx));
    return idx;
}

__m512d load_pd8(const double* p) noexcept {
    __m512d v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/// Gathers x[colidx[0..7]] at either index width: the W32 form reads a
/// 256-bit index vector (half the index stream), the W64 form 512 bits.
template <class Idx>
__m512d gather8(const double* x,
                const typename Idx::index_type* colidx) noexcept {
    if constexpr (sizeof(typename Idx::index_type) == 4)
        return _mm512_i32gather_pd(load_idx8_32(colidx), x, 8);
    else
        return _mm512_i64gather_pd(load_idx8_64(colidx), x, 8);
}

}  // namespace

template <class Idx>
void csr_range_avx512(const typename Idx::offset_type* rowptr,
                      const typename Idx::index_type* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        const auto begin = static_cast<std::int64_t>(rowptr[r]);
        const auto end = static_cast<std::int64_t>(rowptr[r + 1]);
        __m512d acc = _mm512_setzero_pd();
        std::int64_t i = begin;
        for (; i + 8 <= end; i += 8) {
            const __m512d xv = gather8<Idx>(x, colidx + i);
            acc = _mm512_fmadd_pd(load_pd8(values + i), xv, acc);
        }
        double sum = _mm512_reduce_add_pd(acc);
        for (; i < end; ++i) sum += values[i] * x[colidx[i]];
        y[r] += sum;
    }
}

template <class Idx>
void sell_range_avx512(const double* values,
                       const typename Idx::index_type* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const typename Idx::index_type* perm,
                       std::int64_t rows, std::int64_t chunk_height,
                       const double* x, double* y, std::int64_t chunk_begin,
                       std::int64_t chunk_end) {
    const std::int64_t c = chunk_height;
    for (std::int64_t k = chunk_begin; k < chunk_end; ++k) {
        const std::int64_t base = chunk_offset[k];
        const std::int64_t width = chunk_width[k];
        const std::int64_t rows_in_chunk =
            rows - k * c < c ? rows - k * c : c;
        std::int64_t v = 0;
        for (; v + 8 <= rows_in_chunk; v += 8) {
            __m512d acc = _mm512_setzero_pd();
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                const __m512d xv = gather8<Idx>(x, colidx + slot);
                acc = _mm512_fmadd_pd(load_pd8(values + slot), xv, acc);
            }
            alignas(64) double lane[8];
            _mm512_store_pd(lane, acc);
            for (std::int64_t l = 0; l < 8; ++l)
                y[perm[k * c + v + l]] += lane[l];
        }
        for (; v < rows_in_chunk; ++v) {  // ragged tail of the last chunk
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                acc += values[slot] * x[colidx[slot]];
            }
            y[perm[k * c + v]] += acc;
        }
    }
}

template void csr_range_avx512<Idx32>(const Idx32::offset_type*,
                                      const Idx32::index_type*, const double*,
                                      const double*, double*, std::int64_t,
                                      std::int64_t);
template void csr_range_avx512<Idx64>(const Idx64::offset_type*,
                                      const Idx64::index_type*, const double*,
                                      const double*, double*, std::int64_t,
                                      std::int64_t);
template void sell_range_avx512<Idx32>(const double*, const Idx32::index_type*,
                                       const std::int64_t*,
                                       const std::int64_t*,
                                       const Idx32::index_type*, std::int64_t,
                                       std::int64_t, const double*, double*,
                                       std::int64_t, std::int64_t);
template void sell_range_avx512<Idx64>(const double*, const Idx64::index_type*,
                                       const std::int64_t*,
                                       const std::int64_t*,
                                       const Idx64::index_type*, std::int64_t,
                                       std::int64_t, const double*, double*,
                                       std::int64_t, std::int64_t);

}  // namespace spmvcache::simd::detail

#endif  // SPMVCACHE_SIMD_AVX512
