// High-throughput SpMV kernel engine.
//
// The engine is the executable counterpart of the model: where the trace
// generator and simulator *predict* the locality of Listing 1, the engine
// *runs* it — repeatedly, on a persistent WorkerTeam whose workers own
// fixed row/chunk ranges, with kernel variants selected at runtime:
//
//   CsrScalar    the Listing-1 loop per row range (bit-identical to
//                spmv_csr; the baseline every other variant is verified
//                against)
//   CsrPrefetch  scalar loop + __builtin_prefetch of the x[colidx[i+d]]
//                gather and of the values/colidx streams at distance d
//                (auto-calibrated unless EngineOptions pins it) — the
//                software-prefetch lever of Alappat et al.
//   CsrSimd      vectorized CSR rows via the simd.hpp shim
//                (AVX2/AVX-512/NEON, scalar fallback)
//   SellScalar / SellSimd
//                SELL-C-sigma chunk kernels (Kreutzer et al.), chunk loop
//                column-major; the engine builds the SELL form internally
//   CsrMerge     merge-path decomposition (Merrill & Garland) across the
//                team for row-imbalanced matrices
//   Auto         picks a variant from matrix shape + host ISA; the
//                heuristic is documented in DESIGN.md §5
//
// Worker i always executes range i (WorkerTeam guarantee), and with
// EngineOptions::first_touch the engine's copies of the matrix arrays —
// and any vector obtained from make_vector() — are first touched by their
// owning worker, so pages land on the NUMA node that computes on them.
// With threads == 1 the engine runs inline on the calling thread with no
// team at all (the documented sequential fallback used when OpenMP-style
// parallelism is unavailable or unwanted).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "kernels/simd.hpp"
#include "kernels/spmv_merge.hpp"
#include "sparse/any_csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/partition.hpp"
#include "sparse/sellcs.hpp"
#include "sync/worker_team.hpp"
#include "util/align.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// Executable kernel implementations the engine can dispatch to.
enum class KernelVariant : std::uint8_t {
    CsrScalar,
    CsrPrefetch,
    CsrSimd,
    SellScalar,
    SellSimd,
    CsrMerge,
    Auto,
};

[[nodiscard]] const char* to_string(KernelVariant variant) noexcept;

/// Parses "csr", "csr-prefetch", "csr-simd", "sell", "sell-simd", "merge"
/// or "auto" (ValidationError otherwise).
[[nodiscard]] Result<KernelVariant> parse_kernel_variant(
    std::string_view name);

struct EngineOptions {
    /// Worker count; 0 = all hardware threads, 1 = sequential fallback.
    std::int64_t threads = 1;
    KernelVariant variant = KernelVariant::Auto;
    /// Lookahead (in nonzeros) for CsrPrefetch; 0 = auto-calibrate.
    std::int64_t prefetch_distance = 0;
    /// Row split for the CSR variants (SELL splits by padded nonzeros,
    /// merge by path diagonals regardless).
    PartitionPolicy policy = PartitionPolicy::BalancedNonzeros;
    /// SELL geometry; 0 = auto (chunk 8 — one 512-bit vector of doubles —
    /// and sigma = 32 chunks).
    std::int64_t sell_chunk = 0;
    std::int64_t sell_sigma = 0;
    /// Copy the matrix arrays into engine-owned storage, each slice first
    /// touched by its owning worker. Off = borrow the caller's arrays
    /// (zero setup cost; the matrix must outlive the engine).
    bool first_touch = true;
};

/// Resolved configuration, surfaced through bench/CLI output.
struct EngineInfo {
    KernelVariant variant = KernelVariant::CsrScalar;  ///< post-Auto
    simd::Isa isa = simd::Isa::Scalar;  ///< for the *Simd variants
    std::int64_t prefetch_distance = 0;  ///< post-calibration
    std::int64_t threads = 1;
    double sell_padding = 1.0;  ///< padded/logical nnz (SELL variants)
    double imbalance = 1.0;     ///< nnz imbalance of the row partition
    bool first_touch = false;
};

/// Cache-line-aligned storage that is NOT zero-initialised at allocation,
/// so the engine's workers (not the allocating thread) perform the first
/// touch of every page they own.
template <class T>
class FirstTouchBuffer {
    static_assert(std::is_trivial_v<T>,
                  "first-touch storage skips construction");

public:
    FirstTouchBuffer() = default;
    explicit FirstTouchBuffer(std::size_t n) : size_(n) {
        if (n > 0) data_ = AlignedAllocator<T>{}.allocate(n);
    }
    ~FirstTouchBuffer() {
        if (data_ != nullptr) AlignedAllocator<T>{}.deallocate(data_, size_);
    }

    FirstTouchBuffer(FirstTouchBuffer&& other) noexcept
        : data_(other.data_), size_(other.size_) {
        other.data_ = nullptr;
        other.size_ = 0;
    }
    FirstTouchBuffer& operator=(FirstTouchBuffer&& other) noexcept {
        if (this != &other) {
            if (data_ != nullptr)
                AlignedAllocator<T>{}.deallocate(data_, size_);
            data_ = other.data_;
            size_ = other.size_;
            other.data_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }
    FirstTouchBuffer(const FirstTouchBuffer&) = delete;
    FirstTouchBuffer& operator=(const FirstTouchBuffer&) = delete;

    [[nodiscard]] T* data() noexcept { return data_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
    [[nodiscard]] std::span<const T> span() const noexcept {
        return {data_, size_};
    }

private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
};

/// First-touch double storage for x/y vectors (see make_vector()).
using FirstTouchVector = FirstTouchBuffer<double>;

/// Persistent-team SpMV executor at one physical index width: construct
/// once per matrix, run many iterations. run() computes y <- y + A x
/// exactly like spmv_csr. `KernelEngine` (= the Idx32 instantiation) is
/// the default pipeline; `KernelEngine64` serves the wide fallback.
template <class Idx>
class BasicKernelEngine {
public:
    using offset_type = typename Idx::offset_type;
    using index_type = typename Idx::index_type;

    /// Builds the row partition from options.policy/threads.
    BasicKernelEngine(const BasicCsrView<Idx>& a,
                      const EngineOptions& options);
    /// Honors an externally supplied partition (its thread count wins
    /// over options.threads).
    BasicKernelEngine(const BasicCsrView<Idx>& a,
                      const RowPartition& partition,
                      const EngineOptions& options);
    ~BasicKernelEngine();

    BasicKernelEngine(const BasicKernelEngine&) = delete;
    BasicKernelEngine& operator=(const BasicKernelEngine&) = delete;

    /// y <- y + A x (one iteration). Pre: x.size() == cols, y.size() == rows.
    void run(std::span<const double> x, std::span<double> y);

    /// y <- y + A x, `iterations` times. The CSR and SELL variants run all
    /// iterations inside a single team dispatch (ranges are disjoint, so
    /// no barrier is needed between iterations); merge barriers once per
    /// iteration for the carry fix-up.
    void run_iterations(std::span<const double> x, std::span<double> y,
                        std::int64_t iterations);

    [[nodiscard]] const EngineInfo& info() const noexcept { return info_; }

    /// Allocates n doubles, each worker's slice first touched (and set to
    /// `value`) by that worker — pair with run() for NUMA-local x/y.
    [[nodiscard]] FirstTouchVector make_vector(std::size_t n, double value);

private:
    void resolve_variant(const BasicCsrView<Idx>& a,
                         const EngineOptions& options);
    void setup_csr(const BasicCsrView<Idx>& a, const EngineOptions& options);
    void setup_sell(const BasicCsrView<Idx>& a,
                    const EngineOptions& options);
    void setup_merge(const BasicCsrView<Idx>& a);
    void calibrate_prefetch(const BasicCsrView<Idx>& a,
                            const EngineOptions& options);
    void dispatch(const std::function<void(std::size_t)>& body);

    void run_csr(std::span<const double> x, std::span<double> y,
                 std::int64_t iterations);
    void run_sell(std::span<const double> x, std::span<double> y,
                  std::int64_t iterations);
    void run_merge(std::span<const double> x, std::span<double> y,
                   std::int64_t iterations);

    EngineInfo info_;
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    std::int64_t nnz_ = 0;
    RowPartition partition_;
    std::unique_ptr<WorkerTeam> team_;  ///< null when threads == 1

    // CSR data: either borrowed from the source matrix or first-touch
    // copies owned by the engine.
    std::span<const offset_type> rowptr_;
    std::span<const index_type> colidx_;
    std::span<const double> values_;
    FirstTouchBuffer<double> own_values_;
    FirstTouchBuffer<offset_type> own_rowptr_;
    FirstTouchBuffer<index_type> own_colidx_;

    // SELL data (built only for the Sell* variants).
    std::optional<BasicSellCSigmaMatrix<Idx>> sell_;
    std::vector<RowRange> chunk_ranges_;  ///< chunks owned per worker
    FirstTouchBuffer<double> sell_own_values_;
    FirstTouchBuffer<index_type> sell_own_colidx_;
    std::span<const double> sell_values_;
    std::span<const index_type> sell_colidx_;

    // Merge data: per-piece path coordinates and carry slots.
    std::vector<MergeCoordinate> piece_begin_;
    std::vector<MergeCoordinate> piece_end_;
    std::vector<std::int64_t> carry_row_;
    std::vector<double> carry_value_;

    simd::Dispatch simd_;  ///< both-widths kernel set; get<Idx>() is used
};

using KernelEngine = BasicKernelEngine<Idx32>;
using KernelEngine64 = BasicKernelEngine<Idx64>;

extern template class BasicKernelEngine<Idx32>;
extern template class BasicKernelEngine<Idx64>;

/// Width-erased engine for callers that hold an AnyCsrView (the CLI, the
/// daemon, benchmarks): constructs the engine matching the view's
/// physical width and forwards the run interface.
class AnyKernelEngine {
public:
    AnyKernelEngine(const AnyCsrView& a, const EngineOptions& options);
    AnyKernelEngine(const AnyCsrView& a, const RowPartition& partition,
                    const EngineOptions& options);

    void run(std::span<const double> x, std::span<double> y);
    void run_iterations(std::span<const double> x, std::span<double> y,
                        std::int64_t iterations);
    [[nodiscard]] const EngineInfo& info() const noexcept;
    [[nodiscard]] FirstTouchVector make_vector(std::size_t n, double value);
    [[nodiscard]] IndexWidth index_width() const noexcept {
        return e32_ ? IndexWidth::W32 : IndexWidth::W64;
    }

private:
    // Exactly one is non-null (which one mirrors a.index_width()).
    std::unique_ptr<KernelEngine> e32_;
    std::unique_ptr<KernelEngine64> e64_;
};

}  // namespace spmvcache
