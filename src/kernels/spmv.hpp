// Executable CSR SpMV kernels — the code of Listing 1, runnable on the
// host. The trace generator and simulator *model* these kernels; the tests
// cross-check that modelled and executed access patterns agree, and the
// microbenchmarks time them natively.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace spmvcache {

/// y <- y + A x, sequential (exactly the loop nest of Listing 1).
/// Pre: x.size() == A.cols(), y.size() == A.rows().
void spmv_csr(const CsrMatrix& a, std::span<const double> x,
              std::span<double> y);

/// y <- y + A x with OpenMP row-parallelism over `partition`'s ranges
/// (falls back to sequential execution when built without OpenMP).
void spmv_csr_parallel(const CsrMatrix& a, std::span<const double> x,
                       std::span<double> y, const RowPartition& partition);

/// y <- A x (overwrite), sequential; convenience for solvers.
void spmv_csr_overwrite(const CsrMatrix& a, std::span<const double> x,
                        std::span<double> y);

}  // namespace spmvcache
