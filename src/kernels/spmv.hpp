// Executable CSR SpMV kernels — the code of Listing 1, runnable on the
// host. The trace generator and simulator *model* these kernels; the tests
// cross-check that modelled and executed access patterns agree, and the
// microbenchmarks time them natively.
#pragma once

#include <span>

#include "sparse/csr_view.hpp"
#include "sparse/partition.hpp"

namespace spmvcache {

/// y <- y + A x, sequential (exactly the loop nest of Listing 1).
/// Pre: x.size() == A.cols(), y.size() == A.rows().
void spmv_csr(const CsrView& a, std::span<const double> x,
              std::span<double> y);

/// y <- y + A x with row-parallelism over `partition`'s ranges, executed
/// on a transient KernelEngine WorkerTeam (one std::thread per range, so
/// parallel even in builds without OpenMP; a 1-range partition runs
/// sequentially inline). Bitwise identical to spmv_csr. For repeated
/// products construct a KernelEngine directly — it keeps the team, the
/// first-touch data placement and the tuned kernel variant alive across
/// iterations instead of paying setup per call.
void spmv_csr_parallel(const CsrView& a, std::span<const double> x,
                       std::span<double> y, const RowPartition& partition);

/// y <- A x (overwrite), sequential; convenience for solvers.
void spmv_csr_overwrite(const CsrView& a, std::span<const double> x,
                        std::span<double> y);

}  // namespace spmvcache
