// Executable CSR SpMV kernels — the code of Listing 1, runnable on the
// host. The trace generator and simulator *model* these kernels; the tests
// cross-check that modelled and executed access patterns agree, and the
// microbenchmarks time them natively.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"
#include "sparse/partition.hpp"

namespace spmvcache {

/// y <- y + A x, sequential (exactly the loop nest of Listing 1), at
/// either physical index width.
/// Pre: x.size() == A.cols(), y.size() == A.rows().
template <class Idx>
void spmv_csr(const BasicCsrView<Idx>& a, std::span<const double> x,
              std::span<double> y);

/// y <- y + A x with row-parallelism over `partition`'s ranges, executed
/// on a transient KernelEngine WorkerTeam (one std::thread per range, so
/// parallel even in builds without OpenMP; a 1-range partition runs
/// sequentially inline). Bitwise identical to spmv_csr. For repeated
/// products construct a KernelEngine directly — it keeps the team, the
/// first-touch data placement and the tuned kernel variant alive across
/// iterations instead of paying setup per call.
template <class Idx>
void spmv_csr_parallel(const BasicCsrView<Idx>& a, std::span<const double> x,
                       std::span<double> y, const RowPartition& partition);

/// y <- A x (overwrite), sequential; convenience for solvers.
template <class Idx>
void spmv_csr_overwrite(const BasicCsrView<Idx>& a, std::span<const double> x,
                        std::span<double> y);

extern template void spmv_csr<Idx32>(const BasicCsrView<Idx32>&,
                                     std::span<const double>,
                                     std::span<double>);
extern template void spmv_csr<Idx64>(const BasicCsrView<Idx64>&,
                                     std::span<const double>,
                                     std::span<double>);
extern template void spmv_csr_parallel<Idx32>(const BasicCsrView<Idx32>&,
                                              std::span<const double>,
                                              std::span<double>,
                                              const RowPartition&);
extern template void spmv_csr_parallel<Idx64>(const BasicCsrView<Idx64>&,
                                              std::span<const double>,
                                              std::span<double>,
                                              const RowPartition&);
extern template void spmv_csr_overwrite<Idx32>(const BasicCsrView<Idx32>&,
                                               std::span<const double>,
                                               std::span<double>);
extern template void spmv_csr_overwrite<Idx64>(const BasicCsrView<Idx64>&,
                                               std::span<const double>,
                                               std::span<double>);

// Owning-matrix conveniences: template argument deduction cannot see
// through BasicCsrMatrix -> BasicCsrView, so forward explicitly.
template <class Idx>
void spmv_csr(const BasicCsrMatrix<Idx>& a, std::span<const double> x,
              std::span<double> y) {
    spmv_csr(BasicCsrView<Idx>(a), x, y);
}

template <class Idx>
void spmv_csr_parallel(const BasicCsrMatrix<Idx>& a,
                       std::span<const double> x, std::span<double> y,
                       const RowPartition& partition) {
    spmv_csr_parallel(BasicCsrView<Idx>(a), x, y, partition);
}

template <class Idx>
void spmv_csr_overwrite(const BasicCsrMatrix<Idx>& a,
                        std::span<const double> x, std::span<double> y) {
    spmv_csr_overwrite(BasicCsrView<Idx>(a), x, y);
}

}  // namespace spmvcache
