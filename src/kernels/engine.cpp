#include "kernels/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sync/thread_pool.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace spmvcache {

namespace {

/// Prefetching scalar CSR row-range kernel. Lookahead is in nonzeros:
/// while accumulating element i, the x entry gathered through
/// colidx[i + d] plus the values/colidx stream positions i + d are
/// requested. Reads of colidx stay clamped inside [0, nnz); prefetches of
/// one-past-range addresses are harmless (prefetch never faults).
template <class Idx>
void csr_range_prefetch(const typename Idx::offset_type* rowptr,
                        const typename Idx::index_type* colidx,
                        const double* values, const double* x, double* y,
                        std::int64_t row_begin, std::int64_t row_end,
                        std::int64_t nnz, std::int64_t distance) {
    const std::int64_t last = nnz > 0 ? nnz - 1 : 0;
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        double acc = y[r];  // same accumulation order as spmv_csr
        const auto begin = static_cast<std::int64_t>(rowptr[r]);
        const auto end = static_cast<std::int64_t>(rowptr[r + 1]);
        for (std::int64_t i = begin; i < end; ++i) {
            const std::int64_t ahead = i + distance < last ? i + distance
                                                           : last;
            __builtin_prefetch(x + colidx[ahead], 0, 0);
            __builtin_prefetch(values + ahead, 0, 0);
            __builtin_prefetch(colidx + ahead, 0, 0);
            acc += values[i] * x[colidx[i]];
        }
        y[r] = acc;
    }
}

std::int64_t resolve_threads(std::int64_t requested) {
    if (requested == 0)
        return static_cast<std::int64_t>(default_host_jobs());
    SPMV_EXPECTS(requested >= 1);
    return requested;
}

/// Coefficient of variation of the row lengths (cheap shape probe for the
/// Auto heuristic; matches MatrixStats::cv_nnz_per_row).
template <class Idx>
double row_length_cv(const BasicCsrView<Idx>& a) {
    const auto rowptr = a.rowptr();
    const std::int64_t n = a.rows();
    if (n == 0 || a.nnz() == 0) return 0.0;
    const double mean = static_cast<double>(a.nnz()) /
                        static_cast<double>(n);
    double ss = 0.0;
    for (std::int64_t r = 0; r < n; ++r) {
        const double len = static_cast<double>(
            static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(r) + 1]) -
            static_cast<std::int64_t>(rowptr[static_cast<std::size_t>(r)]));
        ss += (len - mean) * (len - mean);
    }
    return std::sqrt(ss / static_cast<double>(n)) / mean;
}

}  // namespace

const char* to_string(KernelVariant variant) noexcept {
    switch (variant) {
        case KernelVariant::CsrScalar: return "csr";
        case KernelVariant::CsrPrefetch: return "csr-prefetch";
        case KernelVariant::CsrSimd: return "csr-simd";
        case KernelVariant::SellScalar: return "sell";
        case KernelVariant::SellSimd: return "sell-simd";
        case KernelVariant::CsrMerge: return "merge";
        case KernelVariant::Auto: return "auto";
    }
    return "csr";
}

[[nodiscard]] Result<KernelVariant> parse_kernel_variant(
    std::string_view name) {
    if (name == "csr" || name == "scalar") return KernelVariant::CsrScalar;
    if (name == "csr-prefetch" || name == "prefetch")
        return KernelVariant::CsrPrefetch;
    if (name == "csr-simd" || name == "simd") return KernelVariant::CsrSimd;
    if (name == "sell") return KernelVariant::SellScalar;
    if (name == "sell-simd") return KernelVariant::SellSimd;
    if (name == "merge") return KernelVariant::CsrMerge;
    if (name == "auto") return KernelVariant::Auto;
    return Error(ErrorCode::ValidationError,
                 "unknown kernel variant '" + std::string(name) +
                     "' (csr, csr-prefetch, csr-simd, sell, sell-simd, "
                     "merge, auto)");
}

template <class Idx>
BasicKernelEngine<Idx>::BasicKernelEngine(const BasicCsrView<Idx>& a,
                                          const EngineOptions& options)
    : BasicKernelEngine(a,
                        RowPartition(a, resolve_threads(options.threads),
                                     options.policy),
                        options) {}

template <class Idx>
BasicKernelEngine<Idx>::BasicKernelEngine(const BasicCsrView<Idx>& a,
                                          const RowPartition& partition,
                                          const EngineOptions& options)
    : rows_(a.rows()), cols_(a.cols()), nnz_(a.nnz()),
      partition_(partition) {
    info_.threads = partition_.threads();
    info_.first_touch = options.first_touch;
    info_.imbalance = partition_.imbalance(a);
    if (info_.threads > 1)
        team_ = std::make_unique<WorkerTeam>(
            static_cast<std::size_t>(info_.threads));

    resolve_variant(a, options);

    switch (info_.variant) {
        case KernelVariant::SellScalar:
        case KernelVariant::SellSimd:
            setup_sell(a, options);
            break;
        case KernelVariant::CsrMerge:
            setup_csr(a, options);
            setup_merge(a);
            break;
        default:
            setup_csr(a, options);
            break;
    }
    if (info_.variant == KernelVariant::CsrPrefetch)
        calibrate_prefetch(a, options);
}

template <class Idx>
BasicKernelEngine<Idx>::~BasicKernelEngine() = default;

template <class Idx>
void BasicKernelEngine<Idx>::resolve_variant(const BasicCsrView<Idx>& a,
                                             const EngineOptions& options) {
    simd_ = simd::best();
    KernelVariant variant = options.variant;
    if (variant == KernelVariant::Auto) {
        // Documented in DESIGN.md §5: merge for row-imbalanced matrices,
        // SELL when sorting keeps padding low, SIMD CSR otherwise, and
        // the prefetch variant when no vector ISA is compiled in (the
        // gather latency is then the only lever left).
        const bool has_simd = simd_.isa != simd::Isa::Scalar;
        if (info_.threads > 1 && info_.imbalance > 1.5) {
            variant = KernelVariant::CsrMerge;
        } else if (has_simd && row_length_cv(a) <= 1.0) {
            variant = KernelVariant::SellSimd;
        } else if (has_simd) {
            variant = KernelVariant::CsrSimd;
        } else {
            variant = KernelVariant::CsrPrefetch;
        }
    }
    info_.variant = variant;
    info_.isa = (variant == KernelVariant::CsrSimd ||
                 variant == KernelVariant::SellSimd)
                    ? simd_.isa
                    : simd::Isa::Scalar;
}

template <class Idx>
void BasicKernelEngine<Idx>::setup_csr(const BasicCsrView<Idx>& a,
                                       const EngineOptions& options) {
    if (!options.first_touch) {
        rowptr_ = a.rowptr();
        colidx_ = a.colidx();
        values_ = a.values();
        return;
    }
    // First-touch copies: worker t writes (and therefore faults in) the
    // rowptr/colidx/values slices of its own row range.
    own_rowptr_ = FirstTouchBuffer<offset_type>(
        static_cast<std::size_t>(rows_) + 1);
    own_colidx_ =
        FirstTouchBuffer<index_type>(static_cast<std::size_t>(nnz_));
    own_values_ = FirstTouchBuffer<double>(static_cast<std::size_t>(nnz_));
    const auto src_rowptr = a.rowptr();
    const auto src_colidx = a.colidx();
    const auto src_values = a.values();
    dispatch([&](std::size_t t) {
        const RowRange& range =
            partition_.range(static_cast<std::int64_t>(t));
        const auto lo = static_cast<std::int64_t>(
            src_rowptr[static_cast<std::size_t>(range.begin)]);
        const auto hi = static_cast<std::int64_t>(
            src_rowptr[static_cast<std::size_t>(range.end)]);
        for (std::int64_t r = range.begin; r < range.end; ++r)
            own_rowptr_.data()[r] = src_rowptr[static_cast<std::size_t>(r)];
        if (range.end == rows_)
            own_rowptr_.data()[rows_] =
                src_rowptr[static_cast<std::size_t>(rows_)];
        for (std::int64_t i = lo; i < hi; ++i) {
            own_colidx_.data()[i] = src_colidx[static_cast<std::size_t>(i)];
            own_values_.data()[i] = src_values[static_cast<std::size_t>(i)];
        }
    });
    rowptr_ = own_rowptr_.span();
    colidx_ = own_colidx_.span();
    values_ = own_values_.span();
}

template <class Idx>
void BasicKernelEngine<Idx>::setup_sell(const BasicCsrView<Idx>& a,
                                        const EngineOptions& options) {
    const std::int64_t chunk =
        options.sell_chunk > 0 ? options.sell_chunk : 8;
    const std::int64_t sigma =
        options.sell_sigma > 0 ? options.sell_sigma : chunk * 32;
    SPMV_EXPECTS(sigma == 1 || sigma % chunk == 0);
    sell_.emplace(a, chunk, sigma);
    info_.sell_padding = sell_->padding_factor();

    // Chunk ownership: contiguous chunk ranges balanced by padded
    // elements (the actual per-chunk work, padding included). A chunk
    // goes to worker t while its end offset stays within t's share.
    const auto offsets = sell_->chunk_offsets();  // chunks()+1 entries
    const std::int64_t chunks = sell_->chunks();
    const std::int64_t padded = sell_->padded_nnz();
    const std::int64_t threads = info_.threads;
    chunk_ranges_.assign(static_cast<std::size_t>(threads), RowRange{});
    std::int64_t k = 0;
    for (std::int64_t t = 0; t < threads; ++t) {
        const std::int64_t target = (t + 1) * padded / threads;
        const std::int64_t begin = k;
        while (k < chunks &&
               offsets[static_cast<std::size_t>(k) + 1] <= target)
            ++k;
        if (t == threads - 1) k = chunks;
        chunk_ranges_[static_cast<std::size_t>(t)] = RowRange{begin, k};
    }

    if (!options.first_touch) {
        sell_values_ = sell_->values();
        sell_colidx_ = sell_->colidx();
        return;
    }
    // First-touch copies of the chunk-major arrays, sliced by chunk range.
    sell_own_values_ = FirstTouchBuffer<double>(sell_->values().size());
    sell_own_colidx_ =
        FirstTouchBuffer<index_type>(sell_->colidx().size());
    const auto src_values = sell_->values();
    const auto src_colidx = sell_->colidx();
    dispatch([&](std::size_t t) {
        const RowRange& range = chunk_ranges_[t];
        if (range.begin >= range.end) return;
        const std::int64_t lo = offsets[static_cast<std::size_t>(range.begin)];
        const std::int64_t hi = offsets[static_cast<std::size_t>(range.end)];
        for (std::int64_t i = lo; i < hi; ++i) {
            sell_own_values_.data()[i] =
                src_values[static_cast<std::size_t>(i)];
            sell_own_colidx_.data()[i] =
                src_colidx[static_cast<std::size_t>(i)];
        }
    });
    sell_values_ = sell_own_values_.span();
    sell_colidx_ = sell_own_colidx_.span();
}

template <class Idx>
void BasicKernelEngine<Idx>::setup_merge(const BasicCsrView<Idx>& a) {
    const std::int64_t pieces = info_.threads;
    const std::int64_t path_length = rows_ + nnz_;
    const std::int64_t chunk = (path_length + pieces - 1) / pieces;
    piece_begin_.resize(static_cast<std::size_t>(pieces));
    piece_end_.resize(static_cast<std::size_t>(pieces));
    carry_row_.assign(static_cast<std::size_t>(pieces), -1);
    carry_value_.assign(static_cast<std::size_t>(pieces), 0.0);
    for (std::int64_t p = 0; p < pieces; ++p) {
        const std::int64_t diag_begin = std::min(p * chunk, path_length);
        const std::int64_t diag_end =
            std::min(diag_begin + chunk, path_length);
        piece_begin_[static_cast<std::size_t>(p)] =
            merge_path_search(a, diag_begin);
        piece_end_[static_cast<std::size_t>(p)] =
            merge_path_search(a, diag_end);
    }
}

template <class Idx>
void BasicKernelEngine<Idx>::calibrate_prefetch(const BasicCsrView<Idx>& a,
                                                const EngineOptions& options) {
    if (options.prefetch_distance > 0) {
        info_.prefetch_distance = options.prefetch_distance;
        return;
    }
    // Short single-threaded calibration over a bounded row sample: time
    // each candidate distance twice, keep the best minimum. Distance 0
    // (no prefetch) competes too, so calibration can turn prefetch off
    // on cache-resident matrices.
    static constexpr std::int64_t kCandidates[] = {0, 4, 8, 16, 32, 64};
    const auto rowptr = rowptr_;
    std::int64_t sample_rows = rows_;
    const std::int64_t nnz_budget = 1 << 21;
    if (nnz_ > nnz_budget) {
        sample_rows = 0;
        while (sample_rows < rows_ &&
               static_cast<std::int64_t>(
                   rowptr[static_cast<std::size_t>(sample_rows)]) <
                   nnz_budget)
            ++sample_rows;
    }
    if (sample_rows == 0 || nnz_ == 0) {
        info_.prefetch_distance = 16;
        return;
    }
    std::vector<double> x(static_cast<std::size_t>(cols_), 1.0);
    std::vector<double> y(static_cast<std::size_t>(sample_rows), 0.0);
    std::int64_t best = 16;
    double best_seconds = std::numeric_limits<double>::infinity();
    (void)a;
    for (const std::int64_t d : kCandidates) {
        double seconds = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 2; ++rep) {
            Timer timer;
            csr_range_prefetch<Idx>(rowptr_.data(), colidx_.data(),
                                    values_.data(), x.data(), y.data(), 0,
                                    sample_rows, nnz_, d);
            seconds = std::min(seconds, timer.seconds());
        }
        if (seconds < best_seconds) {
            best_seconds = seconds;
            best = d;
        }
    }
    info_.prefetch_distance = best;
}

template <class Idx>
void BasicKernelEngine<Idx>::dispatch(
    const std::function<void(std::size_t)>& body) {
    if (team_) {
        team_->run(body);
    } else {
        body(0);
    }
}

template <class Idx>
void BasicKernelEngine<Idx>::run(std::span<const double> x,
                                 std::span<double> y) {
    run_iterations(x, y, 1);
}

template <class Idx>
void BasicKernelEngine<Idx>::run_iterations(std::span<const double> x,
                                            std::span<double> y,
                                            std::int64_t iterations) {
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(cols_));
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(rows_));
    SPMV_EXPECTS(iterations >= 0);
    if (iterations == 0) return;
    fault::maybe_throw("kernel.exec");
    switch (info_.variant) {
        case KernelVariant::SellScalar:
        case KernelVariant::SellSimd:
            run_sell(x, y, iterations);
            return;
        case KernelVariant::CsrMerge:
            run_merge(x, y, iterations);
            return;
        default:
            run_csr(x, y, iterations);
            return;
    }
}

template <class Idx>
void BasicKernelEngine<Idx>::run_csr(std::span<const double> x,
                                     std::span<double> y,
                                     std::int64_t iterations) {
    const offset_type* rowptr = rowptr_.data();
    const index_type* colidx = colidx_.data();
    const double* values = values_.data();
    const double* xp = x.data();
    double* yp = y.data();
    const std::int64_t nnz = nnz_;
    const std::int64_t distance = info_.prefetch_distance;
    const KernelVariant variant = info_.variant;
    using CsrRangeFn = typename simd::WidthKernels<Idx>::CsrRangeFn;
    const CsrRangeFn scalar_fn = simd::scalar().get<Idx>().csr;
    const CsrRangeFn simd_fn = variant == KernelVariant::CsrSimd
                                   ? simd_.get<Idx>().csr
                                   : scalar_fn;
    // Row ranges are disjoint and x is read-only, so all iterations run
    // inside one team dispatch with no inter-iteration barrier.
    dispatch([&](std::size_t t) {
        const RowRange& range =
            partition_.range(static_cast<std::int64_t>(t));
        for (std::int64_t it = 0; it < iterations; ++it) {
            switch (variant) {
                case KernelVariant::CsrPrefetch:
                    csr_range_prefetch<Idx>(rowptr, colidx, values, xp, yp,
                                            range.begin, range.end, nnz,
                                            distance);
                    break;
                case KernelVariant::CsrSimd:
                    simd_fn(rowptr, colidx, values, xp, yp, range.begin,
                            range.end);
                    break;
                default:
                    scalar_fn(rowptr, colidx, values, xp, yp, range.begin,
                              range.end);
                    break;
            }
        }
    });
}

template <class Idx>
void BasicKernelEngine<Idx>::run_sell(std::span<const double> x,
                                      std::span<double> y,
                                      std::int64_t iterations) {
    using SellRangeFn = typename simd::WidthKernels<Idx>::SellRangeFn;
    const SellRangeFn kernel = info_.variant == KernelVariant::SellSimd
                                   ? simd_.get<Idx>().sell
                                   : simd::scalar().get<Idx>().sell;
    const double* values = sell_values_.data();
    const index_type* colidx = sell_colidx_.data();
    const std::int64_t* offsets = sell_->chunk_offsets().data();
    const std::int64_t* widths = sell_->chunk_widths().data();
    const index_type* perm = sell_->perm().data();
    const std::int64_t c = sell_->chunk_height();
    const double* xp = x.data();
    double* yp = y.data();
    // perm is a bijection, so chunk ranges write disjoint y entries; all
    // iterations run inside one dispatch, like the CSR family.
    dispatch([&](std::size_t t) {
        const RowRange& range = chunk_ranges_[t];
        for (std::int64_t it = 0; it < iterations; ++it)
            kernel(values, colidx, offsets, widths, perm, rows_, c, xp, yp,
                   range.begin, range.end);
    });
}

template <class Idx>
void BasicKernelEngine<Idx>::run_merge(std::span<const double> x,
                                       std::span<double> y,
                                       std::int64_t iterations) {
    const offset_type* rowptr = rowptr_.data();
    const index_type* colidx = colidx_.data();
    const double* values = values_.data();
    const double* xp = x.data();
    double* yp = y.data();
    const std::int64_t pieces = info_.threads;
    for (std::int64_t it = 0; it < iterations; ++it) {
        dispatch([&](std::size_t t) {
            MergeCoordinate cur = piece_begin_[t];
            const MergeCoordinate end = piece_end_[t];
            double acc = 0.0;
            carry_row_[t] = -1;
            carry_value_[t] = 0.0;
            while (cur.row < end.row) {
                for (; cur.nonzero <
                       static_cast<std::int64_t>(
                           rowptr[static_cast<std::size_t>(cur.row) + 1]);
                     ++cur.nonzero)
                    acc += values[cur.nonzero] * xp[colidx[cur.nonzero]];
                yp[cur.row] += acc;
                acc = 0.0;
                ++cur.row;
            }
            for (; cur.nonzero < end.nonzero; ++cur.nonzero)
                acc += values[cur.nonzero] * xp[colidx[cur.nonzero]];
            if (cur.row < rows_) {
                carry_row_[t] = cur.row;
                carry_value_[t] = acc;
            }
        });
        // Carry fix-up between iterations (sequential: one add per piece).
        for (std::int64_t p = 0; p < pieces; ++p) {
            if (carry_row_[static_cast<std::size_t>(p)] >= 0)
                yp[carry_row_[static_cast<std::size_t>(p)]] +=
                    carry_value_[static_cast<std::size_t>(p)];
        }
    }
}

template <class Idx>
FirstTouchVector BasicKernelEngine<Idx>::make_vector(std::size_t n,
                                                     double value) {
    FirstTouchVector v(n);
    const std::size_t workers =
        static_cast<std::size_t>(info_.threads);
    const std::size_t slice = (n + workers - 1) / workers;
    dispatch([&](std::size_t t) {
        const std::size_t begin = std::min(t * slice, n);
        const std::size_t end = std::min(begin + slice, n);
        for (std::size_t i = begin; i < end; ++i) v.data()[i] = value;
    });
    return v;
}

template class BasicKernelEngine<Idx32>;
template class BasicKernelEngine<Idx64>;

AnyKernelEngine::AnyKernelEngine(const AnyCsrView& a,
                                 const EngineOptions& options) {
    if (a.index_width() == IndexWidth::W32)
        e32_ = std::make_unique<KernelEngine>(*a.as32(), options);
    else
        e64_ = std::make_unique<KernelEngine64>(*a.as64(), options);
}

AnyKernelEngine::AnyKernelEngine(const AnyCsrView& a,
                                 const RowPartition& partition,
                                 const EngineOptions& options) {
    if (a.index_width() == IndexWidth::W32)
        e32_ = std::make_unique<KernelEngine>(*a.as32(), partition, options);
    else
        e64_ =
            std::make_unique<KernelEngine64>(*a.as64(), partition, options);
}

void AnyKernelEngine::run(std::span<const double> x, std::span<double> y) {
    if (e32_)
        e32_->run(x, y);
    else
        e64_->run(x, y);
}

void AnyKernelEngine::run_iterations(std::span<const double> x,
                                     std::span<double> y,
                                     std::int64_t iterations) {
    if (e32_)
        e32_->run_iterations(x, y, iterations);
    else
        e64_->run_iterations(x, y, iterations);
}

const EngineInfo& AnyKernelEngine::info() const noexcept {
    return e32_ ? e32_->info() : e64_->info();
}

FirstTouchVector AnyKernelEngine::make_vector(std::size_t n, double value) {
    return e32_ ? e32_->make_vector(n, value)
                : e64_->make_vector(n, value);
}

}  // namespace spmvcache
