// Merge-based CSR SpMV after Merrill & Garland [PPoPP'16], which the paper
// names as the standard mitigation for row-imbalanced matrices (§2.1).
//
// The (rowptr, nonzero-index) merge path is split into equal-length
// diagonals, so every thread does the same amount of work regardless of
// how nonzeros are distributed over rows; rows straddling a boundary are
// combined through partial-sum carry-out.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/csr_view.hpp"

namespace spmvcache {

/// Coordinate on the merge path: which row and which nonzero come next.
struct MergeCoordinate {
    std::int64_t row = 0;
    std::int64_t nonzero = 0;
};

/// Finds the merge-path coordinate of `diagonal` via binary search over
/// the rowptr "list" vs. the natural numbers (the nonzero indices).
/// Pre: 0 <= diagonal <= rows + nnz.
template <class Idx>
[[nodiscard]] MergeCoordinate merge_path_search(const BasicCsrView<Idx>& a,
                                                std::int64_t diagonal);

/// y <- y + A x using the merge-based decomposition into `pieces` equal
/// chunks (sequentially executed chunk loop; each chunk is independent
/// except for the carry, which is fixed up afterwards).
/// Pre: pieces >= 1, x.size() == cols, y.size() == rows.
template <class Idx>
void spmv_csr_merge(const BasicCsrView<Idx>& a, std::span<const double> x,
                    std::span<double> y, std::int64_t pieces);

extern template MergeCoordinate merge_path_search<Idx32>(
    const BasicCsrView<Idx32>&, std::int64_t);
extern template MergeCoordinate merge_path_search<Idx64>(
    const BasicCsrView<Idx64>&, std::int64_t);
extern template void spmv_csr_merge<Idx32>(const BasicCsrView<Idx32>&,
                                           std::span<const double>,
                                           std::span<double>, std::int64_t);
extern template void spmv_csr_merge<Idx64>(const BasicCsrView<Idx64>&,
                                           std::span<const double>,
                                           std::span<double>, std::int64_t);

// Owning-matrix conveniences (deduction cannot see through the implicit
// matrix -> view conversion).
template <class Idx>
[[nodiscard]] MergeCoordinate merge_path_search(const BasicCsrMatrix<Idx>& a,
                                                std::int64_t diagonal) {
    return merge_path_search(BasicCsrView<Idx>(a), diagonal);
}

template <class Idx>
void spmv_csr_merge(const BasicCsrMatrix<Idx>& a, std::span<const double> x,
                    std::span<double> y, std::int64_t pieces) {
    spmv_csr_merge(BasicCsrView<Idx>(a), x, y, pieces);
}

}  // namespace spmvcache
