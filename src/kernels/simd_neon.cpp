// NEON kernels for aarch64 (2 doubles per vector). NEON has no gather, so
// x values are loaded lane-wise whatever the index width; the win over
// scalar comes from the fused multiply-add on the values stream and from
// keeping two accumulator chains in flight. NEON is baseline on aarch64,
// so this TU needs no extra flags and no runtime check.
#include "kernels/simd.hpp"

#if defined(SPMVCACHE_SIMD_NEON)

#include <arm_neon.h>

namespace spmvcache::simd::detail {

template <class Idx>
void csr_range_neon(const typename Idx::offset_type* rowptr,
                    const typename Idx::index_type* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        const auto begin = static_cast<std::int64_t>(rowptr[r]);
        const auto end = static_cast<std::int64_t>(rowptr[r + 1]);
        float64x2_t acc = vdupq_n_f64(0.0);
        std::int64_t i = begin;
        for (; i + 2 <= end; i += 2) {
            float64x2_t xv = vdupq_n_f64(x[colidx[i]]);
            xv = vsetq_lane_f64(x[colidx[i + 1]], xv, 1);
            acc = vfmaq_f64(acc, vld1q_f64(values + i), xv);
        }
        double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
        for (; i < end; ++i) sum += values[i] * x[colidx[i]];
        y[r] += sum;
    }
}

template <class Idx>
void sell_range_neon(const double* values,
                     const typename Idx::index_type* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const typename Idx::index_type* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end) {
    const std::int64_t c = chunk_height;
    for (std::int64_t k = chunk_begin; k < chunk_end; ++k) {
        const std::int64_t base = chunk_offset[k];
        const std::int64_t width = chunk_width[k];
        const std::int64_t rows_in_chunk =
            rows - k * c < c ? rows - k * c : c;
        std::int64_t v = 0;
        for (; v + 2 <= rows_in_chunk; v += 2) {
            float64x2_t acc = vdupq_n_f64(0.0);
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                float64x2_t xv = vdupq_n_f64(x[colidx[slot]]);
                xv = vsetq_lane_f64(x[colidx[slot + 1]], xv, 1);
                acc = vfmaq_f64(acc, vld1q_f64(values + slot), xv);
            }
            y[perm[k * c + v]] += vgetq_lane_f64(acc, 0);
            y[perm[k * c + v + 1]] += vgetq_lane_f64(acc, 1);
        }
        for (; v < rows_in_chunk; ++v) {  // ragged tail of the last chunk
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                acc += values[slot] * x[colidx[slot]];
            }
            y[perm[k * c + v]] += acc;
        }
    }
}

template void csr_range_neon<Idx32>(const Idx32::offset_type*,
                                    const Idx32::index_type*, const double*,
                                    const double*, double*, std::int64_t,
                                    std::int64_t);
template void csr_range_neon<Idx64>(const Idx64::offset_type*,
                                    const Idx64::index_type*, const double*,
                                    const double*, double*, std::int64_t,
                                    std::int64_t);
template void sell_range_neon<Idx32>(const double*, const Idx32::index_type*,
                                     const std::int64_t*, const std::int64_t*,
                                     const Idx32::index_type*, std::int64_t,
                                     std::int64_t, const double*, double*,
                                     std::int64_t, std::int64_t);
template void sell_range_neon<Idx64>(const double*, const Idx64::index_type*,
                                     const std::int64_t*, const std::int64_t*,
                                     const Idx64::index_type*, std::int64_t,
                                     std::int64_t, const double*, double*,
                                     std::int64_t, std::int64_t);

}  // namespace spmvcache::simd::detail

#endif  // SPMVCACHE_SIMD_NEON
