// AVX2 + FMA kernels (4 doubles per vector; 32-bit or 64-bit index
// gathers chosen per width at compile time). Compiled with -mavx2 -mfma;
// only dispatched to after a runtime __builtin_cpu_supports check, so this
// TU must not be entered on older hardware. Unaligned vector loads go
// through std::memcpy, which the compiler folds into vmovdqu/vmovupd —
// this avoids reinterpret_cast and the alignment-increasing casts
// -Wcast-align rejects.
#include "kernels/simd.hpp"

#if defined(SPMVCACHE_SIMD_AVX2)

#include <immintrin.h>

#include <cstring>

namespace spmvcache::simd::detail {

namespace {

/// Horizontal sum of a 4-lane double vector.
double hsum4(__m256d v) noexcept {
    __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(lo, lo);
    return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

__m128i load_idx4_32(const std::int32_t* p) noexcept {
    __m128i idx;
    std::memcpy(&idx, p, sizeof(idx));
    return idx;
}

__m256i load_idx4_64(const std::int64_t* p) noexcept {
    __m256i idx;
    std::memcpy(&idx, p, sizeof(idx));
    return idx;
}

__m256d load_pd4(const double* p) noexcept {
    __m256d v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/// Gathers x[colidx[0..3]] at either index width: vgatherdpd for the
/// 4-byte indices (half the index stream of the wide form), vgatherqpd
/// for the 8-byte fallback.
template <class Idx>
__m256d gather4(const double* x,
                const typename Idx::index_type* colidx) noexcept {
    if constexpr (sizeof(typename Idx::index_type) == 4)
        return _mm256_i32gather_pd(x, load_idx4_32(colidx), 8);
    else
        return _mm256_i64gather_pd(x, load_idx4_64(colidx), 8);
}

}  // namespace

template <class Idx>
void csr_range_avx2(const typename Idx::offset_type* rowptr,
                    const typename Idx::index_type* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        const auto begin = static_cast<std::int64_t>(rowptr[r]);
        const auto end = static_cast<std::int64_t>(rowptr[r + 1]);
        __m256d acc = _mm256_setzero_pd();
        std::int64_t i = begin;
        for (; i + 4 <= end; i += 4) {
            const __m256d xv = gather4<Idx>(x, colidx + i);
            acc = _mm256_fmadd_pd(load_pd4(values + i), xv, acc);
        }
        double sum = hsum4(acc);
        for (; i < end; ++i) sum += values[i] * x[colidx[i]];
        y[r] += sum;
    }
}

template <class Idx>
void sell_range_avx2(const double* values,
                     const typename Idx::index_type* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const typename Idx::index_type* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end) {
    const std::int64_t c = chunk_height;
    for (std::int64_t k = chunk_begin; k < chunk_end; ++k) {
        const std::int64_t base = chunk_offset[k];
        const std::int64_t width = chunk_width[k];
        const std::int64_t rows_in_chunk =
            rows - k * c < c ? rows - k * c : c;
        // Vector lane groups of 4 sorted rows, column-major over the chunk;
        // padding slots (value 0, column 0) make the j loop branch-free.
        std::int64_t v = 0;
        for (; v + 4 <= rows_in_chunk; v += 4) {
            __m256d acc = _mm256_setzero_pd();
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                const __m256d xv = gather4<Idx>(x, colidx + slot);
                acc = _mm256_fmadd_pd(load_pd4(values + slot), xv, acc);
            }
            alignas(32) double lane[4];
            _mm256_store_pd(lane, acc);
            for (std::int64_t l = 0; l < 4; ++l)
                y[perm[k * c + v + l]] += lane[l];
        }
        for (; v < rows_in_chunk; ++v) {  // ragged tail of the last chunk
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + v;
                acc += values[slot] * x[colidx[slot]];
            }
            y[perm[k * c + v]] += acc;
        }
    }
}

template void csr_range_avx2<Idx32>(const Idx32::offset_type*,
                                    const Idx32::index_type*, const double*,
                                    const double*, double*, std::int64_t,
                                    std::int64_t);
template void csr_range_avx2<Idx64>(const Idx64::offset_type*,
                                    const Idx64::index_type*, const double*,
                                    const double*, double*, std::int64_t,
                                    std::int64_t);
template void sell_range_avx2<Idx32>(const double*, const Idx32::index_type*,
                                     const std::int64_t*, const std::int64_t*,
                                     const Idx32::index_type*, std::int64_t,
                                     std::int64_t, const double*, double*,
                                     std::int64_t, std::int64_t);
template void sell_range_avx2<Idx64>(const double*, const Idx64::index_type*,
                                     const std::int64_t*, const std::int64_t*,
                                     const Idx64::index_type*, std::int64_t,
                                     std::int64_t, const double*, double*,
                                     std::int64_t, std::int64_t);

}  // namespace spmvcache::simd::detail

#endif  // SPMVCACHE_SIMD_AVX2
