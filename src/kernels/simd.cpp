#include "kernels/simd.hpp"

namespace spmvcache::simd {

const char* to_string(Isa isa) noexcept {
    switch (isa) {
        case Isa::Scalar: return "scalar";
        case Isa::Neon: return "neon";
        case Isa::Avx2: return "avx2";
        case Isa::Avx512: return "avx512";
    }
    return "scalar";
}

namespace detail {

void csr_range_scalar(const std::int64_t* rowptr, const std::int32_t* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        // Accumulate starting from y[r], exactly like spmv_csr, so the
        // scalar variant is bit-identical to the sequential kernel.
        double acc = y[r];
        for (std::int64_t i = rowptr[r]; i < rowptr[r + 1]; ++i)
            acc += values[i] * x[colidx[i]];
        y[r] = acc;
    }
}

void sell_range_scalar(const double* values, const std::int32_t* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const std::int32_t* perm, std::int64_t rows,
                       std::int64_t chunk_height, const double* x, double* y,
                       std::int64_t chunk_begin, std::int64_t chunk_end) {
    const std::int64_t c = chunk_height;
    for (std::int64_t k = chunk_begin; k < chunk_end; ++k) {
        const std::int64_t base = chunk_offset[k];
        const std::int64_t width = chunk_width[k];
        const std::int64_t rows_in_chunk =
            rows - k * c < c ? rows - k * c : c;
        for (std::int64_t i = 0; i < rows_in_chunk; ++i) {
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + i;
                acc += values[slot] * x[colidx[slot]];
            }
            y[perm[k * c + i]] += acc;
        }
    }
}

}  // namespace detail

namespace {

// The SPMVCACHE_SIMD_AVX* definitions are only set on x86-64 GCC/Clang
// builds (see CMakeLists.txt), so __builtin_cpu_supports is available
// wherever these branches compile.
Dispatch resolve_best() noexcept {
    Dispatch d{Isa::Scalar, &detail::csr_range_scalar,
               &detail::sell_range_scalar};
#if defined(SPMVCACHE_SIMD_NEON)
    // NEON is baseline on aarch64: no runtime check needed.
    d = Dispatch{Isa::Neon, &detail::csr_range_neon,
                 &detail::sell_range_neon};
#endif
#if defined(SPMVCACHE_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        d = Dispatch{Isa::Avx2, &detail::csr_range_avx2,
                     &detail::sell_range_avx2};
#endif
#if defined(SPMVCACHE_SIMD_AVX512)
    if (__builtin_cpu_supports("avx512f"))
        d = Dispatch{Isa::Avx512, &detail::csr_range_avx512,
                     &detail::sell_range_avx512};
#endif
    return d;
}

}  // namespace

const Dispatch& best() noexcept {
    static const Dispatch dispatch = resolve_best();
    return dispatch;
}

const Dispatch& scalar() noexcept {
    static const Dispatch dispatch{Isa::Scalar, &detail::csr_range_scalar,
                                   &detail::sell_range_scalar};
    return dispatch;
}

}  // namespace spmvcache::simd
