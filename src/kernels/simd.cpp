#include "kernels/simd.hpp"

namespace spmvcache::simd {

const char* to_string(Isa isa) noexcept {
    switch (isa) {
        case Isa::Scalar: return "scalar";
        case Isa::Neon: return "neon";
        case Isa::Avx2: return "avx2";
        case Isa::Avx512: return "avx512";
    }
    return "scalar";
}

namespace detail {

template <class Idx>
void csr_range_scalar(const typename Idx::offset_type* rowptr,
                      const typename Idx::index_type* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t r = row_begin; r < row_end; ++r) {
        // Accumulate starting from y[r], exactly like spmv_csr, so the
        // scalar variant is bit-identical to the sequential kernel.
        double acc = y[r];
        const auto begin = static_cast<std::int64_t>(rowptr[r]);
        const auto end = static_cast<std::int64_t>(rowptr[r + 1]);
        for (std::int64_t i = begin; i < end; ++i)
            acc += values[i] * x[colidx[i]];
        y[r] = acc;
    }
}

template <class Idx>
void sell_range_scalar(const double* values,
                       const typename Idx::index_type* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const typename Idx::index_type* perm,
                       std::int64_t rows, std::int64_t chunk_height,
                       const double* x, double* y, std::int64_t chunk_begin,
                       std::int64_t chunk_end) {
    const std::int64_t c = chunk_height;
    for (std::int64_t k = chunk_begin; k < chunk_end; ++k) {
        const std::int64_t base = chunk_offset[k];
        const std::int64_t width = chunk_width[k];
        const std::int64_t rows_in_chunk =
            rows - k * c < c ? rows - k * c : c;
        for (std::int64_t i = 0; i < rows_in_chunk; ++i) {
            double acc = 0.0;
            for (std::int64_t j = 0; j < width; ++j) {
                const std::int64_t slot = base + j * c + i;
                acc += values[slot] * x[colidx[slot]];
            }
            y[perm[k * c + i]] += acc;
        }
    }
}

template void csr_range_scalar<Idx32>(const Idx32::offset_type*,
                                      const Idx32::index_type*, const double*,
                                      const double*, double*, std::int64_t,
                                      std::int64_t);
template void csr_range_scalar<Idx64>(const Idx64::offset_type*,
                                      const Idx64::index_type*, const double*,
                                      const double*, double*, std::int64_t,
                                      std::int64_t);
template void sell_range_scalar<Idx32>(const double*, const Idx32::index_type*,
                                       const std::int64_t*,
                                       const std::int64_t*,
                                       const Idx32::index_type*, std::int64_t,
                                       std::int64_t, const double*, double*,
                                       std::int64_t, std::int64_t);
template void sell_range_scalar<Idx64>(const double*, const Idx64::index_type*,
                                       const std::int64_t*,
                                       const std::int64_t*,
                                       const Idx64::index_type*, std::int64_t,
                                       std::int64_t, const double*, double*,
                                       std::int64_t, std::int64_t);

}  // namespace detail

namespace {

// The SPMVCACHE_SIMD_AVX* definitions are only set on x86-64 GCC/Clang
// builds (see CMakeLists.txt), so __builtin_cpu_supports is available
// wherever these branches compile.
Dispatch resolve_best() noexcept {
    Dispatch d;
    d.isa = Isa::Scalar;
    d.w32 = {&detail::csr_range_scalar<Idx32>,
             &detail::sell_range_scalar<Idx32>};
    d.w64 = {&detail::csr_range_scalar<Idx64>,
             &detail::sell_range_scalar<Idx64>};
#if defined(SPMVCACHE_SIMD_NEON)
    // NEON is baseline on aarch64: no runtime check needed.
    d.isa = Isa::Neon;
    d.w32 = {&detail::csr_range_neon<Idx32>,
             &detail::sell_range_neon<Idx32>};
    d.w64 = {&detail::csr_range_neon<Idx64>,
             &detail::sell_range_neon<Idx64>};
#endif
#if defined(SPMVCACHE_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        d.isa = Isa::Avx2;
        d.w32 = {&detail::csr_range_avx2<Idx32>,
                 &detail::sell_range_avx2<Idx32>};
        d.w64 = {&detail::csr_range_avx2<Idx64>,
                 &detail::sell_range_avx2<Idx64>};
    }
#endif
#if defined(SPMVCACHE_SIMD_AVX512)
    if (__builtin_cpu_supports("avx512f")) {
        d.isa = Isa::Avx512;
        d.w32 = {&detail::csr_range_avx512<Idx32>,
                 &detail::sell_range_avx512<Idx32>};
        d.w64 = {&detail::csr_range_avx512<Idx64>,
                 &detail::sell_range_avx512<Idx64>};
    }
#endif
    return d;
}

}  // namespace

const Dispatch& best() noexcept {
    static const Dispatch dispatch = resolve_best();
    return dispatch;
}

const Dispatch& scalar() noexcept {
    static const Dispatch dispatch{
        Isa::Scalar,
        {&detail::csr_range_scalar<Idx32>, &detail::sell_range_scalar<Idx32>},
        {&detail::csr_range_scalar<Idx64>,
         &detail::sell_range_scalar<Idx64>}};
    return dispatch;
}

}  // namespace spmvcache::simd
