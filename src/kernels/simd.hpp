// Portable SIMD dispatch shim for the SpMV kernel variants.
//
// The repository builds with no -march flags, so vector kernels live in
// per-ISA translation units compiled with exactly the flags they need
// (see src/kernels/CMakeLists.txt): simd_avx2.cpp (-mavx2 -mfma),
// simd_avx512.cpp (-mavx512f), and NEON paths compiled only on aarch64
// where they are baseline. Which TUs exist is a compile-time decision
// (SPMVCACHE_SIMD_* definitions); which one actually runs is a runtime
// decision (__builtin_cpu_supports on x86), so a binary built on an
// AVX-512 box still runs — via the scalar fallback — on an older core.
//
// All kernels share two shapes:
//  - CSR row range:   y[r] += sum_i values[i] * x[colidx[i]] over rows
//    [row_begin, row_end) — the per-thread body of Listing 1.
//  - SELL-C-sigma chunk range: column-major chunk loop over chunks
//    [chunk_begin, chunk_end), results scattered through the row
//    permutation (Kreutzer et al.'s vectorisation-friendly layout).
//
// The scalar entries are always valid function pointers, so callers can
// dispatch unconditionally.
#pragma once

#include <cstdint>

namespace spmvcache::simd {

/// Instruction set a kernel was compiled for.
enum class Isa : std::uint8_t { Scalar, Neon, Avx2, Avx512 };

[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// CSR row-range kernel: for r in [row_begin, row_end),
/// y[r] += sum over values[rowptr[r]..rowptr[r+1]) * x[colidx[..]].
using CsrRangeFn = void (*)(const std::int64_t* rowptr,
                            const std::int32_t* colidx, const double* values,
                            const double* x, double* y,
                            std::int64_t row_begin, std::int64_t row_end);

/// SELL-C-sigma chunk-range kernel: for chunk k in [chunk_begin,
/// chunk_end), accumulate the chunk column-major and scatter each sorted
/// row position p's sum into y[perm[p]]. `rows` bounds the ragged last
/// chunk; padding slots carry value 0 and column 0, so no branches are
/// needed in the inner loop.
using SellRangeFn = void (*)(const double* values, const std::int32_t* colidx,
                             const std::int64_t* chunk_offset,
                             const std::int64_t* chunk_width,
                             const std::int32_t* perm, std::int64_t rows,
                             std::int64_t chunk_height, const double* x,
                             double* y, std::int64_t chunk_begin,
                             std::int64_t chunk_end);

/// One resolved kernel set. `csr` and `sell` are never null.
struct Dispatch {
    Isa isa = Isa::Scalar;
    CsrRangeFn csr = nullptr;
    SellRangeFn sell = nullptr;
};

/// Best kernels compiled into this binary AND supported by the running
/// CPU. Falls back to the scalar pair when no vector TU applies.
[[nodiscard]] const Dispatch& best() noexcept;

/// The scalar reference pair (always available; bit-identical inner-loop
/// order to kernels/spmv.cpp's spmv_csr).
[[nodiscard]] const Dispatch& scalar() noexcept;

namespace detail {

// Scalar fallbacks (defined in simd.cpp).
void csr_range_scalar(const std::int64_t* rowptr, const std::int32_t* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end);
void sell_range_scalar(const double* values, const std::int32_t* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const std::int32_t* perm, std::int64_t rows,
                       std::int64_t chunk_height, const double* x, double* y,
                       std::int64_t chunk_begin, std::int64_t chunk_end);

// Per-ISA entry points; each pair is defined only when its TU is in the
// build (guarded by the SPMVCACHE_SIMD_* compile definitions).
#if defined(SPMVCACHE_SIMD_AVX2)
void csr_range_avx2(const std::int64_t* rowptr, const std::int32_t* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end);
void sell_range_avx2(const double* values, const std::int32_t* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const std::int32_t* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end);
#endif
#if defined(SPMVCACHE_SIMD_AVX512)
void csr_range_avx512(const std::int64_t* rowptr, const std::int32_t* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end);
void sell_range_avx512(const double* values, const std::int32_t* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const std::int32_t* perm, std::int64_t rows,
                       std::int64_t chunk_height, const double* x, double* y,
                       std::int64_t chunk_begin, std::int64_t chunk_end);
#endif
#if defined(SPMVCACHE_SIMD_NEON)
void csr_range_neon(const std::int64_t* rowptr, const std::int32_t* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end);
void sell_range_neon(const double* values, const std::int32_t* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const std::int32_t* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end);
#endif

}  // namespace detail
}  // namespace spmvcache::simd
