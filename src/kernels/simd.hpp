// Portable SIMD dispatch shim for the SpMV kernel variants.
//
// The repository builds with no -march flags, so vector kernels live in
// per-ISA translation units compiled with exactly the flags they need
// (see src/kernels/CMakeLists.txt): simd_avx2.cpp (-mavx2 -mfma),
// simd_avx512.cpp (-mavx512f), and NEON paths compiled only on aarch64
// where they are baseline. Which TUs exist is a compile-time decision
// (SPMVCACHE_SIMD_* definitions); which one actually runs is a runtime
// decision (__builtin_cpu_supports on x86), so a binary built on an
// AVX-512 box still runs — via the scalar fallback — on an older core.
//
// Every kernel is templated on the physical index width (Idx32/Idx64,
// sparse/index_width.hpp) and explicitly instantiated for both inside its
// ISA TU: the W32 variants use the i32 gather forms
// (_mm256_i32gather_pd/_mm512_i32gather_pd) and stream half the index
// bytes, the W64 fallback uses the i64 gathers. A Dispatch carries the
// resolved kernel set for both widths; callers pick one with get<Idx>().
//
// All kernels share two shapes:
//  - CSR row range:   y[r] += sum_i values[i] * x[colidx[i]] over rows
//    [row_begin, row_end) — the per-thread body of Listing 1.
//  - SELL-C-sigma chunk range: column-major chunk loop over chunks
//    [chunk_begin, chunk_end), results scattered through the row
//    permutation (Kreutzer et al.'s vectorisation-friendly layout).
//
// The scalar entries are always valid function pointers, so callers can
// dispatch unconditionally.
#pragma once

#include <cstdint>
#include <type_traits>

#include "sparse/index_width.hpp"

namespace spmvcache::simd {

/// Instruction set a kernel was compiled for.
enum class Isa : std::uint8_t { Scalar, Neon, Avx2, Avx512 };

[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// The resolved kernel pair for one physical index width. `csr` and
/// `sell` are never null once the set came out of best()/scalar().
template <class Idx>
struct WidthKernels {
    /// CSR row-range kernel: for r in [row_begin, row_end),
    /// y[r] += sum over values[rowptr[r]..rowptr[r+1]) * x[colidx[..]].
    using CsrRangeFn = void (*)(const typename Idx::offset_type* rowptr,
                                const typename Idx::index_type* colidx,
                                const double* values, const double* x,
                                double* y, std::int64_t row_begin,
                                std::int64_t row_end);

    /// SELL-C-sigma chunk-range kernel: for chunk k in [chunk_begin,
    /// chunk_end), accumulate the chunk column-major and scatter each
    /// sorted row position p's sum into y[perm[p]]. `rows` bounds the
    /// ragged last chunk; padding slots carry value 0 and column 0, so no
    /// branches are needed in the inner loop. Chunk geometry stays int64
    /// at both widths (it indexes padded slots, not matrix entries).
    using SellRangeFn = void (*)(const double* values,
                                 const typename Idx::index_type* colidx,
                                 const std::int64_t* chunk_offset,
                                 const std::int64_t* chunk_width,
                                 const typename Idx::index_type* perm,
                                 std::int64_t rows, std::int64_t chunk_height,
                                 const double* x, double* y,
                                 std::int64_t chunk_begin,
                                 std::int64_t chunk_end);

    CsrRangeFn csr = nullptr;
    SellRangeFn sell = nullptr;
};

/// One resolved kernel set, carrying both widths of the same ISA.
struct Dispatch {
    Isa isa = Isa::Scalar;
    WidthKernels<Idx32> w32;
    WidthKernels<Idx64> w64;

    template <class Idx>
    [[nodiscard]] const WidthKernels<Idx>& get() const noexcept {
        if constexpr (std::is_same_v<Idx, Idx32>)
            return w32;
        else
            return w64;
    }
};

/// Best kernels compiled into this binary AND supported by the running
/// CPU. Falls back to the scalar set when no vector TU applies.
[[nodiscard]] const Dispatch& best() noexcept;

/// The scalar reference set (always available; bit-identical inner-loop
/// order to kernels/spmv.cpp's spmv_csr).
[[nodiscard]] const Dispatch& scalar() noexcept;

namespace detail {

// Scalar fallbacks (defined and instantiated for both widths in simd.cpp).
template <class Idx>
void csr_range_scalar(const typename Idx::offset_type* rowptr,
                      const typename Idx::index_type* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end);
template <class Idx>
void sell_range_scalar(const double* values,
                       const typename Idx::index_type* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const typename Idx::index_type* perm,
                       std::int64_t rows, std::int64_t chunk_height,
                       const double* x, double* y, std::int64_t chunk_begin,
                       std::int64_t chunk_end);

// Per-ISA entry points; each template is defined (and explicitly
// instantiated for Idx32/Idx64) only when its TU is in the build, guarded
// by the SPMVCACHE_SIMD_* compile definitions.
#if defined(SPMVCACHE_SIMD_AVX2)
template <class Idx>
void csr_range_avx2(const typename Idx::offset_type* rowptr,
                    const typename Idx::index_type* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end);
template <class Idx>
void sell_range_avx2(const double* values,
                     const typename Idx::index_type* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const typename Idx::index_type* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end);
#endif
#if defined(SPMVCACHE_SIMD_AVX512)
template <class Idx>
void csr_range_avx512(const typename Idx::offset_type* rowptr,
                      const typename Idx::index_type* colidx,
                      const double* values, const double* x, double* y,
                      std::int64_t row_begin, std::int64_t row_end);
template <class Idx>
void sell_range_avx512(const double* values,
                       const typename Idx::index_type* colidx,
                       const std::int64_t* chunk_offset,
                       const std::int64_t* chunk_width,
                       const typename Idx::index_type* perm,
                       std::int64_t rows, std::int64_t chunk_height,
                       const double* x, double* y, std::int64_t chunk_begin,
                       std::int64_t chunk_end);
#endif
#if defined(SPMVCACHE_SIMD_NEON)
template <class Idx>
void csr_range_neon(const typename Idx::offset_type* rowptr,
                    const typename Idx::index_type* colidx,
                    const double* values, const double* x, double* y,
                    std::int64_t row_begin, std::int64_t row_end);
template <class Idx>
void sell_range_neon(const double* values,
                     const typename Idx::index_type* colidx,
                     const std::int64_t* chunk_offset,
                     const std::int64_t* chunk_width,
                     const typename Idx::index_type* perm, std::int64_t rows,
                     std::int64_t chunk_height, const double* x, double* y,
                     std::int64_t chunk_begin, std::int64_t chunk_end);
#endif

}  // namespace detail
}  // namespace spmvcache::simd
