// Conjugate-gradient solver built on the CSR SpMV kernel.
//
// The related work the paper compares against (Lu et al., Breiter et al.)
// evaluates cache partitioning inside CG benchmarks; the cg_solver example
// uses this to demonstrate the library on the paper's motivating use case:
// *iterative* SpMV, where the x-vector is reused across iterations and the
// sector cache pays off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace spmvcache {

/// Outcome of a CG solve.
struct CgResult {
    std::int64_t iterations = 0;
    double residual_norm = 0.0;
    bool converged = false;
};

/// Solves A x = b for symmetric positive definite A, starting from x = 0.
/// Stops when ||r||_2 <= tolerance * ||b||_2 or after max_iterations.
/// Pre: A square, b.size() == rows, x.size() == rows.
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tolerance = 1e-8,
                            std::int64_t max_iterations = 1000);

}  // namespace spmvcache
