#include "kernels/spmv_merge.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace spmvcache {

template <class Idx>
MergeCoordinate merge_path_search(const BasicCsrView<Idx>& a,
                                  std::int64_t diagonal) {
    SPMV_EXPECTS(diagonal >= 0 && diagonal <= a.rows() + a.nnz());
    const auto rowptr = a.rowptr();
    // Find the split point (r, i) with r + i == diagonal such that
    // rowptr[r] >= i for all merged prefixes: binary search over r.
    std::int64_t lo = std::max<std::int64_t>(0, diagonal - a.nnz());
    std::int64_t hi = std::min(diagonal, a.rows());
    while (lo < hi) {
        const std::int64_t mid = (lo + hi) / 2;
        // Row-end marker rowptr[mid+1] competes with nonzero index
        // (diagonal - mid - 1) on the merge path.
        if (static_cast<std::int64_t>(
                rowptr[static_cast<std::size_t>(mid) + 1]) <=
            diagonal - mid - 1)
            lo = mid + 1;
        else
            hi = mid;
    }
    return MergeCoordinate{lo, diagonal - lo};
}

template <class Idx>
void spmv_csr_merge(const BasicCsrView<Idx>& a, std::span<const double> x,
                    std::span<double> y, std::int64_t pieces) {
    SPMV_EXPECTS(pieces >= 1);
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(a.cols()));
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(a.rows()));
    const auto rowptr = a.rowptr();
    const auto colidx = a.colidx();
    const auto values = a.values();
    const std::int64_t path_length = a.rows() + a.nnz();
    const std::int64_t chunk = (path_length + pieces - 1) / pieces;

    // Per-piece carry-out: the partial sum of the row each piece ends in.
    std::vector<std::int64_t> carry_row(static_cast<std::size_t>(pieces), -1);
    std::vector<double> carry_value(static_cast<std::size_t>(pieces), 0.0);

    for (std::int64_t p = 0; p < pieces; ++p) {
        const std::int64_t diag_begin = std::min(p * chunk, path_length);
        const std::int64_t diag_end = std::min(diag_begin + chunk,
                                               path_length);
        MergeCoordinate cur = merge_path_search(a, diag_begin);
        const MergeCoordinate end = merge_path_search(a, diag_end);

        double acc = 0.0;
        while (cur.row < end.row) {
            // Consume the rest of the current row, then emit it.
            for (; cur.nonzero < rowptr[static_cast<std::size_t>(cur.row) + 1];
                 ++cur.nonzero) {
                acc += values[static_cast<std::size_t>(cur.nonzero)] *
                       x[static_cast<std::size_t>(
                           colidx[static_cast<std::size_t>(cur.nonzero)])];
            }
            y[static_cast<std::size_t>(cur.row)] += acc;
            acc = 0.0;
            ++cur.row;
        }
        // Partial row at the end of the piece: keep as carry-out.
        for (; cur.nonzero < end.nonzero; ++cur.nonzero) {
            acc += values[static_cast<std::size_t>(cur.nonzero)] *
                   x[static_cast<std::size_t>(
                       colidx[static_cast<std::size_t>(cur.nonzero)])];
        }
        if (cur.row < a.rows()) {
            carry_row[static_cast<std::size_t>(p)] = cur.row;
            carry_value[static_cast<std::size_t>(p)] = acc;
        }
    }

    // Carry fix-up (sequential, cheap: one addition per piece).
    for (std::int64_t p = 0; p < pieces; ++p) {
        if (carry_row[static_cast<std::size_t>(p)] >= 0)
            y[static_cast<std::size_t>(
                carry_row[static_cast<std::size_t>(p)])] +=
                carry_value[static_cast<std::size_t>(p)];
    }
}

template MergeCoordinate merge_path_search<Idx32>(const BasicCsrView<Idx32>&,
                                                  std::int64_t);
template MergeCoordinate merge_path_search<Idx64>(const BasicCsrView<Idx64>&,
                                                  std::int64_t);
template void spmv_csr_merge<Idx32>(const BasicCsrView<Idx32>&,
                                    std::span<const double>,
                                    std::span<double>, std::int64_t);
template void spmv_csr_merge<Idx64>(const BasicCsrView<Idx64>&,
                                    std::span<const double>,
                                    std::span<double>, std::int64_t);

}  // namespace spmvcache
