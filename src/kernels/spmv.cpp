#include "kernels/spmv.hpp"

#include "kernels/engine.hpp"
#include "util/error.hpp"

namespace spmvcache {

template <class Idx>
void spmv_csr(const BasicCsrView<Idx>& a, std::span<const double> x,
              std::span<double> y) {
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(a.cols()));
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(a.rows()));
    const auto rowptr = a.rowptr();
    const auto colidx = a.colidx();
    const auto values = a.values();
    for (std::int64_t r = 0; r < a.rows(); ++r) {
        double acc = y[static_cast<std::size_t>(r)];
        const auto begin = static_cast<std::int64_t>(
            rowptr[static_cast<std::size_t>(r)]);
        const auto end = static_cast<std::int64_t>(
            rowptr[static_cast<std::size_t>(r) + 1]);
        for (std::int64_t i = begin; i < end; ++i) {
            acc += values[static_cast<std::size_t>(i)] *
                   x[static_cast<std::size_t>(
                       colidx[static_cast<std::size_t>(i)])];
        }
        y[static_cast<std::size_t>(r)] = acc;
    }
}

template <class Idx>
void spmv_csr_parallel(const BasicCsrView<Idx>& a, std::span<const double> x,
                       std::span<double> y, const RowPartition& partition) {
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(a.cols()));
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(a.rows()));
    // Execute on the kernel engine's WorkerTeam: unlike the previous
    // `#pragma omp parallel for` body, the team exists whether or not the
    // build has OpenMP, so a partition with N ranges really runs on N
    // threads. The scalar variant keeps the per-row accumulation order of
    // spmv_csr, so results stay bitwise identical to the sequential
    // kernel. With partition.threads() == 1 the engine runs inline on the
    // calling thread — the documented sequential fallback.
    EngineOptions options;
    options.variant = KernelVariant::CsrScalar;
    options.first_touch = false;  // transient: borrow the caller's arrays
    BasicKernelEngine<Idx> engine(a, partition, options);
    engine.run(x, y);
}

template <class Idx>
void spmv_csr_overwrite(const BasicCsrView<Idx>& a, std::span<const double> x,
                        std::span<double> y) {
    SPMV_EXPECTS(y.size() == static_cast<std::size_t>(a.rows()));
    for (auto& v : y) v = 0.0;
    spmv_csr(a, x, y);
}

template void spmv_csr<Idx32>(const BasicCsrView<Idx32>&,
                              std::span<const double>, std::span<double>);
template void spmv_csr<Idx64>(const BasicCsrView<Idx64>&,
                              std::span<const double>, std::span<double>);
template void spmv_csr_parallel<Idx32>(const BasicCsrView<Idx32>&,
                                       std::span<const double>,
                                       std::span<double>,
                                       const RowPartition&);
template void spmv_csr_parallel<Idx64>(const BasicCsrView<Idx64>&,
                                       std::span<const double>,
                                       std::span<double>,
                                       const RowPartition&);
template void spmv_csr_overwrite<Idx32>(const BasicCsrView<Idx32>&,
                                        std::span<const double>,
                                        std::span<double>);
template void spmv_csr_overwrite<Idx64>(const BasicCsrView<Idx64>&,
                                        std::span<const double>,
                                        std::span<double>);

}  // namespace spmvcache
