#include "kernels/cg.hpp"

#include <cmath>

#include "kernels/spmv.hpp"
#include "util/error.hpp"

namespace spmvcache {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
    return sum;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, double tolerance,
                            std::int64_t max_iterations) {
    SPMV_EXPECTS(a.rows() == a.cols());
    SPMV_EXPECTS(b.size() == static_cast<std::size_t>(a.rows()));
    SPMV_EXPECTS(x.size() == static_cast<std::size_t>(a.rows()));
    const auto n = static_cast<std::size_t>(a.rows());

    for (auto& v : x) v = 0.0;
    std::vector<double> r(b.begin(), b.end());  // r = b - A*0 = b
    std::vector<double> p = r;
    std::vector<double> ap(n, 0.0);

    const double b_norm = std::sqrt(dot(b, b));
    if (b_norm == 0.0) return CgResult{0, 0.0, true};
    const double threshold = tolerance * b_norm;

    double rr = dot(r, r);
    CgResult result;
    for (std::int64_t it = 0; it < max_iterations; ++it) {
        spmv_csr_overwrite(CsrView(a), p, ap);
        const double pap = dot(p, ap);
        if (pap <= 0.0) break;  // not SPD (or breakdown)
        const double alpha = rr / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        const double rr_next = dot(r, r);
        result.iterations = it + 1;
        result.residual_norm = std::sqrt(rr_next);
        if (result.residual_norm <= threshold) {
            result.converged = true;
            return result;
        }
        const double beta = rr_next / rr;
        for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
        rr = rr_next;
    }
    result.residual_norm = std::sqrt(rr);
    return result;
}

}  // namespace spmvcache
