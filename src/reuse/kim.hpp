// Grouped-stack reuse-distance engine after Kim, Hill & Wood
// [SIGMETRICS'91], the algorithm the paper selects (§3.2.1) "because of its
// constant time complexity per reference".
//
// The LRU stack is divided into groups of fixed capacity. A hash map gives
// each line's group directly, so the reported distance — the number of
// lines in all groups above plus half the group's own size — is found
// without walking the stack: the cost per access is O(#groups), a constant
// for a fixed configuration and, crucially, *independent of the locality*
// of the trace (unlike list-based stack simulation, which costs O(distance)).
// Distances are approximate to within the group capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"
#include "reuse/flat_map.hpp"

namespace spmvcache {

namespace detail {
struct InterleaveCalibration;
}

/// Approximate engine with locality-independent per-access cost.
class KimEngine final : public ReuseEngine {
public:
    /// `group_capacity` trades accuracy (distances are +-capacity/2) for
    /// the number of groups. Pre: group_capacity >= 1.
    explicit KimEngine(std::uint64_t group_capacity = 512);

    std::uint64_t access(std::uint64_t line) override { return access_one(line); }
    void clear() override;
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return line_count_;
    }

    /// Non-virtual per-access path (one find_or_insert probe per access);
    /// `access` forwards here, so hot loops templated on the concrete
    /// engine pay no dispatch.
    std::uint64_t access_one(std::uint64_t line);

    /// Processes `n` accesses, writing each reuse distance to `dists`.
    /// Identical results to n access() calls in order. Large batches run
    /// the AMAC-style interleaved scheduler (interleave_width() probe
    /// streams advanced round-robin: slot prefetch → slot read + node
    /// prefetch → node read + link/tail prefetch → in-order retire);
    /// short batches, or any batch while the `reuse.interleave` fault is
    /// armed, degrade to the lookahead pipeline with the same results.
    void access_batch(const std::uint64_t* lines, std::uint64_t* dists,
                      std::size_t n);

    /// Removes `line`'s history (SHARDS eviction when the sampling rate
    /// is lowered); returns whether the line was tracked. The vacated
    /// pool slot is recycled by the next insertion.
    bool evict(std::uint64_t line);

    /// Calls fn(line) for every tracked line (arbitrary order).
    template <class Fn>
    void for_each_line(Fn&& fn) const {
        node_of_line_.for_each(
            [&](std::uint64_t line, std::uint64_t) { fn(line); });
    }

    /// Calibrated in-flight probe-stream count (once per process; timed
    /// candidates, like KernelEngine's prefetch distance).
    [[nodiscard]] static std::size_t interleave_width();

    /// Batch mode chosen by best-of calibration: "interleaved" when some
    /// probe-stream width beat the simple lookahead pipeline on this
    /// machine, "simple" otherwise — calibration picks a mode, never a
    /// regression.
    [[nodiscard]] static const char* batch_mode();

    [[nodiscard]] std::uint64_t group_capacity() const noexcept {
        return group_capacity_;
    }
    [[nodiscard]] std::size_t group_count() const noexcept {
        return groups_.size();
    }

private:
    // Intrusive doubly-linked node in a pool; nodes never deallocate.
    struct Node {
        std::uint64_t line = 0;
        std::int64_t prev = -1;
        std::int64_t next = -1;
        std::uint32_t group = 0;
    };
    // Each group is an ordered list: head = most recent within the group.
    struct Group {
        std::int64_t head = -1;
        std::int64_t tail = -1;
        std::uint64_t size = 0;
    };

    void unlink(std::int64_t node_index) noexcept;
    void push_front(std::uint32_t group_index, std::int64_t node_index) noexcept;
    /// Detaches the LRU node of group `g` and returns its index.
    std::int64_t pop_tail(std::uint32_t group_index) noexcept;
    void access_batch_simple(const std::uint64_t* lines, std::uint64_t* dists,
                             std::size_t n);
    void access_batch_interleaved(const std::uint64_t* lines,
                                  std::uint64_t* dists, std::size_t n,
                                  std::size_t width);
    /// Once-per-process best-of calibration over both batch pipelines.
    [[nodiscard]] static const detail::InterleaveCalibration& calibration();

    std::uint64_t group_capacity_;
    std::vector<Node> nodes_;
    std::vector<std::int64_t> free_nodes_;  ///< pool slots vacated by evict()
    std::vector<Group> groups_;
    FlatMap64 node_of_line_;  ///< line -> index into nodes_
    std::uint64_t line_count_ = 0;
};

}  // namespace spmvcache
