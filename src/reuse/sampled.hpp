// SampledEngine<E>: SHARDS fixed-rate spatial sampling over any concrete
// reuse-distance engine (trace/sample.hpp holds the filter and scaling
// math; this adapter applies them around an engine's access paths).
//
// access_one / access_batch return full-trace distance *estimates* for
// kept references (d_sampled / R, kInfiniteDistance preserved) and
// kSkippedDistance for filtered ones; batches compact the kept lines
// first so the wrapped engine's interleaved batch path runs at full
// density and the filtered majority costs one hash + compare each. With
// an exact filter (R = 1) every call forwards untouched — results are
// bit-identical to the bare engine.
//
// lower_rate() implements SHARDS rate adaptation: the filter tightens
// and, when the wrapped engine supports eviction (Olken and Kim both
// do), every tracked line the tighter filter rejects is evicted — as if
// the engine had run at the lower rate from the start.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"
#include "trace/sample.hpp"
#include "util/error.hpp"

namespace spmvcache {

/// Distance reported for a reference the sampling filter skipped; callers
/// must not record it. Distinct from kInfiniteDistance (a sampled cold
/// miss), which *is* recorded.
inline constexpr std::uint64_t kSkippedDistance = ~std::uint64_t{0} - 1;

/// Engines that support SHARDS eviction: removing one line's history so
/// a lowered rate R' < R can discard lines with hash >= R'·2⁶⁴.
template <class E>
concept EvictableEngine = requires(E e, const E ce, std::uint64_t line) {
    { e.evict(line) } -> std::convertible_to<bool>;
    ce.for_each_line([](std::uint64_t) {});
};

/// Adapter running any concrete engine on the sampled subtrace.
template <class E>
class SampledEngine final : public ReuseEngine {
public:
    template <class... Args>
    explicit SampledEngine(SampleFilter filter, Args&&... args)
        : filter_(filter), engine_(std::forward<Args>(args)...) {}

    std::uint64_t access(std::uint64_t line) override {
        return access_one(line);
    }

    void clear() override {
        engine_.clear();
        sampled_refs_ = 0;
        skipped_refs_ = 0;
    }

    /// Scaled estimate of the full-trace distinct-line count.
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return static_cast<std::uint64_t>(std::llround(
            filter_.scale_count(static_cast<double>(engine_.distinct_lines()))));
    }

    std::uint64_t access_one(std::uint64_t line) {
        if (!filter_.keep(line)) {
            ++skipped_refs_;
            return kSkippedDistance;
        }
        ++sampled_refs_;
        return filter_.scale_distance(engine_.access_one(line));
    }

    /// Batch form: filter → compact → one dense batch through the wrapped
    /// engine → scatter scaled results (kSkippedDistance in the gaps).
    void access_batch(const std::uint64_t* lines, std::uint64_t* dists,
                      std::size_t n) {
        if (filter_.exact()) {
            engine_.access_batch(lines, dists, n);
            sampled_refs_ += n;
            return;
        }
        scratch_lines_.clear();
        scratch_index_.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (filter_.keep(lines[i])) {
                scratch_lines_.push_back(lines[i]);
                scratch_index_.push_back(i);
            } else {
                dists[i] = kSkippedDistance;
            }
        }
        const std::size_t kept = scratch_lines_.size();
        skipped_refs_ += n - kept;
        sampled_refs_ += kept;
        scratch_dists_.resize(kept);
        engine_.access_batch(scratch_lines_.data(), scratch_dists_.data(),
                             kept);
        for (std::size_t k = 0; k < kept; ++k)
            dists[scratch_index_[k]] = filter_.scale_distance(scratch_dists_[k]);
    }

    /// SHARDS rate lowering: tightens the filter to `new_rate` and, when
    /// the wrapped engine supports eviction, removes every tracked line
    /// that the tighter filter rejects. Pre: 0 < new_rate <= current rate.
    void lower_rate(double new_rate) {
        SPMV_EXPECTS(new_rate > 0.0 && new_rate <= filter_.rate());
        filter_ = SampleFilter(new_rate);
        if constexpr (EvictableEngine<E>) {
            std::vector<std::uint64_t> evicted;
            engine_.for_each_line([&](std::uint64_t line) {
                if (!filter_.keep(line)) evicted.push_back(line);
            });
            for (const std::uint64_t line : evicted) engine_.evict(line);
        }
    }

    [[nodiscard]] const SampleFilter& filter() const noexcept {
        return filter_;
    }
    /// Kept references processed since clear().
    [[nodiscard]] std::uint64_t sampled_refs() const noexcept {
        return sampled_refs_;
    }
    /// References the filter rejected since clear().
    [[nodiscard]] std::uint64_t skipped_refs() const noexcept {
        return skipped_refs_;
    }
    [[nodiscard]] E& engine() noexcept { return engine_; }
    [[nodiscard]] const E& engine() const noexcept { return engine_; }

private:
    SampleFilter filter_;
    E engine_;
    std::uint64_t sampled_refs_ = 0;
    std::uint64_t skipped_refs_ = 0;
    std::vector<std::uint64_t> scratch_lines_;
    std::vector<std::uint64_t> scratch_dists_;
    std::vector<std::size_t> scratch_index_;
};

}  // namespace spmvcache
