// Exact reuse distances in O(log n) per access (Olken's method).
//
// A Fenwick tree over access timestamps counts, for each reference, how
// many lines were touched more recently than the line's previous access.
// Timestamps grow monotonically; when the slot array fills up, the alive
// timestamps are compacted and renumbered (amortised O(1) per access).
#pragma once

#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"
#include "reuse/flat_map.hpp"

namespace spmvcache {

namespace detail {
struct InterleaveCalibration;
}

/// Exact engine; the workhorse behind methods (A) and (B).
class OlkenEngine final : public ReuseEngine {
public:
    /// `expected_lines` presizes the hash map (purely a performance hint).
    explicit OlkenEngine(std::size_t expected_lines = 1024);

    std::uint64_t access(std::uint64_t line) override { return access_one(line); }
    void clear() override;
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return last_access_.size();
    }

    /// Non-virtual per-access path (one find_or_insert probe per access);
    /// `access` forwards here.
    std::uint64_t access_one(std::uint64_t line);

    /// Processes `n` accesses, writing each reuse distance to `dists`.
    /// Identical results to n access() calls in order. Large batches run
    /// the AMAC-style interleaved scheduler (interleave_width() probe
    /// streams advanced round-robin: map-slot prefetch → slot read plus
    /// Fenwick-path prefetch → in-order retire); short batches, or any
    /// batch while the `reuse.interleave` fault is armed, degrade to the
    /// simple lookahead loop with the same results.
    void access_batch(const std::uint64_t* lines, std::uint64_t* dists,
                      std::size_t n);

    /// Removes `line`'s history (SHARDS eviction when the sampling rate
    /// is lowered); returns whether the line was tracked. Subsequent
    /// distances behave as if the line had never been accessed.
    bool evict(std::uint64_t line);

    /// Calls fn(line) for every tracked line (arbitrary order).
    template <class Fn>
    void for_each_line(Fn&& fn) const {
        last_access_.for_each(
            [&](std::uint64_t line, std::uint64_t) { fn(line); });
    }

    /// Calibrated in-flight probe-stream count (once per process; timed
    /// candidates, like KernelEngine's prefetch distance).
    [[nodiscard]] static std::size_t interleave_width();

    /// Batch mode chosen by best-of calibration: "interleaved" when some
    /// probe-stream width beat the simple lookahead pipeline on this
    /// machine, "simple" otherwise — calibration picks a mode, never a
    /// regression.
    [[nodiscard]] static const char* batch_mode();

private:
    void access_batch_simple(const std::uint64_t* lines, std::uint64_t* dists,
                             std::size_t n);
    void access_batch_interleaved(const std::uint64_t* lines,
                                  std::uint64_t* dists, std::size_t n,
                                  std::size_t width);
    /// Once-per-process best-of calibration over both batch pipelines.
    [[nodiscard]] static const detail::InterleaveCalibration& calibration();
    void fenwick_add(std::size_t index, int delta) noexcept;
    [[nodiscard]] std::uint64_t fenwick_prefix(std::size_t index) const noexcept;
    void compact();

    FlatMap64 last_access_;        ///< line -> timestamp of latest access
    std::vector<std::int32_t> tree_;  ///< Fenwick tree over timestamps
    std::size_t slots_ = 0;        ///< capacity of the timestamp space
    std::size_t now_ = 0;          ///< next timestamp to assign
    std::uint64_t alive_ = 0;      ///< number of distinct lines
};

}  // namespace spmvcache
