// Exact reuse distances in O(log n) per access (Olken's method).
//
// A Fenwick tree over access timestamps counts, for each reference, how
// many lines were touched more recently than the line's previous access.
// Timestamps grow monotonically; when the slot array fills up, the alive
// timestamps are compacted and renumbered (amortised O(1) per access).
#pragma once

#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"
#include "reuse/flat_map.hpp"

namespace spmvcache {

/// Exact engine; the workhorse behind methods (A) and (B).
class OlkenEngine final : public ReuseEngine {
public:
    /// `expected_lines` presizes the hash map (purely a performance hint).
    explicit OlkenEngine(std::size_t expected_lines = 1024);

    std::uint64_t access(std::uint64_t line) override;
    void clear() override;
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return last_access_.size();
    }

private:
    void fenwick_add(std::size_t index, int delta) noexcept;
    [[nodiscard]] std::uint64_t fenwick_prefix(std::size_t index) const noexcept;
    void compact();

    FlatMap64 last_access_;        ///< line -> timestamp of latest access
    std::vector<std::int32_t> tree_;  ///< Fenwick tree over timestamps
    std::size_t slots_ = 0;        ///< capacity of the timestamp space
    std::size_t now_ = 0;          ///< next timestamp to assign
    std::uint64_t alive_ = 0;      ///< number of distinct lines
};

}  // namespace spmvcache
