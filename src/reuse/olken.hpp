// Exact reuse distances in O(log n) per access (Olken's method).
//
// A Fenwick tree over access timestamps counts, for each reference, how
// many lines were touched more recently than the line's previous access.
// Timestamps grow monotonically; when the slot array fills up, the alive
// timestamps are compacted and renumbered (amortised O(1) per access).
#pragma once

#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"
#include "reuse/flat_map.hpp"

namespace spmvcache {

/// Exact engine; the workhorse behind methods (A) and (B).
class OlkenEngine final : public ReuseEngine {
public:
    /// `expected_lines` presizes the hash map (purely a performance hint).
    explicit OlkenEngine(std::size_t expected_lines = 1024);

    std::uint64_t access(std::uint64_t line) override { return access_one(line); }
    void clear() override;
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return last_access_.size();
    }

    /// Non-virtual per-access path (one find_or_insert probe per access);
    /// `access` forwards here.
    std::uint64_t access_one(std::uint64_t line);

    /// Processes `n` accesses, writing each reuse distance to `dists`.
    /// Identical results to n access() calls in order, with the upcoming
    /// hash probes software-prefetched a few elements ahead.
    void access_batch(const std::uint64_t* lines, std::uint64_t* dists,
                      std::size_t n);

private:
    void fenwick_add(std::size_t index, int delta) noexcept;
    [[nodiscard]] std::uint64_t fenwick_prefix(std::size_t index) const noexcept;
    void compact();

    FlatMap64 last_access_;        ///< line -> timestamp of latest access
    std::vector<std::int32_t> tree_;  ///< Fenwick tree over timestamps
    std::size_t slots_ = 0;        ///< capacity of the timestamp space
    std::size_t now_ = 0;          ///< next timestamp to assign
    std::uint64_t alive_ = 0;      ///< number of distinct lines
};

}  // namespace spmvcache
