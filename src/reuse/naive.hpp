// Reference reuse-distance engine: an explicit LRU stack walked linearly.
// O(distance) per access — the executable definition of reuse distance,
// used only to validate the fast engines in tests.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "reuse/engine.hpp"

namespace spmvcache {

/// Exact reuse distances via Mattson's stack algorithm with a linked list.
class NaiveStackEngine final : public ReuseEngine {
public:
    std::uint64_t access(std::uint64_t line) override;
    void clear() override;
    [[nodiscard]] std::uint64_t distinct_lines() const override {
        return stack_.size();
    }

private:
    std::list<std::uint64_t> stack_;  // most recent at front
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        position_;
};

}  // namespace spmvcache
