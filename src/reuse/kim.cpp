#include "reuse/kim.hpp"

#include <algorithm>
#include <array>

#include "reuse/interleave.hpp"
#include "util/checked.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace spmvcache {

KimEngine::KimEngine(std::uint64_t group_capacity)
    : group_capacity_(group_capacity) {
    SPMV_EXPECTS(group_capacity >= 1);
    groups_.push_back(Group{});
}

void KimEngine::unlink(std::int64_t node_index) noexcept {
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    Group& group = groups_[node.group];
    if (node.prev >= 0)
        nodes_[static_cast<std::size_t>(node.prev)].next = node.next;
    else
        group.head = node.next;
    if (node.next >= 0)
        nodes_[static_cast<std::size_t>(node.next)].prev = node.prev;
    else
        group.tail = node.prev;
    --group.size;
    node.prev = node.next = -1;
}

void KimEngine::push_front(std::uint32_t group_index,
                           std::int64_t node_index) noexcept {
    Group& group = groups_[group_index];
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    node.group = group_index;
    node.prev = -1;
    node.next = group.head;
    if (group.head >= 0)
        nodes_[static_cast<std::size_t>(group.head)].prev = node_index;
    group.head = node_index;
    if (group.tail < 0) group.tail = node_index;
    ++group.size;
}

std::int64_t KimEngine::pop_tail(std::uint32_t group_index) noexcept {
    Group& group = groups_[group_index];
    const std::int64_t tail = group.tail;
    if (tail >= 0) unlink(tail);
    return tail;
}

std::uint64_t KimEngine::access_one(std::uint64_t line) {
    std::uint64_t distance = kInfiniteDistance;
    std::int64_t node_index = -1;

    bool inserted = false;
    std::uint64_t* slot = node_of_line_.find_or_insert(line, inserted);
    if (!inserted) {
        // The map stores node indices as uint64; the list links are
        // int64 (negative = null). The narrow is provably in range —
        // only valid indices are ever stored — and the contract keeps the
        // signedness crossing honest.
        SPMV_EXPECT(checked_narrow(*slot, node_index));
        const std::uint32_t group =
            nodes_[static_cast<std::size_t>(node_index)].group;
        // Approximate stack depth: everything above this group, plus the
        // midpoint of the group itself (Kim et al.'s group-granular count).
        std::uint64_t above = 0;
        for (std::uint32_t g = 0; g < group; ++g)
            SPMV_EXPECT(checked_add(above, groups_[g].size, above));
        distance = above + groups_[group].size / 2;
        unlink(node_index);
    } else {
        if (free_nodes_.empty()) {
            SPMV_EXPECT(checked_narrow(nodes_.size(), node_index));
            nodes_.push_back(Node{line, -1, -1, 0});
        } else {
            node_index = free_nodes_.back();
            free_nodes_.pop_back();
            nodes_[static_cast<std::size_t>(node_index)] = Node{line, -1, -1, 0};
        }
        *slot = static_cast<std::uint64_t>(node_index);
        ++line_count_;
    }

    push_front(0, node_index);

    // Ripple overflow down the group chain: each full group demotes its
    // LRU entry to the next group (at most one per group per access).
    for (std::uint32_t g = 0; g < groups_.size(); ++g) {
        if (groups_[g].size <= group_capacity_) break;
        if (g + 1 == groups_.size()) groups_.push_back(Group{});
        const std::int64_t demoted = pop_tail(g);
        push_front(g + 1, demoted);
    }
    return distance;
}

void KimEngine::access_batch(const std::uint64_t* lines,
                             std::uint64_t* dists, std::size_t n) {
    const detail::InterleaveCalibration& cal = calibration();
    // Armed `reuse.interleave` degrades to the lookahead pipeline;
    // results are identical either way (chaos tests assert it). The same
    // fallback ships permanently when calibration found the simple
    // pipeline faster on this machine.
    if (!cal.use_interleaved || n < 2 * cal.width ||
        fault::should_fail("reuse.interleave")) {
        access_batch_simple(lines, dists, n);
        return;
    }
    access_batch_interleaved(lines, dists, n, cal.width);
}

void KimEngine::access_batch_simple(const std::uint64_t* lines,
                                    std::uint64_t* dists, std::size_t n) {
    // Three-stage software pipeline over the dependent-load chain of a
    // hit: hash slot -> node -> the node's list neighbours. Far ahead the
    // hash slot is prefetched; closer in, the (now cheap) slot is read
    // speculatively to prefetch the node, then the node to prefetch the
    // prev/next nodes unlink() will touch. Speculative reads may observe
    // the map before intervening accesses mutate it — that only makes a
    // prefetch useless, never wrong, and the access_one results are
    // untouched.
    constexpr std::size_t kSlotAhead = 24;
    constexpr std::size_t kNodeAhead = 12;
    constexpr std::size_t kLinkAhead = 4;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kSlotAhead < n)
            node_of_line_.prefetch(lines[i + kSlotAhead]);
        if (i + kNodeAhead < n) {
            if (const std::uint64_t* slot =
                    node_of_line_.find(lines[i + kNodeAhead]))
                prefetch_ro(&nodes_[static_cast<std::size_t>(*slot)]);
        }
        if (i + kLinkAhead < n) {
            if (const std::uint64_t* slot =
                    node_of_line_.find(lines[i + kLinkAhead])) {
                const Node& node = nodes_[static_cast<std::size_t>(*slot)];
                if (node.prev >= 0)
                    prefetch_ro(&nodes_[static_cast<std::size_t>(node.prev)]);
                if (node.next >= 0)
                    prefetch_ro(&nodes_[static_cast<std::size_t>(node.next)]);
                // That hit will ripple one demotion through every group
                // above its own; the demoted nodes are (close to) the
                // current group tails, so warm those too. The loop is
                // O(cascade length) — no dearer than the cascade itself.
                for (std::uint32_t g = 0; g < node.group; ++g) {
                    const std::int64_t tail = groups_[g].tail;
                    if (tail >= 0)
                        prefetch_ro(&nodes_[static_cast<std::size_t>(tail)]);
                }
            }
        }
        dists[i] = access_one(lines[i]);
    }
}

void KimEngine::access_batch_interleaved(const std::uint64_t* lines,
                                         std::uint64_t* dists, std::size_t n,
                                         std::size_t width) {
    // AMAC-style interleaving: `width` probe streams in flight, advanced
    // round-robin through four stages with a prefetch at every transition —
    //
    //   stage 0  map-slot prefetch (issued one block ahead, below)
    //   stage 1  slot read: find() the line once, park the node index in
    //            the stream state, prefetch the node
    //   stage 2  node read: prefetch the prev/next neighbours unlink()
    //            will touch and the group tails the demotion cascade pops
    //   stage 3  in-order retire via access_one()
    //
    // All streams sit at the same stage at the same time, so the machine
    // flattens into per-stage loops over each block of `width` accesses;
    // retirement order equals program order, keeping results bit-identical
    // to the serial path. Unlike the lookahead pipeline (which re-probes
    // the map at every stage), the parked node index means each access
    // pays exactly one speculative find() plus the retiring
    // find_or_insert(). Stage-1/2 reads may observe state that younger
    // in-block retires later mutate — stale prefetches only, never wrong
    // results.
    std::array<std::int64_t, detail::kMaxInterleaveWidth> node{};
    const std::size_t primed = std::min(width, n);
    for (std::size_t j = 0; j < primed; ++j) node_of_line_.prefetch(lines[j]);
    for (std::size_t base = 0; base < n; base += width) {
        const std::size_t m = std::min(width, n - base);
        for (std::size_t j = 0; j < m; ++j) {
            const std::uint64_t* slot = node_of_line_.find(lines[base + j]);
            node[j] = slot ? static_cast<std::int64_t>(*slot) : -1;
            if (node[j] >= 0)
                prefetch_ro(&nodes_[static_cast<std::size_t>(node[j])]);
        }
        for (std::size_t j = 0; j < m; ++j) {
            if (node[j] < 0) continue;
            const Node& nd = nodes_[static_cast<std::size_t>(node[j])];
            if (nd.prev >= 0)
                prefetch_ro(&nodes_[static_cast<std::size_t>(nd.prev)]);
            if (nd.next >= 0)
                prefetch_ro(&nodes_[static_cast<std::size_t>(nd.next)]);
            for (std::uint32_t g = 0; g < nd.group; ++g) {
                const std::int64_t tail = groups_[g].tail;
                if (tail >= 0)
                    prefetch_ro(&nodes_[static_cast<std::size_t>(tail)]);
            }
        }
        for (std::size_t j = 0; j < m; ++j) {
            if (base + width + j < n)
                node_of_line_.prefetch(lines[base + width + j]);
            dists[base + j] = access_one(lines[base + j]);
        }
    }
}

const detail::InterleaveCalibration& KimEngine::calibration() {
    static const detail::InterleaveCalibration cal =
        detail::calibrate_interleave(
            [](std::size_t w, const std::uint64_t* lines,
               std::uint64_t* dists, std::size_t n) {
                KimEngine engine(512);
                engine.access_batch_interleaved(lines, dists, n, w);
            },
            [](const std::uint64_t* lines, std::uint64_t* dists,
               std::size_t n) {
                KimEngine engine(512);
                engine.access_batch_simple(lines, dists, n);
            });
    return cal;
}

std::size_t KimEngine::interleave_width() { return calibration().width; }

const char* KimEngine::batch_mode() {
    return calibration().use_interleaved ? "interleaved" : "simple";
}

bool KimEngine::evict(std::uint64_t line) {
    const std::uint64_t* slot = node_of_line_.find(line);
    if (!slot) return false;
    std::int64_t node_index = -1;
    SPMV_EXPECT(checked_narrow(*slot, node_index));
    unlink(node_index);
    free_nodes_.push_back(node_index);
    node_of_line_.erase(line);
    --line_count_;
    return true;
}

void KimEngine::clear() {
    nodes_.clear();
    free_nodes_.clear();
    groups_.assign(1, Group{});
    node_of_line_.clear();
    line_count_ = 0;
}

}  // namespace spmvcache
