#include "reuse/histogram.hpp"

#include <algorithm>
#include <bit>

#include "util/checked.hpp"
#include "util/error.hpp"

namespace spmvcache {

CapacityMissCounter::CapacityMissCounter(
    std::vector<std::uint64_t> capacities)
    : capacities_(std::move(capacities)) {
    SPMV_EXPECTS(!capacities_.empty());
    std::sort(capacities_.begin(), capacities_.end());
    capacities_.erase(std::unique(capacities_.begin(), capacities_.end()),
                      capacities_.end());
    buckets_.assign(capacities_.size() + 1, 0);
}

void CapacityMissCounter::record(std::uint64_t distance) noexcept {
    ++accesses_;
    if (distance == kInfiniteDistance) {
        ++cold_;
        return;
    }
    // First capacity strictly greater than distance -> bucket index. The
    // iterator difference is non-negative and at most capacities_.size(),
    // so the narrowing to size_t cannot lose a bucket; the contract
    // pins that reasoning (record() is the per-reference hot path — the
    // bool-flavoured check compiles to a compare, no allocation).
    const auto it = std::upper_bound(capacities_.begin(), capacities_.end(),
                                     distance);
    std::size_t bucket = 0;
    SPMV_EXPECT(checked_narrow(it - capacities_.begin(), bucket));
    ++buckets_[bucket];
}

std::uint64_t CapacityMissCounter::capacity_misses(
    std::uint64_t capacity) const {
    const auto it = std::lower_bound(capacities_.begin(), capacities_.end(),
                                     capacity);
    SPMV_EXPECTS(it != capacities_.end() && *it == capacity);
    // Misses at capacity c_i: every access with distance >= c_i, i.e. all
    // buckets above index i. The sum of bucket counts is bounded by
    // accesses_, but merged multi-shard counters get close to the matrix's
    // total reference count — keep the accumulation checked.
    std::uint64_t misses = 0;
    for (std::size_t b = static_cast<std::size_t>(it - capacities_.begin()) + 1;
         b < buckets_.size(); ++b)
        SPMV_EXPECT(checked_add(misses, buckets_[b], misses));
    return misses;
}

void CapacityMissCounter::clear() noexcept {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    cold_ = 0;
    accesses_ = 0;
}

void ReuseHistogram::record(std::uint64_t distance) noexcept {
    ++total_;
    if (distance == kInfiniteDistance) {
        ++cold_;
        return;
    }
    const int b = distance == 0
                      ? 0
                      : 64 - std::countl_zero(distance);
    ++counts_[static_cast<std::size_t>(std::min(b, kBuckets - 1))];
}

double ReuseHistogram::misses_at_least(std::uint64_t capacity) const {
    double misses = static_cast<double>(cold_);
    for (int b = 0; b < kBuckets; ++b) {
        const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
        const std::uint64_t hi = b == 0 ? 1 : (std::uint64_t{1} << b);
        if (lo >= capacity) {
            misses += static_cast<double>(counts_[static_cast<std::size_t>(b)]);
        } else if (hi > capacity) {
            // Straddling bucket: apportion uniformly.
            const double fraction =
                static_cast<double>(hi - capacity) /
                static_cast<double>(hi - lo);
            misses += fraction *
                      static_cast<double>(counts_[static_cast<std::size_t>(b)]);
        }
    }
    return misses;
}

void ReuseHistogram::merge(const ReuseHistogram& other) noexcept {
    for (int b = 0; b < kBuckets; ++b)
        counts_[static_cast<std::size_t>(b)] +=
            other.counts_[static_cast<std::size_t>(b)];
    cold_ += other.cold_;
    total_ += other.total_;
}

void ReuseHistogram::clear() noexcept {
    counts_.fill(0);
    cold_ = 0;
    total_ = 0;
}

}  // namespace spmvcache
