// Miss counting from reuse distances (Eq. 1 of the paper).
//
// CapacityMissCounter prices a *fixed set* of cache capacities exactly in
// one pass — the mechanism behind the paper's observation that reuse
// distance, once computed, "allows one to assess cache behavior for
// arbitrary cache sizes": a single stack-processing pass yields the miss
// count of every sector-cache configuration.
//
// ReuseHistogram keeps a log2-spaced distribution for profiling output.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "reuse/engine.hpp"

namespace spmvcache {

/// Exact miss counts at a sorted list of capacities (in cache lines).
class CapacityMissCounter {
public:
    /// Pre: capacities non-empty; duplicates are removed.
    explicit CapacityMissCounter(std::vector<std::uint64_t> capacities);

    /// Records one access with reuse distance `distance`.
    void record(std::uint64_t distance) noexcept;

    /// Accesses with distance >= capacity, *excluding* cold (first-ever)
    /// accesses. Pre: capacity is one of the constructor capacities.
    [[nodiscard]] std::uint64_t capacity_misses(std::uint64_t capacity) const;

    /// Total misses for a cache of `capacity` lines including cold misses.
    [[nodiscard]] std::uint64_t total_misses(std::uint64_t capacity) const {
        return capacity_misses(capacity) + cold_;
    }

    [[nodiscard]] std::uint64_t cold_misses() const noexcept { return cold_; }
    [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

    void clear() noexcept;

    [[nodiscard]] const std::vector<std::uint64_t>& capacities()
        const noexcept {
        return capacities_;
    }

private:
    std::vector<std::uint64_t> capacities_;  // ascending
    // buckets_[i] counts distances in [capacities_[i-1], capacities_[i]),
    // buckets_[0]: < capacities_[0], buckets_[k]: >= capacities_[k-1].
    std::vector<std::uint64_t> buckets_;
    std::uint64_t cold_ = 0;
    std::uint64_t accesses_ = 0;
};

/// Log2-bucketed reuse-distance distribution (bucket b holds distances in
/// [2^(b-1), 2^b), bucket 0 holds distance 0).
class ReuseHistogram {
public:
    static constexpr int kBuckets = 64;

    void record(std::uint64_t distance) noexcept;

    [[nodiscard]] std::uint64_t bucket(int b) const {
        return counts_.at(static_cast<std::size_t>(b));
    }
    [[nodiscard]] std::uint64_t cold() const noexcept { return cold_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Accesses with distance >= capacity, approximated at bucket
    /// granularity (distances inside the straddling bucket are
    /// apportioned assuming a uniform distribution).
    [[nodiscard]] double misses_at_least(std::uint64_t capacity) const;

    void merge(const ReuseHistogram& other) noexcept;
    void clear() noexcept;

private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t cold_ = 0;
    std::uint64_t total_ = 0;
};

}  // namespace spmvcache
