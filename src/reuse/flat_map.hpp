// Open-addressing hash map from line number to 64-bit payload.
//
// The reuse-distance engines perform one lookup-or-insert per memory
// reference — hundreds of millions per experiment — which makes
// std::unordered_map's node allocations the bottleneck. A simple
// linear-probing table with a reserved empty key suffices; erase uses
// tombstone-free backward-shift deletion (needed by SHARDS eviction when
// the sampling rate is lowered adaptively), so probe chains never grow
// stale markers and lookups stay one linear scan.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace spmvcache {

/// Maps uint64 keys (!= kEmptyKey) to uint64 values.
class FlatMap64 {
public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    explicit FlatMap64(std::size_t capacity_hint = 64) { rehash(roundup(capacity_hint * 2)); }

    /// Returns a pointer to the value for `key`, or nullptr if absent.
    [[nodiscard]] std::uint64_t* find(std::uint64_t key) noexcept {
        std::size_t i = probe_start(key);
        for (;;) {
            if (keys_[i] == key) return &values_[i];
            if (keys_[i] == kEmptyKey) return nullptr;
            i = (i + 1) & mask_;
        }
    }

    [[nodiscard]] const std::uint64_t* find(std::uint64_t key) const noexcept {
        return const_cast<FlatMap64*>(this)->find(key);
    }

    /// Inserts or overwrites. Pre: key != kEmptyKey.
    void put(std::uint64_t key, std::uint64_t value) {
        bool inserted = false;
        *find_or_insert(key, inserted) = value;
    }

    /// Single-probe lookup-or-insert: returns the value slot for `key`,
    /// creating a zero-valued entry when absent (`inserted` reports which).
    /// One probe sequence replaces the engines' former find-then-put pair;
    /// the returned pointer stays valid until the next insert. Pre:
    /// key != kEmptyKey.
    [[nodiscard]] std::uint64_t* find_or_insert(std::uint64_t key,
                                                bool& inserted) {
        SPMV_EXPECTS(key != kEmptyKey);
        if ((size_ + 1) * 10 >= keys_.size() * 7) rehash(keys_.size() * 2);
        std::size_t i = probe_start(key);
        while (keys_[i] != kEmptyKey && keys_[i] != key) i = (i + 1) & mask_;
        inserted = keys_[i] == kEmptyKey;
        if (inserted) {
            keys_[i] = key;
            values_[i] = 0;
            ++size_;
        }
        return &values_[i];
    }

    /// Removes `key` if present; returns whether an entry was removed.
    /// Backward-shift deletion: instead of leaving a tombstone, every
    /// entry in the probe cluster after the vacated slot is moved back
    /// when (and only when) the hole lies inside its own probe range, so
    /// the invariant "a lookup walks from probe_start to the first empty
    /// slot" is restored exactly and the table never degrades.
    bool erase(std::uint64_t key) noexcept {
        std::size_t hole = probe_start(key);
        for (;;) {
            if (keys_[hole] == kEmptyKey) return false;
            if (keys_[hole] == key) break;
            hole = (hole + 1) & mask_;
        }
        std::size_t i = (hole + 1) & mask_;
        while (keys_[i] != kEmptyKey) {
            // Cyclic distances from the entry's ideal slot: the entry at i
            // may fill the hole iff the hole sits between its probe start
            // and its current position.
            const std::size_t ideal = probe_start(keys_[i]);
            if (((i - ideal) & mask_) >= ((i - hole) & mask_)) {
                keys_[hole] = keys_[i];
                values_[hole] = values_[i];
                hole = i;
            }
            i = (i + 1) & mask_;
        }
        keys_[hole] = kEmptyKey;
        --size_;
        return true;
    }

    /// Hints the hardware to fetch `key`'s probe-start slot. Issued a few
    /// elements ahead inside the engines' access_batch loops, it overlaps
    /// the (random, usually cache-missing) probe loads of upcoming keys
    /// with the current key's stack bookkeeping.
    void prefetch(std::uint64_t key) const noexcept {
        const std::size_t i = probe_start(key);
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&keys_[i]);
        __builtin_prefetch(&values_[i]);
#else
        (void)i;
#endif
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    void clear() noexcept {
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        size_ = 0;
    }

    /// Calls fn(key, value) for every entry (arbitrary order).
    template <class Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }

private:
    static std::size_t roundup(std::size_t n) {
        std::size_t p = 64;
        while (p < n) p *= 2;
        return p;
    }

    [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
        // Fibonacci hashing spreads the (often sequential) line numbers.
        return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) &
               mask_;
    }

    void rehash(std::size_t new_capacity) {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<std::uint64_t> old_values = std::move(values_);
        keys_.assign(new_capacity, kEmptyKey);
        values_.assign(new_capacity, 0);
        mask_ = new_capacity - 1;
        size_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey) continue;
            std::size_t j = probe_start(old_keys[i]);
            while (keys_[j] != kEmptyKey) j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            values_[j] = old_values[i];
            ++size_;
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> values_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

}  // namespace spmvcache
