#include "reuse/olken.hpp"

#include <algorithm>
#include <utility>

#include "reuse/interleave.hpp"
#include "util/fault.hpp"

namespace spmvcache {

namespace {
constexpr std::size_t kInitialSlots = 1 << 16;
}

OlkenEngine::OlkenEngine(std::size_t expected_lines)
    : last_access_(expected_lines) {
    slots_ = kInitialSlots;
    while (slots_ < expected_lines * 2) slots_ *= 2;
    tree_.assign(slots_ + 1, 0);
}

void OlkenEngine::fenwick_add(std::size_t index, int delta) noexcept {
    // 1-based Fenwick tree.
    for (std::size_t i = index + 1; i <= slots_; i += i & (~i + 1))
        tree_[i] += delta;
}

std::uint64_t OlkenEngine::fenwick_prefix(std::size_t index) const noexcept {
    // Sum of marks with timestamp <= index.
    std::uint64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1))
        sum += static_cast<std::uint64_t>(tree_[i]);
    return sum;
}

std::uint64_t OlkenEngine::access_one(std::uint64_t line) {
    // Disarmed this is one relaxed load; armed it lets chaos tests abort a
    // model run mid-pass to exercise the batch runner's stage isolation.
    fault::maybe_throw("reuse.access");
    if (now_ == slots_) compact();

    std::uint64_t distance = kInfiniteDistance;
    bool inserted = false;
    std::uint64_t* prev = last_access_.find_or_insert(line, inserted);
    if (!inserted) {
        // Lines accessed after *prev are exactly the distinct lines between
        // the two accesses; the line itself is counted by prefix, so
        // alive - prefix(prev) excludes it.
        distance = alive_ - fenwick_prefix(static_cast<std::size_t>(*prev));
        fenwick_add(static_cast<std::size_t>(*prev), -1);
    } else {
        ++alive_;
    }
    *prev = static_cast<std::uint64_t>(now_);
    fenwick_add(now_, +1);
    ++now_;
    return distance;
}

void OlkenEngine::access_batch(const std::uint64_t* lines,
                               std::uint64_t* dists, std::size_t n) {
    const detail::InterleaveCalibration& cal = calibration();
    // Armed `reuse.interleave` degrades to the simple lookahead loop;
    // results are identical either way (chaos tests assert it), so the
    // fault models a scheduler bug tripping a safety fallback, not data
    // loss. The same fallback ships permanently when calibration found
    // the simple loop faster on this machine.
    if (!cal.use_interleaved || n < 2 * cal.width ||
        fault::should_fail("reuse.interleave")) {
        access_batch_simple(lines, dists, n);
        return;
    }
    access_batch_interleaved(lines, dists, n, cal.width);
}

void OlkenEngine::access_batch_simple(const std::uint64_t* lines,
                                      std::uint64_t* dists, std::size_t n) {
    constexpr std::size_t kPrefetchAhead = 8;
    const std::size_t primed = std::min(kPrefetchAhead, n);
    for (std::size_t i = 0; i < primed; ++i) last_access_.prefetch(lines[i]);
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchAhead < n)
            last_access_.prefetch(lines[i + kPrefetchAhead]);
        dists[i] = access_one(lines[i]);
    }
}

void OlkenEngine::access_batch_interleaved(const std::uint64_t* lines,
                                           std::uint64_t* dists,
                                           std::size_t n, std::size_t width) {
    // AMAC-style interleaving: `width` probe streams are in flight at any
    // moment, each advanced round-robin through three stages with a
    // prefetch issued at every transition —
    //
    //   stage 0  map-slot prefetch (issued one block ahead, below)
    //   stage 1  slot read: find() the line and prefetch the Fenwick
    //            prefix-walk nodes of its stored timestamp
    //   stage 2  in-order retire via access_one()
    //
    // All streams sit at the same stage at the same time, so the machine
    // flattens into per-stage loops over each block of `width` accesses;
    // retirement order equals program order, which keeps results
    // bit-identical to the serial path. Stage-1 reads may observe the map
    // before younger in-block retires mutate it — that only wastes a
    // prefetch, never changes a result (access_one re-probes).
    const std::size_t primed = std::min(width, n);
    for (std::size_t j = 0; j < primed; ++j) last_access_.prefetch(lines[j]);
    for (std::size_t base = 0; base < n; base += width) {
        const std::size_t m = std::min(width, n - base);
        for (std::size_t j = 0; j < m; ++j) {
            if (const std::uint64_t* prev = last_access_.find(lines[base + j]))
                for (std::size_t i = static_cast<std::size_t>(*prev) + 1;
                     i > 0; i -= i & (~i + 1))
                    prefetch_ro(&tree_[i]);
        }
        for (std::size_t j = 0; j < m; ++j) {
            if (base + width + j < n)
                last_access_.prefetch(lines[base + width + j]);
            dists[base + j] = access_one(lines[base + j]);
        }
    }
}

const detail::InterleaveCalibration& OlkenEngine::calibration() {
    static const detail::InterleaveCalibration cal =
        detail::calibrate_interleave(
            [](std::size_t w, const std::uint64_t* lines,
               std::uint64_t* dists, std::size_t n) {
                OlkenEngine engine(n / 4);
                engine.access_batch_interleaved(lines, dists, n, w);
            },
            [](const std::uint64_t* lines, std::uint64_t* dists,
               std::size_t n) {
                OlkenEngine engine(n / 4);
                engine.access_batch_simple(lines, dists, n);
            });
    return cal;
}

std::size_t OlkenEngine::interleave_width() { return calibration().width; }

const char* OlkenEngine::batch_mode() {
    return calibration().use_interleaved ? "interleaved" : "simple";
}

bool OlkenEngine::evict(std::uint64_t line) {
    const std::uint64_t* prev = last_access_.find(line);
    if (!prev) return false;
    fenwick_add(static_cast<std::size_t>(*prev), -1);
    last_access_.erase(line);
    --alive_;
    return true;
}

void OlkenEngine::compact() {
    // Renumber the alive timestamps 0..alive-1 preserving order.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> alive_entries;
    alive_entries.reserve(static_cast<std::size_t>(alive_));
    last_access_.for_each([&](std::uint64_t line, std::uint64_t time) {
        alive_entries.emplace_back(time, line);
    });
    std::sort(alive_entries.begin(), alive_entries.end());

    // Grow if more than half the slot space is alive.
    while (alive_entries.size() * 2 > slots_) slots_ *= 2;
    tree_.assign(slots_ + 1, 0);
    now_ = 0;
    for (const auto& [time, line] : alive_entries) {
        last_access_.put(line, static_cast<std::uint64_t>(now_));
        fenwick_add(now_, +1);
        ++now_;
    }
}

void OlkenEngine::clear() {
    last_access_.clear();
    slots_ = kInitialSlots;
    tree_.assign(slots_ + 1, 0);
    now_ = 0;
    alive_ = 0;
}

}  // namespace spmvcache
