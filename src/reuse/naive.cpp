#include "reuse/naive.hpp"

namespace spmvcache {

std::uint64_t NaiveStackEngine::access(std::uint64_t line) {
    const auto it = position_.find(line);
    if (it == position_.end()) {
        stack_.push_front(line);
        position_[line] = stack_.begin();
        return kInfiniteDistance;
    }
    // Count the distinct lines above this one in the stack.
    std::uint64_t distance = 0;
    for (auto walk = stack_.begin(); walk != it->second; ++walk) ++distance;
    stack_.erase(it->second);
    stack_.push_front(line);
    it->second = stack_.begin();
    return distance;
}

void NaiveStackEngine::clear() {
    stack_.clear();
    position_.clear();
}

}  // namespace spmvcache
