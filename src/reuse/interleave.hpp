// Interleave-width calibration for the engines' AMAC-style batch paths.
//
// Kim::access_batch and Olken::access_batch advance N independent probe
// streams round-robin through explicit stages, with __builtin_prefetch
// issued at every stage transition so the dependent-load misses of the N
// in-flight references overlap. The right N is a machine property (it
// depends on miss latency and how many outstanding loads the core
// sustains), so — exactly like KernelEngine's software-prefetch distance
// — it is picked once per process by timing a fixed candidate set on a
// small scrambled stream and keeping the fastest.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/timer.hpp"

namespace spmvcache::detail {

/// Upper bound on calibrated widths; batch paths may size per-stream
/// state arrays statically with it.
inline constexpr std::size_t kMaxInterleaveWidth = 64;

/// Outcome of best-of calibration: the fastest interleaved width, and
/// whether interleaving beat the simple lookahead pipeline at all. On
/// machines (or footprints) where the multi-stream scheduler's bookkeeping
/// costs more than the misses it hides, `use_interleaved` is false and
/// access_batch ships the simple path — calibration can pick a mode, but
/// it must never pick a regression.
struct InterleaveCalibration {
    std::size_t width = 4;
    bool use_interleaved = true;
};

/// Times `run(width, lines, dists, n)` for each candidate width AND
/// `run_simple(lines, dists, n)` on a splitmix64-scrambled stream (twice
/// each, best-of to shed warm-up and scheduler noise); returns the
/// fastest width plus whether any interleaved candidate beat the simple
/// pipeline. Both runners must process the stream on a *fresh* engine so
/// candidates compete fairly.
template <class RunBatch, class RunSimple>
InterleaveCalibration calibrate_interleave(RunBatch&& run,
                                           RunSimple&& run_simple) {
    constexpr std::size_t kRefs = std::size_t{1} << 14;
    constexpr std::size_t kDistinct = std::size_t{1} << 12;
    std::vector<std::uint64_t> lines(kRefs);
    std::uint64_t state = 0x2545f4914f6cdd1dULL;
    for (std::uint64_t& line : lines) {
        state += 0x9e3779b97f4a7c15ULL;  // splitmix64 stream
        std::uint64_t h = state;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        line = (h ^ (h >> 31)) % kDistinct;
    }
    std::vector<std::uint64_t> dists(kRefs);

    constexpr std::size_t kCandidates[] = {4, 8, 16, 24, 32, 48, 64};
    InterleaveCalibration cal;
    cal.width = kCandidates[0];
    double best_seconds = std::numeric_limits<double>::infinity();
    for (const std::size_t width : kCandidates) {
        double seconds = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 2; ++rep) {
            Timer timer;
            run(width, lines.data(), dists.data(), kRefs);
            seconds = std::min(seconds, timer.seconds());
        }
        if (seconds < best_seconds) {
            best_seconds = seconds;
            cal.width = width;
        }
    }
    double simple_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 2; ++rep) {
        Timer timer;
        run_simple(lines.data(), dists.data(), kRefs);
        simple_seconds = std::min(simple_seconds, timer.seconds());
    }
    cal.use_interleaved = best_seconds < simple_seconds;
    return cal;
}

}  // namespace spmvcache::detail
