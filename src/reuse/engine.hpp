// Reuse-distance engine interface (§2.2 of the paper).
//
// Given a stream of cache-line numbers, an engine returns for every access
// the number of *distinct* lines referenced since the previous access to
// the same line (kInfinite for first-ever accesses). With Eq. (1) of the
// paper, an access misses in a fully associative LRU cache of n lines iff
// its reuse distance is >= n.
//
// Three implementations with one contract:
//  * NaiveStackEngine — O(distance) list walk; the executable definition,
//    used to cross-check the others in tests.
//  * OlkenEngine — exact, O(log n) per access via a Fenwick tree over
//    access times; the workhorse used by the model.
//  * KimEngine — the grouped-stack scheme of Kim et al. [SIGMETRICS'91]
//    that the paper uses: approximate distances at group granularity with
//    per-access cost independent of the locality of the trace.
#pragma once

#include <cstdint>

namespace spmvcache {

/// Reuse distance reported for a line's first-ever access.
inline constexpr std::uint64_t kInfiniteDistance = ~std::uint64_t{0};

/// Read prefetch hint; a no-op (and harmless on any address) where the
/// builtin is unavailable. The engines' access_batch pipelines use it to
/// overlap the dependent-load misses of upcoming accesses.
inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
}

/// Abstract engine; concrete classes also expose the same functions
/// non-virtually for hot paths.
class ReuseEngine {
public:
    virtual ~ReuseEngine() = default;

    /// Processes one access and returns its reuse distance.
    virtual std::uint64_t access(std::uint64_t line) = 0;

    /// Forgets all history.
    virtual void clear() = 0;

    /// Number of distinct lines seen since clear().
    [[nodiscard]] virtual std::uint64_t distinct_lines() const = 0;
};

}  // namespace spmvcache
