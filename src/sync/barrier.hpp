// Sense-reversing spin barrier for the multi-threaded trace recorders.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/error.hpp"

namespace spmvcache {

/// Reusable barrier for a fixed number of participants.
///
/// Deliberately outside the annotated-capability system
/// (util/thread_annotations.hpp): a barrier is not a lock — no thread
/// "holds" it, so there is no capability for Clang's thread-safety
/// analysis to track. Its two atomics are self-contained, and callers
/// must not hold any Mutex/McsLock across arrive_and_wait() (a waiting
/// peer could need that lock to reach the barrier); DESIGN.md §9 lists it
/// with the annotated types for completeness.
class SpinBarrier {
public:
    explicit SpinBarrier(std::size_t participants)
        : participants_(participants), remaining_(participants) {
        SPMV_EXPECTS(participants > 0);
    }

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /// Blocks until all participants have arrived; reusable across phases.
    void arrive_and_wait() noexcept {
        const bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            remaining_.store(participants_, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
        } else {
            while (sense_.load(std::memory_order_acquire) != my_sense) {
                std::this_thread::yield();
            }
        }
    }

private:
    const std::size_t participants_;
    std::atomic<std::size_t> remaining_;
    std::atomic<bool> sense_{false};
};

}  // namespace spmvcache
