#include "sync/thread_pool.hpp"

#include <exception>
#include <stdexcept>

#include "util/error.hpp"

namespace spmvcache {

ThreadPool::ThreadPool(std::size_t workers) {
    SPMV_EXPECTS(workers >= 1);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(mutex_);
        shutting_down_ = true;
    }
    work_available_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const MutexLock lock(mutex_);
        if (shutting_down_)
            throw std::runtime_error("submit() on shutting-down ThreadPool");
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    const MutexLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0)) idle_.wait(mutex_);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    // Workers must never let exceptions escape task() (std::terminate);
    // capture the first failure and rethrow it to the caller once the
    // remaining indices have drained.
    Mutex failure_mutex;
    std::exception_ptr failure;
    for (std::size_t i = 0; i < n; ++i)
        submit([&fn, i, &failure_mutex, &failure] {
            try {
                fn(i);
            } catch (...) {
                const MutexLock lock(failure_mutex);
                if (!failure) failure = std::current_exception();
            }
        });
    wait_idle();
    if (failure) std::rethrow_exception(failure);
}

std::size_t default_host_jobs() noexcept {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            const MutexLock lock(mutex_);
            while (!shutting_down_ && queue_.empty())
                work_available_.wait(mutex_);
            if (queue_.empty()) return;  // shutting down
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            const MutexLock lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace spmvcache
