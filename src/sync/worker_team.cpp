#include "sync/worker_team.hpp"

#include "util/error.hpp"

namespace spmvcache {

WorkerTeam::WorkerTeam(std::size_t workers) {
    SPMV_EXPECTS(workers >= 1);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

WorkerTeam::~WorkerTeam() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    start_.notify_all();
    for (auto& t : threads_) t.join();
}

void WorkerTeam::run(const std::function<void(std::size_t)>& fn) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        SPMV_EXPECTS(remaining_ == 0);  // not reentrant
        fn_ = &fn;
        failure_ = nullptr;
        remaining_ = threads_.size();
        ++generation_;
    }
    start_.notify_all();
    std::exception_ptr failure;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return remaining_ == 0; });
        fn_ = nullptr;
        failure = failure_;
        failure_ = nullptr;
    }
    if (failure) std::rethrow_exception(failure);
}

void WorkerTeam::worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)>* fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_.wait(lock,
                        [this, seen] { return stopping_ || generation_ != seen; });
            if (stopping_) return;
            seen = generation_;
            fn = fn_;
        }
        std::exception_ptr error;
        try {
            (*fn)(index);
        } catch (...) {
            error = std::current_exception();
        }
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (error && !failure_) failure_ = error;
            if (--remaining_ == 0) done_.notify_all();
        }
    }
}

}  // namespace spmvcache
