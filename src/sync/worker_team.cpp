#include "sync/worker_team.hpp"

#include "util/error.hpp"

namespace spmvcache {

WorkerTeam::WorkerTeam(std::size_t workers) {
    SPMV_EXPECTS(workers >= 1);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

WorkerTeam::~WorkerTeam() {
    {
        const MutexLock lock(mutex_);
        stopping_ = true;
    }
    start_.notify_all();
    for (auto& t : threads_) t.join();
}

void WorkerTeam::run(const std::function<void(std::size_t)>& fn) {
    {
        const MutexLock lock(mutex_);
        SPMV_EXPECTS(remaining_ == 0);  // not reentrant
        fn_ = &fn;
        failure_ = nullptr;
        remaining_ = threads_.size();
        ++generation_;
    }
    start_.notify_all();
    std::exception_ptr failure;
    {
        const MutexLock lock(mutex_);
        while (remaining_ != 0) done_.wait(mutex_);
        fn_ = nullptr;
        failure = failure_;
        failure_ = nullptr;
    }
    if (failure) std::rethrow_exception(failure);
}

void WorkerTeam::worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)>* fn = nullptr;
        {
            const MutexLock lock(mutex_);
            while (!stopping_ && generation_ == seen) start_.wait(mutex_);
            if (stopping_) return;
            seen = generation_;
            fn = fn_;
        }
        std::exception_ptr error;
        try {
            (*fn)(index);
        } catch (...) {
            error = std::current_exception();
        }
        {
            const MutexLock lock(mutex_);
            if (error && !failure_) failure_ = error;
            if (--remaining_ == 0) done_.notify_all();
        }
    }
}

}  // namespace spmvcache
