// Small work-queue thread pool used to run per-matrix experiments in
// parallel on the host (each experiment is independent, so the collection
// drivers simply fan matrices out over the pool).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace spmvcache {

/// Fixed-size pool executing void() tasks FIFO. Exceptions escaping a task
/// terminate (tasks are expected to handle their own errors).
class ThreadPool {
public:
    /// Pre: workers >= 1.
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task; throws if wait_idle() raced with shutdown.
    void submit(std::function<void()> task) SPMV_EXCLUDES(mutex_);

    /// Blocks until the queue is empty and all workers are idle.
    void wait_idle() SPMV_EXCLUDES(mutex_);

    [[nodiscard]] std::size_t worker_count() const noexcept {
        return threads_.size();
    }

    /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
    /// Exceptions thrown by fn are captured; the first one is rethrown on
    /// the calling thread after every index has finished (unlike submit(),
    /// whose tasks must not throw).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop() SPMV_EXCLUDES(mutex_);

    Mutex mutex_;
    CondVar work_available_;
    CondVar idle_;
    std::deque<std::function<void()>> queue_ SPMV_GUARDED_BY(mutex_);
    std::vector<std::thread> threads_;
    std::size_t active_ SPMV_GUARDED_BY(mutex_) = 0;
    bool shutting_down_ SPMV_GUARDED_BY(mutex_) = false;
};

/// Worker count for "use the whole host": std::thread::hardware_concurrency
/// clamped to at least 1 (the function may return 0 on exotic platforms).
[[nodiscard]] std::size_t default_host_jobs() noexcept;

}  // namespace spmvcache
