#include "sync/mcs_lock.hpp"

#include <thread>

namespace spmvcache {

void McsLock::acquire(QNode& node) noexcept {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(true, std::memory_order_relaxed);

    QNode* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev == nullptr) return;  // lock was free; we own it now

    // Link behind the previous tail and spin on our own flag (local
    // spinning is the defining property of the MCS lock).
    prev->next.store(&node, std::memory_order_release);
    while (node.locked.load(std::memory_order_acquire)) {
        std::this_thread::yield();
    }
}

void McsLock::release(QNode& node) noexcept {
    QNode* successor = node.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
        // No known successor: try to swing the tail back to empty.
        QNode* expected = &node;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
            return;
        }
        // A thread is in the middle of enqueueing; wait for its link.
        while ((successor = node.next.load(std::memory_order_acquire)) ==
               nullptr) {
            std::this_thread::yield();
        }
    }
    successor->locked.store(false, std::memory_order_release);
}

}  // namespace spmvcache
