// MCS queue lock (Mellor-Crummey & Scott, 1991).
//
// The paper (§3.2.1) interleaves the per-thread memory traces of parallel
// SpMV through an MCS lock "because it provides starvation freedom and
// fairness (FIFO ordering)". This is a faithful implementation: each
// waiting thread spins on its own queue node (local spinning), and the lock
// hands over in strict arrival order.
#pragma once

#include <atomic>

#include "util/thread_annotations.hpp"

namespace spmvcache {

/// Queue-based FIFO spin lock. Each acquire/release pair uses a caller-
/// provided QNode which must stay alive (and not be reused for a second
/// concurrent acquisition) until release() returns.
///
/// The lock is a full capability for Clang's thread-safety analysis:
/// prefer McsGuard (a scoped capability) so an early return or a thrown
/// exception can never leak an acquire — with raw acquire()/release(),
/// an unbalanced path is a compile error under -Werror=thread-safety.
class SPMV_CAPABILITY("mutex") McsLock {
public:
    struct QNode {
        std::atomic<QNode*> next{nullptr};
        std::atomic<bool> locked{false};
    };

    McsLock() = default;
    McsLock(const McsLock&) = delete;
    McsLock& operator=(const McsLock&) = delete;

    /// Enqueues `node` and spins until the lock is granted.
    void acquire(QNode& node) noexcept SPMV_ACQUIRE()
        SPMV_NO_THREAD_SAFETY_ANALYSIS;

    /// Releases the lock, handing it to the next queued thread if any.
    void release(QNode& node) noexcept SPMV_RELEASE()
        SPMV_NO_THREAD_SAFETY_ANALYSIS;

    /// True if some thread currently holds or is queued for the lock.
    /// Only a heuristic (racy by nature); used by tests.
    [[nodiscard]] bool appears_held() const noexcept {
        return tail_.load(std::memory_order_acquire) != nullptr;
    }

private:
    std::atomic<QNode*> tail_{nullptr};
};

/// RAII guard for McsLock; owns its queue node on the stack. A scoped
/// capability: the analysis knows the lock is held exactly for the
/// guard's lifetime.
class SPMV_SCOPED_CAPABILITY McsGuard {
public:
    explicit McsGuard(McsLock& lock) noexcept SPMV_ACQUIRE(lock)
        SPMV_NO_THREAD_SAFETY_ANALYSIS : lock_(lock) {
        lock_.acquire(node_);
    }
    ~McsGuard() SPMV_RELEASE() SPMV_NO_THREAD_SAFETY_ANALYSIS {
        lock_.release(node_);
    }
    McsGuard(const McsGuard&) = delete;
    McsGuard& operator=(const McsGuard&) = delete;

private:
    McsLock& lock_;
    McsLock::QNode node_;
};

}  // namespace spmvcache
