// Persistent worker team with *stable* worker identities, the execution
// substrate of the kernel engine (kernels/engine.hpp).
//
// Unlike ThreadPool (a FIFO work queue where any worker may pick up any
// task), WorkerTeam::run(fn) always executes fn(i) on the same OS thread
// for a given i. That stability is what makes first-touch NUMA placement
// meaningful: the worker that initialises a row range's slice of x, y and
// the matrix arrays is the worker that executes every subsequent SpMV
// iteration over that range, so pages stay local to the core that faults
// them in. It also makes the team a drop-in replacement for an OpenMP
// static worksharing region without the per-call team management of
// `#pragma omp parallel for`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotated_mutex.hpp"

namespace spmvcache {

/// Fixed team of workers; run(fn) executes fn(i) on worker i for every
/// i in [0, size()) and blocks until all have finished (a full barrier).
class WorkerTeam {
public:
    /// Spawns `workers` threads that idle until run(). Pre: workers >= 1.
    explicit WorkerTeam(std::size_t workers);
    ~WorkerTeam();

    WorkerTeam(const WorkerTeam&) = delete;
    WorkerTeam& operator=(const WorkerTeam&) = delete;

    /// Executes fn(i) on worker i for all i, then returns once every worker
    /// is done. The first exception thrown by any fn(i) is rethrown on the
    /// calling thread after the barrier (the remaining workers still finish
    /// their indices). Not reentrant: run() must not be called from inside
    /// a team task, and only one run() may be active at a time.
    void run(const std::function<void(std::size_t)>& fn)
        SPMV_EXCLUDES(mutex_);

    [[nodiscard]] std::size_t size() const noexcept {
        return threads_.size();
    }

private:
    void worker_loop(std::size_t index) SPMV_EXCLUDES(mutex_);

    Mutex mutex_;
    CondVar start_;
    CondVar done_;
    const std::function<void(std::size_t)>* fn_ SPMV_GUARDED_BY(mutex_) =
        nullptr;
    std::uint64_t generation_ SPMV_GUARDED_BY(mutex_) = 0;
    std::size_t remaining_ SPMV_GUARDED_BY(mutex_) = 0;
    bool stopping_ SPMV_GUARDED_BY(mutex_) = false;
    std::exception_ptr failure_ SPMV_GUARDED_BY(mutex_);
    std::vector<std::thread> threads_;
};

}  // namespace spmvcache
