#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace spmvcache {

CliParser::CliParser(int argc, const char* const* argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        options_[name] = value;
    }
}

bool CliParser::has(const std::string& name) const {
    return options_.count(name) != 0;
}

std::optional<std::string> CliParser::find(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return std::nullopt;
    return it->second;
}

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
    const auto v = find(name);
    return v && !v->empty() ? *v : fallback;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
    const auto v = find(name);
    if (!v || v->empty()) return fallback;
    return std::strtoll(v->c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name, double fallback) const {
    const auto v = find(name);
    if (!v || v->empty()) return fallback;
    return std::strtod(v->c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
    const auto v = find(name);
    if (!v) return fallback;
    if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
    return false;
}

}  // namespace spmvcache
