#include "util/cli.hpp"

#include <charconv>
#include <system_error>

namespace spmvcache {

namespace {

std::string_view trim_ws(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

}  // namespace

[[nodiscard]] Result<std::int64_t> parse_int(std::string_view text) {
    std::string_view s = trim_ws(text);
    if (!s.empty() && s.front() == '+') s.remove_prefix(1);
    std::int64_t out = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec == std::errc::result_out_of_range)
        return Error(ErrorCode::OverflowError,
                     "integer out of int64 range: '" + std::string(text) +
                         "'");
    if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty())
        return Error(ErrorCode::ParseError,
                     "not an integer: '" + std::string(text) + "'");
    return out;
}

[[nodiscard]] Result<double> parse_double(std::string_view text) {
    std::string_view s = trim_ws(text);
    if (!s.empty() && s.front() == '+') s.remove_prefix(1);
    double out = 0.0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty())
        return Error(ErrorCode::ParseError,
                     "not a number: '" + std::string(text) + "'");
    return out;
}

CliParser::CliParser(int argc, const char* const* argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        options_[name] = value;
    }
}

bool CliParser::has(const std::string& name) const {
    return options_.count(name) != 0;
}

std::optional<std::string> CliParser::find(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return std::nullopt;
    return it->second;
}

std::string CliParser::get(const std::string& name,
                           const std::string& fallback) const {
    const auto v = find(name);
    return v && !v->empty() ? *v : fallback;
}

std::int64_t CliParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
    const auto v = find(name);
    if (!v || v->empty()) return fallback;
    Result<std::int64_t> parsed = parse_int(*v);
    if (!parsed.ok())
        throw_status(std::move(parsed)
                         .wrap("parsing --" + name)
                         .to_error());
    return parsed.value();
}

double CliParser::get_double(const std::string& name, double fallback) const {
    const auto v = find(name);
    if (!v || v->empty()) return fallback;
    Result<double> parsed = parse_double(*v);
    if (!parsed.ok())
        throw_status(std::move(parsed)
                         .wrap("parsing --" + name)
                         .to_error());
    return parsed.value();
}

bool CliParser::get_bool(const std::string& name, bool fallback) const {
    const auto v = find(name);
    if (!v) return fallback;
    if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
    return false;
}

}  // namespace spmvcache
