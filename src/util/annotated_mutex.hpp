// Annotated mutex/condvar wrappers over the std primitives.
//
// std::mutex and friends carry no thread-safety attributes, so Clang's
// analysis cannot see through them. These wrappers are the project-wide
// replacements (spmv-lint's `naked-mutex` rule forbids the raw std types
// outside util/): same semantics, same cost — every method is a direct
// forward to the std primitive — but every acquire/release is visible to
// `-Wthread-safety`, so GUARDED_BY members and REQUIRES helpers are
// machine-checked on every Clang build.
//
//   Mutex     std::mutex as a CAPABILITY("mutex")
//   MutexLock std::lock_guard as a SCOPED_CAPABILITY (block-scoped RAII)
//   CondVar   std::condition_variable paired with Mutex; wait() REQUIRES
//             the mutex, exactly like the std contract
//
// Condition waits are written as explicit predicate loops so the guarded
// reads in the predicate stay inside the analysed critical section:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cond_.wait(mutex_);
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace spmvcache {

/// std::mutex with capability annotations. BasicLockable, so it works
/// with std::condition_variable_any (see CondVar) and generic code.
class SPMV_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SPMV_ACQUIRE() SPMV_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
    void unlock() SPMV_RELEASE() SPMV_NO_THREAD_SAFETY_ANALYSIS {
        mu_.unlock();
    }
    [[nodiscard]] bool try_lock() SPMV_TRY_ACQUIRE(true)
        SPMV_NO_THREAD_SAFETY_ANALYSIS {
        return mu_.try_lock();
    }

private:
    friend class CondVar;  ///< waits on the raw mutex (see CondVar::wait)
    std::mutex mu_;
};

/// Block-scoped RAII lock (the std::lock_guard replacement). Declared a
/// scoped capability so the analysis knows the mutex is held exactly for
/// the guard's lifetime.
class SPMV_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) SPMV_ACQUIRE(mutex)
        SPMV_NO_THREAD_SAFETY_ANALYSIS : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() SPMV_RELEASE() SPMV_NO_THREAD_SAFETY_ANALYSIS {
        mutex_.unlock();
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() REQUIRES the mutex: held
/// on entry, released while blocked, re-held on return — from the
/// analysis' point of view the capability is held throughout, which is
/// exactly the caller-visible contract.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// One wakeup step; call in a `while (!predicate)` loop under the
    /// mutex, as with any condition variable. Waits on the raw
    /// std::mutex through an adopted unique_lock, so the blocked-time
    /// release/reacquire happens on the unannotated primitive and the
    /// analysis never sees the capability move.
    void wait(Mutex& mutex) SPMV_REQUIRES(mutex) {
        std::unique_lock<std::mutex> raw(mutex.mu_, std::adopt_lock);
        cv_.wait(raw);
        raw.release();  // ownership stays with the caller's MutexLock
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace spmvcache
