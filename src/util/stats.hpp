// Descriptive statistics used throughout the evaluation harness:
// boxplot summaries for Figs. 2 and 3, MAPE for Tables 2 and 3 (Eq. 3 of the
// paper), and simple running moments for matrix statistics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace spmvcache {

/// Five-number summary plus mean; the quantities a boxplot displays.
struct BoxplotSummary {
    std::size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;      ///< lower quartile
    double median = 0.0;
    double q3 = 0.0;      ///< upper quartile
    double max = 0.0;
    double mean = 0.0;
    double whisker_lo = 0.0;  ///< lowest datum >= q1 - 1.5*IQR
    double whisker_hi = 0.0;  ///< highest datum <= q3 + 1.5*IQR
    std::vector<double> outliers;  ///< data outside the whiskers
};

/// Linear-interpolated quantile (same convention as numpy's default).
/// Pre: data non-empty, 0 <= q <= 1. Data need not be sorted.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Computes the five-number summary with 1.5*IQR whiskers.
/// Pre: data non-empty.
[[nodiscard]] BoxplotSummary boxplot(std::span<const double> data);

/// Arithmetic mean. Pre: data non-empty.
[[nodiscard]] double mean(std::span<const double> data);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
[[nodiscard]] double stddev(std::span<const double> data);

/// Median. Pre: data non-empty.
[[nodiscard]] double median(std::span<const double> data);

/// Mean Absolute Percentage Error between measured and predicted values
/// (Eq. 3 of the paper), in percent. Entries with measured == 0 are skipped.
/// Pre: measured.size() == predicted.size().
[[nodiscard]] double mape(std::span<const double> measured,
                          std::span<const double> predicted);

/// Standard deviation of the absolute percentage error, in percent,
/// as reported next to the MAPE in the paper's Tables 2 and 3.
[[nodiscard]] double ape_stddev(std::span<const double> measured,
                                std::span<const double> predicted);

/// Streaming mean/variance accumulator (Welford).
class RunningMoments {
public:
    void add(double x) noexcept;
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Sample variance (n-1); 0 for fewer than 2 samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Coefficient of variation sigma/mu; 0 if the mean is 0.
    [[nodiscard]] double cv() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Renders a boxplot summary as a one-line string for harness output.
[[nodiscard]] std::string to_string(const BoxplotSummary& s);

}  // namespace spmvcache
