// Wall-clock timing for the model-overhead experiment (paper §4.5.1 reports
// the runtime ratio t_A / t_B of the two prediction methods).
#pragma once

#include <chrono>

namespace spmvcache {

/// Monotonic stopwatch; starts on construction.
class Timer {
public:
    Timer() noexcept : start_(clock::now()) {}

    void reset() noexcept { start_ = clock::now(); }

    /// Elapsed seconds since construction or last reset.
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace spmvcache
