// CSV output for experiment records, so results can be re-plotted outside
// this repository (each bench can dump its raw per-matrix data via --csv).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace spmvcache {

/// Minimal RFC-4180-style CSV writer (quotes fields containing separators).
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    /// Throws std::runtime_error if the file cannot be opened.
    CsvWriter(const std::string& path, std::vector<std::string> header);

    /// Writes one data row. Pre: cells.size() == header size.
    void write_row(const std::vector<std::string>& cells);

    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

private:
    void emit(const std::vector<std::string>& cells);

    std::ofstream out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

}  // namespace spmvcache
