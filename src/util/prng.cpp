#include "util/prng.hpp"

#include <cmath>
#include <numbers>

namespace spmvcache {

std::uint64_t SplitMix64::next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() noexcept {
    double u1 = uniform();
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
}

void Xoshiro256::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            next();
        }
    }
    s_ = {s0, s1, s2, s3};
}

}  // namespace spmvcache
