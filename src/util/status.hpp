// Typed error subsystem for *input* errors (malformed files, overflowing
// dimensions, timeouts, injected faults). Programmer errors keep using the
// contract macros in util/error.hpp; everything a 490-matrix batch sweep
// must survive flows through Status/Result so callers can branch on an
// ErrorCode, attach context ("while reading size line"), and carry the
// input line number to the failure report instead of aborting the run.
//
//   Result<CsrMatrix> r = try_read_matrix_market_file(path);
//   if (!r.ok()) log(r.error().render());            // typed, line-numbered
//
//   Status parse_size_line(...) {
//       SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.size_line"));
//       ...
//       return OkStatus();
//   }
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace spmvcache {

/// What went wrong, at the granularity a batch runner can act on.
enum class ErrorCode : std::uint8_t {
    Ok = 0,
    ParseError,        ///< malformed input (bad token, trailing garbage)
    ValidationError,   ///< well-formed but inconsistent (index out of range)
    UnsupportedError,  ///< valid Matrix Market, feature not implemented
    OverflowError,     ///< dimension/nnz arithmetic would overflow
    ResourceError,     ///< missing file, unreadable stream, allocation
    TimeoutError,      ///< per-matrix wall-clock budget exceeded
    OverloadedError,   ///< admission queue full; retry later (backpressure)
    Cancelled,         ///< caller asked the pipeline to stop
    FaultInjected,     ///< a test-armed fault::maybe_fail point fired
    InternalError,     ///< unexpected exception escaping a stage
    CacheStale,        ///< binary cache no longer matches its source file
};

/// Stable identifier ("ParseError") used in failure reports and tests.
[[nodiscard]] const char* to_string(ErrorCode code) noexcept;

/// A single typed error: code, human message, optional 1-based input line,
/// and a chain of context frames added by wrap() as it propagates out.
struct Error {
    ErrorCode code = ErrorCode::InternalError;
    std::string message;
    std::int64_t line = 0;              ///< 1-based input line, 0 = n/a
    std::vector<std::string> context;   ///< innermost first

    Error() = default;
    Error(ErrorCode c, std::string msg, std::int64_t input_line = 0)
        : code(c), message(std::move(msg)), line(input_line) {}

    /// Adds an outer context frame ("reading 'm.mtx'"). Returns by value so
    /// `e = std::move(e).wrap(...)` is a plain move, never a self-move.
    [[nodiscard]] Error wrap(std::string frame) && {
        context.push_back(std::move(frame));
        return std::move(*this);
    }

    /// "reading 'm.mtx': malformed size line (line 3) [ParseError]"
    [[nodiscard]] std::string render() const;
};

/// Success or a typed Error; the return type of fallible void operations.
class Status {
public:
    /// Constructs an OK status (see also OkStatus()).
    Status() = default;

    Status(ErrorCode code, std::string message, std::int64_t line = 0)
        : error_(Error(code, std::move(message), line)), has_error_(true) {
        SPMV_EXPECTS(code != ErrorCode::Ok);
    }
    /* implicit */ Status(Error e) : error_(std::move(e)), has_error_(true) {
        SPMV_EXPECTS(error_.code != ErrorCode::Ok);
    }

    [[nodiscard]] bool ok() const noexcept { return !has_error_; }
    explicit operator bool() const noexcept { return ok(); }

    /// ErrorCode::Ok when ok().
    [[nodiscard]] ErrorCode code() const noexcept {
        return has_error_ ? error_.code : ErrorCode::Ok;
    }

    /// Pre: !ok().
    [[nodiscard]] const Error& error() const {
        SPMV_EXPECTS(has_error_);
        return error_;
    }

    /// Pre: !ok(). Moves the error out (for propagation macros).
    [[nodiscard]] Error to_error() && {
        SPMV_EXPECTS(has_error_);
        return std::move(error_);
    }

    /// Adds a context frame when not ok; no-op on success. Returns by value
    /// (see Error::wrap).
    [[nodiscard]] Status wrap(std::string frame) && {
        if (has_error_) error_.context.push_back(std::move(frame));
        return std::move(*this);
    }

    /// "ok" or error().render().
    [[nodiscard]] std::string render() const {
        return has_error_ ? error_.render() : "ok";
    }

private:
    Error error_;
    bool has_error_ = false;
};

/// The canonical success value for Status-returning functions.
[[nodiscard]] inline Status OkStatus() { return {}; }

/// A value of type T or a typed Error (tl::expected-style).
template <typename T>
class Result {
public:
    /* implicit */ Result(T value) : state_(std::move(value)) {}
    /* implicit */ Result(Error e) : state_(std::move(e)) {
        SPMV_EXPECTS(std::get<Error>(state_).code != ErrorCode::Ok);
    }
    /* implicit */ Result(Status status)
        : state_(std::move(status).to_error()) {}

    [[nodiscard]] bool ok() const noexcept {
        return std::holds_alternative<T>(state_);
    }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] ErrorCode code() const noexcept {
        return ok() ? ErrorCode::Ok : std::get<Error>(state_).code;
    }

    /// Pre: ok().
    [[nodiscard]] const T& value() const& {
        SPMV_EXPECTS(ok());
        return std::get<T>(state_);
    }
    [[nodiscard]] T& value() & {
        SPMV_EXPECTS(ok());
        return std::get<T>(state_);
    }
    [[nodiscard]] T&& value() && {
        SPMV_EXPECTS(ok());
        return std::get<T>(std::move(state_));
    }

    [[nodiscard]] T value_or(T fallback) const& {
        return ok() ? std::get<T>(state_) : std::move(fallback);
    }

    /// Pre: !ok().
    [[nodiscard]] const Error& error() const {
        SPMV_EXPECTS(!ok());
        return std::get<Error>(state_);
    }

    /// Pre: !ok(). Moves the error out (for propagation macros).
    [[nodiscard]] Error to_error() && {
        SPMV_EXPECTS(!ok());
        return std::get<Error>(std::move(state_));
    }

    /// Error as a Status (copies); OkStatus() when ok().
    [[nodiscard]] Status status() const {
        return ok() ? OkStatus() : Status(std::get<Error>(state_));
    }

    /// Adds a context frame to the error path; no-op on success. Returns by
    /// value (see Error::wrap).
    [[nodiscard]] Result wrap(std::string frame) && {
        if (!ok()) std::get<Error>(state_).context.push_back(std::move(frame));
        return std::move(*this);
    }

private:
    std::variant<T, Error> state_;
};

/// Exception bridge for the legacy throwing APIs: carries the typed Error
/// and derives from std::runtime_error so pre-Status callers keep working.
class StatusError : public std::runtime_error {
public:
    explicit StatusError(Error e)
        : std::runtime_error(e.render()), error_(std::move(e)) {}

    [[nodiscard]] const Error& error() const noexcept { return error_; }
    [[nodiscard]] ErrorCode code() const noexcept { return error_.code; }

private:
    Error error_;
};

/// Pre: !ok(). Throws the result/status as a StatusError.
[[noreturn]] inline void throw_status(Error e) {
    throw StatusError(std::move(e));
}

/// Maps an in-flight exception to a typed Error, for stage boundaries that
/// must never leak exceptions (the batch runner): StatusError keeps its
/// error, ContractViolation and unknown exceptions become InternalError,
/// bad_alloc becomes ResourceError.
[[nodiscard]] Error error_from_exception(const std::exception& e);

}  // namespace spmvcache

/// Propagates the error of a Status- or Result-returning expression.
/// Decay-copies the operand (moves from prvalues), so any value category —
/// including chained `.wrap()` calls — stays safe.
#define SPMV_RETURN_IF_ERROR(expr)                                            \
    do {                                                                      \
        auto spmv_status_ = (expr);                                           \
        if (!spmv_status_.ok())                                               \
            return std::move(spmv_status_).to_error();                        \
    } while (0)

#define SPMV_STATUS_CONCAT_INNER(a, b) a##b
#define SPMV_STATUS_CONCAT(a, b) SPMV_STATUS_CONCAT_INNER(a, b)

/// SPMV_ASSIGN_OR_RETURN(auto m, try_read(...)); — unwraps a Result or
/// propagates its error to the caller.
#define SPMV_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
    auto SPMV_STATUS_CONCAT(spmv_result_, __LINE__) = (rexpr);                \
    if (!SPMV_STATUS_CONCAT(spmv_result_, __LINE__).ok())                     \
        return std::move(SPMV_STATUS_CONCAT(spmv_result_, __LINE__))          \
            .to_error();                                                      \
    lhs = std::move(SPMV_STATUS_CONCAT(spmv_result_, __LINE__)).value()
