// Graceful-drain signal handling shared by the long-running front ends
// (`spmvcache batch`, `spmvcache serve`).
//
// install_drain_handlers() points SIGINT and SIGTERM at a handler that only
// sets a sig_atomic_t flag; the handlers are installed *without* SA_RESTART
// so a blocking read (stdin JSONL loop) returns with EINTR and the caller
// can notice the flag, finish in-flight work, and emit its final report
// instead of dying mid-run. A second signal while draining is still just a
// flag set — forced termination stays with SIGKILL, which cannot corrupt a
// half-written report any further than losing it.
#pragma once

namespace spmvcache::drain {

/// Installs the SIGINT/SIGTERM drain handlers (idempotent). Returns false
/// when sigaction fails (the caller keeps running without drain support).
bool install_drain_handlers() noexcept;

/// True once any drain signal has been received.
[[nodiscard]] bool requested() noexcept;

/// The last drain signal received (SIGINT/SIGTERM), 0 when none.
[[nodiscard]] int signal_number() noexcept;

/// Clears the flag (tests re-arm between cases).
void reset() noexcept;

}  // namespace spmvcache::drain
