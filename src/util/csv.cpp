#include "util/csv.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace spmvcache {

namespace {
std::string escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"') quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
    if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
    SPMV_EXPECTS(columns_ > 0);
    emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    SPMV_EXPECTS(cells.size() == columns_);
    emit(cells);
    ++rows_;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

}  // namespace spmvcache
