// Deterministic fault injection for robustness tests and chaos runs.
//
// Library code declares *named injection points*; tests (or the CLI via
// --inject) arm them by name with a fail-after-N counter or a seeded
// Bernoulli trigger. Disarmed, every point is a single relaxed atomic load
// and a predicted-not-taken branch, so points can sit on hot paths (the
// reuse engine checks one per access).
//
//   // library code
//   SPMV_RETURN_IF_ERROR(fault::maybe_fail("mm.read_entry"));   // Status path
//   fault::maybe_throw("trace.generate");                       // throwing path
//
//   // test code
//   fault::ScopedFault f("mm.read_entry", {.fail_after = 3});
//   ... third entry read reports ErrorCode::FaultInjected ...
//
// Every library point name is listed in util/fault_points.hpp (the
// central registry): arm() soft-checks names against it at runtime, and
// spmv-lint's `unknown-fault-point` rule cross-checks the literals at the
// injection sites, so a typo'd point cannot silently never fire.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace spmvcache::fault {

/// How an armed point decides to fire.
struct FaultSpec {
    /// Fire on the (fail_after+1)-th hit of the point (0 = first hit).
    std::int64_t fail_after = 0;
    /// If < 1.0, fire per-hit with this probability instead of the counter,
    /// drawn from a PRNG seeded with `seed` (deterministic across runs).
    double probability = 1.0;
    std::uint64_t seed = 0;
    /// Disarm the point after its first firing (one-shot faults).
    bool once = true;
    /// Error code reported by maybe_fail / FaultInjectedError.
    ErrorCode code = ErrorCode::FaultInjected;
};

/// Arms `point`; replaces any previous spec and resets its hit counter.
void arm(std::string point, FaultSpec spec = {});

/// Disarms one point (no-op if not armed).
void disarm(const std::string& point);

/// Disarms everything and resets all hit counters.
void disarm_all();

/// True if any point is armed (the slow path is reachable).
[[nodiscard]] bool any_armed() noexcept;

/// Hits recorded for `point` since it was last armed (0 if never armed).
[[nodiscard]] std::int64_t hits(const std::string& point);

/// Counts a hit; true when the armed spec decides this hit fails.
/// Disarmed points return false after one atomic load.
[[nodiscard]] bool should_fail(const char* point);

/// Status-returning form for Status/Result pipelines.
[[nodiscard]] Status maybe_fail(const char* point);

/// Thrown by maybe_throw; carries the typed Error (code FaultInjected).
class FaultInjectedError : public StatusError {
public:
    using StatusError::StatusError;
};

/// Throwing form for hot paths that return plain values.
void maybe_throw(const char* point);

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor even if the test body throws.
class ScopedFault {
public:
    explicit ScopedFault(std::string point, FaultSpec spec = {});
    ~ScopedFault();

    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

private:
    std::string point_;
};

}  // namespace spmvcache::fault
