// String helpers shared by harness output code.
#pragma once

#include <string>
#include <vector>

namespace spmvcache {

/// Splits on a single-character delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s,
                               const std::string& prefix);

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string s);

}  // namespace spmvcache
