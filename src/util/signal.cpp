#include "util/signal.hpp"

#include <csignal>

namespace spmvcache::drain {

namespace {

// Only async-signal-safe operations are allowed in the handler: writing a
// volatile sig_atomic_t is the whole budget.
volatile std::sig_atomic_t g_drain_requested = 0;
volatile std::sig_atomic_t g_drain_signal = 0;

extern "C" void drain_handler(int signum) {
    g_drain_requested = 1;
    g_drain_signal = signum;
}

}  // namespace

bool install_drain_handlers() noexcept {
    struct sigaction action = {};
    action.sa_handler = drain_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocking reads must see EINTR
    bool ok = true;
    if (sigaction(SIGINT, &action, nullptr) != 0) ok = false;
    if (sigaction(SIGTERM, &action, nullptr) != 0) ok = false;
    return ok;
}

bool requested() noexcept { return g_drain_requested != 0; }

int signal_number() noexcept { return static_cast<int>(g_drain_signal); }

void reset() noexcept {
    g_drain_requested = 0;
    g_drain_signal = 0;
}

}  // namespace spmvcache::drain
