// Plain-text table renderer for the benchmark harnesses: every bench binary
// prints rows in the same layout as the corresponding table or figure of the
// paper, and this is the formatter they share.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace spmvcache {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// A simple monospaced table: set headers, add rows of strings, render.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers,
                       std::vector<Align> alignments = {});

    /// Adds one row; missing trailing cells render empty.
    /// Pre: cells.size() <= number of headers.
    void add_row(std::vector<std::string> cells);

    /// Renders with a header rule, column padding and optional title.
    void render(std::ostream& os, const std::string& title = "") const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<Align> align_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the decimal point.
[[nodiscard]] std::string fmt(double v, int prec = 2);

/// Formats a count with thousands separators for readability (1234567 ->
/// "1,234,567").
[[nodiscard]] std::string fmt_count(unsigned long long v);

/// Formats a byte count with a binary-prefix unit ("11.2 MiB").
[[nodiscard]] std::string fmt_bytes(unsigned long long bytes);

}  // namespace spmvcache
