// Contract checking in the spirit of the C++ Core Guidelines (I.6, I.8).
//
// SPMV_EXPECTS/SPMV_ENSURES check pre-/post-conditions and throw
// spmvcache::ContractViolation on failure so tests can assert on them.
// They stay enabled in release builds: this library computes models whose
// numbers are compared against a paper, and silent out-of-contract input
// is worse than the (negligible) branch cost.
#pragma once

#include <stdexcept>
#include <string>

namespace spmvcache {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                            file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace spmvcache

#define SPMV_EXPECTS(cond)                                                    \
    do {                                                                      \
        if (!(cond))                                                          \
            ::spmvcache::detail::contract_fail("precondition", #cond,         \
                                               __FILE__, __LINE__);           \
    } while (0)

#define SPMV_ENSURES(cond)                                                    \
    do {                                                                      \
        if (!(cond))                                                          \
            ::spmvcache::detail::contract_fail("postcondition", #cond,        \
                                               __FILE__, __LINE__);           \
    } while (0)
