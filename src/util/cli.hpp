// Tiny command-line parser shared by the bench harnesses and examples.
// Supports --name value, --name=value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace spmvcache {

/// Strict whole-string integer parse (from_chars; optional leading +).
/// ParseError on garbage, OverflowError when out of int64 range — the
/// typed replacement for unchecked strtoll.
[[nodiscard]] Result<std::int64_t> parse_int(std::string_view text);

/// Strict whole-string double parse; ParseError on garbage or overflow.
[[nodiscard]] Result<double> parse_double(std::string_view text);

/// Parses argv into named options; unknown positional arguments are kept in
/// order and retrievable via positionals().
class CliParser {
public:
    CliParser(int argc, const char* const* argv);

    /// True if --name was present (with or without a value).
    [[nodiscard]] bool has(const std::string& name) const;

    [[nodiscard]] std::string get(const std::string& name,
                                  const std::string& fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name,
                                       std::int64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& name,
                                    double fallback) const;
    [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

    [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
        return positionals_;
    }

    [[nodiscard]] const std::string& program() const noexcept {
        return program_;
    }

private:
    [[nodiscard]] std::optional<std::string> find(
        const std::string& name) const;

    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positionals_;
};

}  // namespace spmvcache
