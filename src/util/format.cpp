#include "util/format.hpp"

#include <algorithm>
#include <cctype>

namespace spmvcache {

std::vector<std::string> split(const std::string& s, char delim) {
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == delim) {
            out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += ch;
        }
    }
    out.push_back(std::move(cur));
    return out;
}

std::string trim(const std::string& s) {
    auto is_space = [](unsigned char ch) { return std::isspace(ch) != 0; };
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && is_space(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() &&
           std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::string to_lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char ch) {
        return static_cast<char>(std::tolower(ch));
    });
    return s;
}

}  // namespace spmvcache
