// Deterministic pseudo-random number generation.
//
// All synthetic matrices and workloads in this repository are generated from
// explicit seeds so every experiment is bit-reproducible across runs and
// thread counts. xoshiro256** is used for speed; splitmix64 seeds it.
#pragma once

#include <array>
#include <cstdint>

namespace spmvcache {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept;

private:
    std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    std::uint64_t next() noexcept;
    std::uint64_t operator()() noexcept { return next(); }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t bounded(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Standard normal variate (Box-Muller, no caching).
    double normal() noexcept;

    /// Jump function: advances the state by 2^128 steps; used to derive
    /// independent per-thread streams from one seed.
    void jump() noexcept;

private:
    std::array<std::uint64_t, 4> s_{};
};

}  // namespace spmvcache
