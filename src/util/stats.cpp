#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace spmvcache {

double quantile(std::span<const double> data, double q) {
    SPMV_EXPECTS(!data.empty());
    SPMV_EXPECTS(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(data.begin(), data.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BoxplotSummary boxplot(std::span<const double> data) {
    SPMV_EXPECTS(!data.empty());
    std::vector<double> sorted(data.begin(), data.end());
    std::sort(sorted.begin(), sorted.end());

    auto q_sorted = [&](double q) {
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
    };

    BoxplotSummary s;
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.q1 = q_sorted(0.25);
    s.median = q_sorted(0.5);
    s.q3 = q_sorted(0.75);

    double sum = 0.0;
    for (double x : sorted) sum += x;
    s.mean = sum / static_cast<double>(sorted.size());

    const double iqr = s.q3 - s.q1;
    const double lo_fence = s.q1 - 1.5 * iqr;
    const double hi_fence = s.q3 + 1.5 * iqr;
    s.whisker_lo = s.max;
    s.whisker_hi = s.min;
    for (double x : sorted) {
        if (x >= lo_fence && x < s.whisker_lo) s.whisker_lo = x;
        if (x <= hi_fence && x > s.whisker_hi) s.whisker_hi = x;
        if (x < lo_fence || x > hi_fence) s.outliers.push_back(x);
    }
    return s;
}

double mean(std::span<const double> data) {
    SPMV_EXPECTS(!data.empty());
    double sum = 0.0;
    for (double x : data) sum += x;
    return sum / static_cast<double>(data.size());
}

double stddev(std::span<const double> data) {
    if (data.size() < 2) return 0.0;
    const double mu = mean(data);
    double acc = 0.0;
    for (double x : data) acc += (x - mu) * (x - mu);
    return std::sqrt(acc / static_cast<double>(data.size() - 1));
}

double median(std::span<const double> data) { return quantile(data, 0.5); }

namespace {
std::vector<double> abs_percentage_errors(std::span<const double> measured,
                                          std::span<const double> predicted) {
    SPMV_EXPECTS(measured.size() == predicted.size());
    std::vector<double> apes;
    apes.reserve(measured.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0) continue;
        apes.push_back(100.0 * std::abs((measured[i] - predicted[i]) /
                                        measured[i]));
    }
    return apes;
}
}  // namespace

double mape(std::span<const double> measured,
            std::span<const double> predicted) {
    const auto apes = abs_percentage_errors(measured, predicted);
    if (apes.empty()) return 0.0;
    return mean(apes);
}

double ape_stddev(std::span<const double> measured,
                  std::span<const double> predicted) {
    const auto apes = abs_percentage_errors(measured, predicted);
    return stddev(apes);
}

void RunningMoments::add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningMoments::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const noexcept {
    return std::sqrt(variance());
}

double RunningMoments::cv() const noexcept {
    if (mean_ == 0.0) return 0.0;
    return stddev() / mean_;
}

std::string to_string(const BoxplotSummary& s) {
    std::ostringstream os;
    os << "n=" << s.count << " min=" << s.min << " q1=" << s.q1
       << " med=" << s.median << " q3=" << s.q3 << " max=" << s.max
       << " mean=" << s.mean << " outliers=" << s.outliers.size();
    return os.str();
}

}  // namespace spmvcache
