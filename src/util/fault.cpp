#include "util/fault.hpp"

#include <atomic>
#include <map>
#include <utility>

#include "util/annotated_mutex.hpp"
#include "util/checked.hpp"
#include "util/fault_points.hpp"
#include "util/prng.hpp"

namespace spmvcache::fault {

namespace {

struct PointState {
    FaultSpec spec;
    std::int64_t hits = 0;
    Xoshiro256 prng{0};
    bool fired = false;
};

struct Registry {
    Mutex mutex;
    std::map<std::string, PointState> points SPMV_GUARDED_BY(mutex);
};

Registry& registry() {
    static Registry r;
    return r;
}

// Number of armed points; the disarmed fast path is one relaxed load of
// this counter, so hot loops (reuse engine) pay a single predictable branch.
std::atomic<std::int64_t> g_armed{0};

}  // namespace

void arm(std::string point, FaultSpec spec) {
    // A typo'd point would arm a trigger no library code ever checks —
    // exactly the dead-point bug the registry exists to catch. Test-local
    // "t." points are exempt by convention (see util/fault_points.hpp).
    SPMV_EXPECT(is_registered_point(point) || is_test_point(point));
    auto& r = registry();
    const MutexLock lock(r.mutex);
    auto [it, inserted] = r.points.insert_or_assign(
        std::move(point), PointState{spec, 0, Xoshiro256(spec.seed), false});
    (void)it;
    if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void disarm(const std::string& point) {
    auto& r = registry();
    const MutexLock lock(r.mutex);
    if (r.points.erase(point) > 0)
        g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
    auto& r = registry();
    const MutexLock lock(r.mutex);
    g_armed.fetch_sub(static_cast<std::int64_t>(r.points.size()),
                      std::memory_order_relaxed);
    r.points.clear();
}

bool any_armed() noexcept {
    return g_armed.load(std::memory_order_relaxed) > 0;
}

std::int64_t hits(const std::string& point) {
    auto& r = registry();
    const MutexLock lock(r.mutex);
    const auto it = r.points.find(point);
    return it == r.points.end() ? 0 : it->second.hits;
}

bool should_fail(const char* point) {
    if (g_armed.load(std::memory_order_relaxed) == 0) return false;
    auto& r = registry();
    const MutexLock lock(r.mutex);
    const auto it = r.points.find(point);
    if (it == r.points.end()) return false;
    PointState& state = it->second;
    if (state.fired && state.spec.once) return false;
    const std::int64_t hit = state.hits++;
    bool fire;
    if (state.spec.probability < 1.0) {
        fire = state.prng.uniform() < state.spec.probability;
    } else {
        fire = hit >= state.spec.fail_after;
    }
    if (fire) state.fired = true;
    return fire;
}

namespace {

ErrorCode armed_code(const char* point) {
    auto& r = registry();
    const MutexLock lock(r.mutex);
    const auto it = r.points.find(point);
    return it == r.points.end() ? ErrorCode::FaultInjected
                                : it->second.spec.code;
}

Error make_error(const char* point) {
    return Error(armed_code(point),
                 std::string("injected fault at '") + point + "'");
}

}  // namespace

[[nodiscard]] Status maybe_fail(const char* point) {
    if (!should_fail(point)) return OkStatus();
    return make_error(point);
}

void maybe_throw(const char* point) {
    if (!should_fail(point)) return;
    throw FaultInjectedError(make_error(point));
}

ScopedFault::ScopedFault(std::string point, FaultSpec spec)
    : point_(std::move(point)) {
    arm(point_, spec);
}

ScopedFault::~ScopedFault() { disarm(point_); }

}  // namespace spmvcache::fault
