// Clang thread-safety analysis annotations (no-ops on other compilers).
//
// The locality model's reproduction contract is *bit-identical* parallel
// results (sharded model, parallel parser, serve daemon), so a lock-
// discipline bug is a silent correctness bug, not just a crash. TSan only
// proves the interleavings the test suite happens to exercise; these
// macros let Clang's `-Wthread-safety` analysis prove lock discipline on
// every build instead (the CI `clang-thread-safety` job compiles the full
// tree with `-Werror=thread-safety`).
//
// Usage pattern (see util/annotated_mutex.hpp for the annotated wrappers):
//
//   class Counters {
//       mutable Mutex mutex_;
//       std::uint64_t hits_ SPMV_GUARDED_BY(mutex_) = 0;
//       void bump_locked() SPMV_REQUIRES(mutex_);
//   };
//
// Every macro expands to the corresponding `capability` attribute under
// Clang and to nothing elsewhere; tests/data/lint_thread/ is a negative-
// compile corpus (run via ctest) proving the attributes actually fire, so
// they can never silently decay to no-ops on the analysis toolchain.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SPMV_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SPMV_THREAD_ANNOTATION_
#define SPMV_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// A type that acts as a lock (e.g. a mutex). `x` names the capability
/// kind in diagnostics ("mutex").
#define SPMV_CAPABILITY(x) SPMV_THREAD_ANNOTATION_(capability(x))

/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock, McsGuard).
#define SPMV_SCOPED_CAPABILITY SPMV_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SPMV_GUARDED_BY(x) SPMV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define SPMV_PT_GUARDED_BY(x) SPMV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called while holding the listed capabilities
/// (the "_locked" private-helper convention).
#define SPMV_REQUIRES(...) \
    SPMV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (self-deadlock documentation for public entry points).
#define SPMV_EXCLUDES(...) SPMV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it past return.
#define SPMV_ACQUIRE(...) \
    SPMV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define SPMV_RELEASE(...) \
    SPMV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `b`.
#define SPMV_TRY_ACQUIRE(b, ...) \
    SPMV_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define SPMV_RETURN_CAPABILITY(x) SPMV_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for lock *implementations*: the declared ACQUIRE/RELEASE
/// effects still apply at call sites, but the body (which manipulates the
/// unannotated std primitive) is not analysed.
#define SPMV_NO_THREAD_SAFETY_ANALYSIS \
    SPMV_THREAD_ANNOTATION_(no_thread_safety_analysis)
