// Overflow-checked integer arithmetic and build-mode contracts.
//
// The model's outputs are exact integer accounting: trace lengths derived
// from nnz, per-shard miss counters summed across segments, byte counts
// multiplied out of rows/cols. A silent wrap or narrowing conversion on a
// SuiteSparse-scale matrix corrupts the prediction without failing any
// test, so every hot integer path funnels through these helpers:
//
//   * bool flavours (out-parameter) for hot paths — no allocation, pair
//     them with SPMV_EXPECT:        SPMV_EXPECT(checked_mul(a, b, out));
//   * Result<T> flavours for Status-plumbed paths (parsers, public
//     entry points):                SPMV_ASSIGN_OR_RETURN(auto n,
//                                       checked_mul(rows, cols));
//   * checked_narrow<To> replaces static_cast where the value crosses a
//     width or signedness boundary;
//   * checked_to_double guards the int -> double conversions in the
//     analytic s1/s2 terms (exact only up to 2^53).
//
// SPMV_EXPECT/SPMV_ENSURE are the *configurable* siblings of the always-on
// throwing contracts in util/error.hpp. Their behaviour is fixed per
// translation unit by SPMV_CONTRACT_MODE (CMake: -DSPMV_CONTRACTS=off|
// log|trap):
//   0 (off)  — the condition is still evaluated (contract expressions are
//              allowed to BE the checked arithmetic, so eliding them
//              would skip the computation), but the branch and diagnostic
//              are dropped;
//   1 (log)  — print one diagnostic line to stderr and continue (default);
//   2 (trap) — print and abort(), for CI and the death tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>

#include "util/status.hpp"

#ifndef SPMV_CONTRACT_MODE
#define SPMV_CONTRACT_MODE 1
#endif

namespace spmvcache {

namespace detail {

inline void contract_report(const char* kind, const char* expr,
                            const char* file, int line) noexcept {
    std::fprintf(stderr, "spmvcache: %s violated: %s at %s:%d\n", kind, expr,
                 file, line);
}

[[noreturn]] inline void contract_trap(const char* kind, const char* expr,
                                       const char* file, int line) noexcept {
    contract_report(kind, expr, file, line);
    std::abort();
}

}  // namespace detail
}  // namespace spmvcache

#if SPMV_CONTRACT_MODE == 0
#define SPMV_CONTRACT_CHECK_(kind, cond) ((void)(cond))
#elif SPMV_CONTRACT_MODE == 1
#define SPMV_CONTRACT_CHECK_(kind, cond)                                      \
    do {                                                                      \
        if (!(cond))                                                          \
            ::spmvcache::detail::contract_report(kind, #cond, __FILE__,       \
                                                 __LINE__);                   \
    } while (0)
#else
#define SPMV_CONTRACT_CHECK_(kind, cond)                                      \
    do {                                                                      \
        if (!(cond))                                                          \
            ::spmvcache::detail::contract_trap(kind, #cond, __FILE__,         \
                                               __LINE__);                     \
    } while (0)
#endif

#define SPMV_EXPECT(cond) SPMV_CONTRACT_CHECK_("expectation", cond)
#define SPMV_ENSURE(cond) SPMV_CONTRACT_CHECK_("guarantee", cond)

namespace spmvcache {

/// Integer types the checked helpers accept (bool arithmetic is a bug).
template <typename T>
concept CheckedInt = std::is_integral_v<T> && !std::is_same_v<T, bool>;

namespace detail {

template <CheckedInt T>
[[nodiscard]] std::string fmt_int(T v) {
    if constexpr (std::is_signed_v<T>)
        return std::to_string(static_cast<long long>(v));
    else
        return std::to_string(static_cast<unsigned long long>(v));
}

template <CheckedInt A, CheckedInt B>
[[nodiscard]] inline Error overflow_error(const char* op, A a, B b) {
    return Error(ErrorCode::OverflowError, std::string(op) + "(" +
                                               fmt_int(a) + ", " + fmt_int(b) +
                                               ") overflows");
}

}  // namespace detail

/// a + b without wrapping; false (out untouched on GCC/Clang semantics:
/// out holds the wrapped value, do not read it) on overflow.
template <CheckedInt T>
[[nodiscard]] constexpr bool checked_add(T a, T b, T& out) noexcept {
    return !__builtin_add_overflow(a, b, &out);
}

/// a - b without wrapping (notably: unsigned a < b).
template <CheckedInt T>
[[nodiscard]] constexpr bool checked_sub(T a, T b, T& out) noexcept {
    return !__builtin_sub_overflow(a, b, &out);
}

/// a * b without wrapping.
template <CheckedInt T>
[[nodiscard]] constexpr bool checked_mul(T a, T b, T& out) noexcept {
    return !__builtin_mul_overflow(a, b, &out);
}

/// v converted to To; false when the value is outside To's range (width
/// loss or negative -> unsigned).
template <CheckedInt To, CheckedInt From>
[[nodiscard]] constexpr bool checked_narrow(From v, To& out) noexcept {
    if (!std::in_range<To>(v)) return false;
    out = static_cast<To>(v);
    return true;
}

/// Result flavour of checked_add for Status-plumbed code.
template <CheckedInt T>
[[nodiscard]] Result<T> checked_add(T a, T b) {
    T out{};
    if (!checked_add(a, b, out)) return detail::overflow_error("add", a, b);
    return out;
}

/// Result flavour of checked_sub.
template <CheckedInt T>
[[nodiscard]] Result<T> checked_sub(T a, T b) {
    T out{};
    if (!checked_sub(a, b, out)) return detail::overflow_error("sub", a, b);
    return out;
}

/// Result flavour of checked_mul.
template <CheckedInt T>
[[nodiscard]] Result<T> checked_mul(T a, T b) {
    T out{};
    if (!checked_mul(a, b, out)) return detail::overflow_error("mul", a, b);
    return out;
}

/// Result flavour of checked_narrow.
template <CheckedInt To, CheckedInt From>
[[nodiscard]] Result<To> checked_narrow(From v) {
    To out{};
    if (!checked_narrow(v, out))
        return Error(ErrorCode::OverflowError,
                     "value " + detail::fmt_int(v) + " does not fit in [" +
                         detail::fmt_int(std::numeric_limits<To>::min()) +
                         ", " +
                         detail::fmt_int(std::numeric_limits<To>::max()) +
                         "]");
    return out;
}

/// Largest magnitude a double holds exactly: every integer in
/// [-2^53, 2^53] round-trips, nothing beyond is guaranteed to.
inline constexpr std::int64_t kMaxExactDouble = std::int64_t{1} << 53;

/// True when int64 -> double loses nothing for this value.
[[nodiscard]] constexpr bool exactly_representable(std::int64_t v) noexcept {
    return v >= -kMaxExactDouble && v <= kMaxExactDouble;
}

/// int64 -> double conversion that contracts on exactness; the analytic
/// s1/s2 factors divide two of these, so a rounded operand would silently
/// bias every method-(B) prediction.
[[nodiscard]] inline double checked_to_double(std::int64_t v) {
    SPMV_EXPECT(exactly_representable(v));
    return static_cast<double>(v);
}

}  // namespace spmvcache
