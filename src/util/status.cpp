#include "util/status.hpp"

#include <new>

namespace spmvcache {

const char* to_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::Ok: return "Ok";
        case ErrorCode::ParseError: return "ParseError";
        case ErrorCode::ValidationError: return "ValidationError";
        case ErrorCode::UnsupportedError: return "UnsupportedError";
        case ErrorCode::OverflowError: return "OverflowError";
        case ErrorCode::ResourceError: return "ResourceError";
        case ErrorCode::TimeoutError: return "TimeoutError";
        case ErrorCode::OverloadedError: return "OverloadedError";
        case ErrorCode::Cancelled: return "Cancelled";
        case ErrorCode::FaultInjected: return "FaultInjected";
        case ErrorCode::InternalError: return "InternalError";
        case ErrorCode::CacheStale: return "CacheStale";
    }
    return "UnknownError";
}

std::string Error::render() const {
    std::string s;
    // Outermost context first, so the rendered message reads top-down:
    // "reading 'a.mtx': parsing entry 7: bad column (line 12) [ParseError]".
    for (auto it = context.rbegin(); it != context.rend(); ++it) {
        s += *it;
        s += ": ";
    }
    s += message;
    if (line > 0) {
        s += " (line ";
        s += std::to_string(line);
        s += ")";
    }
    s += " [";
    s += to_string(code);
    s += "]";
    return s;
}

Error error_from_exception(const std::exception& e) {
    if (const auto* se = dynamic_cast<const StatusError*>(&e))
        return se->error();
    if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr)
        return Error(ErrorCode::ResourceError, "out of memory");
    if (const auto* cv = dynamic_cast<const ContractViolation*>(&e))
        return Error(ErrorCode::InternalError,
                     std::string("contract violation: ") + cv->what());
    return Error(ErrorCode::InternalError,
                 std::string("unexpected exception: ") + e.what());
}

}  // namespace spmvcache
