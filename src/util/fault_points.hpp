// Central registry of fault-injection point names.
//
// Every named injection point in library code (util/fault.hpp call sites)
// must be listed here. The registry closes the "dead point" hole: a
// typo'd literal — `fault::at("serve.acept")` style — would otherwise
// compile fine and simply never fire, silently disabling the robustness
// test that armed it. Enforcement is two-layered:
//
//   * spmv-lint's `unknown-fault-point` rule cross-checks every string
//     literal passed to maybe_fail/maybe_throw/should_fail in src/ against
//     this file (the tree lint runs with `--fault-registry` pointing here);
//   * fault::arm() soft-checks names at runtime via SPMV_EXPECT, with a
//     "t." prefix escape for test-local points (tests/test_fault.cpp arms
//     ad-hoc points like "t.counter" that no library code ever checks).
//
// Adding a new point = add the literal to kRegisteredPoints, use it at the
// injection site, and document it in the fault.hpp header comment.
#pragma once

#include <string_view>

namespace spmvcache::fault {

/// Every injection point declared by library code, grouped by subsystem.
inline constexpr std::string_view kRegisteredPoints[] = {
    // Matrix Market parsing (sparse/matrix_market, sparse/mm_parallel)
    "mm.open",
    "mm.header",
    "mm.size_line",
    "mm.read_entry",
    "mm.parallel",
    // .spmvc binary cache (sparse/binary_cache)
    "cache.write",
    "cache.map",
    // Trace generation and packing (trace/)
    "trace.generate",
    "trace.worker",
    "trace.pack",
    // Reuse-distance engines (reuse/)
    "reuse.access",
    "reuse.sample",
    "reuse.interleave",
    // Batch driver (core/batch)
    "batch.item",
    // Kernel engine (kernels/engine)
    "kernel.exec",
    // Serve daemon (serve/server)
    "serve.accept",
    "serve.execute",
    "serve.cache",
};

/// True when `point` is a registered library injection point.
[[nodiscard]] constexpr bool is_registered_point(
    std::string_view point) noexcept {
    for (const std::string_view registered : kRegisteredPoints)
        if (registered == point) return true;
    return false;
}

/// True for test-local points ("t." prefix), which arm() accepts without
/// a registry entry.
[[nodiscard]] constexpr bool is_test_point(std::string_view point) noexcept {
    return point.size() > 2 && point.substr(0, 2) == "t.";
}

}  // namespace spmvcache::fault
