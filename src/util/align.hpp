// Cache-line-aligned storage.
//
// The A64FX has 256-byte cache lines, and the paper's locality layout
// (Fig. 1c) assumes every SpMV array starts on a cache-line boundary.
// aligned_vector<T> guarantees that alignment on the host as well, so the
// real kernels, the trace generator, and the simulator all agree on where
// line boundaries fall.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace spmvcache {

/// Cache-line size of the Fujitsu A64FX in bytes.
inline constexpr std::size_t kA64fxLineBytes = 256;

/// Minimal allocator aligning allocations to `Alignment` bytes.
template <class T, std::size_t Alignment = kA64fxLineBytes>
struct AlignedAllocator {
    using value_type = T;

    static_assert(Alignment >= alignof(T));
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");

    AlignedAllocator() noexcept = default;
    template <class U>
    explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

    [[nodiscard]] T* allocate(std::size_t n) {
        if (n == 0) return nullptr;
        void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
        if (p == nullptr) throw std::bad_alloc();
        return static_cast<T*>(p);
    }

    void deallocate(T* p, std::size_t) noexcept { std::free(p); }

    template <class U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
        return true;
    }

private:
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    static std::size_t round_up(std::size_t bytes) {
        return (bytes + Alignment - 1) / Alignment * Alignment;
    }
};

/// Vector whose data() is aligned to an A64FX cache-line boundary.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace spmvcache
