#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spmvcache {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignments)
    : headers_(std::move(headers)), align_(std::move(alignments)) {
    SPMV_EXPECTS(!headers_.empty());
    if (align_.empty()) {
        align_.assign(headers_.size(), Align::Right);
        align_[0] = Align::Left;
    }
    SPMV_EXPECTS(align_.size() == headers_.size());
}

void TextTable::add_row(std::vector<std::string> cells) {
    SPMV_EXPECTS(cells.size() <= headers_.size());
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void TextTable::render(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0) os << "  ";
            os << (align_[c] == Align::Left ? std::left : std::right)
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << '\n';
    };

    if (!title.empty()) os << title << '\n';
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.size() - 1);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int prec) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string fmt_count(unsigned long long v) {
    std::string digits = std::to_string(v);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - first) % 3 == 0 && i >= first) out += ',';
        out += digits[i];
    }
    return out;
}

std::string fmt_bytes(unsigned long long bytes) {
    static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << ' '
       << kUnits[unit];
    return os.str();
}

}  // namespace spmvcache
