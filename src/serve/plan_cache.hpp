// Fingerprint-keyed LRU plan cache and the failure quarantine of the
// serve daemon.
//
// PlanCache memoizes the *serialized* plan payload (the JSON object a
// successful predict/tune/stats computed), keyed on the 128-bit matrix
// fingerprint combined with an options digest (op, threads, method, way
// list, ...). Caching the serialized bytes — not the ModelResult — makes
// the cache-hit guarantee trivial: a hit replays byte-identical output,
// so served predictions cannot drift from their one-shot counterparts.
// The cache is bounded by payload bytes (hard cap, LRU eviction) and is
// safe for concurrent pool workers.
//
// Quarantine tracks keys that keep failing: after `strike_limit`
// non-transient failures the key fast-fails with the cached error instead
// of re-running the doomed work (a poisoned .mtx re-requested by a sweep
// must not cost a full parse + model every time). A success clears the
// record, so a transiently unlucky matrix is not banned forever.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/annotated_mutex.hpp"
#include "util/status.hpp"

namespace spmvcache {

/// 128-bit cache key (fingerprint mix xor'd with an options digest).
struct PlanKey {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    [[nodiscard]] bool operator==(const PlanKey&) const noexcept = default;
};

struct PlanKeyHash {
    [[nodiscard]] std::size_t operator()(const PlanKey& k) const noexcept {
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
};

/// Counters surfaced through the `health` response and the final report.
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;           ///< payload bytes currently held
    std::uint64_t capacity_bytes = 0;  ///< the hard cap
};

/// Byte-capped LRU of serialized plan payloads. All methods thread-safe.
class PlanCache {
public:
    /// `capacity_bytes` == 0 disables caching (every get is a miss).
    explicit PlanCache(std::uint64_t capacity_bytes);

    /// The payload for `key` (refreshing its LRU position), or nullopt.
    [[nodiscard]] std::optional<std::string> get(const PlanKey& key)
        SPMV_EXCLUDES(mutex_);

    /// Inserts/overwrites `key`, then evicts LRU entries until the byte cap
    /// holds again. A payload larger than the whole cap is not cached.
    void put(const PlanKey& key, std::string payload) SPMV_EXCLUDES(mutex_);

    /// One consistent snapshot (single lock acquisition).
    [[nodiscard]] PlanCacheStats stats() const SPMV_EXCLUDES(mutex_);

private:
    void evict_to_cap_locked() SPMV_REQUIRES(mutex_);

    struct Entry {
        PlanKey key;
        std::string payload;
    };

    mutable Mutex mutex_;
    const std::uint64_t capacity_bytes_;  ///< immutable after construction
    std::uint64_t bytes_ SPMV_GUARDED_BY(mutex_) = 0;
    /// front = most recently used
    std::list<Entry> lru_ SPMV_GUARDED_BY(mutex_);
    std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash>
        index_ SPMV_GUARDED_BY(mutex_);
    PlanCacheStats counters_ SPMV_GUARDED_BY(mutex_){};
};

/// Quarantine counters for the `health` response.
struct QuarantineStats {
    std::uint64_t strikes = 0;       ///< failures recorded
    std::uint64_t tracked = 0;       ///< keys with at least one strike
    std::uint64_t quarantined = 0;   ///< keys at/over the strike limit
    std::uint64_t fast_failed = 0;   ///< requests answered from quarantine
};

/// N-strikes failure tracker. All methods thread-safe.
class Quarantine {
public:
    /// Pre: strike_limit >= 1.
    explicit Quarantine(int strike_limit);

    /// The cached error when `key` is quarantined (counts a fast-fail),
    /// nullopt while it is still allowed to run.
    [[nodiscard]] std::optional<Error> check(std::uint64_t key)
        SPMV_EXCLUDES(mutex_);

    /// Records a non-transient failure; returns the strike count so far.
    int record_failure(std::uint64_t key, const Error& error)
        SPMV_EXCLUDES(mutex_);

    /// A success wipes the key's record.
    void record_success(std::uint64_t key) SPMV_EXCLUDES(mutex_);

    /// One consistent snapshot (single lock acquisition).
    [[nodiscard]] QuarantineStats stats() const SPMV_EXCLUDES(mutex_);

private:
    struct Record {
        int strikes = 0;
        Error last_error;
    };

    mutable Mutex mutex_;
    const int strike_limit_;  ///< immutable after construction
    std::unordered_map<std::uint64_t, Record> records_
        SPMV_GUARDED_BY(mutex_);
    QuarantineStats counters_ SPMV_GUARDED_BY(mutex_){};
};

}  // namespace spmvcache
