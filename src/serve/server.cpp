#include "serve/server.hpp"

#include <bit>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "cachesim/a64fx.hpp"
#include "core/batch.hpp"
#include "core/deadline.hpp"
#include "core/model_runner.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/fault.hpp"
#include "util/format.hpp"
#include "util/signal.hpp"

namespace spmvcache {

namespace {

/// Worker count with the same 0-means-host convention as ModelOptions.
std::size_t resolve_workers(std::int64_t workers) {
    if (workers <= 0) return default_host_jobs();
    return static_cast<std::size_t>(workers);
}

bool is_transient(ErrorCode code) noexcept {
    return code == ErrorCode::ResourceError ||
           code == ErrorCode::FaultInjected;
}

/// FNV-1a over the canonical source string, then finalized — the
/// quarantine key that exists before a matrix can be parsed.
std::uint64_t source_quarantine_key(const MatrixSource& source) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : source.canonical_key()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

/// Fingerprint-level quarantine key: matrix identity, options excluded (a
/// poisoned matrix fails for every option set).
std::uint64_t fingerprint_quarantine_key(const MatrixFingerprint& fp) {
    return fp.hash_hi ^ mix64(fp.hash_lo);
}

/// The exact ModelOptions the one-shot CLI would use for this request —
/// served predictions must be bit-identical to `spmvcache predict`/`tune`,
/// so the defaults here mirror tools/spmvcache_cli.cpp precisely.
ModelOptions model_options_for(const ServeRequest& request) {
    ModelOptions options;
    options.machine = a64fx_default();
    options.threads = request.threads;
    options.jobs = request.jobs;
    if (!request.l2_ways.empty()) {
        options.l2_way_options = request.l2_ways;
    } else if (request.op == RequestOp::Tune) {
        options.l2_way_options = {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14};
    } else {
        options.l2_way_options = {2, 3, 4, 5, 6, 7};
    }
    if (request.op == RequestOp::Tune) options.predict_l1 = false;
    options.sample_rate = request.sample_rate;
    return options;
}

/// Plan-cache key: fingerprint mix xor'd with a digest of everything that
/// changes the payload (op, threads, method, way list, sampling rate).
/// `jobs` and the trace buffer are deliberately excluded — predictions are
/// bit-identical across them, so requests differing only there share a
/// plan. The sampling rate is included for the opposite reason: an exact
/// plan and a SHARDS estimate for the same matrix must never alias, and
/// two different rates produce different estimates.
PlanKey plan_key_for(const MatrixFingerprint& fp,
                     const ServeRequest& request,
                     const ModelOptions& options, IndexWidth width) {
    std::uint64_t digest =
        mix64(static_cast<std::uint64_t>(request.op) + 1);
    // The physical index width changes the modelled traffic (4- vs 8-byte
    // colidx/rowptr), so a narrow and a wide load of the same matrix must
    // never share a plan.
    digest = mix64(digest ^ (width == IndexWidth::W64 ? 64u : 32u));
    digest = mix64(digest ^ static_cast<std::uint64_t>(request.threads));
    if (request.op == RequestOp::Predict)
        digest = mix64(digest ^ (request.method == "b" ? 2u : 1u));
    if (request.op != RequestOp::Stats) {
        for (const std::uint32_t way : options.l2_way_options)
            digest = mix64(digest ^ (0x10000u + way));
        digest = mix64(
            digest ^ std::bit_cast<std::uint64_t>(options.sample_rate));
    }
    return PlanKey{fp.hash_hi ^ digest, fp.hash_lo ^ mix64(digest)};
}

ServeResponse error_response(std::string id, const char* op,
                             const Error& error) {
    ServeResponse response;
    response.id = std::move(id);
    response.op = op;
    response.ok = false;
    response.code = error.code;
    response.error = error.render();
    return response;
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(options),
      cache_(std::make_shared<PlanCache>(options.cache_capacity_bytes)),
      quarantine_(std::make_shared<Quarantine>(
          options.quarantine_strikes >= 1 ? options.quarantine_strikes : 1)),
      sources_(std::make_shared<SourceCache>(
          options.source_cache_entries >= 1 ? options.source_cache_entries
                                            : 1)),
      pool_(resolve_workers(options.workers)) {}

[[nodiscard]] Result<Server::ExecOutcome> Server::attempt(
    const ServeRequest& request, const ServeOptions& options,
    const std::shared_ptr<PlanCache>& cache,
    const std::shared_ptr<Quarantine>& quarantine,
    const std::shared_ptr<SourceCache>& sources,
    const std::shared_ptr<std::atomic<std::uint64_t>>& fp_key_slot) {
    SPMV_RETURN_IF_ERROR(fault::maybe_fail("serve.execute"));
    if (options.execute_delay_seconds > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options.execute_delay_seconds));

    // Daemon-level ingestion knobs ride on the request's source; the
    // canonical_key ignores them, so memoization is unaffected.
    MatrixSource source = request.source;
    source.cache_dir = options.cache_dir;
    source.parse_jobs = options.parse_jobs;
    Result<LoadedMatrix> handle = sources->get(source);
    if (!handle.ok())
        return std::move(handle)
            .wrap("loading '" + request.source.canonical_key() + "'")
            .to_error();
    const LoadedMatrix loaded = std::move(handle).value();
    const MatrixFingerprint& fp = loaded.fingerprint;
    const std::uint64_t fp_key = fingerprint_quarantine_key(fp);
    fp_key_slot->store(fp_key, std::memory_order_relaxed);
    if (std::optional<Error> banned = quarantine->check(fp_key);
        banned.has_value())
        return *std::move(banned);

    const ModelOptions model = model_options_for(request);
    const PlanKey key =
        plan_key_for(fp, request, model, loaded.stats.index_width);
    if (std::optional<std::string> hit = cache->get(key); hit.has_value()) {
        ExecOutcome outcome;
        outcome.payload = *std::move(hit);
        outcome.cache_hit = true;
        return outcome;
    }

    ExecOutcome outcome;
    if (request.op == RequestOp::Stats) {
        // Stats were computed once at load (or read from the .spmvc
        // header) and memoized with the matrix.
        outcome.payload = render_stats_payload(loaded.stats, fp);
    } else {
        Result<ModelMethod> method = parse_model_method(
            request.op == RequestOp::Tune ? "a" : request.method);
        if (!method.ok()) return std::move(method).to_error();
        // The per-request deadline wraps this whole attempt already; the
        // model runs without a second nested budget.
        Result<ModelResult> result =
            run_model(loaded, model, method.value());
        if (!result.ok())
            return std::move(result).wrap("running the model").to_error();
        outcome.payload =
            request.op == RequestOp::Tune
                ? render_tune_payload(result.value(), fp, request.threads)
                : render_predict_payload(result.value(), fp,
                                         request.method, request.threads);
    }
    // A failing cache degrades to recompute-every-time, never to an error.
    if (!fault::should_fail("serve.cache"))
        cache->put(key, outcome.payload);
    return outcome;
}

ServeResponse Server::execute_matrix_op(const ServeRequest& request) {
    ServeResponse response;
    response.id = request.id;
    response.op = to_string(request.op);
    response.sample_rate = request.sample_rate;
    const Timer timer;

    const std::uint64_t source_key = source_quarantine_key(request.source);
    if (std::optional<Error> banned = quarantine_->check(source_key);
        banned.has_value()) {
        response = error_response(request.id, to_string(request.op),
                                  *banned);
        response.seconds = timer.seconds();
        return response;
    }

    const double timeout = request.timeout_seconds >= 0.0
                               ? request.timeout_seconds
                               : options_.default_timeout_seconds;
    const auto fp_key_slot =
        std::make_shared<std::atomic<std::uint64_t>>(0);

    // Retry transient failures with exponential backoff; the attempt
    // lambda owns everything it touches (shared_ptr members, request by
    // value) because an expired deadline abandons it on a detached thread.
    Result<ExecOutcome> outcome = Error(ErrorCode::InternalError, "unrun");
    int attempts = 0;
    double backoff = options_.backoff_initial_seconds;
    while (true) {
        ++attempts;
        const ServeRequest attempt_request = request;
        const ServeOptions attempt_options = options_;
        const std::shared_ptr<PlanCache> cache = cache_;
        const std::shared_ptr<Quarantine> quarantine = quarantine_;
        const std::shared_ptr<SourceCache> sources = sources_;
        outcome = run_with_deadline<ExecOutcome>(
            timeout,
            [attempt_request, attempt_options, cache, quarantine, sources,
             fp_key_slot] {
                return attempt(attempt_request, attempt_options, cache,
                               quarantine, sources, fp_key_slot);
            });
        if (outcome.ok() || attempts > options_.max_retries ||
            !is_transient(outcome.code()))
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff < 1.0 ? backoff : 1.0));
        backoff *= 2.0;
    }
    response.retries = attempts - 1;

    const std::uint64_t fp_key =
        fp_key_slot->load(std::memory_order_relaxed);
    if (outcome.ok()) {
        quarantine_->record_success(source_key);
        if (fp_key != 0) quarantine_->record_success(fp_key);
        response.ok = true;
        response.code = ErrorCode::Ok;
        response.cache_hit = outcome.value().cache_hit;
        response.payload = std::move(outcome).value().payload;
    } else {
        const Error& error = outcome.error();
        response.ok = false;
        response.code = error.code;
        response.error = error.render();
        // Overload/cancellation are the server's state, not the matrix's;
        // everything else (timeouts included) earns the key a strike.
        if (error.code != ErrorCode::OverloadedError &&
            error.code != ErrorCode::Cancelled) {
            quarantine_->record_failure(source_key, error);
            if (fp_key != 0) quarantine_->record_failure(fp_key, error);
        }
    }
    response.seconds = timer.seconds();
    return response;
}

ServeResponse Server::dispatch(const ServeRequest& request) {
    switch (request.op) {
        case RequestOp::Health:
        case RequestOp::Shutdown: {
            // Shutdown acknowledgements reuse the health payload so the
            // last line a client sees carries the final counters.
            ServeResponse response;
            response.id = request.id;
            response.op = to_string(request.op);
            response.ok = true;
            response.code = ErrorCode::Ok;
            response.payload = render_health_payload();
            return response;
        }
        case RequestOp::Predict:
        case RequestOp::Tune:
        case RequestOp::Stats: return execute_matrix_op(request);
    }
    return error_response(request.id, "unknown",
                          Error(ErrorCode::InternalError,
                                "unhandled request op"));
}

std::optional<Error> Server::admit() {
    if (Status s = fault::maybe_fail("serve.accept"); !s.ok())
        return std::move(s).to_error();
    // Reserve a slot atomically; concurrent admitters (run loop +
    // handle_line callers) may race, so claim first and roll back.
    const std::size_t claimed =
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (claimed >= options_.queue_capacity) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        return Error(ErrorCode::OverloadedError,
                     "admission queue full (" +
                         std::to_string(options_.queue_capacity) +
                         " requests queued or executing); retry later");
    }
    return std::nullopt;
}

void Server::finish_one() {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::count_response(const ServeResponse& response) {
    const MutexLock lock(stats_mutex_);
    ++counters_.requests;
    if (response.ok) ++counters_.ok;
    else ++counters_.failed;
    if (response.code == ErrorCode::OverloadedError)
        ++counters_.rejected_overload;
    if (response.code == ErrorCode::TimeoutError) ++counters_.timeouts;
    counters_.retries += static_cast<std::uint64_t>(response.retries);
    if (response.cache_hit) ++counters_.cache_hits;
    if (response.sample_rate < 1.0) ++counters_.approx_requests;
}

ServeStats Server::stats() const {
    ServeStats out;
    {
        const MutexLock lock(stats_mutex_);
        out = counters_;
    }
    out.cache = cache_->stats();
    out.quarantine = quarantine_->stats();
    // One lock acquisition per subsystem: the three source counters come
    // from a single snapshot, so hits/loads/entries are consistent with
    // each other even while requests are loading matrices concurrently.
    const SourceCache::Stats sources = sources_->stats();
    out.source_hits = sources.hits;
    out.source_loads = sources.loads;
    out.source_entries = sources.entries;
    out.uptime_seconds = uptime_.seconds();
    return out;
}

std::string Server::render_stats_json() const {
    const ServeStats s = stats();
    std::string out = "{";
    out += "\"requests\":" + std::to_string(s.requests);
    out += ",\"ok\":" + std::to_string(s.ok);
    out += ",\"failed\":" + std::to_string(s.failed);
    out += ",\"parse_errors\":" + std::to_string(s.parse_errors);
    out += ",\"rejected_overload\":" +
           std::to_string(s.rejected_overload);
    out += ",\"timeouts\":" + std::to_string(s.timeouts);
    out += ",\"retries\":" + std::to_string(s.retries);
    out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    out += ",\"approx_requests\":" + std::to_string(s.approx_requests);
    out += ",\"sources\":{\"hits\":" + std::to_string(s.source_hits);
    out += ",\"loads\":" + std::to_string(s.source_loads);
    out += ",\"entries\":" + std::to_string(s.source_entries) + "}";
    out += ",\"cache\":{\"hits\":" + std::to_string(s.cache.hits);
    out += ",\"misses\":" + std::to_string(s.cache.misses);
    out += ",\"insertions\":" + std::to_string(s.cache.insertions);
    out += ",\"evictions\":" + std::to_string(s.cache.evictions);
    out += ",\"entries\":" + std::to_string(s.cache.entries);
    out += ",\"bytes\":" + std::to_string(s.cache.bytes);
    out += ",\"capacity_bytes\":" +
           std::to_string(s.cache.capacity_bytes) + "}";
    out += ",\"quarantine\":{\"strikes\":" +
           std::to_string(s.quarantine.strikes);
    out += ",\"tracked\":" + std::to_string(s.quarantine.tracked);
    out += ",\"quarantined\":" + std::to_string(s.quarantine.quarantined);
    out += ",\"fast_failed\":" +
           std::to_string(s.quarantine.fast_failed) + "}";
    out += ",\"uptime_seconds\":" + json_double(s.uptime_seconds);
    out += "}";
    return out;
}

std::string Server::render_health_payload() const {
    std::string out = "{\"status\":\"ok\"";
    out += ",\"in_flight\":" +
           std::to_string(in_flight_.load(std::memory_order_acquire));
    out += ",\"queue_capacity\":" +
           std::to_string(options_.queue_capacity);
    out += ",\"workers\":" + std::to_string(pool_.worker_count());
    out += ",\"stats\":" + render_stats_json();
    out += "}";
    return out;
}

std::string Server::handle_line(const std::string& line) {
    const std::string fallback_id =
        "req-" + std::to_string(next_request_number_.fetch_add(
                     1, std::memory_order_relaxed));
    const std::string trimmed = trim(line);
    ServeResponse response;
    Result<ServeRequest> parsed = parse_request(trimmed);
    if (!parsed.ok()) {
        response = error_response(fallback_id, "", parsed.error());
        // Malformed lines carry whatever code the parser assigned
        // (ParseError or ValidationError) but always count here.
        const MutexLock lock(stats_mutex_);
        ++counters_.parse_errors;
    } else {
        ServeRequest request = std::move(parsed).value();
        if (request.id.empty()) request.id = fallback_id;
        if (request.op == RequestOp::Predict ||
            request.op == RequestOp::Tune ||
            request.op == RequestOp::Stats) {
            if (std::optional<Error> rejected = admit();
                rejected.has_value()) {
                response = error_response(
                    request.id, to_string(request.op), *rejected);
            } else {
                response = dispatch(request);
                finish_one();
            }
        } else {
            response = dispatch(request);
        }
    }
    count_response(response);
    return render_response(response);
}

int Server::run(std::istream& in, std::ostream& out, std::ostream& log) {
    Mutex out_mutex;
    const auto respond = [&out, &out_mutex, this](
                             const ServeResponse& response) {
        const std::string line = render_response(response);
        {
            const MutexLock lock(out_mutex);
            out << line << '\n';
            out.flush();
        }
        count_response(response);
    };

    log << "spmvcache serve: " << pool_.worker_count()
        << " worker(s), queue capacity " << options_.queue_capacity
        << ", cache cap " << options_.cache_capacity_bytes
        << " B, quarantine after " << options_.quarantine_strikes
        << " strikes\n";
    log.flush();

    const char* drain_reason = "eof";
    bool acknowledge_shutdown = false;
    std::string shutdown_id;
    std::string line;
    while (true) {
        if (drain::requested()) {
            drain_reason = "signal";
            break;
        }
        Result<bool> got =
            read_line_bounded(in, line, options_.max_request_bytes);
        const std::string fallback_id =
            "req-" + std::to_string(next_request_number_.fetch_add(
                         1, std::memory_order_relaxed));
        if (!got.ok()) {
            // Oversized line: answered like any bad request; the stream
            // is already resynchronized to the next line.
            ServeResponse response =
                error_response(fallback_id, "", got.error());
            {
                const MutexLock lock(stats_mutex_);
                ++counters_.parse_errors;
            }
            respond(response);
            continue;
        }
        if (!got.value()) {
            drain_reason = drain::requested() ? "signal" : "eof";
            break;
        }
        const std::string trimmed = trim(line);
        if (trimmed.empty()) continue;

        Result<ServeRequest> parsed = parse_request(trimmed);
        if (!parsed.ok()) {
            {
                const MutexLock lock(stats_mutex_);
                ++counters_.parse_errors;
            }
            respond(error_response(fallback_id, "", parsed.error()));
            continue;
        }
        ServeRequest request = std::move(parsed).value();
        if (request.id.empty()) request.id = fallback_id;

        if (request.op == RequestOp::Shutdown) {
            acknowledge_shutdown = true;
            shutdown_id = request.id;
            drain_reason = "shutdown";
            break;
        }
        if (request.op == RequestOp::Health) {
            // Health never queues: a saturated daemon must still answer.
            respond(dispatch(request));
            continue;
        }
        if (std::optional<Error> rejected = admit(); rejected.has_value()) {
            respond(error_response(request.id, to_string(request.op),
                                   *rejected));
            continue;
        }
        pool_.submit([this, request, respond] {
            // ThreadPool tasks must never throw; dispatch() already maps
            // everything to typed errors, this is the last-resort belt.
            try {
                respond(dispatch(request));
            } catch (const std::exception& e) {
                respond(error_response(request.id, to_string(request.op),
                                       error_from_exception(e)));
            } catch (...) {
                respond(error_response(
                    request.id, to_string(request.op),
                    Error(ErrorCode::InternalError, "unknown exception")));
            }
            finish_one();
        });
    }

    log << "draining (" << drain_reason << "): "
        << in_flight_.load(std::memory_order_acquire)
        << " request(s) in flight\n";
    log.flush();
    pool_.wait_idle();
    if (acknowledge_shutdown) {
        ServeRequest request;
        request.id = shutdown_id;
        request.op = RequestOp::Shutdown;
        respond(dispatch(request));
    }
    log << "final stats: " << render_stats_json() << "\n";
    log.flush();
    return kExitOk;
}

}  // namespace spmvcache
