// JSONL wire protocol of the serve daemon.
//
// Requests arrive one JSON object per line on stdin (or any istream);
// responses leave one JSON object per line, matched by "id". The parser
// here is deliberately minimal (objects, arrays, strings, numbers, bools,
// null; bounded nesting; typed errors instead of exceptions) — a hostile
// request must land in the typed-error layer, never in an abort or an
// unbounded allocation, so line length is bounded *while reading* and
// every malformed byte sequence maps to ParseError.
//
//   {"id":"r1","op":"predict","gen":"stencil2d5:64","threads":4}
//   {"id":"r1","ok":true,"code":"Ok","op":"predict","cache_hit":false,
//    "seconds":0.012,"retries":0,"payload":{...}}
//
// Doubles in payloads are serialized with shortest-round-trip to_chars, so
// a parsed payload reproduces the model's doubles bit-for-bit — the
// differential suite and the soak test rely on this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/matrix_source.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/status.hpp"

namespace spmvcache {

struct MatrixFingerprint;
struct ModelResult;

/// Parsed JSON value (tree). Numbers keep their raw text so integer
/// precision survives and doubles can round-trip exactly.
struct Json {
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;  ///< string value, or raw number text
    std::vector<Json> items;  ///< array elements
    std::vector<std::pair<std::string, Json>> members;  ///< object fields

    /// Object member by key, nullptr when absent (or not an object).
    [[nodiscard]] const Json* find(const std::string& key) const noexcept;

    /// Number as int64 (ValidationError when not a number, not integral,
    /// or out of range).
    [[nodiscard]] Result<std::int64_t> to_int64() const;
};

/// Parses one complete JSON document; trailing garbage is a ParseError.
[[nodiscard]] Result<Json> parse_json(std::string_view input);

/// Escaped and quoted JSON string literal ("ab\"c" -> "\"ab\\\"c\"").
[[nodiscard]] std::string json_quote(const std::string& s);

/// Shortest-round-trip serialization of a double (to_chars).
[[nodiscard]] std::string json_double(double value);

/// What a request asks for.
enum class RequestOp : std::uint8_t {
    Predict,   ///< model every sector config (method a/b)
    Tune,      ///< recommend the best sector config
    Stats,     ///< matrix statistics
    Health,    ///< daemon liveness + counters; never queued
    Shutdown,  ///< drain in-flight work and exit the loop
};

[[nodiscard]] const char* to_string(RequestOp op) noexcept;

/// One parsed request line.
struct ServeRequest {
    std::string id;  ///< echoed in the response ("req-N" when omitted)
    RequestOp op = RequestOp::Health;
    MatrixSource source;  ///< matrix ops only
    std::int64_t threads = 48;
    std::int64_t jobs = 1;
    std::string method = "a";  ///< predict only: "a" | "b"
    /// Per-request wall-clock budget; < 0 = use the server default.
    double timeout_seconds = -1.0;
    /// Sector-1 way counts to price; empty = the op's default list.
    std::vector<std::uint32_t> l2_ways;
    /// SHARDS sampling rate (ModelOptions::sample_rate) from the request's
    /// "approx" field: absent = 1 (exact), true = 0.01, a number = that
    /// rate. Part of the plan-cache key — exact and sampled plans for the
    /// same matrix never alias.
    double sample_rate = 1.0;
};

/// Parses one request line (already length-bounded by read_line_bounded).
[[nodiscard]] Result<ServeRequest> parse_request(const std::string& line);

/// One response line (rendered by render_response).
struct ServeResponse {
    std::string id;
    std::string op;
    bool ok = false;
    ErrorCode code = ErrorCode::InternalError;
    std::string error;  ///< rendered error chain; empty when ok
    bool cache_hit = false;
    int retries = 0;
    double seconds = 0.0;
    /// Rate the request asked for (1 = exact); echoed in the envelope so
    /// every response states how its numbers were computed. The payload's
    /// own "sampled" field reports what the model actually did (an armed
    /// `reuse.sample` fault can degrade a sampled request to exact).
    double sample_rate = 1.0;
    std::string payload;  ///< serialized JSON object; empty when none
};

/// Single-line JSON rendering (no trailing newline).
[[nodiscard]] std::string render_response(const ServeResponse& response);

/// Payload builders (serialized JSON objects, cache-ready).
[[nodiscard]] std::string render_predict_payload(
    const ModelResult& result, const MatrixFingerprint& fp,
    const std::string& method, std::int64_t threads);
[[nodiscard]] std::string render_tune_payload(const ModelResult& result,
                                              const MatrixFingerprint& fp,
                                              std::int64_t threads);
[[nodiscard]] std::string render_stats_payload(const MatrixStats& stats,
                                               const MatrixFingerprint& fp);

/// Reads one '\n'-terminated line of at most `max_bytes` bytes.
/// ok(true) = line read into `out`; ok(false) = clean end of stream (EOF
/// or an interrupted read — the caller distinguishes via the drain flag);
/// ValidationError = the line exceeded `max_bytes` (the remainder of the
/// oversized line is consumed so the stream stays line-synchronized).
[[nodiscard]] Result<bool> read_line_bounded(std::istream& in,
                                             std::string& out,
                                             std::size_t max_bytes);

}  // namespace spmvcache
